//! List scheduling and system-level QoS estimation — Table III of the
//! paper.
//!
//! Given a task graph, a platform and a [`Mapping`] (per-task PE binding +
//! task-level metrics + a priority order), this crate produces:
//!
//! * a non-preemptive [`Schedule`] via priority list scheduling
//!   ([`list_schedule`]), and
//! * the system-level QoS tuple of Table III via [`QosEvaluator`]:
//!   average makespan `S_app`, criticality-weighted application error
//!   probability `1 − F_app`, lifetime `L_app = MTTF_sys`, peak power
//!   `W_app` and energy `J_app`.
//!
//! # Examples
//!
//! ```
//! use clre_model::platform::paper_platform;
//! use clre_model::{qos::TaskMetrics, BaseImpl, PeId, PeTypeId, TaskGraph, TaskType};
//! use clre_sched::{list_schedule, Mapping, QosEvaluator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let platform = paper_platform();
//! let ty = TaskType::new("f").with_impl(BaseImpl::new("i", PeTypeId::new(0), 1e5, 1e-9));
//! let graph = TaskGraph::builder("app", 1.0e-2)
//!     .task_type(ty)
//!     .task("a", "f")?
//!     .task("b", "f")?
//!     .edge(0, 1)
//!     .build()?;
//! let metrics = TaskMetrics {
//!     min_exec_time: 1.0e-4, avg_exec_time: 1.2e-4, error_prob: 0.01,
//!     eta: 3.0e8, power: 0.5, energy: 6.0e-5, peak_temp: 330.0,
//! };
//! let mapping = Mapping::uniform(&graph, PeId::new(0), metrics);
//! let schedule = list_schedule(&graph, &platform, &mapping)?;
//! assert!((schedule.makespan() - 2.4e-4).abs() < 1e-12); // serial chain
//! let qos = QosEvaluator::new(&platform).evaluate(&graph, &mapping)?;
//! assert!(qos.error_prob > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod gantt;
mod mapping;
mod qos_eval;
mod schedule;

pub use error::SchedError;
pub use gantt::{render_gantt, utilization};
pub use mapping::Mapping;
pub use qos_eval::QosEvaluator;
pub use schedule::{list_schedule, Schedule, TaskInterval};

use crate::SchedError;
use clre_model::{qos::TaskMetrics, PeId, Platform, TaskGraph, TaskId};
use serde::{Deserialize, Serialize};

/// A fully decoded mapping configuration `X_i`: per-task PE binding and
/// task-level metrics, plus the scheduling priority order.
///
/// This is the interface between the DSE encodings (which know about
/// genes, implementations and CLR configurations) and the scheduler/QoS
/// layer (which only needs *where* each task runs, *how long* it takes and
/// *how reliable* it is).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mapping {
    /// `pes[t]` is the PE executing task `t`.
    pes: Vec<PeId>,
    /// `metrics[t]` are task `t`'s task-level metrics under its chosen
    /// implementation/DVFS/CLR point.
    metrics: Vec<TaskMetrics>,
    /// Scheduling priority: a permutation of all task ids, highest
    /// priority first.
    priority: Vec<TaskId>,
    /// Optional per-task memory footprints in bytes (storage-constraint
    /// extension); absent means zero footprint everywhere.
    footprints: Option<Vec<f64>>,
}

impl Mapping {
    /// Creates a mapping from parallel per-task vectors and a priority
    /// permutation.
    ///
    /// # Panics
    ///
    /// Panics if the three vectors have different lengths; permutation
    /// validity is checked later by [`Mapping::validate`] (so the GA can
    /// construct candidates cheaply and validate once).
    pub fn new(pes: Vec<PeId>, metrics: Vec<TaskMetrics>, priority: Vec<TaskId>) -> Self {
        assert_eq!(pes.len(), metrics.len(), "pes/metrics length mismatch");
        assert_eq!(pes.len(), priority.len(), "pes/priority length mismatch");
        Mapping {
            pes,
            metrics,
            priority,
            footprints: None,
        }
    }

    /// Convenience constructor: every task on the same PE with identical
    /// metrics, priority = index order. Useful in tests and examples.
    pub fn uniform(graph: &TaskGraph, pe: PeId, metrics: TaskMetrics) -> Self {
        let n = graph.task_count();
        Mapping {
            pes: vec![pe; n],
            metrics: vec![metrics; n],
            priority: (0..n as u32).map(TaskId::new).collect(),
            footprints: None,
        }
    }

    /// Attaches per-task memory footprints in bytes (builder style); used
    /// by the storage-constraint extension.
    ///
    /// # Panics
    ///
    /// Panics if `footprints.len()` differs from the task count.
    #[must_use]
    pub fn with_footprints(mut self, footprints: Vec<f64>) -> Self {
        assert_eq!(
            footprints.len(),
            self.pes.len(),
            "footprints/task length mismatch"
        );
        self.footprints = Some(footprints);
        self
    }

    /// Task `t`'s memory footprint in bytes (0 when footprints were not
    /// attached).
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range and footprints are attached.
    pub fn footprint_of(&self, t: TaskId) -> f64 {
        self.footprints.as_ref().map_or(0.0, |f| f[t.index()])
    }

    /// The PE executing task `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn pe_of(&self, t: TaskId) -> PeId {
        self.pes[t.index()]
    }

    /// Task `t`'s task-level metrics.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn metrics_of(&self, t: TaskId) -> &TaskMetrics {
        &self.metrics[t.index()]
    }

    /// The priority permutation, highest first.
    pub fn priority(&self) -> &[TaskId] {
        &self.priority
    }

    /// Number of mapped tasks.
    pub fn task_count(&self) -> usize {
        self.pes.len()
    }

    /// Validates the mapping against a graph and platform.
    ///
    /// # Errors
    ///
    /// * [`SchedError::AssignmentCountMismatch`] on a task-count mismatch.
    /// * [`SchedError::PeOutOfRange`] for dangling PE references.
    /// * [`SchedError::InvalidPriorityList`] if `priority` is not a
    ///   permutation of `0..T`.
    pub fn validate(&self, graph: &TaskGraph, platform: &Platform) -> Result<(), SchedError> {
        if self.pes.len() != graph.task_count() {
            return Err(SchedError::AssignmentCountMismatch {
                assignments: self.pes.len(),
                tasks: graph.task_count(),
            });
        }
        for (t, &pe) in self.pes.iter().enumerate() {
            if pe.index() >= platform.pe_count() {
                return Err(SchedError::PeOutOfRange {
                    task: TaskId::new(t as u32),
                    pe,
                    count: platform.pe_count(),
                });
            }
        }
        let mut seen = vec![false; self.pes.len()];
        for &t in &self.priority {
            if t.index() >= seen.len() || seen[t.index()] {
                return Err(SchedError::InvalidPriorityList);
            }
            seen[t.index()] = true;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clre_model::platform::paper_platform;
    use clre_model::{BaseImpl, PeTypeId, TaskType};

    fn metrics() -> TaskMetrics {
        TaskMetrics {
            min_exec_time: 1.0e-4,
            avg_exec_time: 1.2e-4,
            error_prob: 0.01,
            eta: 3.0e8,
            power: 0.5,
            energy: 6.0e-5,
            peak_temp: 330.0,
        }
    }

    fn graph(n: u32) -> TaskGraph {
        let ty = TaskType::new("f").with_impl(BaseImpl::new("i", PeTypeId::new(0), 1e5, 1e-9));
        let mut b = TaskGraph::builder("g", 1.0).task_type(ty);
        for i in 0..n {
            b = b.task(&format!("t{i}"), "f").unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn uniform_is_valid() {
        let g = graph(4);
        let p = paper_platform();
        let m = Mapping::uniform(&g, PeId::new(1), metrics());
        assert!(m.validate(&g, &p).is_ok());
        assert_eq!(m.task_count(), 4);
        assert_eq!(m.pe_of(TaskId::new(2)), PeId::new(1));
        assert_eq!(m.metrics_of(TaskId::new(0)).error_prob, 0.01);
    }

    #[test]
    fn detects_count_mismatch() {
        let g = graph(3);
        let p = paper_platform();
        let m = Mapping::new(
            vec![PeId::new(0); 2],
            vec![metrics(); 2],
            vec![TaskId::new(0), TaskId::new(1)],
        );
        assert!(matches!(
            m.validate(&g, &p),
            Err(SchedError::AssignmentCountMismatch { .. })
        ));
    }

    #[test]
    fn detects_pe_out_of_range() {
        let g = graph(1);
        let p = paper_platform();
        let m = Mapping::new(vec![PeId::new(9)], vec![metrics()], vec![TaskId::new(0)]);
        assert!(matches!(
            m.validate(&g, &p),
            Err(SchedError::PeOutOfRange { .. })
        ));
    }

    #[test]
    fn detects_bad_permutation() {
        let g = graph(2);
        let p = paper_platform();
        let dup = Mapping::new(
            vec![PeId::new(0); 2],
            vec![metrics(); 2],
            vec![TaskId::new(0), TaskId::new(0)],
        );
        assert_eq!(dup.validate(&g, &p), Err(SchedError::InvalidPriorityList));
        let oob = Mapping::new(
            vec![PeId::new(0); 2],
            vec![metrics(); 2],
            vec![TaskId::new(0), TaskId::new(5)],
        );
        assert_eq!(oob.validate(&g, &p), Err(SchedError::InvalidPriorityList));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn new_rejects_ragged_vectors() {
        Mapping::new(vec![PeId::new(0)], vec![], vec![TaskId::new(0)]);
    }

    #[test]
    fn footprints_default_zero_and_attach() {
        let g = graph(2);
        let m = Mapping::uniform(&g, PeId::new(0), metrics());
        assert_eq!(m.footprint_of(TaskId::new(1)), 0.0);
        let m = m.with_footprints(vec![100.0, 200.0]);
        assert_eq!(m.footprint_of(TaskId::new(1)), 200.0);
    }

    #[test]
    #[should_panic(expected = "footprints/task length mismatch")]
    fn footprints_must_match_task_count() {
        let g = graph(2);
        let _ = Mapping::uniform(&g, PeId::new(0), metrics()).with_footprints(vec![1.0]);
    }
}

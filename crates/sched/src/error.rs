use clre_model::{PeId, TaskId};
use std::error::Error;
use std::fmt;

/// Error type for scheduling and QoS evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchedError {
    /// The mapping holds a different number of assignments than the graph
    /// has tasks.
    AssignmentCountMismatch {
        /// Assignments provided.
        assignments: usize,
        /// Tasks in the graph.
        tasks: usize,
    },
    /// The priority list is not a permutation of the task ids.
    InvalidPriorityList,
    /// An assignment referenced a PE outside the platform.
    PeOutOfRange {
        /// The offending task.
        task: TaskId,
        /// The dangling PE id.
        pe: PeId,
        /// Number of PEs in the platform.
        count: usize,
    },
    /// List scheduling ran out of ready tasks before scheduling the whole
    /// graph — the dependence structure contains a cycle.
    CyclicDependency {
        /// Tasks scheduled before the stall.
        scheduled: usize,
        /// Tasks in the graph.
        tasks: usize,
    },
    /// A task was picked for scheduling before one of its predecessors
    /// finished — an internal ready-set inconsistency.
    UnscheduledPredecessor {
        /// The task that was about to start.
        task: TaskId,
        /// The predecessor with no finish time.
        predecessor: TaskId,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::AssignmentCountMismatch { assignments, tasks } => {
                write!(f, "mapping has {assignments} assignments for {tasks} tasks")
            }
            SchedError::InvalidPriorityList => {
                write!(f, "priority list is not a permutation of the task ids")
            }
            SchedError::PeOutOfRange { task, pe, count } => {
                write!(f, "task {task} mapped to {pe}, platform has {count} PEs")
            }
            SchedError::CyclicDependency { scheduled, tasks } => {
                write!(
                    f,
                    "no ready task after scheduling {scheduled} of {tasks} tasks: \
                     the graph contains a dependence cycle"
                )
            }
            SchedError::UnscheduledPredecessor { task, predecessor } => {
                write!(
                    f,
                    "task {task} became ready before predecessor {predecessor} finished"
                )
            }
        }
    }
}

impl Error for SchedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            SchedError::AssignmentCountMismatch {
                assignments: 2,
                tasks: 3,
            },
            SchedError::InvalidPriorityList,
            SchedError::PeOutOfRange {
                task: TaskId::new(0),
                pe: PeId::new(9),
                count: 6,
            },
            SchedError::CyclicDependency {
                scheduled: 2,
                tasks: 4,
            },
            SchedError::UnscheduledPredecessor {
                task: TaskId::new(1),
                predecessor: TaskId::new(0),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}

use crate::{Mapping, SchedError};
use clre_model::{PeId, Platform, TaskGraph, TaskId};
use serde::{Deserialize, Serialize};

/// One scheduled execution interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskInterval {
    /// The scheduled task.
    pub task: TaskId,
    /// The PE it executes on.
    pub pe: PeId,
    /// Average start time `SST_t` in seconds.
    pub start: f64,
    /// Average end time `SET_t` in seconds.
    pub end: f64,
}

/// A complete non-preemptive schedule of one application iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    intervals: Vec<TaskInterval>,
    makespan: f64,
}

impl Schedule {
    /// Per-task intervals, indexed by task id.
    pub fn intervals(&self) -> &[TaskInterval] {
        &self.intervals
    }

    /// The interval of task `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn interval(&self, t: TaskId) -> &TaskInterval {
        &self.intervals[t.index()]
    }

    /// Average makespan `S_app = max_t SET_t`.
    pub fn makespan(&self) -> f64 {
        self.makespan
    }
}

/// Priority list scheduling with fixed task-to-PE binding.
///
/// Repeatedly picks the highest-priority *ready* task (all predecessors
/// finished) and starts it at the later of its PE's availability and its
/// latest predecessor finish time, using each task's **average** execution
/// time — this yields the paper's average makespan `S_app`.
///
/// When the platform declares an
/// [`Interconnect`](clre_model::platform::Interconnect), a predecessor on
/// a *different* PE additionally delays the task by the transfer time of
/// the edge's data volume (the communication-aware extension of
/// DESIGN.md §8); same-PE communication is free.
///
/// # Errors
///
/// Propagates [`Mapping::validate`] failures, and returns
/// [`SchedError::CyclicDependency`] if the graph's dependence structure
/// stalls the ready set before every task is scheduled.
///
/// # Examples
///
/// See the [crate-level example](crate).
pub fn list_schedule(
    graph: &TaskGraph,
    platform: &Platform,
    mapping: &Mapping,
) -> Result<Schedule, SchedError> {
    mapping.validate(graph, platform)?;
    let n = graph.task_count();
    // priority_rank[t] = position of t in the priority list (lower = sooner).
    let mut priority_rank = vec![0usize; n];
    for (rank, &t) in mapping.priority().iter().enumerate() {
        priority_rank[t.index()] = rank;
    }
    let mut pe_free = vec![0.0f64; platform.pe_count()];
    let mut finish: Vec<Option<f64>> = vec![None; n];
    let mut remaining_preds: Vec<usize> = (0..n)
        .map(|t| graph.predecessors(TaskId::new(t as u32)).len())
        .collect();
    let mut intervals = vec![
        TaskInterval {
            task: TaskId::new(0),
            pe: PeId::new(0),
            start: 0.0,
            end: 0.0,
        };
        n
    ];
    let mut scheduled = 0usize;
    let mut ready: Vec<usize> = (0..n).filter(|&t| remaining_preds[t] == 0).collect();
    while scheduled < n {
        // Highest priority ready task.
        let (pos, &t) = ready
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| priority_rank[t])
            .ok_or(SchedError::CyclicDependency {
                scheduled,
                tasks: n,
            })?;
        ready.swap_remove(pos);
        let tid = TaskId::new(t as u32);
        let pe = mapping.pe_of(tid);
        let mut preds_done = 0.0f64;
        for &(p, volume) in graph.predecessor_edges(tid) {
            let end = finish[p.index()].ok_or(SchedError::UnscheduledPredecessor {
                task: tid,
                predecessor: p,
            })?;
            let arrival = match platform.interconnect() {
                Some(noc) if mapping.pe_of(p) != pe => end + noc.transfer_time(volume),
                _ => end,
            };
            preds_done = preds_done.max(arrival);
        }
        let start = pe_free[pe.index()].max(preds_done);
        let end = start + mapping.metrics_of(tid).avg_exec_time;
        pe_free[pe.index()] = end;
        finish[t] = Some(end);
        intervals[t] = TaskInterval {
            task: tid,
            pe,
            start,
            end,
        };
        scheduled += 1;
        for &s in graph.successors(tid) {
            remaining_preds[s.index()] -= 1;
            if remaining_preds[s.index()] == 0 {
                ready.push(s.index());
            }
        }
    }
    let makespan = intervals.iter().map(|i| i.end).fold(0.0, f64::max);
    Ok(Schedule {
        intervals,
        makespan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clre_model::platform::paper_platform;
    use clre_model::{qos::TaskMetrics, BaseImpl, PeTypeId, TaskType};

    fn metrics(t: f64) -> TaskMetrics {
        TaskMetrics {
            min_exec_time: t,
            avg_exec_time: t,
            error_prob: 0.0,
            eta: 1e8,
            power: 1.0,
            energy: t,
            peak_temp: 320.0,
        }
    }

    fn diamond() -> TaskGraph {
        let ty = TaskType::new("f").with_impl(BaseImpl::new("i", PeTypeId::new(0), 1e5, 1e-9));
        TaskGraph::builder("d", 1.0)
            .task_type(ty)
            .task("a", "f")
            .unwrap()
            .task("b", "f")
            .unwrap()
            .task("c", "f")
            .unwrap()
            .task("d", "f")
            .unwrap()
            .edge(0, 1)
            .edge(0, 2)
            .edge(1, 3)
            .edge(2, 3)
            .build()
            .unwrap()
    }

    #[test]
    fn diamond_parallel_on_two_pes() {
        let g = diamond();
        let p = paper_platform();
        // b on PE0, c on PE1 → they overlap; makespan = 3 slots not 4.
        let pes = vec![PeId::new(0), PeId::new(0), PeId::new(1), PeId::new(0)];
        let m = Mapping::new(
            pes,
            vec![metrics(1.0); 4],
            (0..4).map(TaskId::new).collect(),
        );
        let s = list_schedule(&g, &p, &m).unwrap();
        assert_eq!(s.makespan(), 3.0);
        assert_eq!(s.interval(TaskId::new(1)).start, 1.0);
        assert_eq!(s.interval(TaskId::new(2)).start, 1.0);
        assert_eq!(s.interval(TaskId::new(3)).start, 2.0);
    }

    #[test]
    fn diamond_serial_on_one_pe() {
        let g = diamond();
        let p = paper_platform();
        let m = Mapping::uniform(&g, PeId::new(0), metrics(1.0));
        let s = list_schedule(&g, &p, &m).unwrap();
        assert_eq!(s.makespan(), 4.0);
        // No overlap on the single PE.
        let mut iv: Vec<_> = s.intervals().to_vec();
        iv.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
        for w in iv.windows(2) {
            assert!(w[1].start >= w[0].end - 1e-12);
        }
    }

    #[test]
    fn priority_breaks_ties() {
        // Two independent tasks on one PE: priority decides the order.
        let ty = TaskType::new("f").with_impl(BaseImpl::new("i", PeTypeId::new(0), 1e5, 1e-9));
        let g = TaskGraph::builder("p", 1.0)
            .task_type(ty)
            .task("a", "f")
            .unwrap()
            .task("b", "f")
            .unwrap()
            .build()
            .unwrap();
        let p = paper_platform();
        let m = Mapping::new(
            vec![PeId::new(0); 2],
            vec![metrics(1.0), metrics(2.0)],
            vec![TaskId::new(1), TaskId::new(0)], // b first
        );
        let s = list_schedule(&g, &p, &m).unwrap();
        assert_eq!(s.interval(TaskId::new(1)).start, 0.0);
        assert_eq!(s.interval(TaskId::new(0)).start, 2.0);
        assert_eq!(s.makespan(), 3.0);
    }

    #[test]
    fn dependencies_always_respected() {
        // Even when the priority order inverts the topological order, a
        // successor never starts before its predecessor ends.
        let g = diamond();
        let p = paper_platform();
        let m = Mapping::new(
            vec![PeId::new(0), PeId::new(1), PeId::new(2), PeId::new(3)],
            vec![metrics(1.0); 4],
            vec![
                TaskId::new(3),
                TaskId::new(2),
                TaskId::new(1),
                TaskId::new(0),
            ],
        );
        let s = list_schedule(&g, &p, &m).unwrap();
        for &(f, t) in g.edges() {
            assert!(s.interval(t).start >= s.interval(f).end - 1e-12);
        }
    }

    #[test]
    fn propagates_validation_errors() {
        let g = diamond();
        let p = paper_platform();
        let m = Mapping::new(
            vec![PeId::new(0); 4],
            vec![metrics(1.0); 4],
            vec![TaskId::new(0); 4],
        );
        assert!(list_schedule(&g, &p, &m).is_err());
    }

    #[test]
    fn interconnect_delays_cross_pe_edges_only() {
        use clre_model::platform::{DvfsMode, Interconnect, PeType, Platform};
        let platform = Platform::builder()
            .pe_type(
                PeType::processor("p", 2.0, 0.3).with_dvfs_mode(DvfsMode::new("m", 1.0, 1.0e8)),
            )
            .pes_of_type("p", 2)
            .unwrap()
            .interconnect(Interconnect::new(0.5, 10.0))
            .build()
            .unwrap();
        let ty = TaskType::new("f").with_impl(BaseImpl::new("i", PeTypeId::new(0), 1e5, 1e-9));
        let g = TaskGraph::builder("c", 1.0)
            .task_type(ty)
            .task("a", "f")
            .unwrap()
            .task("b", "f")
            .unwrap()
            .edge_with_volume(0, 1, 20.0)
            .build()
            .unwrap();
        // Same PE: no communication cost.
        let same = Mapping::uniform(&g, PeId::new(0), metrics(1.0));
        let s_same = list_schedule(&g, &platform, &same).unwrap();
        assert_eq!(s_same.makespan(), 2.0);
        // Cross PE: 0.5 s latency + 20 B / 10 B/s = 2.5 s extra.
        let cross = Mapping::new(
            vec![PeId::new(0), PeId::new(1)],
            vec![metrics(1.0); 2],
            vec![TaskId::new(0), TaskId::new(1)],
        );
        let s_cross = list_schedule(&g, &platform, &cross).unwrap();
        assert!((s_cross.interval(TaskId::new(1)).start - 3.5).abs() < 1e-12);
        assert!((s_cross.makespan() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn no_interconnect_means_free_communication() {
        let g = diamond();
        let p = paper_platform(); // declares no interconnect
        let cross = Mapping::new(
            vec![PeId::new(0), PeId::new(1), PeId::new(2), PeId::new(3)],
            vec![metrics(1.0); 4],
            (0..4).map(TaskId::new).collect(),
        );
        let s = list_schedule(&g, &p, &cross).unwrap();
        assert_eq!(s.makespan(), 3.0);
    }

    #[test]
    fn pe_exclusivity_holds_under_random_mappings() {
        // Deterministic pseudo-random sweep: no two intervals on one PE
        // may overlap.
        let g = diamond();
        let p = paper_platform();
        let mut state = 12345u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize
        };
        for _ in 0..50 {
            let pes: Vec<PeId> = (0..4).map(|_| PeId::new((next() % 6) as u32)).collect();
            let mut prio: Vec<TaskId> = (0..4).map(TaskId::new).collect();
            for i in (1..4).rev() {
                prio.swap(i, next() % (i + 1));
            }
            let m = Mapping::new(pes, vec![metrics(1.0); 4], prio);
            let s = list_schedule(&g, &p, &m).unwrap();
            for a in s.intervals() {
                for b in s.intervals() {
                    if a.task != b.task && a.pe == b.pe {
                        assert!(a.end <= b.start + 1e-12 || b.end <= a.start + 1e-12);
                    }
                }
            }
        }
    }
}

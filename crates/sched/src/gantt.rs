//! Text Gantt rendering and schedule statistics — the designer-facing
//! view of a mapping during early-stage exploration.

use crate::Schedule;
use clre_model::{PeId, Platform};

/// Per-PE busy fraction of the schedule's makespan.
///
/// Returns one entry per PE; idle PEs report `0.0`. Returns all zeros for
/// an empty or zero-length schedule.
///
/// # Examples
///
/// ```
/// use clre_model::platform::paper_platform;
/// use clre_model::{qos::TaskMetrics, BaseImpl, PeId, PeTypeId, TaskGraph, TaskType};
/// use clre_sched::{list_schedule, utilization, Mapping};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let platform = paper_platform();
/// let ty = TaskType::new("f").with_impl(BaseImpl::new("i", PeTypeId::new(0), 1e5, 1e-9));
/// let graph = TaskGraph::builder("g", 1.0)
///     .task_type(ty).task("a", "f")?.task("b", "f")?.edge(0, 1).build()?;
/// let m = TaskMetrics { min_exec_time: 1.0, avg_exec_time: 1.0, error_prob: 0.0,
///                       eta: 1e8, power: 1.0, energy: 1.0, peak_temp: 320.0 };
/// let schedule = list_schedule(&graph, &platform, &Mapping::uniform(&graph, PeId::new(0), m))?;
/// let u = utilization(&schedule, &platform);
/// assert_eq!(u[0], 1.0);      // PE0 busy the whole makespan
/// assert_eq!(u[1], 0.0);      // everything else idle
/// # Ok(())
/// # }
/// ```
pub fn utilization(schedule: &Schedule, platform: &Platform) -> Vec<f64> {
    let mut busy = vec![0.0f64; platform.pe_count()];
    for iv in schedule.intervals() {
        busy[iv.pe.index()] += iv.end - iv.start;
    }
    let span = schedule.makespan();
    if span <= 0.0 {
        return vec![0.0; platform.pe_count()];
    }
    busy.iter().map(|b| b / span).collect()
}

/// Renders the schedule as a fixed-width text Gantt chart, one row per PE.
///
/// Each task occupies a run of cells labelled with its id modulo 10 (a
/// `#`-free visual for quick terminal inspection); idle time is `.`.
///
/// # Panics
///
/// Panics if `width == 0`.
///
/// # Examples
///
/// ```
/// # use clre_model::platform::paper_platform;
/// # use clre_model::{qos::TaskMetrics, BaseImpl, PeId, PeTypeId, TaskGraph, TaskType};
/// # use clre_sched::{list_schedule, render_gantt, Mapping};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let platform = paper_platform();
/// # let ty = TaskType::new("f").with_impl(BaseImpl::new("i", PeTypeId::new(0), 1e5, 1e-9));
/// # let graph = TaskGraph::builder("g", 1.0)
/// #     .task_type(ty).task("a", "f")?.task("b", "f")?.edge(0, 1).build()?;
/// # let m = TaskMetrics { min_exec_time: 1.0, avg_exec_time: 1.0, error_prob: 0.0,
/// #                       eta: 1e8, power: 1.0, energy: 1.0, peak_temp: 320.0 };
/// # let schedule = list_schedule(&graph, &platform, &Mapping::uniform(&graph, PeId::new(0), m))?;
/// let chart = render_gantt(&schedule, &platform, 40);
/// assert!(chart.lines().count() >= platform.pe_count());
/// assert!(chart.contains("PE0"));
/// # Ok(())
/// # }
/// ```
pub fn render_gantt(schedule: &Schedule, platform: &Platform, width: usize) -> String {
    assert!(width > 0, "chart width must be positive");
    let span = schedule.makespan();
    let mut out = String::new();
    for pe in 0..platform.pe_count() {
        let pe = PeId::new(pe as u32);
        let mut row = vec!['.'; width];
        if span > 0.0 {
            for iv in schedule.intervals().iter().filter(|iv| iv.pe == pe) {
                let a = ((iv.start / span) * width as f64).floor() as usize;
                let b = (((iv.end / span) * width as f64).ceil() as usize).min(width);
                let label =
                    char::from_digit((iv.task.index() % 10) as u32, 10).expect("single digit");
                for c in row.iter_mut().take(b).skip(a.min(width)) {
                    *c = label;
                }
            }
        }
        let line: String = row.into_iter().collect();
        out.push_str(&format!("{pe:<4} |{line}|\n"));
    }
    out.push_str(&format!("makespan: {:.3e} s\n", span));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{list_schedule, Mapping};
    use clre_model::platform::paper_platform;
    use clre_model::{qos::TaskMetrics, BaseImpl, PeTypeId, TaskGraph, TaskId, TaskType};

    fn metrics(t: f64) -> TaskMetrics {
        TaskMetrics {
            min_exec_time: t,
            avg_exec_time: t,
            error_prob: 0.0,
            eta: 1e8,
            power: 1.0,
            energy: t,
            peak_temp: 320.0,
        }
    }

    fn two_tasks() -> TaskGraph {
        let ty = TaskType::new("f").with_impl(BaseImpl::new("i", PeTypeId::new(0), 1e5, 1e-9));
        TaskGraph::builder("g", 1.0)
            .task_type(ty)
            .task("a", "f")
            .unwrap()
            .task("b", "f")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn utilization_sums_busy_time() {
        let g = two_tasks();
        let p = paper_platform();
        let m = Mapping::new(
            vec![PeId::new(0), PeId::new(3)],
            vec![metrics(1.0), metrics(0.5)],
            vec![TaskId::new(0), TaskId::new(1)],
        );
        let s = list_schedule(&g, &p, &m).unwrap();
        let u = utilization(&s, &p);
        assert_eq!(u[0], 1.0);
        assert_eq!(u[3], 0.5);
        assert_eq!(u[1], 0.0);
        assert_eq!(u.len(), 6);
    }

    #[test]
    fn gantt_shows_all_pes_and_tasks() {
        let g = two_tasks();
        let p = paper_platform();
        let m = Mapping::new(
            vec![PeId::new(0), PeId::new(1)],
            vec![metrics(1.0), metrics(1.0)],
            vec![TaskId::new(0), TaskId::new(1)],
        );
        let s = list_schedule(&g, &p, &m).unwrap();
        let chart = render_gantt(&s, &p, 20);
        assert_eq!(chart.lines().count(), 7); // 6 PEs + makespan footer
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[0].contains('0'));
        assert!(lines[1].contains('1'));
        assert!(lines[2].contains("...")); // idle PE
        assert!(lines[6].starts_with("makespan"));
    }

    #[test]
    #[should_panic(expected = "chart width must be positive")]
    fn zero_width_panics() {
        let g = two_tasks();
        let p = paper_platform();
        let m = Mapping::uniform(&g, PeId::new(0), metrics(1.0));
        let s = list_schedule(&g, &p, &m).unwrap();
        let _ = render_gantt(&s, &p, 0);
    }
}

use crate::{list_schedule, Mapping, SchedError, Schedule};
use clre_model::{qos::SystemMetrics, Platform, TaskGraph};
use clre_num::{gamma, util::kahan_sum};

/// System-level QoS estimator implementing Table III of the paper.
///
/// Precomputes the per-PE-type Weibull terms `Γ(1 + 1/β_p)` once per
/// platform, then evaluates mappings in `O(T log T)`.
#[derive(Debug, Clone)]
pub struct QosEvaluator<'p> {
    platform: &'p Platform,
    /// `gamma_terms[pe_type] = Γ(1 + 1/β)`.
    gamma_terms: Vec<f64>,
}

impl<'p> QosEvaluator<'p> {
    /// Creates an evaluator for `platform`.
    pub fn new(platform: &'p Platform) -> Self {
        let gamma_terms = platform
            .pe_types()
            .iter()
            .map(|t| gamma(1.0 + 1.0 / t.weibull_beta()))
            .collect();
        QosEvaluator {
            platform,
            gamma_terms,
        }
    }

    /// The platform this evaluator is bound to.
    pub fn platform(&self) -> &Platform {
        self.platform
    }

    /// Schedules `mapping` and derives the full Table III metric tuple.
    ///
    /// # Errors
    ///
    /// Propagates mapping validation failures from [`list_schedule`].
    pub fn evaluate(
        &self,
        graph: &TaskGraph,
        mapping: &Mapping,
    ) -> Result<SystemMetrics, SchedError> {
        let schedule = list_schedule(graph, self.platform, mapping)?;
        self.metrics_from_schedule(graph, mapping, &schedule)
    }

    /// Like [`QosEvaluator::evaluate`] but also returns the schedule
    /// (C-INTERMEDIATE: callers that need Gantt data should not pay for a
    /// second scheduling pass).
    ///
    /// # Errors
    ///
    /// Propagates mapping validation failures from [`list_schedule`].
    pub fn evaluate_with_schedule(
        &self,
        graph: &TaskGraph,
        mapping: &Mapping,
    ) -> Result<(SystemMetrics, Schedule), SchedError> {
        let schedule = list_schedule(graph, self.platform, mapping)?;
        let m = self.metrics_from_schedule(graph, mapping, &schedule)?;
        Ok((m, schedule))
    }

    /// Normalized local-memory overflow of the mapping: for each PE, the
    /// summed footprints of its tasks beyond the PE type's capacity,
    /// relative to that capacity; `0.0` when every PE fits (the
    /// storage-constraint extension of DESIGN.md §8).
    ///
    /// # Panics
    ///
    /// Panics if the mapping references PEs outside the platform; validate
    /// first when the mapping is untrusted.
    pub fn memory_violation(&self, graph: &TaskGraph, mapping: &Mapping) -> f64 {
        let mut used = vec![0.0f64; self.platform.pe_count()];
        for t in graph.tasks() {
            used[mapping.pe_of(t.id()).index()] += mapping.footprint_of(t.id());
        }
        let mut violation = 0.0;
        for (pe, &u) in used.iter().enumerate() {
            let cap = self
                .platform
                .type_of(clre_model::PeId::new(pe as u32))
                .local_memory_bytes();
            if u > cap {
                violation += (u - cap) / cap;
            }
        }
        violation
    }

    fn metrics_from_schedule(
        &self,
        graph: &TaskGraph,
        mapping: &Mapping,
        schedule: &Schedule,
    ) -> Result<SystemMetrics, SchedError> {
        let n = graph.task_count();
        // Functional reliability: criticality-weighted series-system form
        // F_app = Π F_t^{ζ_t·T}. With uniform criticalities the exponents
        // are 1 and this is the plain series-system product of Xiang et
        // al. (the paper's lifetime reference [19]); criticality skews a
        // task's weight exactly as Equation 3's ζ_t does. Computed in log
        // space for numerical robustness at large T.
        let zeta = graph.normalized_criticalities();
        let log_f = kahan_sum(graph.tasks().iter().map(|t| {
            let rel = 1.0 - mapping.metrics_of(t.id()).error_prob;
            let w = zeta[t.id().index()] * n as f64;
            if rel <= 0.0 {
                f64::NEG_INFINITY
            } else {
                w * rel.ln()
            }
        }));
        let error_prob = clre_num::util::clamp_prob(1.0 - log_f.exp());

        // Lifetime (Equation 2): MTTF_p = P_app / Σ_{t on p} AvgExT/MTTF(t,i,p).
        let mut stress_per_pe = vec![0.0f64; self.platform.pe_count()];
        for t in graph.tasks() {
            let m = mapping.metrics_of(t.id());
            let pe = mapping.pe_of(t.id());
            let ty = self
                .platform
                .pe(pe)
                .ok_or(SchedError::PeOutOfRange {
                    task: t.id(),
                    pe,
                    count: self.platform.pe_count(),
                })?
                .pe_type();
            let gamma_term = self.gamma_terms[ty.index()];
            let mttf_tip = m.eta * gamma_term;
            stress_per_pe[pe.index()] += m.avg_exec_time / mttf_tip;
        }
        let period = graph.period();
        let mttf = stress_per_pe
            .iter()
            .filter(|&&s| s > 0.0)
            .map(|&s| period / s)
            .fold(f64::INFINITY, f64::min);
        let mttf = if mttf.is_finite() { mttf } else { f64::MAX };

        // Peak power (Equation 4): sweep interval endpoints.
        let mut events: Vec<(f64, f64)> = Vec::with_capacity(2 * n);
        for iv in schedule.intervals() {
            let w = mapping.metrics_of(iv.task).power;
            events.push((iv.start, w));
            events.push((iv.end, -w));
        }
        // total_cmp gives a total order even for non-finite inputs, so a
        // degenerate schedule degrades to a well-defined (if meaningless)
        // peak instead of aborting the whole DSE run.
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let mut current = 0.0f64;
        let mut peak = 0.0f64;
        for (_, dw) in events {
            current += dw;
            peak = peak.max(current);
        }

        // Energy: Σ AvgExT × W.
        let energy = kahan_sum(graph.tasks().iter().map(|t| {
            let m = mapping.metrics_of(t.id());
            m.avg_exec_time * m.power
        }));

        Ok(SystemMetrics {
            makespan: schedule.makespan(),
            error_prob,
            mttf,
            energy,
            peak_power: peak,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clre_model::platform::paper_platform;
    use clre_model::{qos::TaskMetrics, BaseImpl, PeId, PeTypeId, TaskId, TaskType};

    fn metrics(t: f64, err: f64, w: f64) -> TaskMetrics {
        TaskMetrics {
            min_exec_time: t,
            avg_exec_time: t,
            error_prob: err,
            eta: 3.0e8,
            power: w,
            energy: t * w,
            peak_temp: 330.0,
        }
    }

    fn chain(n: u32) -> TaskGraph {
        let ty = TaskType::new("f").with_impl(BaseImpl::new("i", PeTypeId::new(0), 1e5, 1e-9));
        let mut b = TaskGraph::builder("c", 1.0e-2).task_type(ty);
        for i in 0..n {
            b = b.task(&format!("t{i}"), "f").unwrap();
        }
        for i in 1..n {
            b = b.edge(i - 1, i);
        }
        b.build().unwrap()
    }

    fn two_independent() -> TaskGraph {
        let ty = TaskType::new("f").with_impl(BaseImpl::new("i", PeTypeId::new(0), 1e5, 1e-9));
        TaskGraph::builder("i2", 1.0e-2)
            .task_type(ty)
            .task("a", "f")
            .unwrap()
            .task("b", "f")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn error_prob_is_series_product() {
        let g = two_independent();
        let p = paper_platform();
        let m = Mapping::new(
            vec![PeId::new(0), PeId::new(1)],
            vec![metrics(1e-4, 0.2, 1.0), metrics(1e-4, 0.1, 1.0)],
            vec![TaskId::new(0), TaskId::new(1)],
        );
        let q = QosEvaluator::new(&p).evaluate(&g, &m).unwrap();
        // Uniform ζ with T = 2 gives unit exponents: F = 0.8 · 0.9.
        assert!((q.error_prob - (1.0 - 0.8 * 0.9)).abs() < 1e-12);
    }

    #[test]
    fn error_prob_grows_with_task_count() {
        let p = paper_platform();
        let per_task = metrics(1e-4, 0.02, 1.0);
        let err_at = |n: u32| {
            let g = chain(n);
            let m = Mapping::uniform(&g, PeId::new(0), per_task);
            QosEvaluator::new(&p).evaluate(&g, &m).unwrap().error_prob
        };
        let e5 = err_at(5);
        let e20 = err_at(20);
        assert!(e20 > e5);
        assert!((e5 - (1.0 - 0.98f64.powi(5))).abs() < 1e-12);
        assert!((e20 - (1.0 - 0.98f64.powi(20))).abs() < 1e-12);
    }

    #[test]
    fn criticality_skews_error_weighting() {
        // A critical task's error weighs more than a non-critical one's.
        let p = paper_platform();
        let ty = TaskType::new("f").with_impl(BaseImpl::new("i", PeTypeId::new(0), 1e5, 1e-9));
        let g = TaskGraph::builder("c", 1.0e-2)
            .task_type(ty)
            .task_with_criticality("hot", "f", 3.0)
            .unwrap()
            .task_with_criticality("cold", "f", 1.0)
            .unwrap()
            .build()
            .unwrap();
        let err_hot = Mapping::new(
            vec![PeId::new(0), PeId::new(1)],
            vec![metrics(1e-4, 0.1, 1.0), metrics(1e-4, 0.0, 1.0)],
            vec![TaskId::new(0), TaskId::new(1)],
        );
        let err_cold = Mapping::new(
            vec![PeId::new(0), PeId::new(1)],
            vec![metrics(1e-4, 0.0, 1.0), metrics(1e-4, 0.1, 1.0)],
            vec![TaskId::new(0), TaskId::new(1)],
        );
        let ev = QosEvaluator::new(&p);
        let qh = ev.evaluate(&g, &err_hot).unwrap();
        let qc = ev.evaluate(&g, &err_cold).unwrap();
        assert!(qh.error_prob > qc.error_prob);
    }

    #[test]
    fn peak_power_counts_overlap_only() {
        let g = two_independent();
        let p = paper_platform();
        // Parallel on two PEs: peak = 1.5 W; serial on one PE: peak = 1.0.
        let par = Mapping::new(
            vec![PeId::new(0), PeId::new(1)],
            vec![metrics(1e-4, 0.0, 1.0), metrics(1e-4, 0.0, 0.5)],
            vec![TaskId::new(0), TaskId::new(1)],
        );
        let ser = Mapping::new(
            vec![PeId::new(0), PeId::new(0)],
            vec![metrics(1e-4, 0.0, 1.0), metrics(1e-4, 0.0, 0.5)],
            vec![TaskId::new(0), TaskId::new(1)],
        );
        let ev = QosEvaluator::new(&p);
        let qp = ev.evaluate(&g, &par).unwrap();
        let qs = ev.evaluate(&g, &ser).unwrap();
        assert!((qp.peak_power - 1.5).abs() < 1e-12);
        assert!((qs.peak_power - 1.0).abs() < 1e-12);
        // Energy identical either way.
        assert!((qp.energy - qs.energy).abs() < 1e-15);
        // Makespan differs.
        assert!(qp.makespan < qs.makespan);
    }

    #[test]
    fn mttf_follows_utilization_and_min_rule() {
        let g = two_independent();
        let p = paper_platform();
        let ev = QosEvaluator::new(&p);
        // Both tasks on PE0 stresses it twice as much as split mapping.
        let both = Mapping::uniform(&g, PeId::new(0), metrics(1e-4, 0.0, 1.0));
        let split = Mapping::new(
            vec![PeId::new(0), PeId::new(1)],
            vec![metrics(1e-4, 0.0, 1.0); 2],
            vec![TaskId::new(0), TaskId::new(1)],
        );
        let q_both = ev.evaluate(&g, &both).unwrap();
        let q_split = ev.evaluate(&g, &split).unwrap();
        assert!(q_split.mttf > 1.9 * q_both.mttf && q_split.mttf < 2.1 * q_both.mttf);
    }

    #[test]
    fn mttf_scales_with_eta_and_gamma() {
        let g = chain(1);
        let p = paper_platform();
        let ev = QosEvaluator::new(&p);
        let m = Mapping::uniform(&g, PeId::new(0), metrics(1e-4, 0.0, 1.0));
        let q = ev.evaluate(&g, &m).unwrap();
        // MTTF_p = P / (t/ (η·Γ)) = P·η·Γ/t.
        let beta = p.type_of(PeId::new(0)).weibull_beta();
        let expect = 1.0e-2 * 3.0e8 * gamma(1.0 + 1.0 / beta) / 1.0e-4;
        assert!((q.mttf / expect - 1.0).abs() < 1e-12);
    }

    #[test]
    fn makespan_matches_chain_length() {
        let g = chain(5);
        let p = paper_platform();
        let m = Mapping::uniform(&g, PeId::new(2), metrics(2e-4, 0.0, 1.0));
        let q = QosEvaluator::new(&p).evaluate(&g, &m).unwrap();
        assert!((q.makespan - 1.0e-3).abs() < 1e-12);
    }

    #[test]
    fn evaluate_with_schedule_returns_both() {
        let g = chain(3);
        let p = paper_platform();
        let m = Mapping::uniform(&g, PeId::new(0), metrics(1e-4, 0.01, 1.0));
        let (q, s) = QosEvaluator::new(&p)
            .evaluate_with_schedule(&g, &m)
            .unwrap();
        assert_eq!(q.makespan, s.makespan());
        assert_eq!(s.intervals().len(), 3);
    }

    #[test]
    fn memory_violation_accumulates_overflows() {
        use clre_model::platform::{DvfsMode, PeType, Platform};
        let platform = Platform::builder()
            .pe_type(
                PeType::processor("tiny", 2.0, 0.3)
                    .with_dvfs_mode(DvfsMode::new("m", 1.0, 1.0e8))
                    .with_local_memory_bytes(1000.0),
            )
            .pes_of_type("tiny", 2)
            .unwrap()
            .build()
            .unwrap();
        let g = two_independent();
        let ev = QosEvaluator::new(&platform);
        // Fits: 600 + 300 on separate PEs.
        let fits = Mapping::new(
            vec![PeId::new(0), PeId::new(1)],
            vec![metrics(1e-4, 0.0, 1.0); 2],
            vec![TaskId::new(0), TaskId::new(1)],
        )
        .with_footprints(vec![600.0, 300.0]);
        assert_eq!(ev.memory_violation(&g, &fits), 0.0);
        // Overflows: 600 + 600 on one PE → 200/1000 = 0.2.
        let tight = Mapping::new(
            vec![PeId::new(0), PeId::new(0)],
            vec![metrics(1e-4, 0.0, 1.0); 2],
            vec![TaskId::new(0), TaskId::new(1)],
        )
        .with_footprints(vec![600.0, 600.0]);
        assert!((ev.memory_violation(&g, &tight) - 0.2).abs() < 1e-12);
        // Without footprints there is never a violation.
        let none = Mapping::uniform(&g, PeId::new(0), metrics(1e-4, 0.0, 1.0));
        assert_eq!(ev.memory_violation(&g, &none), 0.0);
    }

    #[test]
    fn errors_propagate() {
        let g = chain(2);
        let p = paper_platform();
        let bad = Mapping::new(
            vec![PeId::new(0), PeId::new(99)],
            vec![metrics(1e-4, 0.0, 1.0); 2],
            vec![TaskId::new(0), TaskId::new(1)],
        );
        assert!(QosEvaluator::new(&p).evaluate(&g, &bad).is_err());
    }
}

//! Append-only sweep ledger: per-cell memoization for the system-level
//! experiment grids.
//!
//! Every `(experiment, task-count, method)` grid cell of the system
//! sweeps is keyed, computed through the Campaign runner, and journalled
//! to a sidecar file as one self-contained line. A killed `experiments`
//! run restarted with the same `--ledger` file replays the finished
//! cells from the journal — bit-exact, since objectives round-trip as
//! IEEE-754 bit patterns — and resumes computing at the first missing
//! cell. `--halt-after-cells N` bounds how many cells one invocation may
//! compute; it is the deterministic stand-in for `kill -9` used by the
//! CI sweep-resume leg.
//!
//! The journal is tolerant of torn tails: a process killed mid-write
//! leaves at most one malformed final line, which the loader skips.
//! Re-recorded cells simply append; the latest occurrence of a key wins.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// First line of every ledger file.
pub const LEDGER_HEADER: &str = "clrearly-sweep v1";

/// Report line appended when a sweep stops early because the cell budget
/// ran out (see [`configure`]).
pub const HALT_LINE: &str = "# sweep halted: cell budget exhausted\n";

/// The memoized outcome of one grid cell: the front's objective vectors
/// (in front order) and the evaluation count that produced them.
#[derive(Debug, Clone, PartialEq)]
pub struct CellData {
    /// Fitness evaluations the cell's campaign spent.
    pub evaluations: usize,
    /// Objective vectors of the cell's final front, in front order.
    pub objectives: Vec<Vec<f64>>,
}

/// A sweep ledger bound to a sidecar journal file.
#[derive(Debug, Default)]
pub struct SweepLedger {
    path: Option<PathBuf>,
    cells: HashMap<String, CellData>,
    halt_after: Option<usize>,
    computed: usize,
    halted: bool,
}

impl SweepLedger {
    /// Opens (or creates) the journal at `path` and loads every finished
    /// cell. Malformed lines — at most the torn tail of a killed run —
    /// are skipped; for duplicate keys the latest line wins.
    ///
    /// # Errors
    ///
    /// I/O failure, or a first line that is not [`LEDGER_HEADER`] (the
    /// file is some other format — refuse rather than misparse).
    pub fn open(path: &Path) -> io::Result<Self> {
        let mut ledger = SweepLedger {
            path: Some(path.to_path_buf()),
            ..SweepLedger::default()
        };
        match fs::read_to_string(path) {
            Ok(text) => {
                let mut lines = text.lines();
                match lines.next() {
                    None => {}
                    Some(first) if first == LEDGER_HEADER => {
                        for line in lines {
                            if let Some((key, data)) = parse_cell(line) {
                                ledger.cells.insert(key, data);
                            }
                        }
                    }
                    Some(first) => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("not a sweep ledger (header {first:?})"),
                        ));
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(ledger)
    }

    /// Limits how many cells this ledger may *compute* (cached replays
    /// are free). Once the budget is spent, [`SweepLedger::cell_with`]
    /// returns `None` for uncached keys.
    #[must_use]
    pub fn with_halt_after(mut self, cells: usize) -> Self {
        self.halt_after = Some(cells);
        self
    }

    /// Whether a cell was refused because the compute budget ran out.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Number of cells computed (not replayed) through this ledger.
    pub fn computed(&self) -> usize {
        self.computed
    }

    /// The finished cell for `key`, if the journal has one.
    pub fn lookup(&self, key: &str) -> Option<&CellData> {
        self.cells.get(key)
    }

    /// Replays `key` from the journal, or computes it via `compute` and
    /// journals the result. Returns `None` — without computing — once
    /// the halt budget is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `key` contains whitespace (it must survive a
    /// whitespace-split journal line) or if the journal append fails.
    pub fn cell_with(&mut self, key: &str, compute: impl FnOnce() -> CellData) -> Option<CellData> {
        assert!(
            !key.contains(char::is_whitespace),
            "sweep cell key {key:?} must be whitespace-free"
        );
        if let Some(hit) = self.cells.get(key) {
            return Some(hit.clone());
        }
        if self.halt_after.is_some_and(|limit| self.computed >= limit) {
            self.halted = true;
            return None;
        }
        let data = compute();
        self.computed += 1;
        self.append(key, &data)
            .unwrap_or_else(|e| panic!("sweep ledger append failed: {e}"));
        self.cells.insert(key.to_owned(), data.clone());
        Some(data)
    }

    /// Appends one finished cell to the journal (writing the header
    /// first when the file is new or empty). In-memory ledgers (no
    /// path) skip the write.
    fn append(&self, key: &str, data: &CellData) -> io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            fs::create_dir_all(dir)?;
        }
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        if file.metadata()?.len() == 0 {
            writeln!(file, "{LEDGER_HEADER}")?;
        }
        writeln!(file, "{}", encode_cell(key, data))?;
        Ok(())
    }
}

/// One journal line: `cell <key> <evaluations> <points> <arity> <hex>*`
/// with every objective as an IEEE-754 bit pattern (exact round-trip).
fn encode_cell(key: &str, data: &CellData) -> String {
    let arity = data.objectives.first().map_or(0, Vec::len);
    let mut line = format!(
        "cell {key} {} {} {arity}",
        data.evaluations,
        data.objectives.len()
    );
    for point in &data.objectives {
        debug_assert_eq!(point.len(), arity, "ragged objective vectors");
        for &v in point {
            let _ = write!(line, " {:016x}", v.to_bits());
        }
    }
    line
}

fn parse_cell(line: &str) -> Option<(String, CellData)> {
    let mut tokens = line.split_whitespace();
    if tokens.next() != Some("cell") {
        return None;
    }
    let key = tokens.next()?.to_owned();
    let evaluations: usize = tokens.next()?.parse().ok()?;
    let points: usize = tokens.next()?.parse().ok()?;
    let arity: usize = tokens.next()?.parse().ok()?;
    let mut objectives = Vec::with_capacity(points);
    for _ in 0..points {
        let mut point = Vec::with_capacity(arity);
        for _ in 0..arity {
            let bits = u64::from_str_radix(tokens.next()?, 16).ok()?;
            point.push(f64::from_bits(bits));
        }
        objectives.push(point);
    }
    if tokens.next().is_some() {
        return None; // trailing garbage: treat the line as torn
    }
    Some((
        key,
        CellData {
            evaluations,
            objectives,
        },
    ))
}

static ACTIVE: Mutex<Option<SweepLedger>> = Mutex::new(None);

/// Activates a process-wide ledger at `path` for every subsequent
/// [`cell`] call; `halt_after` optionally bounds the number of cells the
/// process may compute before [`cell`] starts refusing work.
///
/// # Errors
///
/// As for [`SweepLedger::open`].
pub fn configure(path: &Path, halt_after: Option<usize>) -> io::Result<()> {
    let mut ledger = SweepLedger::open(path)?;
    ledger.halt_after = halt_after;
    *ACTIVE.lock().expect("sweep ledger poisoned") = Some(ledger);
    Ok(())
}

/// Deactivates the process-wide ledger (cells compute unmemoized again).
pub fn deactivate() {
    *ACTIVE.lock().expect("sweep ledger poisoned") = None;
}

/// Whether the active ledger refused a cell for lack of compute budget.
pub fn halted() -> bool {
    ACTIVE
        .lock()
        .expect("sweep ledger poisoned")
        .as_ref()
        .is_some_and(SweepLedger::halted)
}

/// Runs one grid cell through the active ledger: replay if journalled,
/// compute-and-journal otherwise, `None` once the halt budget is spent.
/// Without an active ledger this is a plain passthrough to `compute`.
pub fn cell(key: &str, compute: impl FnOnce() -> CellData) -> Option<CellData> {
    let mut guard = ACTIVE.lock().expect("sweep ledger poisoned");
    match guard.as_mut() {
        Some(ledger) => ledger.cell_with(key, compute),
        None => {
            drop(guard); // don't serialize unledgered runs
            Some(compute())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seed: f64) -> CellData {
        CellData {
            evaluations: 144,
            objectives: vec![vec![seed, 0.25], vec![seed * 0.5, 0.75]],
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("clre-sweep-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn cells_roundtrip_through_the_journal() {
        let path = temp_path("roundtrip.sweep");
        let _ = fs::remove_file(&path);
        let mut ledger = SweepLedger::open(&path).unwrap();
        let a = sample(1.5);
        let b = CellData {
            evaluations: 7,
            objectives: Vec::new(),
        };
        assert_eq!(ledger.cell_with("t/a", || a.clone()), Some(a.clone()));
        assert_eq!(ledger.cell_with("t/b", || b.clone()), Some(b.clone()));
        assert_eq!(ledger.computed(), 2);

        let reopened = SweepLedger::open(&path).unwrap();
        assert_eq!(reopened.lookup("t/a"), Some(&a));
        assert_eq!(reopened.lookup("t/b"), Some(&b));
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.starts_with(LEDGER_HEADER));
    }

    #[test]
    fn cached_cells_do_not_recompute() {
        let path = temp_path("cached.sweep");
        let _ = fs::remove_file(&path);
        let mut ledger = SweepLedger::open(&path).unwrap();
        ledger.cell_with("t/a", || sample(2.0)).unwrap();
        let mut reopened = SweepLedger::open(&path).unwrap();
        let hit = reopened
            .cell_with("t/a", || panic!("must replay, not recompute"))
            .unwrap();
        assert_eq!(hit, sample(2.0));
        assert_eq!(reopened.computed(), 0);
    }

    #[test]
    fn torn_tail_and_duplicates_are_handled() {
        let path = temp_path("torn.sweep");
        let mut text = format!("{LEDGER_HEADER}\n");
        text.push_str(&encode_cell("t/a", &sample(1.0)));
        text.push('\n');
        text.push_str(&encode_cell("t/a", &sample(9.0)));
        text.push('\n');
        // A kill mid-write leaves a truncated final line.
        let torn = encode_cell("t/b", &sample(3.0));
        text.push_str(&torn[..torn.len() / 2]);
        fs::write(&path, text).unwrap();

        let ledger = SweepLedger::open(&path).unwrap();
        assert_eq!(ledger.lookup("t/a"), Some(&sample(9.0)), "latest wins");
        assert_eq!(ledger.lookup("t/b"), None, "torn tail skipped");
    }

    #[test]
    fn halt_budget_refuses_uncached_cells_only() {
        let path = temp_path("halt.sweep");
        let _ = fs::remove_file(&path);
        let mut warm = SweepLedger::open(&path).unwrap();
        warm.cell_with("t/a", || sample(1.0)).unwrap();

        let mut ledger = SweepLedger::open(&path).unwrap().with_halt_after(1);
        assert!(!ledger.halted());
        // Cached replay is free; one compute fits the budget; then halt.
        assert!(ledger.cell_with("t/a", || panic!("cached")).is_some());
        assert!(ledger.cell_with("t/b", || sample(2.0)).is_some());
        assert!(ledger.cell_with("t/c", || sample(3.0)).is_none());
        assert!(ledger.halted());
        // Cached keys keep replaying even after the halt.
        assert!(ledger.cell_with("t/b", || panic!("cached")).is_some());
    }

    #[test]
    fn rejects_foreign_files() {
        let path = temp_path("foreign.sweep");
        fs::write(&path, "not a ledger\n").unwrap();
        assert!(SweepLedger::open(&path).is_err());
    }

    #[test]
    fn keys_must_be_whitespace_free() {
        let mut ledger = SweepLedger::default();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ledger.cell_with("bad key", || sample(0.0))
        }));
        assert!(err.is_err());
    }
}

//! Island-model determinism benchmark: proves the [`EvalBackend`]
//! abstraction's core claim — fronts are bit-identical no matter where
//! evaluation batches run — on the island-expanded campaign plans.
//!
//! For fcCLR and the seeded proposed flow, each expanded to 1, 2 and 4
//! islands, the same campaign runs three times:
//!
//! 1. **inprocess** — the plain executor, the reference digest;
//! 2. **threads** — the in-process [`ThreadBackend`] over the remote
//!    evaluation grammar;
//! 3. **subprocess** — supervised `clre-exec-worker` children, when the
//!    worker binary can be located (a missing binary degrades the report,
//!    never fakes it).
//!
//! Every cell reports the three FNV-1a front digests and whether they
//! agree. The `subprocess_exercised` flag comes from the backend's own
//! [`BackendHealth`] item counter — the report refuses to claim
//! subprocess coverage unless child processes actually evaluated items.
//!
//! [`islands`] returns the report as JSON (hand-formatted — the
//! workspace deliberately carries no serde implementation) and writes it
//! to `BENCH_islands.json` for CI to archive; `experiments perfgate`
//! accepts that file and gates both the digest agreement and the
//! campaign wall-clock trend.
//!
//! [`EvalBackend`]: clre_exec::EvalBackend
//! [`ThreadBackend`]: clre_exec::ThreadBackend
//! [`BackendHealth`]: clre_exec::BackendHealth

use std::time::Instant;

use clre::methodology::ClrEarly;
use clre::remote::BackendChoice;
use clre::{AppSpec, CampaignPlan, Scenario};
use clre_serve::server::front_digest;

use crate::exec_config::ExecConfig;
use crate::RunScale;

/// Task count of the island workload (small: nine campaigns run per
/// report, each three times).
const TASKS: usize = 12;
/// Application seed (distinct from the sweep experiments and cachebench
/// so ledger cells never alias this workload).
const APP_SEED: u64 = 113;
/// Island counts each plan is expanded to.
const ISLAND_COUNTS: [usize; 3] = [1, 2, 4];

/// One campaign execution: front digest, front size, wall-clock µs.
struct RunStats {
    digest: u64,
    points: usize,
    micros: u64,
}

fn run_once(
    config: &ExecConfig,
    app: &AppSpec,
    scenario: Scenario,
    plan: &CampaignPlan,
    budget: &clre::methodology::StageBudget,
) -> RunStats {
    let (platform, graph) = app.build().expect("app builds");
    let dse = config.apply_remote(
        ClrEarly::new(&graph, &platform).expect("tDSE succeeds"),
        app.clone(),
        scenario,
    );
    let t0 = Instant::now();
    let front = dse.run(plan, budget).expect("campaign runs");
    RunStats {
        digest: front_digest(&front),
        points: front.front().len(),
        micros: t0.elapsed().as_micros() as u64,
    }
}

/// Runs the benchmark at `scale` and returns the JSON report (also
/// written to `BENCH_islands.json` in the working directory; a write
/// failure is reported inside the JSON rather than aborting the bench).
/// `config` contributes the worker count; the backends under test are
/// built here.
pub fn islands(scale: RunScale, config: &ExecConfig) -> String {
    let budget = scale.budget();
    let workers = config.workers();
    let app = AppSpec::Synthetic {
        tasks: TASKS,
        seed: APP_SEED,
    };
    let scenario = Scenario::default();

    let inprocess = ExecConfig::new().with_workers(workers);
    let threads = ExecConfig::new()
        .with_workers(workers)
        .with_backend(&BackendChoice::Threads)
        .expect("thread backend always builds");
    // One subprocess pool shared across every cell: its health counters
    // accumulate over the whole report, which is what the honesty flag
    // reads. A missing worker binary is reported, not papered over.
    let subprocess = ExecConfig::new()
        .with_workers(workers)
        .with_backend(&BackendChoice::Subprocess { command: None })
        .ok();

    let grid = [
        ("fcCLR", CampaignPlan::fc()),
        ("proposed", CampaignPlan::proposed()),
    ];
    let mut cells = Vec::new();
    let mut all_match = true;
    for (label, base) in &grid {
        for &n in &ISLAND_COUNTS {
            let plan = base.islands(n);
            let reference = run_once(&inprocess, &app, scenario, &plan, &budget);
            let threaded = run_once(&threads, &app, scenario, &plan, &budget);
            let sub = subprocess
                .as_ref()
                .map(|cfg| run_once(cfg, &app, scenario, &plan, &budget));
            let digest_match = threaded.digest == reference.digest
                && sub.as_ref().is_none_or(|s| s.digest == reference.digest);
            all_match &= digest_match;
            cells.push(format!(
                "    {{\"plan\": \"{label}\", \"islands\": {n}, \
                 \"inprocess_digest\": \"{:016x}\", \"threads_digest\": \"{:016x}\", \
                 \"subprocess_digest\": {}, \"digest_match\": {digest_match}, \
                 \"points\": {}, \"campaign_us\": {}}}",
                reference.digest,
                threaded.digest,
                sub.as_ref()
                    .map_or("null".to_owned(), |s| format!("\"{:016x}\"", s.digest)),
                reference.points,
                reference.micros,
            ));
        }
    }

    // The honesty flag: subprocess coverage is only claimed when the
    // backend's own counters say child processes evaluated items.
    let exercised = subprocess
        .as_ref()
        .and_then(ExecConfig::backend_health)
        .is_some_and(|h| h.items > 0);

    let json = format!(
        "{{\n  \"bench\": \"islands\",\n  \"application_tasks\": {TASKS},\n  \
         \"population\": {},\n  \"generations\": {},\n  \"workers\": {workers},\n  \
         \"subprocess_available\": {},\n  \"subprocess_exercised\": {exercised},\n  \
         \"cells\": [\n{}\n  ],\n  \"all_digests_match\": {all_match}\n}}\n",
        budget.population,
        budget.generations,
        subprocess.is_some(),
        cells.join(",\n"),
    );
    if let Err(e) = std::fs::write("BENCH_islands.json", &json) {
        return format!("{json}# write failed: {e}\n");
    }
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn island_digests_agree_across_backends() {
        let json = islands(RunScale::Tiny, &ExecConfig::new().with_workers(2));
        let _ = std::fs::remove_file("BENCH_islands.json");
        assert!(json.contains("\"bench\": \"islands\""));
        assert!(
            json.contains("\"all_digests_match\": true"),
            "backend placement changed a front:\n{json}"
        );
        // One cell per (plan, island count).
        assert_eq!(json.matches("\"digest_match\": true").count(), 6, "{json}");
        // Honesty: subprocess coverage is never claimed without a
        // located worker binary.
        if json.contains("\"subprocess_available\": false") {
            assert!(json.contains("\"subprocess_exercised\": false"), "{json}");
        }
    }
}

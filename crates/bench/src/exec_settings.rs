//! Process-wide execution settings for the experiment harness.
//!
//! The experiment functions all share the signature `fn(RunScale) ->
//! String` so the `experiments` binary, the integration tests and the
//! Criterion benches can drive them interchangeably. Worker count and
//! telemetry therefore travel through this module rather than through
//! every signature: the binary calls [`set_workers`] / [`enable_trace`]
//! once at startup, and each experiment builds its [`ClrEarly`] driver
//! with [`executor`].
//!
//! Parallelism never changes results — the engine merges worker output
//! in submission order (see `clre-exec`) — so experiments stay
//! bit-reproducible no matter what this module is set to.
//!
//! [`ClrEarly`]: clre::methodology::ClrEarly

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use clre::methodology::ClrEarly;
use clre::EvalCache;
use clre_exec::{ExecPool, Executor, RunTelemetry, TelemetrySink};

/// Configured worker count; 0 means "auto" (available parallelism).
static WORKERS: AtomicUsize = AtomicUsize::new(0);

fn sink_slot() -> &'static Mutex<Option<TelemetrySink>> {
    static SLOT: OnceLock<Mutex<Option<TelemetrySink>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

fn cache_slot() -> &'static Mutex<Option<Arc<EvalCache>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<EvalCache>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Sets the worker count used by every subsequently built [`executor`].
/// Zero restores the default (available parallelism).
pub fn set_workers(n: usize) {
    WORKERS.store(n, Ordering::Relaxed);
}

/// The effective worker count: the configured value, or the machine's
/// available parallelism when unconfigured.
pub fn workers() -> usize {
    match WORKERS.load(Ordering::Relaxed) {
        0 => ExecPool::auto().workers(),
        n => n,
    }
}

/// Installs (and returns) a fresh process-wide telemetry sink. Every
/// executor built by [`executor`] after this call feeds it, so one sink
/// collects the trace across all stages of an experiment.
pub fn enable_trace() -> TelemetrySink {
    let sink = RunTelemetry::sink();
    *sink_slot().lock().expect("trace sink poisoned") = Some(sink.clone());
    sink
}

/// Installs (and returns) a fresh process-wide evaluation cache. Every
/// driver passed through [`apply`] after this call shares it, so task
/// analyses and genome fitness memoize across the cells of a sweep.
/// Cached and uncached runs are bit-identical; only the wall clock and
/// the hit/miss telemetry differ.
pub fn enable_cache() -> Arc<EvalCache> {
    let cache = EvalCache::shared();
    *cache_slot().lock().expect("cache slot poisoned") = Some(Arc::clone(&cache));
    cache
}

/// Removes the process-wide evaluation cache (drivers built afterwards
/// run uncached).
pub fn disable_cache() {
    *cache_slot().lock().expect("cache slot poisoned") = None;
}

/// The process-wide evaluation cache, if one is enabled.
pub fn cache() -> Option<Arc<EvalCache>> {
    cache_slot().lock().expect("cache slot poisoned").clone()
}

/// An [`Executor`] honoring the current settings. Stage labels are
/// applied downstream by the methodology driver.
pub fn executor() -> Executor {
    let exec = Executor::new(ExecPool::new(workers()));
    match sink_slot().lock().expect("trace sink poisoned").as_ref() {
        Some(sink) => exec.with_telemetry(sink.clone()),
        None => exec,
    }
}

/// Applies every process-wide setting to a freshly built driver: the
/// worker pool + telemetry executor, and the evaluation cache when one
/// is enabled. All experiments funnel their [`ClrEarly`] construction
/// through this so `--workers`, `--trace` and `--cache` need no
/// per-experiment plumbing.
pub fn apply(dse: ClrEarly<'_>) -> ClrEarly<'_> {
    let dse = dse.with_executor(executor());
    match cache() {
        Some(cache) => dse.with_cache(cache),
        None => dse,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settings_flow_into_executors() {
        // Default: auto (≥ 1), no telemetry.
        assert!(workers() >= 1);
        assert!(executor().telemetry().is_none());

        set_workers(3);
        assert_eq!(executor().workers(), 3);

        let sink = enable_trace();
        let exec = executor();
        assert!(exec.telemetry().is_some());
        let _ = exec.evaluate_batch(0, &[1u8, 2, 3], |x| x + 1);
        assert_eq!(sink.lock().unwrap().total_evaluations(), 3);

        set_workers(0);
        assert!(workers() >= 1);
    }
}

//! Task-level experiments: Fig. 6(a), Fig. 6(b), Table IV and Fig. 9.

use clre::apps;
use clre::tdse::{build_library, candidates_for_type, TdseConfig};
use clre_model::qos::ObjectiveSet;
use clre_model::{PeTypeId, TaskGraph, TaskType, TaskTypeId};
use clre_moea::pareto::non_dominated_indices;
use clre_profile::SyntheticCharacterizer;

use crate::report::{series, Table};

/// A single-task application over one synthetic task type, used by the
/// Fig. 6 experiments.
fn single_task_app(platform: &clre_model::Platform, seed: u64) -> TaskGraph {
    let ch = SyntheticCharacterizer::new(seed);
    let mut ty = TaskType::new("matmul");
    for imp in ch.impls_for_type(0, platform) {
        ty = ty.with_impl(imp);
    }
    TaskGraph::builder("single", 10.0e-3)
        .task_type(ty)
        .task("t0", "matmul")
        .expect("type registered")
        .build()
        .expect("valid single-task graph")
}

/// Fig. 6(a): task-level Pareto fronts (average execution time vs error
/// probability) for the three processor DVFS modes, with the full CLR
/// catalog explored at each mode.
///
/// Expected shape: the nominal mode's front sits left/low (fast and
/// reliable), the undervolted mode's front right/high, and each mode
/// spreads into multiple points because of the reliability methods.
pub fn fig6a() -> String {
    let platform = apps::sobel_platform();
    let graph = single_task_app(&platform, 42);
    let cands = candidates_for_type(&graph, &platform, TaskTypeId::new(0), &TdseConfig::new())
        .expect("task-level enumeration succeeds");
    let proc = platform
        .pe_type_by_name("embedded-proc")
        .expect("platform has the processor type");
    let mode_names: Vec<String> = platform
        .pe_type(proc)
        .expect("valid type")
        .dvfs_modes()
        .iter()
        .map(|m| m.name().to_owned())
        .collect();
    let mut out = String::from("# series: mode, avg-exec-time[us], error-prob[%]\n");
    for (mode_idx, name) in mode_names.iter().enumerate() {
        let points: Vec<Vec<f64>> = cands
            .iter()
            .filter(|c| c.pe_type == proc && c.dvfs.index() == mode_idx)
            .map(|c| vec![c.metrics.avg_exec_time, c.metrics.error_prob])
            .collect();
        let front: Vec<Vec<f64>> = non_dominated_indices(&points)
            .into_iter()
            .map(|i| vec![points[i][0] * 1.0e6, points[i][1] * 100.0])
            .collect();
        out.push_str(&series(name, &front));
    }
    out
}

/// Fig. 6(b): task-level Pareto fronts under increasing implicit
/// system-software masking (0 / 5 / 10 / 20 %), at the nominal mode.
///
/// Expected shape: higher implicit masking pushes the whole front down
/// (lower error probability at equal execution time).
pub fn fig6b() -> String {
    let platform = apps::sobel_platform();
    let graph = single_task_app(&platform, 42);
    let proc = platform
        .pe_type_by_name("embedded-proc")
        .expect("platform has the processor type");
    let mut out = String::from("# series: implicit-masking, avg-exec-time[us], error-prob[%]\n");
    for mask in [0.0, 0.05, 0.10, 0.20] {
        let cfg = TdseConfig::new().with_implicit_masking(mask);
        let cands = candidates_for_type(&graph, &platform, TaskTypeId::new(0), &cfg)
            .expect("task-level enumeration succeeds");
        let points: Vec<Vec<f64>> = cands
            .iter()
            .filter(|c| c.pe_type == proc && c.dvfs.index() == 0)
            .map(|c| vec![c.metrics.avg_exec_time, c.metrics.error_prob])
            .collect();
        let front: Vec<Vec<f64>> = non_dominated_indices(&points)
            .into_iter()
            .map(|i| vec![points[i][0] * 1.0e6, points[i][1] * 100.0])
            .collect();
        out.push_str(&series(&format!("ImplMask={:.0}%", mask * 100.0), &front));
    }
    out
}

/// The six cumulative objective sets of Table IV with their row labels.
pub fn table4_sets() -> Vec<(&'static str, ObjectiveSet)> {
    vec![
        ("I: AvgExT", ObjectiveSet::set_i()),
        ("II: +ErrProb", ObjectiveSet::set_ii()),
        ("III: +MTTF", ObjectiveSet::set_iii()),
        ("IV: +Energy", ObjectiveSet::set_iv()),
        ("V: +Power", ObjectiveSet::set_v()),
        ("VI: +PeakTemp", ObjectiveSet::set_vi()),
    ]
}

/// Table IV: number of Pareto-front design points per Sobel task type for
/// objective sets I–VI on the 2-PE-type platform.
///
/// Expected shape: row I has one point per PE type; counts grow until
/// set III and stay constant afterwards (MTTF/energy/power/temperature
/// are derived from the same time/power factors).
pub fn table4() -> String {
    let platform = apps::sobel_platform();
    let graph = apps::sobel(&platform, 42).expect("sobel builds");
    let mut table = Table::new(
        std::iter::once("Objectives".to_owned())
            .chain(apps::SOBEL_TYPES.iter().map(|s| (*s).to_owned()))
            .collect(),
    );
    for (label, objs) in table4_sets() {
        let lib = build_library(&graph, &platform, &TdseConfig::new().with_objectives(objs))
            .expect("library builds");
        let mut row = vec![label.to_owned()];
        for ty in 0..apps::SOBEL_TYPES.len() {
            row.push(lib.pareto_count(TaskTypeId::new(ty as u32)).to_string());
        }
        table.row(row);
    }
    table.to_string()
}

/// The three task-level DSE configurations of Fig. 9 / Fig. 10 /
/// Table VII: increasingly many task-level objectives produce increasingly
/// large Pareto libraries.
///
/// `tDSE_1` optimizes average execution time + error probability (the
/// paper's stated tDSE_1); `tDSE_2` adds MTTF (Table IV set III);
/// `tDSE_3` further adds the fault-free minimum execution time `MinExT`
/// (a Table II metric). Energy/power/temperature are *not* used here
/// because under this crate's characterization model they are fully
/// determined by the time/power factors and add no Pareto points — the
/// constancy the paper itself observes after Table IV's row III.
pub fn tdse_runs() -> Vec<(&'static str, ObjectiveSet)> {
    vec![
        ("tDSE_1", ObjectiveSet::set_ii()),
        ("tDSE_2", ObjectiveSet::set_iii()),
        (
            "tDSE_3",
            ObjectiveSet::set_iii().with_objective(clre_model::Objective::MinExecTime),
        ),
    ]
}

/// Fig. 9: number of task-level Pareto implementations per synthetic task
/// type (`SYN_0`…`SYN_9`) for the three tDSE configurations.
///
/// Expected shape: counts grow monotonically from tDSE_1 to tDSE_3 for
/// every type.
pub fn fig9() -> String {
    let (platform, graph) = apps::synthetic_app(10, 7).expect("synthetic app builds");
    let mut table = Table::new(
        std::iter::once("run".to_owned())
            .chain((0..10).map(|i| format!("SYN_{i}")))
            .collect(),
    );
    for (label, objs) in tdse_runs() {
        let lib = build_library(&graph, &platform, &TdseConfig::new().with_objectives(objs))
            .expect("library builds");
        let mut row = vec![label.to_owned()];
        for ty in 0..10 {
            row.push(lib.pareto_count(TaskTypeId::new(ty)).to_string());
        }
        table.row(row);
    }
    table.to_string()
}

/// Convenience for tests: Pareto-library sizes per type for one run.
pub fn library_sizes(objs: &ObjectiveSet) -> Vec<usize> {
    let (platform, graph) = apps::synthetic_app(10, 7).expect("synthetic app builds");
    let lib = build_library(
        &graph,
        &platform,
        &TdseConfig::new().with_objectives(objs.clone()),
    )
    .expect("library builds");
    (0..graph.task_types().len())
        .map(|ty| lib.pareto_count(TaskTypeId::new(ty as u32)))
        .collect()
}

/// Checkpoint-interval study (after Das et al. CASES'13, the paper's
/// ref \[16\]): sweeping the number of inter-checkpoint intervals for one
/// task at the undervolted operating point. More checkpoints cut the
/// error probability and bound re-execution, but the added overhead time
/// raises the PE's utilization and therefore *degrades the system MTTF* —
/// the adverse lifetime effect the paper cites as motivation for joint
/// optimization.
pub fn chkpt() -> String {
    use clre::tdse::evaluate_candidate;
    use clre_model::reliability::{AswMethod, ClrConfig, HwMethod, SswMethod};
    use clre_model::{PeId, TaskId};
    use clre_profile::ProfileModel;
    use clre_sched::{Mapping, QosEvaluator};

    let platform = apps::sobel_platform();
    let graph = single_task_app(&platform, 42);
    let proc = platform
        .pe_type_by_name("embedded-proc")
        .expect("platform has the processor type");
    let pe_type = platform.pe_type(proc).expect("valid type");
    let mode = &pe_type.dvfs_modes()[2]; // undervolted: high fault rate
    let imp = &graph.task_types()[0].impls()[0];
    let profile = ProfileModel::default();
    let evaluator = QosEvaluator::new(&platform);

    let mut table = Table::new(vec![
        "intervals".into(),
        "MinExT[us]".into(),
        "AvgExT[us]".into(),
        "ErrProb[%]".into(),
        "MTTF[h]".into(),
    ]);
    for intervals in 1..=6u32 {
        let ssw = if intervals == 1 {
            SswMethod::Retry
        } else {
            SswMethod::Checkpoint { intervals }
        };
        let clr = ClrConfig::new(HwMethod::None, ssw, AswMethod::None);
        let metrics =
            evaluate_candidate(imp, pe_type, mode, &clr, &profile, None).expect("analyzable");
        let mapping = Mapping::new(vec![PeId::new(0)], vec![metrics], vec![TaskId::new(0)]);
        let qos = evaluator.evaluate(&graph, &mapping).expect("valid mapping");
        table.row(vec![
            intervals.to_string(),
            format!("{:.1}", metrics.min_exec_time * 1.0e6),
            format!("{:.1}", metrics.avg_exec_time * 1.0e6),
            format!("{:.3}", metrics.error_prob * 100.0),
            format!("{:.0}", qos.mttf / 3600.0),
        ]);
    }
    table.to_string()
}

/// Exposes the sobel-platform processor PE type id (used by benches).
pub fn sobel_proc_type() -> PeTypeId {
    apps::sobel_platform()
        .pe_type_by_name("embedded-proc")
        .expect("platform has the processor type")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6a_has_three_ordered_series() {
        let out = fig6a();
        for mode in ["1.2V/900MHz", "1.1V/600MHz", "1.06V/300MHz"] {
            assert!(out.contains(mode), "missing series {mode}");
        }
        // The nominal mode's fastest point beats the slow mode's fastest.
        let first_time = |mode: &str| -> f64 {
            out.lines()
                .find(|l| l.starts_with(mode))
                .and_then(|l| l.split(',').nth(1))
                .and_then(|v| v.parse::<f64>().ok())
                .expect("series row present")
        };
        assert!(first_time("1.2V/900MHz") < first_time("1.06V/300MHz"));
    }

    #[test]
    fn fig6b_masking_lowers_error_floor() {
        let out = fig6b();
        // Minimum error across the front must fall as masking rises.
        let min_err = |tag: &str| -> f64 {
            out.lines()
                .filter(|l| l.starts_with(tag))
                .filter_map(|l| l.split(',').nth(2))
                .filter_map(|v| v.parse::<f64>().ok())
                .fold(f64::MAX, f64::min)
        };
        assert!(min_err("ImplMask=20%") < min_err("ImplMask=0%"));
    }

    #[test]
    fn table4_row_one_is_pe_type_count() {
        let out = table4();
        let row1 = out
            .lines()
            .find(|l| l.starts_with("I: AvgExT"))
            .expect("row I present");
        let counts: Vec<usize> = row1
            .split_whitespace()
            .filter_map(|t| t.parse().ok())
            .collect();
        assert_eq!(counts, vec![2, 2, 2, 2]);
    }

    #[test]
    fn table4_counts_stabilize_after_set_iii() {
        let platform = apps::sobel_platform();
        let graph = apps::sobel(&platform, 42).unwrap();
        let counts: Vec<Vec<usize>> = table4_sets()
            .into_iter()
            .map(|(_, objs)| {
                let lib =
                    build_library(&graph, &platform, &TdseConfig::new().with_objectives(objs))
                        .unwrap();
                (0u32..4)
                    .map(|ty| lib.pareto_count(TaskTypeId::new(ty)))
                    .collect::<Vec<usize>>()
            })
            .collect();
        assert_eq!(counts[2], counts[3], "set IV should equal set III");
        assert_eq!(counts[3], counts[4], "set V should equal set IV");
        assert_eq!(counts[4], counts[5], "set VI should equal set V");
        // And II strictly grows over I for every type.
        for (c1, c0) in counts[1].iter().zip(&counts[0]) {
            assert!(c1 > c0);
        }
    }

    #[test]
    fn chkpt_study_shows_lifetime_tradeoff() {
        let out = chkpt();
        let rows: Vec<Vec<f64>> = out
            .lines()
            .skip(2)
            .map(|l| {
                l.split_whitespace()
                    .filter_map(|v| v.parse().ok())
                    .collect()
            })
            .collect();
        assert_eq!(rows.len(), 6);
        // Static overhead (MinExT) grows with checkpoint count.
        assert!(rows[5][1] > rows[1][1]);
        // And the MTTF of the k=6 configuration is below the k=2 one:
        // more overhead time ⇒ more PE stress ⇒ shorter lifetime.
        assert!(
            rows[5][4] < rows[1][4],
            "MTTF should fall with checkpoints: {rows:?}"
        );
    }

    #[test]
    fn fig9_counts_grow_with_objectives() {
        let runs = tdse_runs();
        let s1 = library_sizes(&runs[0].1);
        let s2 = library_sizes(&runs[1].1);
        let s3 = library_sizes(&runs[2].1);
        assert_eq!(s1.len(), 10);
        for ((a, b), c) in s1.iter().zip(&s2).zip(&s3) {
            assert!(a <= b && b <= c, "library sizes must be monotone");
        }
        assert!(s2.iter().sum::<usize>() > s1.iter().sum::<usize>());
        assert!(
            s3.iter().sum::<usize>() > s2.iter().sum::<usize>(),
            "tDSE_3 must strictly grow over tDSE_2: {s2:?} vs {s3:?}"
        );
    }
}

//! MOEA selection-kernel benchmark: times the flat-buffer kernels of
//! `clre-moea` against the naive algorithms they replaced, on synthetic
//! point clouds at N ∈ {100, 400, 1600} × M ∈ {2, 4}.
//!
//! Four kernels are measured per (N, M) cell:
//!
//! 1. **non-dominated sort** — ENS-SS ([`kernels::ens_non_dominated_sort`])
//!    vs the classic Deb peeling sort ([`kernels::deb_non_dominated_sort`],
//!    retained as the oracle). The two must return identical fronts —
//!    the report carries `fronts_identical` and a speedup claim without
//!    it is meaningless;
//! 2. **crowding distance** over the first front
//!    ([`kernels::crowding_distance_indexed`]);
//! 3. **SPEA2 truncation** to half the cloud — cached distance matrix
//!    ([`kernels::spea2_truncate`]) vs the per-round recomputation
//!    ([`kernels::spea2_truncate_naive`]); the naive oracle is
//!    O(rounds·n²·log n), so it is *timed* only up to a scale-dependent
//!    size cap — above it, a seeded 200-point subsample still runs both
//!    routines (untimed) so `truncation_identical` reports a real
//!    equivalence check in every cell, never a vacuous `true`;
//! 4. **hypervolume** — the 2-D sweep on the full cloud for M = 2, the
//!    WFG recursion on a capped first-front subset for M = 4 (WFG is
//!    exponential in the worst case; the cap mirrors the tens-of-points
//!    fronts the DSE actually produces);
//! 5. **incremental distance maintenance** — a survivor/offspring turnover
//!    is simulated (half the rows survive, half are fresh) and the
//!    incremental rebuild ([`DistanceMatrix::refill_with_tail`] over the
//!    compacted survivor block) is timed against the full
//!    [`DistanceMatrix::refill`] (`dist_update_us` vs `dist_refill_us`),
//!    plus the amortized truncation path (`truncate_incremental_us` =
//!    incremental rebuild + truncation to half). `dist_identical` checks
//!    both `refill_with_tail` and [`DistanceMatrix::update_rows`]
//!    bit-equal the full rebuild.
//!
//! Clouds are quantized so they contain duplicates and ties (the
//! hard case for order-sensitive kernels) plus a sprinkling of
//! constraint-violating points to exercise constrained dominance.
//! Timings are min-of-reps wall clock. [`moea_kernels`] returns the
//! report as JSON (hand-formatted — the workspace deliberately carries
//! no serde implementation) and writes it to `BENCH_moea_kernels.json`
//! for CI to archive as a perf-trajectory artifact.

use std::time::Instant;

use clre_moea::hypervolume::hypervolume_matrix;
use clre_moea::kernels;
use clre_moea::matrix::DistanceMatrix;
use clre_moea::ObjectiveMatrix;

use crate::RunScale;

/// The benchmarked cloud sizes.
const SIZES: [usize; 3] = [100, 400, 1600];
/// The benchmarked objective counts.
const DIMS: [usize; 2] = [2, 4];
/// First-front cap for the M = 4 WFG hypervolume case.
const HV_WFG_CAP: usize = 24;
/// Size of the seeded truncation-oracle subsample used above the naive
/// timing cap.
const SUBSAMPLE_ORACLE_POINTS: usize = 200;

/// Timing repetitions and the naive-truncation size cap at each scale.
fn params(scale: RunScale) -> (u32, usize) {
    match scale {
        // The naive truncation oracle is the one quadratic-per-round
        // cost that gets genuinely slow; keep its cap low in test runs.
        RunScale::Tiny => (2, 100),
        RunScale::Smoke => (3, 400),
        RunScale::Paper => (5, 400),
    }
}

/// Minimum wall-clock microseconds of `reps` runs of `f`; returns the
/// last result too so callers can cross-check outputs.
fn time_min<R>(reps: u32, mut f: impl FnMut() -> R) -> (u64, R) {
    let mut best = u64::MAX;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_micros() as u64);
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// A deterministic quantized cloud: values on a 64-step lattice (many
/// ties), every 7th row duplicating an earlier row, every 11th point
/// carrying a positive constraint violation.
fn cloud(n: usize, m: usize, seed: u64) -> (ObjectiveMatrix, Vec<f64>) {
    let mut state = seed | 1;
    let mut points = ObjectiveMatrix::with_capacity(m, n);
    let mut row = vec![0.0f64; m];
    for i in 0..n {
        if i % 7 == 3 && i >= 7 {
            let dup = (xorshift(&mut state) as usize) % i;
            row.copy_from_slice(points.row(dup));
        } else {
            for v in row.iter_mut() {
                *v = (xorshift(&mut state) % 64) as f64 * 0.25;
            }
        }
        points.push_row(&row);
    }
    let violations: Vec<f64> = (0..n)
        .map(|i| {
            if i % 11 == 5 {
                0.5 + (i % 3) as f64
            } else {
                0.0
            }
        })
        .collect();
    (points, violations)
}

/// One (N, M) cell of the report.
struct Cell {
    n: usize,
    m: usize,
    sort_naive_us: u64,
    sort_ens_us: u64,
    fronts_identical: bool,
    crowding_us: u64,
    truncate_cached_us: u64,
    truncate_naive_us: Option<u64>,
    truncation_identical: bool,
    /// Points the truncation oracle actually compared (the full cloud
    /// below the cap, the seeded subsample above it).
    truncation_oracle_points: usize,
    hv_us: u64,
    hv_points: usize,
    /// Full distance-matrix rebuild after a half-turnover.
    dist_refill_us: u64,
    /// Incremental rebuild of the same matrix (cached survivor tail).
    dist_update_us: u64,
    /// Incremental rebuild + truncation to half — the amortized
    /// per-generation selection-distance path.
    truncate_incremental_us: u64,
    /// `refill_with_tail` and `update_rows` both bit-equal the full
    /// rebuild.
    dist_identical: bool,
}

impl Cell {
    fn json(&self) -> String {
        let (naive_us, speedup) = match self.truncate_naive_us {
            Some(us) => (
                us.to_string(),
                format!("{:.2}", us as f64 / self.truncate_cached_us.max(1) as f64),
            ),
            None => ("null".to_owned(), "null".to_owned()),
        };
        format!(
            "{{\"n\": {}, \"m\": {}, \"sort_naive_us\": {}, \"sort_ens_us\": {}, \
             \"sort_speedup\": {:.2}, \"fronts_identical\": {}, \"crowding_us\": {}, \
             \"truncate_cached_us\": {}, \"truncate_naive_us\": {}, \
             \"truncate_speedup\": {}, \"truncation_identical\": {}, \
             \"truncation_oracle_points\": {}, \"hv_us\": {}, \"hv_points\": {}, \
             \"dist_refill_us\": {}, \"dist_update_us\": {}, \"dist_speedup\": {:.2}, \
             \"truncate_incremental_us\": {}, \"dist_identical\": {}}}",
            self.n,
            self.m,
            self.sort_naive_us,
            self.sort_ens_us,
            self.sort_naive_us as f64 / self.sort_ens_us.max(1) as f64,
            self.fronts_identical,
            self.crowding_us,
            self.truncate_cached_us,
            naive_us,
            speedup,
            self.truncation_identical,
            self.truncation_oracle_points,
            self.hv_us,
            self.hv_points,
            self.dist_refill_us,
            self.dist_update_us,
            self.dist_refill_us as f64 / self.dist_update_us.max(1) as f64,
            self.truncate_incremental_us,
            self.dist_identical,
        )
    }
}

fn bench_cell(n: usize, m: usize, reps: u32, naive_truncate_cap: usize) -> Cell {
    let (points, violations) = cloud(n, m, 0x5EED_0000 + (n as u64) * 8 + m as u64);

    // 1. Non-dominated sort: naive oracle vs ENS.
    let (sort_naive_us, naive_fronts) = time_min(reps, || {
        kernels::deb_non_dominated_sort(&points, &violations)
    });
    let (sort_ens_us, ens_fronts) = time_min(reps, || {
        kernels::ens_non_dominated_sort(&points, &violations)
    });
    let fronts_identical = naive_fronts == ens_fronts;

    // 2. Crowding distance over the first front.
    let front0 = &ens_fronts[0];
    let (crowding_us, _) = time_min(reps, || kernels::crowding_distance_indexed(&points, front0));

    // 3. SPEA2 truncation of the full cloud to half, on the cached
    //    distance matrix vs the per-round recomputation.
    let dist = DistanceMatrix::from_points(&points);
    let members: Vec<usize> = (0..n).collect();
    let target = n / 2;
    let (truncate_cached_us, kept_cached) = time_min(reps, || {
        kernels::spea2_truncate(&dist, members.clone(), target)
    });
    let (truncate_naive_us, truncation_identical, truncation_oracle_points) =
        if n <= naive_truncate_cap {
            let (us, kept_naive) = time_min(reps, || {
                kernels::spea2_truncate_naive(&dist, members.clone(), target)
            });
            (Some(us), kept_naive == kept_cached, n)
        } else {
            // The naive oracle is too slow to *time* here, but a seeded
            // 200-point subsample still runs both routines (untimed) so
            // the identity flag reports a real comparison at this size.
            let mut state = 0xACED_0000 + n as u64;
            let mut picked = vec![false; n];
            let mut sub = Vec::with_capacity(SUBSAMPLE_ORACLE_POINTS);
            while sub.len() < SUBSAMPLE_ORACLE_POINTS {
                let i = (xorshift(&mut state) as usize) % n;
                if !picked[i] {
                    picked[i] = true;
                    sub.push(i);
                }
            }
            let sub_target = SUBSAMPLE_ORACLE_POINTS / 2;
            let lazy = kernels::spea2_truncate(&dist, sub.clone(), sub_target);
            let naive = kernels::spea2_truncate_naive(&dist, sub.clone(), sub_target);
            (None, lazy == naive, SUBSAMPLE_ORACLE_POINTS)
        };

    // 4. Hypervolume: full cloud for the 2-D sweep, capped first front
    //    for the WFG recursion.
    let reference = vec![20.0; m];
    let (hv_points, hv_us) = if m == 2 {
        (
            n,
            time_min(reps, || hypervolume_matrix(&points, &reference)).0,
        )
    } else {
        let mut sub = ObjectiveMatrix::with_capacity(m, HV_WFG_CAP);
        for &i in front0.iter().take(HV_WFG_CAP) {
            sub.push_row(points.row(i));
        }
        (
            sub.rows(),
            time_min(reps, || hypervolume_matrix(&sub, &reference)).0,
        )
    };

    // 5. Incremental distance maintenance: simulate one generation of
    //    turnover — the even-indexed half of the cloud survives (its
    //    distance block is compacted out of `dist`), the other half is
    //    replaced by fresh offspring rows prepended as the head.
    let keep: Vec<usize> = (0..n).step_by(2).collect();
    let mut tail = dist.clone();
    tail.compact(&keep);
    let head = n - keep.len();
    let (fresh, _) = cloud(head, m, 0xF00D_0000 + (n as u64) * 8 + m as u64);
    let mut next = ObjectiveMatrix::with_capacity(m, n);
    for r in fresh.iter_rows() {
        next.push_row(r);
    }
    for &i in &keep {
        next.push_row(points.row(i));
    }

    let mut full_next = DistanceMatrix::default();
    let (dist_refill_us, _) = time_min(reps, || full_next.refill(&next));
    let mut inc = DistanceMatrix::default();
    let (dist_update_us, _) = time_min(reps, || inc.refill_with_tail(&next, &tail));
    // Correctness: both incremental routes bit-equal the full rebuild.
    let mut via_update = full_next.clone();
    let changed: Vec<usize> = (0..head).collect();
    via_update.update_rows(&next, &changed);
    let dist_identical = inc.bits_eq(&full_next) && via_update.bits_eq(&full_next);
    // The amortized per-generation path: incremental rebuild + truncate.
    let next_members: Vec<usize> = (0..n).collect();
    let (truncate_incremental_us, _) = time_min(reps, || {
        inc.refill_with_tail(&next, &tail);
        kernels::spea2_truncate(&inc, next_members.clone(), target)
    });

    Cell {
        n,
        m,
        sort_naive_us,
        sort_ens_us,
        fronts_identical,
        crowding_us,
        truncate_cached_us,
        truncate_naive_us,
        truncation_identical,
        truncation_oracle_points,
        hv_us,
        hv_points,
        dist_refill_us,
        dist_update_us,
        truncate_incremental_us,
        dist_identical,
    }
}

/// Runs the kernel benchmark at `scale` and returns the JSON report
/// (also written to `BENCH_moea_kernels.json` in the working directory;
/// a write failure is reported inside the JSON rather than aborting the
/// bench).
pub fn moea_kernels(scale: RunScale) -> String {
    let (reps, naive_truncate_cap) = params(scale);
    let mut cells = Vec::new();
    for &n in &SIZES {
        for &m in &DIMS {
            cells.push(bench_cell(n, m, reps, naive_truncate_cap));
        }
    }
    let fronts_identical = cells.iter().all(|c| c.fronts_identical);
    let truncation_identical = cells.iter().all(|c| c.truncation_identical);
    let dist_identical = cells.iter().all(|c| c.dist_identical);
    let ens_beats_naive_at_1600 = cells
        .iter()
        .filter(|c| c.n == 1600)
        .all(|c| c.sort_ens_us <= c.sort_naive_us);
    let body: Vec<String> = cells.iter().map(|c| format!("    {}", c.json())).collect();
    let json = format!(
        "{{\n  \"bench\": \"moea_kernels\",\n  \"reps\": {reps},\n  \"naive_truncate_cap\": {naive_truncate_cap},\n  \"cases\": [\n{}\n  ],\n  \"fronts_identical\": {fronts_identical},\n  \"truncation_identical\": {truncation_identical},\n  \"dist_identical\": {dist_identical},\n  \"ens_beats_naive_at_1600\": {ens_beats_naive_at_1600}\n}}\n",
        body.join(",\n"),
    );
    if let Err(e) = std::fs::write("BENCH_moea_kernels.json", &json) {
        return format!("{json}# write failed: {e}\n");
    }
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_bench_meets_acceptance_floor() {
        let json = moea_kernels(RunScale::Tiny);
        assert!(
            json.contains("\"fronts_identical\": true"),
            "ENS diverged from the Deb oracle:\n{json}"
        );
        assert!(
            json.contains("\"truncation_identical\": true"),
            "cached truncation diverged from the naive oracle:\n{json}"
        );
        assert!(
            json.contains("\"ens_beats_naive_at_1600\": true"),
            "ENS did not beat the naive sort at N=1600:\n{json}"
        );
        assert!(
            json.contains("\"dist_identical\": true"),
            "incremental distance maintenance diverged from full rebuild:\n{json}"
        );
        assert!(
            !json.contains("\"truncation_oracle_points\": 0"),
            "every cell must run a real truncation oracle comparison:\n{json}"
        );
        let _ = std::fs::remove_file("BENCH_moea_kernels.json");
    }

    #[test]
    fn clouds_contain_duplicates_and_ties() {
        let (points, violations) = cloud(100, 2, 99);
        let rows: Vec<&[f64]> = points.iter_rows().collect();
        let mut dup = false;
        'outer: for i in 0..rows.len() {
            for j in (i + 1)..rows.len() {
                if rows[i] == rows[j] {
                    dup = true;
                    break 'outer;
                }
            }
        }
        assert!(dup, "quantized cloud should contain duplicate rows");
        assert!(violations.iter().any(|&v| v > 0.0));
        assert!(violations.contains(&0.0));
    }
}

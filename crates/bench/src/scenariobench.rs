//! Scenario matrix benchmark: every reliability scenario swept through
//! the same campaign plans.
//!
//! One synthetic application runs the **proposed** flow and the
//! **Agnostic** baseline under each built-in reliability scenario
//! (`transient`, `lifetime:<hours>`, `chkmodes`, `fpga`). Per scenario
//! the report records the catalog and candidate-space sizes, the
//! wall-clock cost of the task-level chain analyses (the Markov solves
//! of that scenario's chain templates — the timing the perf gate
//! watches), the objective-set arity, and both fronts' digests.
//!
//! Cross-scenario invariants, greppable by CI:
//!
//! * `transient_matches_default` — the `transient` scenario reproduces
//!   the default pipeline's proposed front bit-identically (the
//!   refactor replaced the fault model without disturbing it).
//! * `scenario_fronts_distinct` — every non-transient scenario moves
//!   the proposed front: the new axes are real physics/catalog changes,
//!   not relabelings.
//! * `lifetime_adds_mttf_objective` — the permanent-fault scenario runs
//!   tri-objective (makespan, error, −MTTF).
//! * `agnostic_baseline_complete` — the Agnostic baseline completed
//!   under every scenario (each new axis has its layer-blind referent).
//!
//! [`scenarios`] returns the report as JSON (hand-formatted, like the
//! other bench reports) and writes it to `BENCH_scenarios.json` for CI
//! to archive and for `experiments perfgate` to diff against the
//! committed `BENCH_scenarios.baseline.json`.

use std::time::Instant;

use clre::methodology::{ClrEarly, StageBudget};
use clre::scenario::Scenario;
use clre::tdse::build_library_with_health;
use clre::{CampaignPlan, FrontResult};
use clre_model::{Platform, TaskGraph};
use clre_serve::front_digest;

use crate::RunScale;

/// Task count of the scenario workload (kept small: four scenarios each
/// run two full campaigns plus a timed library build).
const TASKS: usize = 16;
/// Application seed, distinct from the other benches' workloads.
const APP_SEED: u64 = 131;
/// Mission time of the lifetime scenario cell (hours).
const MISSION_HOURS: f64 = 5_000.0;

/// One scenario's measured sweep.
struct Cell {
    name: String,
    catalog: usize,
    candidates: usize,
    chain_analysis_us: u64,
    objectives: usize,
    proposed: FrontSummary,
    agnostic: FrontSummary,
}

struct FrontSummary {
    digest: u64,
    points: usize,
    evaluations: usize,
}

fn summarize(front: &FrontResult) -> FrontSummary {
    FrontSummary {
        digest: front_digest(front),
        points: front.front().len(),
        evaluations: front.evaluations,
    }
}

fn run_cell(
    scenario: &Scenario,
    graph: &TaskGraph,
    platform: &Platform,
    budget: &StageBudget,
) -> Cell {
    // Timed: the task-level DSE sweep — one Markov chain analysis per
    // (implementation, mode, CLR) candidate of this scenario's catalog.
    // This is the knob the perf gate watches per chain-template family.
    let config = scenario
        .tdse_config()
        .expect("built-in scenario configs are valid");
    let started = Instant::now();
    let (_library, health) =
        build_library_with_health(graph, platform, &config).expect("library builds");
    let chain_analysis_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);

    let dse = ClrEarly::with_scenario(graph, platform, scenario).expect("tDSE succeeds");
    let proposed = dse
        .run(&CampaignPlan::proposed(), budget)
        .expect("proposed completes");
    let agnostic = dse
        .run(&CampaignPlan::agnostic(), budget)
        .expect("agnostic completes");
    Cell {
        name: scenario.name(),
        catalog: scenario.clr_catalog().len(),
        candidates: health.candidates_evaluated,
        chain_analysis_us,
        objectives: scenario.system_objectives().len(),
        proposed: summarize(&proposed),
        agnostic: summarize(&agnostic),
    }
}

fn json_cell(c: &Cell) -> String {
    format!(
        "{{\"scenario\": \"{}\", \"catalog\": {}, \"candidates\": {}, \"chain_analysis_us\": {}, \"objectives\": {}, \"proposed_digest\": \"{:016x}\", \"proposed_points\": {}, \"proposed_evaluations\": {}, \"agnostic_digest\": \"{:016x}\", \"agnostic_points\": {}, \"agnostic_evaluations\": {}}}",
        c.name,
        c.catalog,
        c.candidates,
        c.chain_analysis_us,
        c.objectives,
        c.proposed.digest,
        c.proposed.points,
        c.proposed.evaluations,
        c.agnostic.digest,
        c.agnostic.points,
        c.agnostic.evaluations,
    )
}

/// Runs the scenario matrix at `scale` and returns the JSON report
/// (also written to `BENCH_scenarios.json`; a write failure is reported
/// inside the JSON rather than aborting the bench).
pub fn scenarios(scale: RunScale) -> String {
    let budget = scale.budget();
    let (platform, graph) = clre::apps::synthetic_app(TASKS, APP_SEED).expect("app builds");

    let matrix = [
        Scenario::Transient,
        Scenario::PermanentAging {
            mission_time_hours: MISSION_HOURS,
        },
        Scenario::CheckpointModes,
        Scenario::FpgaMitigation,
    ];
    let cells: Vec<Cell> = matrix
        .iter()
        .map(|s| run_cell(s, &graph, &platform, &budget))
        .collect();

    // The pinned identity: the transient scenario IS the pre-refactor
    // pipeline, checked against a plain default-config run.
    let default_front = ClrEarly::new(&graph, &platform)
        .expect("tDSE succeeds")
        .run(&CampaignPlan::proposed(), &budget)
        .expect("default proposed completes");
    let transient_matches_default = cells[0].proposed.digest == front_digest(&default_front);
    let scenario_fronts_distinct = cells[1..]
        .iter()
        .all(|c| c.proposed.digest != cells[0].proposed.digest);
    let lifetime_adds_mttf_objective = cells[1].objectives == 3;
    let agnostic_baseline_complete = cells.iter().all(|c| c.agnostic.points > 0);

    let body: Vec<String> = cells
        .iter()
        .map(|c| format!("    {}", json_cell(c)))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"scenarios\",\n  \"application_tasks\": {TASKS},\n  \"population\": {},\n  \"generations\": {},\n  \"mission_hours\": {MISSION_HOURS},\n  \"cells\": [\n{}\n  ],\n  \"transient_matches_default\": {transient_matches_default},\n  \"scenario_fronts_distinct\": {scenario_fronts_distinct},\n  \"lifetime_adds_mttf_objective\": {lifetime_adds_mttf_objective},\n  \"agnostic_baseline_complete\": {agnostic_baseline_complete}\n}}\n",
        budget.population,
        budget.generations,
        body.join(",\n"),
    );
    if let Err(e) = std::fs::write("BENCH_scenarios.json", &json) {
        return format!("{json}# write failed: {e}\n");
    }
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_bench_pins_the_matrix_invariants() {
        let json = scenarios(RunScale::Tiny);
        assert!(
            json.contains("\"transient_matches_default\": true"),
            "transient scenario must reproduce the default pipeline:\n{json}"
        );
        assert!(
            json.contains("\"scenario_fronts_distinct\": true"),
            "every new axis must move the front:\n{json}"
        );
        assert!(
            json.contains("\"lifetime_adds_mttf_objective\": true"),
            "lifetime runs tri-objective:\n{json}"
        );
        assert!(
            json.contains("\"agnostic_baseline_complete\": true"),
            "the Agnostic baseline must complete under every scenario:\n{json}"
        );
        for cell in ["transient", "lifetime:5000", "chkmodes", "fpga"] {
            assert!(
                json.contains(&format!("\"scenario\": \"{cell}\"")),
                "missing matrix cell {cell}:\n{json}"
            );
        }
        let _ = std::fs::remove_file("BENCH_scenarios.json");
    }
}

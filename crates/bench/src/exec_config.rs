//! Typed execution configuration for the experiment harness.
//!
//! The experiment functions share the signature `fn(RunScale,
//! &ExecConfig) -> String` so the `experiments` binary, the integration
//! tests and the Criterion benches can drive them interchangeably.
//! Worker count, telemetry, the evaluation cache and the evaluation
//! backend travel through an explicit [`ExecConfig`] value built once at
//! startup — there is no process-global configuration state, so two
//! configs in one process (e.g. parallel tests) never interfere.
//!
//! Parallelism and backend placement never change results — the engine
//! merges worker output in submission order (see `clre-exec`) — so
//! experiments stay bit-reproducible no matter how a config is set.
//!
//! [`ClrEarly`]: clre::methodology::ClrEarly

use std::sync::Arc;

use clre::methodology::ClrEarly;
use clre::remote::BackendChoice;
use clre::{AppSpec, EvalCache, Scenario};
use clre_exec::{BackendHealth, EvalBackend, ExecPool, Executor, RunTelemetry, TelemetrySink};

/// Execution settings for one experiment run, passed explicitly to every
/// experiment function. The default is serial ("auto" workers), no
/// telemetry, no cache, in-process evaluation.
#[derive(Clone, Default)]
pub struct ExecConfig {
    /// Configured worker count; 0 means "auto" (available parallelism).
    workers: usize,
    trace: Option<TelemetrySink>,
    cache: Option<Arc<EvalCache>>,
    backend: Option<Arc<dyn EvalBackend>>,
    backend_name: Option<&'static str>,
}

impl std::fmt::Debug for ExecConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecConfig")
            .field("workers", &self.workers)
            .field("trace", &self.trace.is_some())
            .field("cache", &self.cache.is_some())
            .field("backend", &self.backend_name())
            .finish()
    }
}

impl ExecConfig {
    /// The default configuration: auto workers, no trace, no cache,
    /// in-process evaluation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count for every executor this config builds.
    /// Zero restores the default (available parallelism). Call this
    /// *before* [`with_backend`](Self::with_backend): the backend's
    /// worker pool is sized when it is built.
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Installs a fresh telemetry sink fed by every executor this config
    /// builds, so one sink collects the trace across all stages of an
    /// experiment. Retrieve it with [`trace`](Self::trace).
    pub fn with_trace(mut self) -> Self {
        self.trace = Some(RunTelemetry::sink());
        self
    }

    /// Attaches an evaluation cache shared by every driver passed
    /// through [`apply`](Self::apply), so task analyses and genome
    /// fitness memoize across the cells of a sweep. Cached and uncached
    /// runs are bit-identical; only the wall clock and the hit/miss
    /// telemetry differ.
    pub fn with_cache(mut self, cache: Arc<EvalCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Selects the evaluation backend (threads or `clre-exec-worker`
    /// subprocesses; [`BackendChoice::InProcess`] clears it). The
    /// backend's pool is sized from the current worker count, so call
    /// [`with_workers`](Self::with_workers) first. Fails when a
    /// subprocess backend cannot locate its worker binary.
    pub fn with_backend(mut self, choice: &BackendChoice) -> Result<Self, String> {
        self.backend = choice.build(self.workers())?;
        self.backend_name = Some(choice.name());
        Ok(self)
    }

    /// The effective worker count: the configured value, or the
    /// machine's available parallelism when unconfigured.
    pub fn workers(&self) -> usize {
        match self.workers {
            0 => ExecPool::auto().workers(),
            n => n,
        }
    }

    /// The telemetry sink installed by [`with_trace`](Self::with_trace),
    /// if any.
    pub fn trace(&self) -> Option<&TelemetrySink> {
        self.trace.as_ref()
    }

    /// The evaluation cache installed by [`with_cache`](Self::with_cache),
    /// if any.
    pub fn cache(&self) -> Option<&Arc<EvalCache>> {
        self.cache.as_ref()
    }

    /// The selected backend's name (`inprocess` when none is attached).
    pub fn backend_name(&self) -> &'static str {
        self.backend_name
            .unwrap_or_else(|| BackendChoice::InProcess.name())
    }

    /// Live worker-health counters of the attached backend, if any —
    /// the honesty check benchmarks use to prove a subprocess backend
    /// actually evaluated items rather than silently falling back.
    pub fn backend_health(&self) -> Option<BackendHealth> {
        self.backend.as_ref().map(|b| b.health())
    }

    /// An [`Executor`] honoring this config: worker pool, telemetry and
    /// evaluation backend. Stage labels are applied downstream by the
    /// methodology driver.
    pub fn executor(&self) -> Executor {
        let mut exec = Executor::new(ExecPool::new(self.workers()));
        if let Some(sink) = &self.trace {
            exec = exec.with_telemetry(sink.clone());
        }
        if let Some(backend) = &self.backend {
            exec = exec.with_eval_backend(Arc::clone(backend));
        }
        exec
    }

    /// Applies every setting to a freshly built driver: the executor
    /// (worker pool, telemetry, backend) and the evaluation cache when
    /// one is attached. All experiments funnel their [`ClrEarly`]
    /// construction through this so `--workers`, `--trace`, `--cache`
    /// and `--backend` need no per-experiment plumbing.
    pub fn apply<'a>(&self, dse: ClrEarly<'a>) -> ClrEarly<'a> {
        let dse = dse.with_executor(self.executor());
        match &self.cache {
            Some(cache) => dse.with_cache(Arc::clone(cache)),
            None => dse,
        }
    }

    /// [`apply`](Self::apply) plus the remote evaluation context: what a
    /// backend needs to reconstruct the stage problem out-of-process.
    /// Required whenever a threads/subprocess backend is attached;
    /// harmless without one.
    pub fn apply_remote<'a>(
        &self,
        dse: ClrEarly<'a>,
        app: AppSpec,
        scenario: Scenario,
    ) -> ClrEarly<'a> {
        self.apply(dse).with_remote(app, scenario)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settings_flow_into_executors() {
        // Default: auto (≥ 1), no telemetry, no backend.
        let config = ExecConfig::new();
        assert!(config.workers() >= 1);
        assert!(config.executor().telemetry().is_none());
        assert_eq!(config.backend_name(), "inprocess");
        assert!(config.backend_health().is_none());

        let config = ExecConfig::new().with_workers(3);
        assert_eq!(config.executor().workers(), 3);

        let config = config.with_trace();
        let exec = config.executor();
        assert!(exec.telemetry().is_some());
        let _ = exec.evaluate_batch(0, &[1u8, 2, 3], |x| x + 1);
        let sink = config.trace().expect("sink installed");
        assert_eq!(sink.lock().unwrap().total_evaluations(), 3);

        assert!(ExecConfig::new().with_workers(0).workers() >= 1);
    }

    #[test]
    fn backend_choice_threads_attaches_a_backend() {
        let config = ExecConfig::new()
            .with_workers(2)
            .with_backend(&BackendChoice::Threads)
            .expect("thread backend builds");
        assert_eq!(config.backend_name(), "threads");
        let health = config.backend_health().expect("backend attached");
        assert_eq!(health.workers, 2);
        assert!(config.executor().eval_backend().is_some());

        // InProcess clears it again.
        let config = config
            .with_backend(&BackendChoice::InProcess)
            .expect("inprocess always builds");
        assert_eq!(config.backend_name(), "inprocess");
        assert!(config.backend_health().is_none());
    }

    #[test]
    fn two_configs_in_one_process_do_not_interfere() {
        // The point of killing the process-global settings: a traced
        // 3-worker config and the default config coexist.
        let traced = ExecConfig::new().with_workers(3).with_trace();
        let plain = ExecConfig::new().with_workers(1);
        assert!(plain.executor().telemetry().is_none());
        assert_eq!(plain.executor().workers(), 1);
        assert_eq!(traced.executor().workers(), 3);
        assert!(traced.executor().telemetry().is_some());
    }
}

//! Server benchmark: stands up an in-process `clre-serve` server, drives
//! three concurrent tenants (fcCLR / pfCLR / proposed, same platform)
//! through it, and reports per-tenant submit-to-first-trace and
//! submit-to-done latencies plus the cross-tenant cache economics.
//!
//! Two correctness flags ride along with the timings:
//!
//! * `digest_parity` — every tenant's server-side front digest equals the
//!   same plan run in-process (serial, uncached); a latency number for a
//!   server that changes answers is worthless;
//! * `cross_tenant_sharing` — the shared L1 task-analysis cache answered
//!   strictly more hits than the three campaigns would have generated
//!   alone (self-hits), i.e. at least one tenant's library build was
//!   warm-started by another's entries.
//!
//! [`serve`] returns the report as JSON (hand-formatted, like the other
//! bench reports) and writes it to `BENCH_serve.json` for CI to archive.

use std::sync::Arc;
use std::time::Instant;

use clre::methodology::{ClrEarly, StageBudget};
use clre::tdse::TdseConfig;
use clre::{CampaignPlan, EvalCache};
use clre_serve::client::{Event, ServeClient, Submission};
use clre_serve::server::{build_app, front_digest, ServeConfig, Server};
use clre_serve::wire::{AppSpec, SubmitRequest};

use crate::RunScale;

/// Task count of the benchmark workload (all tenants share it — sharing
/// the platform and application is what makes the cache cross-tenant).
const TASKS: usize = 12;
/// Application seed, distinct from the other benches' workloads.
const APP_SEED: u64 = 3;
/// Worker budget the server schedules the tenants over.
const WORKERS: usize = 2;

/// GA budget per scale: the server bench measures scheduling and
/// streaming overhead, not GA convergence, so it stays modest even at
/// paper scale.
fn budget(scale: RunScale) -> StageBudget {
    match scale {
        RunScale::Tiny => StageBudget::new(8, 4).with_seed(11),
        RunScale::Smoke => StageBudget::new(16, 10).with_seed(11),
        RunScale::Paper => StageBudget::new(32, 30).with_seed(11),
    }
}

/// The three tenants and their plans.
fn tenants() -> [(&'static str, &'static str, CampaignPlan); 3] {
    [
        ("alpha", "fcCLR", CampaignPlan::fc()),
        ("beta", "pfCLR", CampaignPlan::pf()),
        ("gamma", "proposed", CampaignPlan::proposed()),
    ]
}

fn request(tenant: &str, plan: CampaignPlan, budget: &StageBudget) -> SubmitRequest {
    SubmitRequest {
        tenant: tenant.to_owned(),
        app: AppSpec::Synthetic {
            tasks: TASKS,
            seed: APP_SEED,
        },
        budget: budget.clone(),
        plan,
        scenario: clre::Scenario::Transient,
    }
}

/// One tenant's measured run through the server.
struct TenantRun {
    tenant: &'static str,
    plan: &'static str,
    submit_to_first_trace_us: u64,
    submit_to_done_us: u64,
    digest: u64,
    digest_matches: bool,
}

impl TenantRun {
    fn json(&self) -> String {
        format!(
            "{{\"tenant\": \"{}\", \"plan\": \"{}\", \"submit_to_first_trace_us\": {}, \
             \"submit_to_done_us\": {}, \"front_digest\": \"{:016x}\", \
             \"digest_matches_in_process\": {}}}",
            self.tenant,
            self.plan,
            self.submit_to_first_trace_us,
            self.submit_to_done_us,
            self.digest,
            self.digest_matches,
        )
    }
}

/// Submits `req` and streams to completion, timing first-trace and done
/// against the moment the submit frame went out.
fn drive_tenant(addr: &str, req: &SubmitRequest, expected: u64) -> TenantRun {
    let mut client = ServeClient::connect(addr).expect("connect");
    let t0 = Instant::now();
    match client.submit(req).expect("submit") {
        Submission::Accepted { .. } => {}
        Submission::Rejected { reason, detail } => {
            panic!("{}: rejected: {reason} {detail}", req.tenant)
        }
    }
    let mut first_trace_us = 0u64;
    let (digest, done_us) = loop {
        match client.next_event().expect("event") {
            Event::Trace(_) => {
                if first_trace_us == 0 {
                    first_trace_us = t0.elapsed().as_micros() as u64;
                }
            }
            Event::Done(summary) => break (summary.digest, t0.elapsed().as_micros() as u64),
            other => panic!("{}: campaign did not complete: {other:?}", req.tenant),
        }
    };
    let (tenant, plan) = tenants()
        .iter()
        .find(|(t, ..)| *t == req.tenant)
        .map(|(t, p, _)| (*t, *p))
        .expect("known tenant");
    TenantRun {
        tenant,
        plan,
        submit_to_first_trace_us: first_trace_us,
        submit_to_done_us: done_us,
        digest,
        digest_matches: digest == expected,
    }
}

/// The in-process baseline digest: same plan, serial, uncached.
fn local_digest(req: &SubmitRequest) -> u64 {
    let (platform, graph) = build_app(&req.app).expect("app builds");
    let front = ClrEarly::new(&graph, &platform)
        .expect("tDSE succeeds")
        .run(&req.plan, &req.budget)
        .expect("in-process campaign completes");
    front_digest(&front)
}

/// Analysis hits one campaign accumulates alone on a private cache —
/// the self-hit baseline the shared server cache must beat.
fn isolated_hits(req: &SubmitRequest) -> u64 {
    let (platform, graph) = build_app(&req.app).expect("app builds");
    let cache = EvalCache::shared();
    let dse = ClrEarly::with_tdse_config(
        &graph,
        &platform,
        TdseConfig::default().with_eval_cache(Arc::clone(&cache)),
    )
    .expect("tDSE succeeds")
    .with_cache(Arc::clone(&cache));
    dse.run(&req.plan, &req.budget)
        .expect("isolated campaign completes");
    cache.analysis_counts().hits
}

fn stat_u64(stats: &str, key: &str) -> u64 {
    stats
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(key)?.strip_prefix('=')?.parse().ok())
        .unwrap_or(0)
}

/// Runs the server benchmark at `scale` and returns the JSON report
/// (also written to `BENCH_serve.json`; a write failure is reported
/// inside the JSON rather than aborting the bench).
pub fn serve(scale: RunScale) -> String {
    let budget = budget(scale);
    let requests: Vec<SubmitRequest> = tenants()
        .into_iter()
        .map(|(tenant, _, plan)| request(tenant, plan, &budget))
        .collect();
    let expected: Vec<u64> = requests.iter().map(local_digest).collect();
    let isolated: u64 = requests.iter().map(isolated_hits).sum();

    let root = std::env::temp_dir().join(format!("clre-servebench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let config = ServeConfig::new(&root).with_workers(WORKERS);
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral");
    let addr = server.local_addr().expect("local addr").to_string();
    let stop = server.stop_flag();
    let server_thread = std::thread::spawn(move || server.run());

    let runs = std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .iter()
            .zip(&expected)
            .map(|(req, &exp)| {
                let addr = &addr;
                scope.spawn(move || drive_tenant(addr, req, exp))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tenant thread"))
            .collect::<Vec<_>>()
    });

    let mut client = ServeClient::connect(&addr).expect("stats connect");
    let stats = client.stats().expect("stats");
    drop(client);
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    server_thread.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&root);

    let shared_hits = stat_u64(&stats, "cache.paper.analysis_hits");
    let shared_misses = stat_u64(&stats, "cache.paper.analysis_misses");
    let cross_tenant_hits = shared_hits.saturating_sub(isolated);
    let hit_rate = shared_hits as f64 / (shared_hits + shared_misses).max(1) as f64;
    let digest_parity = runs.iter().all(|r| r.digest_matches);
    let body: Vec<String> = runs.iter().map(|r| format!("    {}", r.json())).collect();
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"application_tasks\": {TASKS},\n  \"population\": {},\n  \"generations\": {},\n  \"workers\": {WORKERS},\n  \"tenants\": [\n{}\n  ],\n  \"shared_analysis_hits\": {shared_hits},\n  \"isolated_analysis_hits\": {isolated},\n  \"cross_tenant_analysis_hits\": {cross_tenant_hits},\n  \"analysis_hit_rate\": {hit_rate:.4},\n  \"cross_tenant_sharing\": {},\n  \"digest_parity\": {digest_parity}\n}}\n",
        budget.population,
        budget.generations,
        body.join(",\n"),
        cross_tenant_hits > 0,
    );
    if let Err(e) = std::fs::write("BENCH_serve.json", &json) {
        return format!("{json}# write failed: {e}\n");
    }
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_bench_meets_acceptance_floor() {
        let json = serve(RunScale::Tiny);
        assert!(
            json.contains("\"digest_parity\": true"),
            "server fronts diverged from in-process baselines:\n{json}"
        );
        assert!(
            json.contains("\"cross_tenant_sharing\": true"),
            "shared cache produced no cross-tenant hits:\n{json}"
        );
        let _ = std::fs::remove_file("BENCH_serve.json");
    }
}

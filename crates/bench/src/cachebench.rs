//! Evaluation-cache benchmark: quantifies the two-level content-addressed
//! cache (`clre::cache`) on the acceptance workload — fcCLR over a
//! 100-task synthetic application.
//!
//! Three timed phases share one application and budget:
//!
//! 1. **uncached** — the plain run, the baseline throughput;
//! 2. **cached-cold** — the same run with an empty cache attached
//!    (populates both levels, pays the insert overhead);
//! 3. **cached-warm** — the identical run again against the now-warm
//!    cache (the warm-start scenario of a resumed campaign or a repeated
//!    sweep cell).
//!
//! The task-analysis level is measured separately by building the
//! task-level library twice under the same cache. All three system runs
//! must produce bit-identical fronts — the benchmark reports
//! `fronts_identical` and refuses to claim a speedup without it.
//!
//! [`eval_cache`] returns the report as JSON (hand-formatted — the
//! workspace deliberately carries no serde implementation) and writes it
//! to `BENCH_eval_cache.json` for CI to archive as a perf-trajectory
//! artifact.

use std::sync::Arc;
use std::time::Instant;

use clre::cache::CacheCounts;
use clre::methodology::{ClrEarly, StageBudget};
use clre::tdse::TdseConfig;
use clre::{CampaignPlan, EvalCache, FrontResult};

use crate::exec_config::ExecConfig;
use crate::RunScale;

/// Task count of the acceptance workload.
const TASKS: usize = 100;
/// Application seed (kept distinct from the sweep experiments so ledger
/// cells never alias this workload).
const APP_SEED: u64 = 107;

/// One timed fcCLR run; returns the front and the wall-clock seconds.
fn timed_run(dse: &ClrEarly, budget: &StageBudget) -> (FrontResult, f64) {
    let t0 = Instant::now();
    let result = dse.run(&CampaignPlan::fc(), budget).expect("fcCLR runs");
    (result, t0.elapsed().as_secs_f64())
}

fn json_counts(c: CacheCounts) -> String {
    format!(
        "{{\"hits\": {}, \"misses\": {}, \"inserts\": {}, \"hit_rate\": {:.4}}}",
        c.hits,
        c.misses,
        c.inserts,
        c.hit_rate()
    )
}

fn json_phase(secs: f64, evaluations: usize) -> String {
    format!(
        "{{\"secs\": {:.3}, \"evaluations\": {}, \"evals_per_sec\": {:.1}}}",
        secs,
        evaluations,
        evaluations as f64 / secs.max(1e-9)
    )
}

/// Runs the benchmark at `scale` and returns the JSON report (also
/// written to `BENCH_eval_cache.json` in the working directory; a write
/// failure is reported inside the JSON rather than aborting the bench).
pub fn eval_cache(scale: RunScale, config: &ExecConfig) -> String {
    let budget = scale.budget();
    let (platform, graph) = clre::apps::synthetic_app(TASKS, APP_SEED).expect("app builds");

    // Baseline: no cache anywhere (deliberately NOT config.apply, so a
    // `--cache` on the config cannot contaminate the baseline).
    let uncached_dse = ClrEarly::new(&graph, &platform)
        .expect("tDSE succeeds")
        .with_executor(config.executor());
    let (front_uncached, secs_uncached) = timed_run(&uncached_dse, &budget);

    // Task-analysis level: build the library twice under one cache.
    let cache = EvalCache::shared();
    let cached_tdse = TdseConfig::default().with_eval_cache(Arc::clone(&cache));
    let t0 = Instant::now();
    let cached_dse = ClrEarly::with_tdse_config(&graph, &platform, cached_tdse.clone())
        .expect("tDSE succeeds")
        .with_executor(config.executor())
        .with_cache(Arc::clone(&cache));
    let lib_cold_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let rebuilt = ClrEarly::with_tdse_config(&graph, &platform, cached_tdse).expect("tDSE again");
    let lib_warm_secs = t0.elapsed().as_secs_f64();
    assert_eq!(
        rebuilt.library().type_count(),
        cached_dse.library().type_count(),
        "warm rebuild must reproduce the library"
    );
    let analysis = cache.analysis_counts();

    // Genome-fitness level: cold populates, warm replays.
    let (front_cold, secs_cold) = timed_run(&cached_dse, &budget);
    let (front_warm, secs_warm) = timed_run(&cached_dse, &budget);
    let fitness = cache.fitness_counts();

    let identical = front_uncached.objectives() == front_cold.objectives()
        && front_uncached.objectives() == front_warm.objectives();
    let speedup = if identical {
        secs_uncached / secs_warm.max(1e-9)
    } else {
        // A speedup claim over a different answer is meaningless.
        0.0
    };

    let json = format!(
        "{{\n  \"bench\": \"eval_cache\",\n  \"application_tasks\": {TASKS},\n  \"method\": \"fcCLR\",\n  \"population\": {},\n  \"generations\": {},\n  \"workers\": {},\n  \"library_build\": {{\"cold_secs\": {:.3}, \"warm_secs\": {:.3}, \"speedup\": {:.2}, \"analysis\": {}}},\n  \"uncached\": {},\n  \"cached_cold\": {},\n  \"cached_warm\": {},\n  \"warm_speedup_vs_uncached\": {:.2},\n  \"fitness\": {},\n  \"fronts_identical\": {}\n}}\n",
        budget.population,
        budget.generations,
        config.workers(),
        lib_cold_secs,
        lib_warm_secs,
        lib_cold_secs / lib_warm_secs.max(1e-9),
        json_counts(analysis),
        json_phase(secs_uncached, front_uncached.evaluations),
        json_phase(secs_cold, front_cold.evaluations),
        json_phase(secs_warm, front_warm.evaluations),
        speedup,
        json_counts(fitness),
        identical,
    );
    if let Err(e) = std::fs::write("BENCH_eval_cache.json", &json) {
        return format!("{json}# write failed: {e}\n");
    }
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_cache_bench_meets_acceptance_floor() {
        let json = eval_cache(RunScale::Tiny, &ExecConfig::default());
        assert!(
            json.contains("\"fronts_identical\": true"),
            "cached runs diverged:\n{json}"
        );
        // ≥ 30% overall fitness hit-rate: the warm phase replays every
        // evaluation of the cold phase, so the floor holds with margin.
        let rate: f64 = json
            .lines()
            .find(|l| l.contains("\"fitness\""))
            .and_then(|l| l.rsplit("\"hit_rate\": ").next())
            .and_then(|t| t.trim_end_matches(['}', ',', ' ']).parse().ok())
            .expect("fitness hit_rate present");
        assert!(rate >= 0.30, "fitness hit rate {rate} below 30%:\n{json}");
        let _ = std::fs::remove_file("BENCH_eval_cache.json");
    }
}

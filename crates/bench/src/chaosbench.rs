//! Chaos benchmark: drives full campaigns through deterministic fault
//! storms and proves the recovery paths give back the fault-free answer.
//!
//! Four scenarios share one synthetic application and budget:
//!
//! 1. **baseline** — a clean supervised fcCLR run: the reference front.
//! 2. **fcCLR storm** (at 1 and 4 workers) — the same run under injected
//!    evaluation faults (panic / typed error / NaN poisoning / stalls
//!    past the evaluation deadline), deterministic worker death, an
//!    injected mid-run interrupt, byte-level corruption of the
//!    checkpoint and cache sidecars plus a mangled quarantine sidecar —
//!    then a cold resume. The recovered front must be **bit-identical**
//!    to the baseline (asserted via FNV-1a digest over the objective
//!    matrix).
//! 3. **proposed storm** — the two-stage proposed flow to completion
//!    under the same evaluation-fault storm; again digest-identical.
//! 4. **solver faults** — task-level DSE under a [`SolverFaultPlan`].
//!    The scaled-pivoting retry answers differ from the primary LU in
//!    the last bits, so this scenario is *degraded-mode*: the report
//!    records the deltas (retry/degraded counts, library divergence)
//!    instead of asserting identity.
//!
//! The storm schedule is content-addressed (see `clre-chaos`), so the
//! same seed reproduces the same faults — scenario 2 is run twice at one
//! worker to assert digest *and* telemetry-counter reproducibility.
//!
//! [`chaos`] returns the report as JSON (hand-formatted, like the other
//! bench reports) and writes it to `BENCH_chaos.json` for CI to archive.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use clre::cache::{cache_sidecar_path, Fnv};
use clre::methodology::{ClrEarly, StageBudget};
use clre::resilience::{
    quarantine_sidecar_path, BackoffPolicy, RunHealth, RunOutcome, RunSupervisor, SupervisorConfig,
};
use clre::tdse::{build_library_with_health, TdseConfig};
use clre::{CampaignPlan, EvalCache, FrontResult};
use clre_chaos::{corrupt_file, DeathPlan, FaultPlan, SolverFaultPlan};
use clre_exec::{ExecPool, Executor};
use clre_model::{Platform, TaskGraph};

use crate::RunScale;

/// Task count of the chaos workload (kept small: every scenario runs the
/// campaign at least once, and the storm adds deliberate stalls).
const TASKS: usize = 20;
/// Application seed, distinct from the other benches' workloads.
const APP_SEED: u64 = 113;
/// Master seed salting every fault plan of the storm.
const CHAOS_SEED: u64 = 0xC405;
/// Per-evaluation wall-clock deadline under the storm.
const DEADLINE_MS: u64 = 250;
/// Injected stalls sleep past the deadline, forcing a timeout + retry.
const STALL_MS: u64 = 400;

/// The evaluation-fault storm. The Tiny workload evaluates only ~19
/// distinct genomes, so the per-kind rates are set high enough that the
/// seeded draws provably fire every kind at least once on that key
/// population (8% panic, 10% typed error, 11% NaN poisoning, 15% stall
/// past the deadline). All fire on the first attempt only, so one retry
/// always recovers.
fn storm_plan() -> FaultPlan {
    FaultPlan::new(CHAOS_SEED)
        .with_panic_ppm(80_000)
        .with_error_ppm(100_000)
        .with_poison_ppm(110_000)
        .with_stall_ppm(150_000, STALL_MS)
}

/// FNV-1a digest of a front's objective matrix, point order preserved —
/// bit-identical fronts and only bit-identical fronts collide.
fn front_digest(front: &FrontResult) -> u64 {
    let mut fnv = Fnv::new();
    for objectives in front.objectives() {
        for &x in &objectives {
            fnv.write_f64(x);
        }
    }
    fnv.finish()
}

/// A supervisor config with the hardened-recovery knobs on.
fn storm_config(ckpt: &Path) -> SupervisorConfig {
    SupervisorConfig::new(ckpt)
        .with_interval(1)
        .with_max_retries(2)
        .with_keep_checkpoints(3)
        .with_eval_deadline(Duration::from_millis(DEADLINE_MS))
        .with_backoff(BackoffPolicy::new(1, 8, CHAOS_SEED))
}

/// An executor whose pool loses workers deterministically mid-batch.
fn dying_executor(workers: usize) -> Executor {
    Executor::new(ExecPool::new(workers).with_death_plan(DeathPlan::new(CHAOS_SEED, 60_000)))
}

struct Scenario {
    digest: u64,
    health: RunHealth,
}

fn json_scenario(s: &Scenario) -> String {
    let h = &s.health;
    format!(
        "{{\"front_digest\": \"{:016x}\", \"timeouts\": {}, \"backoff_ms\": {}, \"injected\": {}, \"recovered\": {}, \"panics_isolated\": {}, \"errors_isolated\": {}, \"retries\": {}, \"checkpoint_fallbacks\": {}, \"sidecar_lines_skipped\": {}, \"quarantined\": {}}}",
        s.digest,
        h.timeouts,
        h.backoff_ms,
        h.injected,
        h.recovered,
        h.panics_isolated,
        h.errors_isolated,
        h.retries,
        h.checkpoint_fallbacks,
        h.sidecar_lines_skipped,
        h.quarantined,
    )
}

/// Clean supervised fcCLR: the reference digest.
/// A scenario-private scratch directory: the cache and quarantine
/// sidecars live next to the checkpoint, so scenarios sharing a
/// directory would contaminate each other's warm-start state.
fn scenario_dir(dir: &Path, tag: &str) -> PathBuf {
    let d = dir.join(tag);
    fs::create_dir_all(&d).expect("scenario dir");
    d
}

fn baseline(graph: &TaskGraph, platform: &Platform, budget: &StageBudget, dir: &Path) -> Scenario {
    let ckpt = scenario_dir(dir, "baseline").join("baseline.ckpt");
    let supervisor = RunSupervisor::new(SupervisorConfig::new(&ckpt).with_interval(2));
    let dse = ClrEarly::new(graph, platform).expect("tDSE succeeds");
    let front = dse
        .run_supervised(&CampaignPlan::fc(), budget, &supervisor)
        .expect("clean run completes")
        .expect_complete();
    Scenario {
        digest: front_digest(&front),
        health: front.health,
    }
}

/// The full fcCLR chaos scenario: storm + interrupt + sidecar corruption
/// + cold resume at the given worker count.
fn fc_storm(
    graph: &TaskGraph,
    platform: &Platform,
    budget: &StageBudget,
    dir: &Path,
    workers: usize,
    tag: &str,
) -> Scenario {
    let ckpt = scenario_dir(dir, tag).join("storm.ckpt");
    let plan: Arc<FaultPlan> = Arc::new(storm_plan());

    // Phase 1: run under the storm until the injected interrupt fires.
    let cache = EvalCache::shared();
    let dse = ClrEarly::new(graph, platform)
        .expect("tDSE succeeds")
        .with_executor(dying_executor(workers))
        .with_cache(Arc::clone(&cache));
    let supervisor = RunSupervisor::new(storm_config(&ckpt))
        .with_fault_injector(plan.clone())
        .with_interrupt_at(0, 2);
    match dse
        .run_supervised(&CampaignPlan::fc(), budget, &supervisor)
        .expect("interrupted run still checkpoints")
    {
        RunOutcome::Interrupted { .. } => {}
        RunOutcome::Complete(_) => panic!("interrupt seam must fire"),
    }

    // Phase 2: damage every sidecar between save and load.
    corrupt_file(&ckpt, CHAOS_SEED, 1).expect("checkpoint corruptible");
    let cache_sidecar = cache_sidecar_path(&ckpt);
    if cache_sidecar.exists() {
        corrupt_file(&cache_sidecar, CHAOS_SEED, 2).expect("cache sidecar corruptible");
    }
    // A torn quarantine sidecar: one malformed line amid a valid record.
    let quarantine = quarantine_sidecar_path(&ckpt);
    fs::write(
        &quarantine,
        "quarantine-v1 error=fabricated for chaos genome=g:0|p:0|c:0\n@@torn-line\n",
    )
    .expect("quarantine sidecar writable");

    // Phase 3: cold resume — a fresh driver and a fresh cache bound to
    // the damaged sidecar, same storm, no further interrupts.
    let cold_cache = EvalCache::shared();
    let resumed = ClrEarly::new(graph, platform)
        .expect("tDSE succeeds")
        .with_executor(dying_executor(workers))
        .with_cache(cold_cache);
    let resume_supervisor = RunSupervisor::new(storm_config(&ckpt)).with_fault_injector(plan);
    let front = resumed
        .resume_supervised(budget, &resume_supervisor)
        .expect("resume recovers")
        .expect_complete();
    Scenario {
        digest: front_digest(&front),
        health: front.health,
    }
}

/// The proposed two-stage flow, clean vs under the storm (no interrupt):
/// returns (clean, stormed).
fn proposed_pair(
    graph: &TaskGraph,
    platform: &Platform,
    budget: &StageBudget,
    dir: &Path,
) -> (Scenario, Scenario) {
    let clean_supervisor = RunSupervisor::new(
        SupervisorConfig::new(scenario_dir(dir, "proposed-clean").join("proposed.ckpt"))
            .with_interval(2),
    );
    let clean = ClrEarly::new(graph, platform)
        .expect("tDSE succeeds")
        .run_supervised(&CampaignPlan::proposed(), budget, &clean_supervisor)
        .expect("clean proposed completes")
        .expect_complete();

    let ckpt = scenario_dir(dir, "proposed-storm").join("proposed.ckpt");
    let stormed = ClrEarly::new(graph, platform)
        .expect("tDSE succeeds")
        .with_executor(dying_executor(4))
        .run_supervised(
            &CampaignPlan::proposed(),
            budget,
            &RunSupervisor::new(storm_config(&ckpt)).with_fault_injector(Arc::new(storm_plan())),
        )
        .expect("stormed proposed completes")
        .expect_complete();
    (
        Scenario {
            digest: front_digest(&clean),
            health: clean.health,
        },
        Scenario {
            digest: front_digest(&stormed),
            health: stormed.health,
        },
    )
}

/// Runs the chaos benchmark at `scale` and returns the JSON report (also
/// written to `BENCH_chaos.json`; a write failure is reported inside the
/// JSON rather than aborting the bench).
pub fn chaos(scale: RunScale) -> String {
    let budget = scale.budget();
    let (platform, graph) = clre::apps::synthetic_app(TASKS, APP_SEED).expect("app builds");
    let dir = std::env::temp_dir().join(format!("clre-chaosbench-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("scratch dir");

    let base = baseline(&graph, &platform, &budget, &dir);
    let storm_w1 = fc_storm(&graph, &platform, &budget, &dir, 1, "w1");
    let storm_w4 = fc_storm(&graph, &platform, &budget, &dir, 4, "w4");
    // Same seed, same worker count: the schedule, the recovered front
    // and every telemetry counter must reproduce exactly.
    let replay = fc_storm(&graph, &platform, &budget, &dir, 1, "replay");
    let reproducible = replay.digest == storm_w1.digest && replay.health == storm_w1.health;

    let (proposed_clean, proposed_storm) = proposed_pair(&graph, &platform, &budget, &dir);

    // Degraded-mode scenario: injected LU singularities. Retries keep the
    // analysis exact-ish via scaled pivoting, but the answers differ in
    // the last bits from the primary solve — record the deltas, never
    // assert identity.
    let clean_lib = build_library_with_health(&graph, &platform, &TdseConfig::default())
        .expect("clean library");
    let solver_cfg =
        TdseConfig::default().with_solver_faults(SolverFaultPlan::new(CHAOS_SEED, 300_000, 0));
    let faulted_lib =
        build_library_with_health(&graph, &platform, &solver_cfg).expect("faulted library");

    let recoverable_identical = storm_w1.digest == base.digest
        && storm_w4.digest == base.digest
        && proposed_storm.digest == proposed_clean.digest;
    let exercised = storm_w1.health.injected > 0
        && storm_w1.health.panics_isolated > 0
        && storm_w1.health.errors_isolated > 0
        && storm_w1.health.timeouts > 0
        && storm_w1.health.backoff_ms > 0
        && storm_w1.health.recovered > 0
        && storm_w1.health.checkpoint_fallbacks > 0
        && storm_w1.health.sidecar_lines_skipped > 0;

    let _ = fs::remove_dir_all(&dir);

    let json = format!(
        "{{\n  \"bench\": \"chaos\",\n  \"application_tasks\": {TASKS},\n  \"population\": {},\n  \"generations\": {},\n  \"chaos_seed\": {CHAOS_SEED},\n  \"baseline\": {},\n  \"fc_storm_w1\": {},\n  \"fc_storm_w1_replay\": {},\n  \"fc_storm_w4\": {},\n  \"proposed_clean\": {},\n  \"proposed_storm\": {},\n  \"solver_faults\": {{\"candidates\": {}, \"solver_retries\": {}, \"degraded_analyses\": {}, \"library_bit_identical\": {}}},\n  \"storm_exercised_all_seams\": {},\n  \"reproducible\": {},\n  \"fronts_identical\": {}\n}}\n",
        budget.population,
        budget.generations,
        json_scenario(&base),
        json_scenario(&storm_w1),
        json_scenario(&replay),
        json_scenario(&storm_w4),
        json_scenario(&proposed_clean),
        json_scenario(&proposed_storm),
        faulted_lib.1.candidates_evaluated,
        faulted_lib.1.solver_retries,
        faulted_lib.1.degraded_analyses,
        clean_lib.0 == faulted_lib.0,
        exercised,
        reproducible,
        recoverable_identical,
    );
    if let Err(e) = fs::write("BENCH_chaos.json", &json) {
        return format!("{json}# write failed: {e}\n");
    }
    json
}

/// Scratch path helper shared with the property tests.
pub fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("clre-chaos-{tag}-{}", std::process::id()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_bench_recovers_bit_identically() {
        let json = chaos(RunScale::Tiny);
        assert!(
            json.contains("\"fronts_identical\": true"),
            "storm recovery diverged from the fault-free baseline:\n{json}"
        );
        assert!(
            json.contains("\"reproducible\": true"),
            "same seed must reproduce digest and counters:\n{json}"
        );
        assert!(
            json.contains("\"storm_exercised_all_seams\": true"),
            "the storm must actually fire every fault kind:\n{json}"
        );
        let _ = std::fs::remove_file("BENCH_chaos.json");
    }
}

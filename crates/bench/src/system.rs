//! System-level experiments: Fig. 7 / Table V (CLR vs Agnostic), Fig. 8 /
//! Table VI (proposed vs fcCLR), Fig. 10 / Table VII (proposed vs pfCLR
//! under growing task-level libraries).
//!
//! Every sweep is a data-driven grid of `(task count, method)` cells,
//! each executed through the declarative [`CampaignPlan`] runner and
//! memoized in the active [`crate::sweep`] ledger — a killed
//! `experiments` run restarted with the same `--ledger` file resumes at
//! the last finished cell instead of recomputing the whole table.

use clre::apps;
use clre::methodology::{reference_point, ClrEarly, Layer, StageBudget};
use clre::tdse::TdseConfig;
use clre::CampaignPlan;
use clre_moea::hypervolume::{hypervolume, percent_increase};
use clre_moea::pareto::non_dominated_indices;

use crate::exec_config::ExecConfig;
use crate::report::{pct, series, Table};
use crate::sweep::{self, CellData};
use crate::tasklevel::tdse_runs;
use crate::RunScale;

/// Runs one `(task count, method)` grid cell through the Campaign
/// runner, memoized under `experiment/T<tasks>/<label>` in the active
/// sweep ledger. `None` means the ledger's compute budget ran out — the
/// sweep should stop where a killed run would have.
fn campaign_cell(
    experiment: &str,
    tasks: usize,
    label: &str,
    dse: &ClrEarly,
    plan: &CampaignPlan,
    budget: &StageBudget,
) -> Option<CellData> {
    sweep::cell(&format!("{experiment}/T{tasks}/{label}"), || {
        let result = dse.run(plan, budget).expect("campaign runs");
        CellData {
            evaluations: result.evaluations,
            objectives: result.objectives(),
        }
    })
}

/// Terminates a sweep whose cell budget ran out, marking the report.
fn halted(mut out: String) -> String {
    out.push_str(sweep::HALT_LINE);
    out
}

/// Pareto-filters the union of several fronts' objective vectors — the
/// objective-space mirror of `FrontResult::merge`, used to rebuild the
/// merged Agnostic baseline from journalled per-layer cells.
fn merge_objectives(fronts: &[Vec<Vec<f64>>]) -> Vec<Vec<f64>> {
    let union: Vec<Vec<f64>> = fronts.concat();
    non_dominated_indices(&union)
        .into_iter()
        .map(|i| union[i].clone())
        .collect()
}

/// Fig. 7: Pareto fronts of the cross-layer approach vs the merged
/// single-layer (Agnostic) baseline, plus each per-layer front, for a
/// 20-task synthetic application.
///
/// Expected shape: the CLR front dominates the Agnostic front across the
/// makespan range.
pub fn fig7(scale: RunScale, config: &ExecConfig) -> String {
    let (platform, graph) = apps::synthetic_app(20, 7).expect("synthetic app builds");
    let dse = config.apply(ClrEarly::new(&graph, &platform).expect("tDSE succeeds"));
    let budget = scale.budget();
    let mut grid: Vec<(&str, CampaignPlan)> = vec![("CLR", CampaignPlan::proposed())];
    grid.extend(
        Layer::ALL
            .iter()
            .map(|&layer| (layer.name(), CampaignPlan::single_layer(layer))),
    );
    let mut out = String::from("# series: method, avg-makespan[s], app-error-prob\n");
    let mut layer_fronts = Vec::new();
    for (label, plan) in &grid {
        let Some(cell) = campaign_cell("fig7", 20, label, &dse, plan, &budget) else {
            return halted(out);
        };
        out.push_str(&series(label, &cell.objectives));
        if *label != "CLR" {
            layer_fronts.push(cell.objectives);
        }
    }
    out.push_str(&series("Agnostic", &merge_objectives(&layer_fronts)));
    out
}

/// Table V: percentage increase of the CLR front's hypervolume over the
/// Agnostic front, for applications of 10…100 tasks.
///
/// Expected shape: large positive improvements at every size (the paper
/// reports 135–251% with a huge outlier at 10 tasks).
pub fn table5(scale: RunScale, config: &ExecConfig) -> String {
    let budget = scale.budget();
    let mut table = Table::new(vec![
        "#Tasks".into(),
        "% HV increase (CLR vs Agnostic)".into(),
    ]);
    for &tasks in &scale.sizes() {
        let (platform, graph) =
            apps::synthetic_app(tasks, 7 + tasks as u64).expect("synthetic app builds");
        let dse = config.apply(ClrEarly::new(&graph, &platform).expect("tDSE succeeds"));
        let grid = [
            ("proposed", CampaignPlan::proposed()),
            ("Agnostic", CampaignPlan::agnostic()),
        ];
        let mut fronts = Vec::new();
        for (label, plan) in &grid {
            let Some(cell) = campaign_cell("table5", tasks, label, &dse, plan, &budget) else {
                return halted(table.to_string());
            };
            fronts.push(cell.objectives);
        }
        let r = reference_point(fronts.iter().map(Vec::as_slice));
        let gain = percent_increase(hypervolume(&fronts[0], &r), hypervolume(&fronts[1], &r));
        table.row(vec![tasks.to_string(), pct(gain)]);
    }
    table.to_string()
}

/// Fig. 8: Pareto fronts of the proposed two-stage method vs the
/// problem-agnostic fcCLR baseline for a 50-task application.
///
/// Expected shape: the proposed front dominates fcCLR.
pub fn fig8(scale: RunScale, config: &ExecConfig) -> String {
    let tasks = match scale {
        RunScale::Tiny => 10,
        RunScale::Smoke => 20,
        RunScale::Paper => 50,
    };
    let (platform, graph) =
        apps::synthetic_app(tasks, 7 + tasks as u64).expect("synthetic app builds");
    let dse = config.apply(ClrEarly::new(&graph, &platform).expect("tDSE succeeds"));
    let budget = scale.budget();
    let mut out = String::from("# series: method, avg-makespan[s], app-error-prob\n");
    let grid = [
        ("fcCLR", CampaignPlan::fc()),
        ("proposed", CampaignPlan::proposed()),
    ];
    for (label, plan) in &grid {
        let Some(cell) = campaign_cell("fig8", tasks, label, &dse, plan, &budget) else {
            return halted(out);
        };
        out.push_str(&series(label, &cell.objectives));
    }
    out
}

/// Table VI: percentage increase of the proposed method's hypervolume
/// over fcCLR for 10…100 tasks.
///
/// Expected shape: consistently positive, tens to hundreds of percent
/// (the paper reports 73–231%, average 129%).
pub fn table6(scale: RunScale, config: &ExecConfig) -> String {
    let budget = scale.budget();
    let mut table = Table::new(vec![
        "#Tasks".into(),
        "% HV increase (proposed vs fcCLR)".into(),
    ]);
    for &tasks in &scale.sizes() {
        let (platform, graph) =
            apps::synthetic_app(tasks, 7 + tasks as u64).expect("synthetic app builds");
        let dse = config.apply(ClrEarly::new(&graph, &platform).expect("tDSE succeeds"));
        let grid = [
            ("fcCLR", CampaignPlan::fc()),
            ("proposed", CampaignPlan::proposed()),
        ];
        let mut fronts = Vec::new();
        for (label, plan) in &grid {
            let Some(cell) = campaign_cell("table6", tasks, label, &dse, plan, &budget) else {
                return halted(table.to_string());
            };
            fronts.push(cell.objectives);
        }
        let r = reference_point(fronts.iter().map(Vec::as_slice));
        let gain = percent_increase(hypervolume(&fronts[1], &r), hypervolume(&fronts[0], &r));
        table.row(vec![tasks.to_string(), pct(gain)]);
    }
    table.to_string()
}

/// Fig. 10: Pareto fronts of the proposed and pfCLR methods under the
/// three tDSE library configurations, for a 30-task application.
///
/// Expected shape: result quality degrades from tDSE_1 to tDSE_3 for both
/// methods, with the proposed method matching or beating pfCLR per run.
pub fn fig10(scale: RunScale, config: &ExecConfig) -> String {
    let tasks = match scale {
        RunScale::Tiny => 8,
        RunScale::Smoke => 10,
        RunScale::Paper => 30,
    };
    let (platform, graph) =
        apps::synthetic_app(tasks, 7 + tasks as u64).expect("synthetic app builds");
    let budget = scale.budget();
    let mut out = String::from("# series: method_run, avg-makespan[s], app-error-prob\n");
    for (label, objs) in tdse_runs() {
        let dse = config.apply(
            ClrEarly::with_tdse_config(&graph, &platform, TdseConfig::new().with_objectives(objs))
                .expect("tDSE succeeds"),
        );
        let grid = [
            (format!("proposed_{label}"), CampaignPlan::proposed()),
            (format!("pfCLR_{label}"), CampaignPlan::pf()),
        ];
        for (tag, plan) in &grid {
            let Some(cell) = campaign_cell("fig10", tasks, tag, &dse, plan, &budget) else {
                return halted(out);
            };
            out.push_str(&series(tag, &cell.objectives));
        }
    }
    out
}

/// Table VII: percentage increase in hypervolume over the `pfCLR_3`
/// baseline for `{proposed, pfCLR} × {tDSE_1, tDSE_2, tDSE_3}` across
/// application sizes.
///
/// Expected shape: gains shrink from run 1 to run 3 (bigger libraries
/// degrade both methods), with `proposed_k ≥ pfCLR_k` in (almost) every
/// cell and `pfCLR_3 = 0` by construction.
pub fn table7(scale: RunScale, config: &ExecConfig) -> String {
    let budget = scale.budget();
    let runs = tdse_runs();
    let mut table = Table::new(vec![
        "#Tasks".into(),
        "proposed_1".into(),
        "pfCLR_1".into(),
        "proposed_2".into(),
        "pfCLR_2".into(),
        "proposed_3".into(),
        "pfCLR_3".into(),
    ]);
    for &tasks in &scale.sizes() {
        let (platform, graph) =
            apps::synthetic_app(tasks, 7 + tasks as u64).expect("synthetic app builds");
        // Collect all six fronts, then score against a common reference.
        let mut fronts: Vec<Vec<Vec<f64>>> = Vec::new();
        for (label, objs) in &runs {
            let dse = config.apply(
                ClrEarly::with_tdse_config(
                    &graph,
                    &platform,
                    TdseConfig::new().with_objectives(objs.clone()),
                )
                .expect("tDSE succeeds"),
            );
            let grid = [
                (format!("proposed_{label}"), CampaignPlan::proposed()),
                (format!("pfCLR_{label}"), CampaignPlan::pf()),
            ];
            for (tag, plan) in &grid {
                let Some(cell) = campaign_cell("table7", tasks, tag, &dse, plan, &budget) else {
                    return halted(table.to_string());
                };
                fronts.push(cell.objectives);
            }
        }
        let reference = reference_point(fronts.iter().map(Vec::as_slice));
        let hv: Vec<f64> = fronts.iter().map(|f| hypervolume(f, &reference)).collect();
        let baseline = hv[5]; // pfCLR_tDSE_3
        let mut row = vec![tasks.to_string()];
        for &h in &hv {
            row.push(pct(percent_increase(h, baseline)));
        }
        table.row(row);
    }
    table.to_string()
}

/// Formats the two-method hypervolume comparison the ablations share.
fn hv_pair(tag_a: &str, a: &[Vec<f64>], tag_b: &str, b: &[Vec<f64>]) -> String {
    let r = reference_point([a, b]);
    format!(
        "{tag_a},{:.6e}\n{tag_b},{:.6e}\ngain-pct,{}\n",
        hypervolume(a, &r),
        hypervolume(b, &r),
        pct(percent_increase(hypervolume(a, &r), hypervolume(b, &r)))
    )
}

/// Runs a two-cell ablation grid on a 30-task application, returning the
/// two fronts (or `None` when the sweep ledger halts the run).
fn ablation_grid(
    experiment: &str,
    app_seed: u64,
    grid: &[(&str, CampaignPlan); 2],
    scale: RunScale,
    config: &ExecConfig,
) -> Option<[Vec<Vec<f64>>; 2]> {
    let (platform, graph) = apps::synthetic_app(30, app_seed).expect("synthetic app builds");
    let dse = config.apply(ClrEarly::new(&graph, &platform).expect("tDSE succeeds"));
    let budget = scale.budget();
    let mut fronts = Vec::new();
    for (label, plan) in grid {
        let cell = campaign_cell(experiment, 30, label, &dse, plan, &budget)?;
        fronts.push(cell.objectives);
    }
    let [a, b] = <[Vec<Vec<f64>>; 2]>::try_from(fronts).expect("two cells");
    Some([a, b])
}

/// Ablation: proposed (seeded) vs an unseeded fcCLR run with the *same*
/// total budget, isolating the value of seeding (DESIGN.md §5).
pub fn ablation_seeding(scale: RunScale, config: &ExecConfig) -> String {
    let grid = [
        ("proposed", CampaignPlan::proposed()),
        ("fcCLR", CampaignPlan::fc()),
    ];
    let Some([seeded, unseeded]) = ablation_grid("ablation_seeding", 37, &grid, scale, config)
    else {
        return halted(String::new());
    };
    hv_pair("seeded-hv", &seeded, "unseeded-hv", &unseeded)
}

/// Ablation: tournament size 5 (paper) vs 2, at equal budget.
pub fn ablation_tournament(scale: RunScale, config: &ExecConfig) -> String {
    let grid = [
        ("pfCLR", CampaignPlan::pf()),
        ("pfCLR_k2", CampaignPlan::pf_with_tournament(2)),
    ];
    let Some([k5, k2]) = ablation_grid("ablation_tournament", 41, &grid, scale, config) else {
        return halted(String::new());
    };
    hv_pair("k5-hv", &k5, "k2-hv", &k2)
}

/// Ablation: pfCLR's Pareto pruning vs a random subset of equal size.
pub fn ablation_pruning(scale: RunScale, config: &ExecConfig) -> String {
    let grid = [
        ("pfCLR", CampaignPlan::pf()),
        ("random-subset", CampaignPlan::random_subset(99)),
    ];
    let Some([pruned, random]) = ablation_grid("ablation_pruning", 43, &grid, scale, config) else {
        return halted(String::new());
    };
    hv_pair("pareto-hv", &pruned, "random-hv", &random)
}

/// Ablation: NSGA-II vs SPEA2 as the MOEA backend for pfCLR at equal
/// budget (DESIGN.md §5).
pub fn ablation_moea(scale: RunScale, config: &ExecConfig) -> String {
    let grid = [
        ("pfCLR", CampaignPlan::pf()),
        ("pfCLR_spea2", CampaignPlan::pf_spea2()),
    ];
    let Some([nsga, spea]) = ablation_grid("ablation_moea", 47, &grid, scale, config) else {
        return halted(String::new());
    };
    hv_pair("nsga2-hv", &nsga, "spea2-hv", &spea).replace("gain-pct", "nsga2-gain-pct")
}

/// Extension study (DESIGN.md §8): the same application optimized on the
/// plain paper platform vs the NoC-enabled platform. Communication-aware
/// scheduling shifts the front right (transfers cost time) and changes
/// which mappings win — the makespan inflation quantifies the modeling
/// gap the paper's future-work section warns about.
pub fn ablation_comm(scale: RunScale, config: &ExecConfig) -> String {
    let (_, graph) = apps::synthetic_app(30, 53).expect("synthetic app builds");
    let budget = scale.budget();
    let plan = CampaignPlan::proposed();
    let grid = [
        ("comm-free", apps::paper_platform()),
        ("comm-aware", apps::paper_platform_with_noc()),
    ];
    let mut out = String::from("# series: platform, avg-makespan[s], app-error-prob\n");
    let mut fronts = Vec::new();
    for (label, platform) in &grid {
        let dse = config.apply(ClrEarly::new(&graph, platform).expect("tDSE succeeds"));
        let Some(cell) = campaign_cell("ablation_comm", 30, label, &dse, &plan, &budget) else {
            return halted(out);
        };
        out.push_str(&series(label, &cell.objectives));
        fronts.push(cell.objectives);
    }
    // Objective 0 is the average makespan for the default objective set.
    let best_makespan = |front: &[Vec<f64>]| front.iter().map(|p| p[0]).fold(f64::MAX, f64::min);
    out.push_str(&format!(
        "min-makespan-inflation-pct,{:.1}\n",
        100.0 * (best_makespan(&fronts[1]) - best_makespan(&fronts[0])) / best_makespan(&fronts[0])
    ));
    out
}

/// Tri-objective system DSE (the framework's "select task and
/// system-level objectives independently" claim): optimize makespan,
/// application error probability *and* lifetime simultaneously, scored
/// with the exact 3-D WFG hypervolume.
///
/// Runs the proposed method twice — once with a task-level library
/// Pareto-filtered under time+error only (*mismatched*: blind to the
/// lifetime axis) and once filtered under time+error+MTTF (*matched*) —
/// against the fcCLR baseline. The mismatched library loses to fcCLR in
/// 3-D while the matched one recovers, which is the quantitative form of
/// the paper's Section VI-C2 conclusion that effective system-level
/// exploration depends on choosing the right task-level objectives.
pub fn multiobj(scale: RunScale, config: &ExecConfig) -> String {
    use clre::tdse::TdseConfig as Cfg;
    use clre_model::qos::{Objective, ObjectiveSet};
    let (platform, graph) = apps::synthetic_app(20, 61).expect("synthetic app builds");
    let objectives = ObjectiveSet::new(vec![
        Objective::Makespan,
        Objective::ErrorProbability,
        Objective::Mttf,
    ]);
    let budget = scale.budget();
    let grid = [
        (
            "proposed-mismatched",
            ObjectiveSet::set_ii(),
            CampaignPlan::proposed(),
        ),
        (
            "proposed-matched",
            ObjectiveSet::set_iii(),
            CampaignPlan::proposed(),
        ),
        ("fcCLR", ObjectiveSet::set_ii(), CampaignPlan::fc()),
    ];
    let mut fronts = Vec::new();
    for (label, tdse_objs, plan) in &grid {
        let dse = config
            .apply(
                ClrEarly::with_tdse_config(
                    &graph,
                    &platform,
                    Cfg::new().with_objectives(tdse_objs.clone()),
                )
                .expect("tDSE succeeds"),
            )
            .with_objectives(objectives.clone());
        let Some(cell) = campaign_cell("multiobj", 20, label, &dse, plan, &budget) else {
            return halted(String::new());
        };
        fronts.push(cell.objectives);
    }
    let r = reference_point(fronts.iter().map(Vec::as_slice));
    let (hm, hq, hf) = (
        hypervolume(&fronts[0], &r),
        hypervolume(&fronts[1], &r),
        hypervolume(&fronts[2], &r),
    );
    format!(
        "proposed-mismatched-hv3d,{hm:.6e}
proposed-matched-hv3d,{hq:.6e}
fcclr-hv3d,{hf:.6e}
matched-vs-fcclr-pct,{}
matched-vs-mismatched-pct,{}
",
        pct(percent_increase(hq, hf)),
        pct(percent_increase(hq, hm))
    )
}

/// Runtime scaling study (the abstract's "significant scaling with
/// application size"): wall-clock of the task-level DSE and of one
/// pfCLR/fcCLR generation-budget as the task count grows, plus the
/// evaluation throughput. The pruned pfCLR evaluation is not cheaper per
/// evaluation here (metrics are precomputed for both), so the scaling
/// argument rests on search-space size — which the two rightmost columns
/// make explicit.
///
/// Wall-clock measurements are never ledgered: replaying a cached cell
/// would report the cache hit's latency, not the solver's.
pub fn scaling(scale: RunScale, config: &ExecConfig) -> String {
    use std::time::Instant;
    let budget = scale.budget();
    let mut table = Table::new(vec![
        "#Tasks".into(),
        "tDSE[s]".into(),
        "pfCLR[s]".into(),
        "fcCLR[s]".into(),
        "pf-space/task".into(),
        "fc-space/task".into(),
    ]);
    for &tasks in &scale.sizes() {
        let (platform, graph) =
            apps::synthetic_app(tasks, 7 + tasks as u64).expect("synthetic app builds");
        let t0 = Instant::now();
        let dse = config.apply(ClrEarly::new(&graph, &platform).expect("tDSE succeeds"));
        let t_tdse = t0.elapsed();
        let t0 = Instant::now();
        dse.run(&CampaignPlan::pf(), &budget).expect("pfCLR runs");
        let t_pf = t0.elapsed();
        let t0 = Instant::now();
        dse.run(&CampaignPlan::fc(), &budget).expect("fcCLR runs");
        let t_fc = t0.elapsed();
        // Mean per-task choice-list sizes (averaged over types used).
        let types = graph.task_types().len();
        let pf_mean: f64 = (0..types)
            .map(|ty| {
                dse.library()
                    .pareto_count(clre_model::TaskTypeId::new(ty as u32)) as f64
            })
            .sum::<f64>()
            / types as f64;
        let fc_mean: f64 = (0..types)
            .map(|ty| {
                dse.library()
                    .full_count(clre_model::TaskTypeId::new(ty as u32)) as f64
            })
            .sum::<f64>()
            / types as f64;
        table.row(vec![
            tasks.to_string(),
            format!("{:.2}", t_tdse.as_secs_f64()),
            format!("{:.2}", t_pf.as_secs_f64()),
            format!("{:.2}", t_fc.as_secs_f64()),
            format!("{pf_mean:.0}"),
            format!("{fc_mean:.0}"),
        ]);
    }
    table.to_string()
}

/// Convenience for benches/tests: one (CLR, Agnostic) hypervolume pair.
pub fn clr_vs_agnostic_hv(tasks: usize, budget: &StageBudget, config: &ExecConfig) -> (f64, f64) {
    let (platform, graph) =
        apps::synthetic_app(tasks, 7 + tasks as u64).expect("synthetic app builds");
    let dse = config.apply(ClrEarly::new(&graph, &platform).expect("tDSE succeeds"));
    let clr = dse
        .run(&CampaignPlan::proposed(), budget)
        .expect("proposed runs");
    let agn = dse
        .run(&CampaignPlan::agnostic(), budget)
        .expect("agnostic runs");
    let a = clr.objectives();
    let b = agn.objectives();
    let r = reference_point([a.as_slice(), b.as_slice()]);
    (hypervolume(&a, &r), hypervolume(&b, &r))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_contains_all_series() {
        let out = fig7(RunScale::Smoke, &ExecConfig::default());
        for tag in ["CLR", "Agnostic", "DVFS", "HWRel", "SSWRel", "ASWRel"] {
            assert!(out.contains(tag), "missing {tag}");
        }
    }

    #[test]
    fn table5_clr_wins_at_smoke_scale() {
        let out = table5(RunScale::Smoke, &ExecConfig::default());
        let gains: Vec<f64> = out
            .lines()
            .skip(2)
            .filter_map(|l| l.split_whitespace().nth(1))
            .filter_map(|v| v.parse().ok())
            .collect();
        assert_eq!(gains.len(), 2);
        // Individual sizes fluctuate at smoke budgets; the aggregate
        // direction must hold (paper-scale per-size results live in
        // EXPERIMENTS.md).
        let mean = gains.iter().sum::<f64>() / gains.len() as f64;
        assert!(mean > 0.0, "CLR should beat Agnostic on average: {gains:?}");
    }

    #[test]
    fn table6_proposed_not_worse() {
        let out = table6(RunScale::Smoke, &ExecConfig::default());
        let gains: Vec<f64> = out
            .lines()
            .skip(2)
            .filter_map(|l| l.split_whitespace().nth(1))
            .filter_map(|v| v.parse().ok())
            .collect();
        assert_eq!(gains.len(), 2);
        for g in gains {
            assert!(g > -10.0, "proposed collapsed vs fcCLR: {g}%");
        }
    }

    #[test]
    fn table7_baseline_is_zero() {
        let out = table7(RunScale::Smoke, &ExecConfig::default());
        for line in out.lines().skip(2) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(cells.last(), Some(&"0"), "pfCLR_3 must be the baseline");
        }
    }

    #[test]
    fn fig8_and_fig10_emit_series() {
        let f8 = fig8(RunScale::Smoke, &ExecConfig::default());
        assert!(f8.contains("fcCLR") && f8.contains("proposed"));
        let f10 = fig10(RunScale::Smoke, &ExecConfig::default());
        for tag in [
            "proposed_tDSE_1",
            "pfCLR_tDSE_1",
            "proposed_tDSE_3",
            "pfCLR_tDSE_3",
        ] {
            assert!(f10.contains(tag), "missing {tag}");
        }
    }

    #[test]
    fn multiobj_reports_3d_hypervolumes() {
        let out = multiobj(RunScale::Tiny, &ExecConfig::default());
        for tag in [
            "proposed-mismatched-hv3d",
            "proposed-matched-hv3d",
            "fcclr-hv3d",
        ] {
            let hv: f64 = out
                .lines()
                .find(|l| l.starts_with(tag))
                .and_then(|l| l.split(',').nth(1))
                .and_then(|v| v.parse().ok())
                .expect("hv row");
            assert!(hv > 0.0, "{tag} must be positive");
        }
    }

    #[test]
    fn scaling_reports_all_sizes() {
        let out = scaling(RunScale::Smoke, &ExecConfig::default());
        assert_eq!(out.lines().count(), 2 + RunScale::Smoke.sizes().len());
        // The fc space per task is the full impl×DVFS×CLR product.
        assert!(out.contains("560"));
    }

    #[test]
    fn moea_ablation_reports_both_backends() {
        let out = ablation_moea(RunScale::Smoke, &ExecConfig::default());
        assert!(out.contains("nsga2-hv") && out.contains("spea2-hv"));
    }

    #[test]
    fn comm_awareness_inflates_makespan() {
        let out = ablation_comm(RunScale::Smoke, &ExecConfig::default());
        let inflation: f64 = out
            .lines()
            .find(|l| l.starts_with("min-makespan-inflation-pct"))
            .and_then(|l| l.split(',').nth(1))
            .and_then(|v| v.parse().ok())
            .expect("inflation row present");
        assert!(
            inflation > -1.0,
            "communication can only slow things down: {inflation}%"
        );
        assert!(out.contains("comm-free") && out.contains("comm-aware"));
    }

    #[test]
    fn ablations_report_hypervolumes() {
        for out in [
            ablation_seeding(RunScale::Smoke, &ExecConfig::default()),
            ablation_tournament(RunScale::Smoke, &ExecConfig::default()),
            ablation_pruning(RunScale::Smoke, &ExecConfig::default()),
        ] {
            assert!(out.contains("gain-pct"));
            assert_eq!(out.lines().count(), 3);
        }
    }
}

//! Experiment harness reproducing every table and figure of the
//! CL(R)Early paper's evaluation (Section VI).
//!
//! Each experiment is a plain function returning a formatted report so
//! that the `experiments` binary, the integration tests and the Criterion
//! benches can all drive the same code. The [`RunScale`] parameter selects
//! between a seconds-long smoke configuration (benches, CI) and the
//! paper-scale configuration used to produce `EXPERIMENTS.md`.
//!
//! | Experiment | Paper artifact | Function |
//! |---|---|---|
//! | `fig6a` | Fig. 6(a) task-level fronts per DVFS mode | [`tasklevel::fig6a`] |
//! | `fig6b` | Fig. 6(b) fronts vs implicit masking | [`tasklevel::fig6b`] |
//! | `table4` | Table IV Pareto counts per objective set | [`tasklevel::table4`] |
//! | `fig9` | Fig. 9 library sizes for tDSE_1/2/3 | [`tasklevel::fig9`] |
//! | `fig7` | Fig. 7 CLR vs Agnostic fronts (T=20) | [`system::fig7`] |
//! | `table5` | Table V hypervolume gain vs Agnostic | [`system::table5`] |
//! | `fig8` | Fig. 8 proposed vs fcCLR fronts (T=50) | [`system::fig8`] |
//! | `table6` | Table VI hypervolume gain vs fcCLR | [`system::table6`] |
//! | `fig10` | Fig. 10 proposed vs pfCLR per tDSE run | [`system::fig10`] |
//! | `table7` | Table VII gains over pfCLR_3 | [`system::table7`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cachebench;
pub mod chaosbench;
pub mod exec_config;
pub mod islandbench;
pub mod kernelbench;
pub mod perfgate;
pub mod report;
pub mod scenariobench;
pub mod servebench;
pub mod sweep;
pub mod system;
pub mod tasklevel;

use clre::methodology::StageBudget;

/// How big an experiment run should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunScale {
    /// Minimal budgets for Criterion benches: each experiment iteration
    /// stays around a second so `cargo bench` completes on one core.
    Tiny,
    /// Small budgets and few application sizes: seconds, for tests.
    Smoke,
    /// The configuration used to produce `EXPERIMENTS.md`.
    Paper,
}

impl RunScale {
    /// The GA budget for system-level runs at this scale.
    pub fn budget(self) -> StageBudget {
        match self {
            RunScale::Tiny => StageBudget::new(8, 4).with_seed(11),
            RunScale::Smoke => StageBudget::new(32, 24).with_seed(11),
            RunScale::Paper => StageBudget::new(60, 60).with_seed(11),
        }
    }

    /// The application sizes swept by the scaling tables.
    pub fn sizes(self) -> Vec<usize> {
        match self {
            RunScale::Tiny => vec![8],
            RunScale::Smoke => vec![10, 20],
            RunScale::Paper => vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100],
        }
    }
}

/// Runs every experiment at the given scale under the given execution
/// configuration and concatenates the reports (the content of
/// `EXPERIMENTS.md`'s measured sections).
pub fn run_all(scale: RunScale, config: &exec_config::ExecConfig) -> String {
    let mut out = String::new();
    for (name, body) in [
        ("fig6a", tasklevel::fig6a()),
        ("fig6b", tasklevel::fig6b()),
        ("table4", tasklevel::table4()),
        ("fig9", tasklevel::fig9()),
        ("fig7", system::fig7(scale, config)),
        ("table5", system::table5(scale, config)),
        ("fig8", system::fig8(scale, config)),
        ("table6", system::table6(scale, config)),
        ("fig10", system::fig10(scale, config)),
        ("table7", system::table7(scale, config)),
    ] {
        out.push_str(&format!("==== {name} ====\n{body}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_expose_budgets_and_sizes() {
        assert_eq!(RunScale::Smoke.sizes(), vec![10, 20]);
        assert_eq!(RunScale::Paper.sizes().len(), 10);
        assert!(RunScale::Paper.budget().population > RunScale::Smoke.budget().population);
    }
}

//! Regenerates the paper's tables and figures.
//!
//! Usage: `experiments <id> [--smoke]` where `<id>` is one of
//! `fig6a fig6b table4 fig7 table5 fig8 table6 fig9 fig10 table7
//! ablations all`.

use clre_bench::{system, tasklevel, RunScale};

fn usage() -> ! {
    eprintln!(
        "usage: experiments <fig6a|fig6b|table4|fig7|table5|fig8|table6|fig9|fig10|table7|scaling|chkpt|multiobj|ablations|all> [--smoke]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--smoke") {
        RunScale::Smoke
    } else {
        RunScale::Paper
    };
    let Some(id) = args.iter().find(|a| !a.starts_with("--")) else {
        usage();
    };
    let out = match id.as_str() {
        "fig6a" => tasklevel::fig6a(),
        "fig6b" => tasklevel::fig6b(),
        "table4" => tasklevel::table4(),
        "fig9" => tasklevel::fig9(),
        "fig7" => system::fig7(scale),
        "table5" => system::table5(scale),
        "fig8" => system::fig8(scale),
        "table6" => system::table6(scale),
        "fig10" => system::fig10(scale),
        "table7" => system::table7(scale),
        "scaling" => system::scaling(scale),
        "chkpt" => tasklevel::chkpt(),
        "multiobj" => system::multiobj(scale),
        "ablations" => format!(
            "-- seeding --\n{}-- tournament --\n{}-- pruning --\n{}-- moea --\n{}-- communication --\n{}",
            system::ablation_seeding(scale),
            system::ablation_tournament(scale),
            system::ablation_pruning(scale),
            system::ablation_moea(scale),
            system::ablation_comm(scale)
        ),
        "all" => clre_bench::run_all(scale),
        _ => usage(),
    };
    println!("{out}");
}

//! Regenerates the paper's tables and figures.
//!
//! Usage: `experiments <id> [--smoke|--tiny] [--workers N] [--trace FILE]
//! [--ledger FILE] [--halt-after-cells N] [--cache FILE]
//! [--backend inprocess|threads|subprocess[:PATH]]` where `<id>` is
//! one of `fig6a fig6b table4 fig7 table5 fig8 table6 fig9 fig10 table7
//! scaling chkpt multiobj ablations cachebench islandbench kernelbench scenariobench
//! servebench chaos all`.
//!
//! `--workers N` sets the evaluation worker-pool size (default: available
//! parallelism); results are bit-identical for any value. `--trace FILE`
//! writes the machine-readable per-generation execution trace (see
//! DESIGN.md §10) next to the printed report. `--ledger FILE` journals
//! every finished `(task count, method)` sweep cell so a killed run can
//! be restarted with the same file and resume at the last finished cell;
//! `--halt-after-cells N` stops after computing N uncached cells (exit
//! code 3) — the deterministic stand-in for a kill used by CI.
//! `--cache FILE` enables the process-wide evaluation cache (DESIGN.md
//! §12) persisted at FILE, so a rerun or a resumed sweep warm-starts from
//! everything already evaluated; results stay bit-identical, only faster.
//! `--ledger FILE` enables it implicitly, persisting next to the ledger.
//! `--backend` selects where evaluation batches run (in-process, a
//! thread pool, or supervised `clre-exec-worker` subprocesses); fronts
//! are bit-identical across backends.

use std::path::PathBuf;

use clre::remote::BackendChoice;
use clre_bench::exec_config::ExecConfig;
use clre_bench::{
    cachebench, chaosbench, islandbench, kernelbench, perfgate, scenariobench, servebench, sweep,
    system, tasklevel, RunScale,
};

fn usage() -> ! {
    eprintln!(
        "usage: experiments <fig6a|fig6b|table4|fig7|table5|fig8|table6|fig9|fig10|table7|scaling|chkpt|multiobj|ablations|cachebench|islandbench|kernelbench|scenariobench|servebench|chaos|all> [--smoke|--tiny] [--workers N] [--trace FILE] [--ledger FILE] [--halt-after-cells N] [--cache FILE] [--backend inprocess|threads|subprocess[:PATH]]\n       experiments perfgate --baseline FILE --current FILE"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = RunScale::Paper;
    let mut workers = 0;
    let mut backend = BackendChoice::InProcess;
    let mut id: Option<&str> = None;
    let mut trace: Option<PathBuf> = None;
    let mut ledger: Option<PathBuf> = None;
    let mut halt_after: Option<usize> = None;
    let mut cache_file: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut current: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let value = |i: &mut usize| -> &str {
            *i += 1;
            args.get(*i).map(String::as_str).unwrap_or_else(|| usage())
        };
        match arg {
            "--smoke" => scale = RunScale::Smoke,
            "--tiny" => scale = RunScale::Tiny,
            "--workers" => match value(&mut i).parse() {
                Ok(n) => workers = n,
                Err(_) => usage(),
            },
            "--backend" => match BackendChoice::parse(value(&mut i)) {
                Ok(choice) => backend = choice,
                Err(e) => {
                    eprintln!("--backend: {e}");
                    usage();
                }
            },
            "--trace" => trace = Some(PathBuf::from(value(&mut i))),
            "--ledger" => ledger = Some(PathBuf::from(value(&mut i))),
            "--halt-after-cells" => match value(&mut i).parse() {
                Ok(n) => halt_after = Some(n),
                Err(_) => usage(),
            },
            "--cache" => cache_file = Some(PathBuf::from(value(&mut i))),
            "--baseline" => baseline = Some(PathBuf::from(value(&mut i))),
            "--current" => current = Some(PathBuf::from(value(&mut i))),
            _ if arg.starts_with("--") => usage(),
            _ if id.is_none() => id = Some(arg),
            _ => usage(),
        }
        i += 1;
    }
    let Some(id) = id else { usage() };
    // The perf gate is a pure file diff — no scale, workers or sidecar
    // machinery applies, so it short-circuits the experiment plumbing.
    if id == "perfgate" {
        let (Some(baseline), Some(current)) = (baseline, current) else {
            eprintln!("perfgate requires --baseline FILE and --current FILE");
            usage();
        };
        match perfgate::gate_files(&baseline, &current) {
            Ok(report) => {
                print!("{report}");
                return;
            }
            Err(report) => {
                eprint!("{report}");
                std::process::exit(1);
            }
        }
    }
    if halt_after.is_some() && ledger.is_none() {
        eprintln!("--halt-after-cells requires --ledger");
        usage();
    }
    if let Some(path) = &ledger {
        if let Err(e) = sweep::configure(path, halt_after) {
            eprintln!("failed to open sweep ledger {}: {e}", path.display());
            std::process::exit(1);
        }
        // A journaled sweep warm-starts its evaluations too: persist the
        // cache next to the ledger unless --cache chose a spot itself.
        if cache_file.is_none() {
            cache_file = Some(clre::cache::cache_sidecar_path(path));
        }
    }
    let mut config = ExecConfig::new().with_workers(workers);
    if trace.is_some() {
        config = config.with_trace();
    }
    if let Some(path) = &cache_file {
        let cache = clre::EvalCache::shared();
        if let Err(e) = cache.bind_sidecar(path) {
            // The cache is an accelerator, never a correctness input:
            // run cold in memory rather than abort.
            eprintln!(
                "cache sidecar {} unusable ({e}); running cold",
                path.display()
            );
        }
        config = config.with_cache(cache);
    }
    let config = match config.with_backend(&backend) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("experiments: backend: {e}");
            std::process::exit(1);
        }
    };
    let out = match id {
        "fig6a" => tasklevel::fig6a(),
        "fig6b" => tasklevel::fig6b(),
        "table4" => tasklevel::table4(),
        "fig9" => tasklevel::fig9(),
        "fig7" => system::fig7(scale, &config),
        "table5" => system::table5(scale, &config),
        "fig8" => system::fig8(scale, &config),
        "table6" => system::table6(scale, &config),
        "fig10" => system::fig10(scale, &config),
        "table7" => system::table7(scale, &config),
        "scaling" => system::scaling(scale, &config),
        "chkpt" => tasklevel::chkpt(),
        "multiobj" => system::multiobj(scale, &config),
        "ablations" => format!(
            "-- seeding --\n{}-- tournament --\n{}-- pruning --\n{}-- moea --\n{}-- communication --\n{}",
            system::ablation_seeding(scale, &config),
            system::ablation_tournament(scale, &config),
            system::ablation_pruning(scale, &config),
            system::ablation_moea(scale, &config),
            system::ablation_comm(scale, &config)
        ),
        "cachebench" => cachebench::eval_cache(scale, &config),
        "islandbench" => islandbench::islands(scale, &config),
        "chaos" => chaosbench::chaos(scale),
        "kernelbench" => kernelbench::moea_kernels(scale),
        "scenariobench" => scenariobench::scenarios(scale),
        "servebench" => servebench::serve(scale),
        "all" => clre_bench::run_all(scale, &config),
        _ => usage(),
    };
    println!("{out}");
    if let (Some(path), Some(sink)) = (trace, config.trace()) {
        let telemetry = sink.lock().expect("trace sink poisoned");
        if let Err(e) = telemetry.write_trace(&path) {
            eprintln!("failed to write trace to {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!(
            "trace: {} records, {} evaluations -> {}",
            telemetry.records().len(),
            telemetry.total_evaluations(),
            path.display()
        );
    }
    if sweep::halted() {
        eprintln!("sweep halted: cell budget exhausted; rerun with the same --ledger to resume");
        std::process::exit(3);
    }
}

//! Performance trend gate over the MOEA kernel and scenario benchmarks.
//!
//! CI runs `experiments kernelbench` and diffs the fresh
//! `BENCH_moea_kernels.json` against the committed baseline with
//! [`compare`]: for every (N, M) cell and every gated timing key, the
//! current value must stay under `max(2 × baseline, baseline + 500 µs)`.
//! The 2× factor absorbs runner-to-runner noise; the 500 µs absolute
//! floor keeps sub-millisecond cells from tripping on scheduler jitter
//! (doubling 40 µs is not a regression signal).
//!
//! The same gate covers `BENCH_scenarios.json` via
//! [`compare_scenarios`]: each reliability scenario's
//! `chain_analysis_us` cell (the Markov solves of that scenario's chain
//! templates) is held to the identical allowance, so a new or modified
//! chain template cannot silently regress the task-level analysis cost.
//! [`gate_files`] dispatches on the report's `"bench"` header, so one
//! `experiments perfgate --baseline --current` invocation serves both.
//!
//! The reports are the hand-formatted JSON the benches write — one cell
//! object per line inside `"cases": [...]` / `"cells": [...]` — so the
//! parser here is a line-oriented key scanner, not a general JSON
//! reader. A baseline that stops matching that shape is a hard error,
//! never a silent pass.

use std::path::Path;

/// The timing keys the gate watches. Oracle timings (`sort_naive_us`,
/// `truncate_naive_us`) are deliberately absent: the naive algorithms
/// exist to validate results, and their cost is not a product property.
/// `dist_refill_us` is likewise ungated — it is the full-rebuild
/// reference the incremental path is compared against, not a path the
/// generation loop takes.
const GATED_KEYS: [&str; 6] = [
    "sort_ens_us",
    "crowding_us",
    "truncate_cached_us",
    "hv_us",
    "truncate_incremental_us",
    "dist_update_us",
];

/// Number of gated keys (the per-cell timing array length).
const N_GATED: usize = GATED_KEYS.len();

/// Absolute slack in microseconds added on top of the 2× ratio.
const ABSOLUTE_SLACK_US: u64 = 500;

/// One gated timing that got worse than the allowance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regression {
    /// Cloud size of the cell.
    pub n: u64,
    /// Objective count of the cell.
    pub m: u64,
    /// The timing key that regressed.
    pub key: &'static str,
    /// Baseline microseconds.
    pub baseline_us: u64,
    /// Current microseconds.
    pub current_us: u64,
    /// The allowance the current value exceeded.
    pub limit_us: u64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} m={} {}: {}us -> {}us (limit {}us)",
            self.n, self.m, self.key, self.baseline_us, self.current_us, self.limit_us
        )
    }
}

/// Extracts `"key": <integer>` from one cell line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let start = line.find(&format!("\"{key}\":"))? + key.len() + 3;
    let rest = line[start..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One `(n, m)` cell with its gated timings.
#[derive(Debug, PartialEq, Eq)]
struct CellTimings {
    n: u64,
    m: u64,
    values: [(/* key idx */ usize, u64); N_GATED],
}

/// Parses every cell line of a kernel-bench report. Errors if the report
/// contains no cells or a cell is missing a gated key — a malformed
/// baseline must fail the gate loudly.
fn parse_cells(report: &str, label: &str) -> Result<Vec<CellTimings>, String> {
    let mut cells = Vec::new();
    for line in report.lines() {
        let Some(n) = field_u64(line, "n") else {
            continue;
        };
        let m = field_u64(line, "m")
            .ok_or_else(|| format!("{label}: cell n={n} has no \"m\" field: {line}"))?;
        let mut values = [(0usize, 0u64); N_GATED];
        for (idx, key) in GATED_KEYS.iter().enumerate() {
            let us = field_u64(line, key)
                .ok_or_else(|| format!("{label}: cell n={n} m={m} has no \"{key}\" field"))?;
            values[idx] = (idx, us);
        }
        cells.push(CellTimings { n, m, values });
    }
    if cells.is_empty() {
        return Err(format!("{label}: no benchmark cells found"));
    }
    Ok(cells)
}

/// What a baseline value allows the current value to reach.
fn limit(baseline_us: u64) -> u64 {
    (2 * baseline_us).max(baseline_us + ABSOLUTE_SLACK_US)
}

/// Diffs a current kernel-bench report against a baseline report.
/// Returns the regressions (empty = gate passes). Cells present only in
/// one report are an error: a shrunk benchmark must not pass by
/// omission.
pub fn compare(baseline: &str, current: &str) -> Result<Vec<Regression>, String> {
    let base_cells = parse_cells(baseline, "baseline")?;
    let cur_cells = parse_cells(current, "current")?;
    let mut regressions = Vec::new();
    for base in &base_cells {
        let cur = cur_cells
            .iter()
            .find(|c| c.n == base.n && c.m == base.m)
            .ok_or_else(|| format!("current report lost cell n={} m={}", base.n, base.m))?;
        for ((idx, base_us), (_, cur_us)) in base.values.iter().zip(&cur.values) {
            let limit_us = limit(*base_us);
            if *cur_us > limit_us {
                regressions.push(Regression {
                    n: base.n,
                    m: base.m,
                    key: GATED_KEYS[*idx],
                    baseline_us: *base_us,
                    current_us: *cur_us,
                    limit_us,
                });
            }
        }
    }
    if cur_cells.len() != base_cells.len() {
        return Err(format!(
            "cell count changed: baseline {} vs current {}",
            base_cells.len(),
            cur_cells.len()
        ));
    }
    Ok(regressions)
}

/// One scenario cell that got slower than the allowance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioRegression {
    /// Scenario name of the cell.
    pub scenario: String,
    /// Baseline microseconds of the chain analyses.
    pub baseline_us: u64,
    /// Current microseconds.
    pub current_us: u64,
    /// The allowance the current value exceeded.
    pub limit_us: u64,
}

impl std::fmt::Display for ScenarioRegression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scenario={} chain_analysis_us: {}us -> {}us (limit {}us)",
            self.scenario, self.baseline_us, self.current_us, self.limit_us
        )
    }
}

/// Extracts `"scenario": "<name>"` from one cell line.
fn field_scenario(line: &str) -> Option<&str> {
    let start = line.find("\"scenario\": \"")? + "\"scenario\": \"".len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

/// Parses every scenario cell line of a scenario-bench report. As
/// [`parse_cells`], malformed or empty reports are hard errors.
fn parse_scenario_cells(report: &str, label: &str) -> Result<Vec<(String, u64)>, String> {
    let mut cells = Vec::new();
    for line in report.lines() {
        let Some(name) = field_scenario(line) else {
            continue;
        };
        let us = field_u64(line, "chain_analysis_us").ok_or_else(|| {
            format!("{label}: scenario {name:?} has no \"chain_analysis_us\" field")
        })?;
        cells.push((name.to_owned(), us));
    }
    if cells.is_empty() {
        return Err(format!("{label}: no scenario cells found"));
    }
    Ok(cells)
}

/// Diffs a current scenario-bench report against a baseline report:
/// each scenario's chain-analysis time must stay within the same
/// allowance the kernel gate uses. A scenario present in only one
/// report is an error — a dropped chain-template family must not pass
/// by omission.
pub fn compare_scenarios(baseline: &str, current: &str) -> Result<Vec<ScenarioRegression>, String> {
    let base_cells = parse_scenario_cells(baseline, "baseline")?;
    let cur_cells = parse_scenario_cells(current, "current")?;
    let mut regressions = Vec::new();
    for (name, base_us) in &base_cells {
        let (_, cur_us) = cur_cells
            .iter()
            .find(|(n, _)| n == name)
            .ok_or_else(|| format!("current report lost scenario {name:?}"))?;
        let limit_us = limit(*base_us);
        if *cur_us > limit_us {
            regressions.push(ScenarioRegression {
                scenario: name.clone(),
                baseline_us: *base_us,
                current_us: *cur_us,
                limit_us,
            });
        }
    }
    if cur_cells.len() != base_cells.len() {
        return Err(format!(
            "scenario count changed: baseline {} vs current {}",
            base_cells.len(),
            cur_cells.len()
        ));
    }
    Ok(regressions)
}

/// One island cell that regressed: a digest disagreement between
/// backends, or a campaign that got slower than the allowance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IslandRegression {
    /// Plan name of the cell.
    pub plan: String,
    /// Island count of the cell.
    pub islands: u64,
    /// What went wrong, human-readable.
    pub what: String,
}

impl std::fmt::Display for IslandRegression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "plan={} islands={}: {}",
            self.plan, self.islands, self.what
        )
    }
}

/// Extracts `"plan": "<name>"` from one cell line.
fn field_plan(line: &str) -> Option<&str> {
    let start = line.find("\"plan\": \"")? + "\"plan\": \"".len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

/// Parses every cell line of an islands report into
/// `(plan, islands, digest_match, campaign_us)`.
fn parse_island_cells(report: &str, label: &str) -> Result<Vec<(String, u64, bool, u64)>, String> {
    let mut cells = Vec::new();
    for line in report.lines() {
        let Some(plan) = field_plan(line) else {
            continue;
        };
        let islands = field_u64(line, "islands")
            .ok_or_else(|| format!("{label}: cell {plan:?} has no \"islands\" field"))?;
        let matched = line
            .split("\"digest_match\": ")
            .nth(1)
            .and_then(|rest| rest.split([',', '}']).next())
            .and_then(|tok| tok.trim().parse().ok())
            .ok_or_else(|| format!("{label}: cell {plan:?} has no \"digest_match\" field"))?;
        let us = field_u64(line, "campaign_us")
            .ok_or_else(|| format!("{label}: cell {plan:?} has no \"campaign_us\" field"))?;
        cells.push((plan.to_owned(), islands, matched, us));
    }
    if cells.is_empty() {
        return Err(format!("{label}: no island cells found"));
    }
    Ok(cells)
}

/// Diffs a current islands report against a baseline report. Two gates
/// per cell: the current backends must still agree on the front digest
/// (the determinism contract — non-negotiable, no allowance), and the
/// campaign wall-clock must stay within the usual timing allowance. A
/// cell present in only one report is an error.
pub fn compare_islands(baseline: &str, current: &str) -> Result<Vec<IslandRegression>, String> {
    let base_cells = parse_island_cells(baseline, "baseline")?;
    let cur_cells = parse_island_cells(current, "current")?;
    let mut regressions = Vec::new();
    for (plan, islands, _, base_us) in &base_cells {
        let (_, _, matched, cur_us) = cur_cells
            .iter()
            .find(|(p, n, _, _)| p == plan && n == islands)
            .ok_or_else(|| format!("current report lost cell plan={plan:?} islands={islands}"))?;
        if !matched {
            regressions.push(IslandRegression {
                plan: plan.clone(),
                islands: *islands,
                what: "backend digests disagree".to_owned(),
            });
        }
        let limit_us = limit(*base_us);
        if *cur_us > limit_us {
            regressions.push(IslandRegression {
                plan: plan.clone(),
                islands: *islands,
                what: format!("campaign_us: {base_us}us -> {cur_us}us (limit {limit_us}us)"),
            });
        }
    }
    if cur_cells.len() != base_cells.len() {
        return Err(format!(
            "island cell count changed: baseline {} vs current {}",
            base_cells.len(),
            cur_cells.len()
        ));
    }
    Ok(regressions)
}

/// File-level entry point for the `experiments perfgate` subcommand:
/// reads both reports, dispatches on the `"bench"` header
/// (`moea_kernels` vs `scenarios` vs `islands`), and renders a
/// human-readable verdict. `Ok` = gate passed (report text), `Err` =
/// regressions or unreadable input (the caller exits non-zero).
pub fn gate_files(baseline: &Path, current: &Path) -> Result<String, String> {
    let base = std::fs::read_to_string(baseline)
        .map_err(|e| format!("reading baseline {}: {e}", baseline.display()))?;
    let cur = std::fs::read_to_string(current)
        .map_err(|e| format!("reading current {}: {e}", current.display()))?;
    let regressions: Vec<String> = if base.contains("\"bench\": \"scenarios\"") {
        compare_scenarios(&base, &cur)?
            .iter()
            .map(ToString::to_string)
            .collect()
    } else if base.contains("\"bench\": \"islands\"") {
        compare_islands(&base, &cur)?
            .iter()
            .map(ToString::to_string)
            .collect()
    } else {
        compare(&base, &cur)?
            .iter()
            .map(ToString::to_string)
            .collect()
    };
    if regressions.is_empty() {
        Ok(format!(
            "perfgate: ok — every gated timing within max(2x, +{ABSOLUTE_SLACK_US}us) of {}\n",
            baseline.display()
        ))
    } else {
        let mut out = String::from("perfgate: FAIL\n");
        for r in &regressions {
            out.push_str(&format!("  {r}\n"));
        }
        Err(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cells: &[(u64, u64, [u64; 6])]) -> String {
        let body: Vec<String> = cells
            .iter()
            .map(|(n, m, v)| {
                format!(
                    "    {{\"n\": {n}, \"m\": {m}, \"sort_naive_us\": 9999, \"sort_ens_us\": {}, \
                     \"fronts_identical\": true, \"crowding_us\": {}, \"truncate_cached_us\": {}, \
                     \"truncate_naive_us\": null, \"hv_us\": {}, \"hv_points\": 7, \
                     \"dist_refill_us\": 9999, \"dist_update_us\": {}, \
                     \"truncate_incremental_us\": {}, \"dist_identical\": true}}",
                    v[0], v[1], v[2], v[3], v[5], v[4]
                )
            })
            .collect();
        format!(
            "{{\n  \"bench\": \"moea_kernels\",\n  \"cases\": [\n{}\n  ]\n}}\n",
            body.join(",\n")
        )
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(&[
            (100, 2, [50, 60, 70, 80, 90, 40]),
            (400, 4, [900, 800, 700, 600, 500, 400]),
        ]);
        assert_eq!(compare(&r, &r).unwrap(), vec![]);
    }

    #[test]
    fn small_cells_get_absolute_slack_but_big_ones_get_the_ratio() {
        let base = report(&[
            (100, 2, [50, 60, 70, 80, 90, 40]),
            (1600, 2, [10_000, 10, 10, 10, 10, 10]),
        ]);
        // 50us -> 500us is under the +500us floor; 10_000us -> 21_000us
        // is past 2x and must trip.
        let cur = report(&[
            (100, 2, [500, 60, 70, 80, 90, 40]),
            (1600, 2, [21_000, 10, 10, 10, 10, 10]),
        ]);
        let regressions = compare(&base, &cur).unwrap();
        assert_eq!(regressions.len(), 1);
        assert_eq!(
            (
                regressions[0].n,
                regressions[0].key,
                regressions[0].limit_us
            ),
            (1600, "sort_ens_us", 20_000)
        );
    }

    #[test]
    fn every_gated_key_is_watched() {
        let base = report(&[(400, 4, [100, 100, 100, 100, 100, 100])]);
        let cur = report(&[(400, 4, [100, 100, 100, 5_000, 100, 100])]);
        let regressions = compare(&base, &cur).unwrap();
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].key, "hv_us");
        assert!(regressions[0].to_string().contains("hv_us"));
        // The incremental keys added in round 2 are gated too.
        let cur = report(&[(400, 4, [100, 100, 100, 100, 9_000, 100])]);
        assert_eq!(
            compare(&base, &cur).unwrap()[0].key,
            "truncate_incremental_us"
        );
        let cur = report(&[(400, 4, [100, 100, 100, 100, 100, 9_000])]);
        assert_eq!(compare(&base, &cur).unwrap()[0].key, "dist_update_us");
    }

    #[test]
    fn missing_cells_and_malformed_reports_error_instead_of_passing() {
        let base = report(&[
            (100, 2, [50, 60, 70, 80, 90, 40]),
            (400, 2, [50, 60, 70, 80, 90, 40]),
        ]);
        let cur = report(&[(100, 2, [50, 60, 70, 80, 90, 40])]);
        assert!(compare(&base, &cur).unwrap_err().contains("lost cell"));
        assert!(compare("{}", &base).unwrap_err().contains("no benchmark"));
        let torn = base.replace("\"hv_us\": 80", "\"hv_us\": \"oops\"");
        assert!(compare(&base, &torn).unwrap_err().contains("hv_us"));
    }

    fn scenario_report(cells: &[(&str, u64)]) -> String {
        let body: Vec<String> = cells
            .iter()
            .map(|(name, us)| {
                format!(
                    "    {{\"scenario\": \"{name}\", \"catalog\": 80, \"candidates\": 640, \
                     \"chain_analysis_us\": {us}, \"objectives\": 2, \
                     \"proposed_digest\": \"00000000deadbeef\", \"proposed_points\": 5}}"
                )
            })
            .collect();
        format!(
            "{{\n  \"bench\": \"scenarios\",\n  \"cells\": [\n{}\n  ]\n}}\n",
            body.join(",\n")
        )
    }

    #[test]
    fn scenario_gate_passes_identical_and_trips_on_regression() {
        let base = scenario_report(&[("transient", 40_000), ("lifetime:5000", 90_000)]);
        assert_eq!(compare_scenarios(&base, &base).unwrap(), vec![]);
        // Within allowance: 40ms -> 79ms is under 2x.
        let ok = scenario_report(&[("transient", 79_000), ("lifetime:5000", 90_000)]);
        assert_eq!(compare_scenarios(&base, &ok).unwrap(), vec![]);
        // Past 2x: the lifetime chain templates got slower.
        let bad = scenario_report(&[("transient", 40_000), ("lifetime:5000", 200_000)]);
        let regressions = compare_scenarios(&base, &bad).unwrap();
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].scenario, "lifetime:5000");
        assert_eq!(regressions[0].limit_us, 180_000);
        assert!(regressions[0].to_string().contains("chain_analysis_us"));
    }

    #[test]
    fn scenario_gate_gives_tiny_cells_the_absolute_slack() {
        let base = scenario_report(&[("transient", 100)]);
        let cur = scenario_report(&[("transient", 600)]);
        assert_eq!(compare_scenarios(&base, &cur).unwrap(), vec![]);
        let over = scenario_report(&[("transient", 601)]);
        assert_eq!(compare_scenarios(&base, &over).unwrap().len(), 1);
    }

    #[test]
    fn scenario_gate_errors_on_lost_cells_and_malformed_reports() {
        let base = scenario_report(&[("transient", 100), ("fpga", 200)]);
        let cur = scenario_report(&[("transient", 100)]);
        assert!(compare_scenarios(&base, &cur)
            .unwrap_err()
            .contains("lost scenario"));
        assert!(compare_scenarios("{}", &base)
            .unwrap_err()
            .contains("no scenario cells"));
        let torn = base.replace("\"chain_analysis_us\": 200", "\"chain_us\": 200");
        assert!(compare_scenarios(&base, &torn)
            .unwrap_err()
            .contains("chain_analysis_us"));
    }

    fn island_report(cells: &[(&str, u64, bool, u64)]) -> String {
        let body: Vec<String> = cells
            .iter()
            .map(|(plan, islands, matched, us)| {
                format!(
                    "    {{\"plan\": \"{plan}\", \"islands\": {islands}, \
                     \"inprocess_digest\": \"00000000deadbeef\", \
                     \"threads_digest\": \"00000000deadbeef\", \
                     \"subprocess_digest\": null, \"digest_match\": {matched}, \
                     \"points\": 5, \"campaign_us\": {us}}}"
                )
            })
            .collect();
        format!(
            "{{\n  \"bench\": \"islands\",\n  \"subprocess_exercised\": false,\n  \
             \"cells\": [\n{}\n  ],\n  \"all_digests_match\": true\n}}\n",
            body.join(",\n")
        )
    }

    #[test]
    fn island_gate_trips_on_digest_disagreement_and_slowdowns() {
        let base = island_report(&[("fcCLR", 1, true, 40_000), ("proposed", 4, true, 90_000)]);
        assert_eq!(compare_islands(&base, &base).unwrap(), vec![]);
        // A digest disagreement is gated with no allowance at all.
        let split = island_report(&[("fcCLR", 1, false, 40_000), ("proposed", 4, true, 90_000)]);
        let regressions = compare_islands(&base, &split).unwrap();
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].to_string().contains("digests disagree"));
        // Timing uses the shared allowance.
        let slow = island_report(&[("fcCLR", 1, true, 40_000), ("proposed", 4, true, 200_000)]);
        let regressions = compare_islands(&base, &slow).unwrap();
        assert_eq!(regressions.len(), 1);
        assert_eq!(
            (regressions[0].plan.as_str(), regressions[0].islands),
            ("proposed", 4)
        );
        // Lost cells and malformed reports are errors, not passes.
        let lost = island_report(&[("fcCLR", 1, true, 40_000)]);
        assert!(compare_islands(&base, &lost)
            .unwrap_err()
            .contains("lost cell"));
        assert!(compare_islands("{}", &base)
            .unwrap_err()
            .contains("no island cells"));
    }

    #[test]
    fn real_islandbench_output_parses() {
        // The gate must understand the exact shape islandbench emits.
        let json = crate::islandbench::islands(
            crate::RunScale::Tiny,
            &crate::exec_config::ExecConfig::new().with_workers(2),
        );
        let _ = std::fs::remove_file("BENCH_islands.json");
        assert_eq!(compare_islands(&json, &json).unwrap(), vec![]);
        let cells = parse_island_cells(&json, "self").unwrap();
        assert_eq!(cells.len(), 6, "2 plans x 3 island counts");
    }

    #[test]
    fn gate_files_dispatches_on_the_bench_header() {
        let dir = std::env::temp_dir().join(format!("perfgate-dispatch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let write = |name: &str, body: &str| {
            let path = dir.join(name);
            std::fs::write(&path, body).unwrap();
            path
        };
        let kernels = write("k.json", &report(&[(100, 2, [50, 60, 70, 80, 90, 40])]));
        let scenarios = write("s.json", &scenario_report(&[("transient", 100)]));
        assert!(gate_files(&kernels, &kernels).is_ok());
        assert!(gate_files(&scenarios, &scenarios).is_ok());
        let slow = write("s2.json", &scenario_report(&[("transient", 9_000)]));
        let fail = gate_files(&scenarios, &slow).unwrap_err();
        assert!(fail.contains("scenario=transient"), "{fail}");
        // Mismatched report kinds cannot pass: the scenario parser finds
        // no cells in a kernel report.
        assert!(gate_files(&scenarios, &kernels).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn real_kernelbench_output_parses() {
        // The gate must understand the exact shape kernelbench emits.
        let json = crate::kernelbench::moea_kernels(crate::RunScale::Tiny);
        let _ = std::fs::remove_file("BENCH_moea_kernels.json");
        assert_eq!(compare(&json, &json).unwrap(), vec![]);
        let cells = parse_cells(&json, "self").unwrap();
        assert_eq!(cells.len(), 6, "3 sizes x 2 dims");
    }
}

//! Performance trend gate over the MOEA kernel benchmark.
//!
//! CI runs `experiments kernelbench` and diffs the fresh
//! `BENCH_moea_kernels.json` against the committed baseline with
//! [`compare`]: for every (N, M) cell and every gated timing key, the
//! current value must stay under `max(2 × baseline, baseline + 500 µs)`.
//! The 2× factor absorbs runner-to-runner noise; the 500 µs absolute
//! floor keeps sub-millisecond cells from tripping on scheduler jitter
//! (doubling 40 µs is not a regression signal).
//!
//! The reports are the hand-formatted JSON the bench writes — one cell
//! object per line inside `"cases": [...]` — so the parser here is a
//! line-oriented key scanner, not a general JSON reader. A baseline that
//! stops matching that shape is a hard error, never a silent pass.

use std::path::Path;

/// The timing keys the gate watches. Oracle timings (`sort_naive_us`,
/// `truncate_naive_us`) are deliberately absent: the naive algorithms
/// exist to validate results, and their cost is not a product property.
const GATED_KEYS: [&str; 4] = ["sort_ens_us", "crowding_us", "truncate_cached_us", "hv_us"];

/// Absolute slack in microseconds added on top of the 2× ratio.
const ABSOLUTE_SLACK_US: u64 = 500;

/// One gated timing that got worse than the allowance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regression {
    /// Cloud size of the cell.
    pub n: u64,
    /// Objective count of the cell.
    pub m: u64,
    /// The timing key that regressed.
    pub key: &'static str,
    /// Baseline microseconds.
    pub baseline_us: u64,
    /// Current microseconds.
    pub current_us: u64,
    /// The allowance the current value exceeded.
    pub limit_us: u64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} m={} {}: {}us -> {}us (limit {}us)",
            self.n, self.m, self.key, self.baseline_us, self.current_us, self.limit_us
        )
    }
}

/// Extracts `"key": <integer>` from one cell line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let start = line.find(&format!("\"{key}\":"))? + key.len() + 3;
    let rest = line[start..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One `(n, m)` cell with its gated timings.
#[derive(Debug, PartialEq, Eq)]
struct CellTimings {
    n: u64,
    m: u64,
    values: [(/* key idx */ usize, u64); 4],
}

/// Parses every cell line of a kernel-bench report. Errors if the report
/// contains no cells or a cell is missing a gated key — a malformed
/// baseline must fail the gate loudly.
fn parse_cells(report: &str, label: &str) -> Result<Vec<CellTimings>, String> {
    let mut cells = Vec::new();
    for line in report.lines() {
        let Some(n) = field_u64(line, "n") else {
            continue;
        };
        let m = field_u64(line, "m")
            .ok_or_else(|| format!("{label}: cell n={n} has no \"m\" field: {line}"))?;
        let mut values = [(0usize, 0u64); 4];
        for (idx, key) in GATED_KEYS.iter().enumerate() {
            let us = field_u64(line, key)
                .ok_or_else(|| format!("{label}: cell n={n} m={m} has no \"{key}\" field"))?;
            values[idx] = (idx, us);
        }
        cells.push(CellTimings { n, m, values });
    }
    if cells.is_empty() {
        return Err(format!("{label}: no benchmark cells found"));
    }
    Ok(cells)
}

/// What a baseline value allows the current value to reach.
fn limit(baseline_us: u64) -> u64 {
    (2 * baseline_us).max(baseline_us + ABSOLUTE_SLACK_US)
}

/// Diffs a current kernel-bench report against a baseline report.
/// Returns the regressions (empty = gate passes). Cells present only in
/// one report are an error: a shrunk benchmark must not pass by
/// omission.
pub fn compare(baseline: &str, current: &str) -> Result<Vec<Regression>, String> {
    let base_cells = parse_cells(baseline, "baseline")?;
    let cur_cells = parse_cells(current, "current")?;
    let mut regressions = Vec::new();
    for base in &base_cells {
        let cur = cur_cells
            .iter()
            .find(|c| c.n == base.n && c.m == base.m)
            .ok_or_else(|| format!("current report lost cell n={} m={}", base.n, base.m))?;
        for ((idx, base_us), (_, cur_us)) in base.values.iter().zip(&cur.values) {
            let limit_us = limit(*base_us);
            if *cur_us > limit_us {
                regressions.push(Regression {
                    n: base.n,
                    m: base.m,
                    key: GATED_KEYS[*idx],
                    baseline_us: *base_us,
                    current_us: *cur_us,
                    limit_us,
                });
            }
        }
    }
    if cur_cells.len() != base_cells.len() {
        return Err(format!(
            "cell count changed: baseline {} vs current {}",
            base_cells.len(),
            cur_cells.len()
        ));
    }
    Ok(regressions)
}

/// File-level entry point for the `experiments perfgate` subcommand:
/// reads both reports and renders a human-readable verdict. `Ok` =
/// gate passed (report text), `Err` = regressions or unreadable input
/// (the caller exits non-zero).
pub fn gate_files(baseline: &Path, current: &Path) -> Result<String, String> {
    let base = std::fs::read_to_string(baseline)
        .map_err(|e| format!("reading baseline {}: {e}", baseline.display()))?;
    let cur = std::fs::read_to_string(current)
        .map_err(|e| format!("reading current {}: {e}", current.display()))?;
    let regressions = compare(&base, &cur)?;
    if regressions.is_empty() {
        Ok(format!(
            "perfgate: ok — every gated kernel within max(2x, +{ABSOLUTE_SLACK_US}us) of {}\n",
            baseline.display()
        ))
    } else {
        let mut out = String::from("perfgate: FAIL\n");
        for r in &regressions {
            out.push_str(&format!("  {r}\n"));
        }
        Err(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cells: &[(u64, u64, [u64; 4])]) -> String {
        let body: Vec<String> = cells
            .iter()
            .map(|(n, m, v)| {
                format!(
                    "    {{\"n\": {n}, \"m\": {m}, \"sort_naive_us\": 9999, \"sort_ens_us\": {}, \
                     \"fronts_identical\": true, \"crowding_us\": {}, \"truncate_cached_us\": {}, \
                     \"truncate_naive_us\": null, \"hv_us\": {}, \"hv_points\": 7}}",
                    v[0], v[1], v[2], v[3]
                )
            })
            .collect();
        format!(
            "{{\n  \"bench\": \"moea_kernels\",\n  \"cases\": [\n{}\n  ]\n}}\n",
            body.join(",\n")
        )
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(&[(100, 2, [50, 60, 70, 80]), (400, 4, [900, 800, 700, 600])]);
        assert_eq!(compare(&r, &r).unwrap(), vec![]);
    }

    #[test]
    fn small_cells_get_absolute_slack_but_big_ones_get_the_ratio() {
        let base = report(&[(100, 2, [50, 60, 70, 80]), (1600, 2, [10_000, 10, 10, 10])]);
        // 50us -> 500us is under the +500us floor; 10_000us -> 21_000us
        // is past 2x and must trip.
        let cur = report(&[(100, 2, [500, 60, 70, 80]), (1600, 2, [21_000, 10, 10, 10])]);
        let regressions = compare(&base, &cur).unwrap();
        assert_eq!(regressions.len(), 1);
        assert_eq!(
            (
                regressions[0].n,
                regressions[0].key,
                regressions[0].limit_us
            ),
            (1600, "sort_ens_us", 20_000)
        );
    }

    #[test]
    fn every_gated_key_is_watched() {
        let base = report(&[(400, 4, [100, 100, 100, 100])]);
        let cur = report(&[(400, 4, [100, 100, 100, 5_000])]);
        let regressions = compare(&base, &cur).unwrap();
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].key, "hv_us");
        assert!(regressions[0].to_string().contains("hv_us"));
    }

    #[test]
    fn missing_cells_and_malformed_reports_error_instead_of_passing() {
        let base = report(&[(100, 2, [50, 60, 70, 80]), (400, 2, [50, 60, 70, 80])]);
        let cur = report(&[(100, 2, [50, 60, 70, 80])]);
        assert!(compare(&base, &cur).unwrap_err().contains("lost cell"));
        assert!(compare("{}", &base).unwrap_err().contains("no benchmark"));
        let torn = base.replace("\"hv_us\": 80", "\"hv_us\": \"oops\"");
        assert!(compare(&base, &torn).unwrap_err().contains("hv_us"));
    }

    #[test]
    fn real_kernelbench_output_parses() {
        // The gate must understand the exact shape kernelbench emits.
        let json = crate::kernelbench::moea_kernels(crate::RunScale::Tiny);
        let _ = std::fs::remove_file("BENCH_moea_kernels.json");
        assert_eq!(compare(&json, &json).unwrap(), vec![]);
        let cells = parse_cells(&json, "self").unwrap();
        assert_eq!(cells.len(), 6, "3 sizes x 2 dims");
    }
}

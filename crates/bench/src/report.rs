//! Tiny plain-text table/series formatting for experiment reports.

/// A left-aligned plain-text table.
///
/// # Examples
///
/// ```
/// use clre_bench::report::Table;
///
/// let mut t = Table::new(vec!["a".into(), "b".into()]);
/// t.row(vec!["1".into(), "2".into()]);
/// let s = t.to_string();
/// assert!(s.contains("a"));
/// assert!(s.contains("1"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, row: Vec<String>) -> &mut Self {
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let write_row = |f: &mut std::fmt::Formatter<'_>, row: &[String]| -> std::fmt::Result {
            for (c, cell) in row.iter().enumerate() {
                if c > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}", width = widths[c])?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a named objective-space series (one Pareto front) as CSV-ish
/// lines: `name,x,y` — the format the plotting scripts and EXPERIMENTS.md
/// use for every figure.
pub fn series(name: &str, points: &[Vec<f64>]) -> String {
    let mut sorted: Vec<&Vec<f64>> = points.iter().collect();
    sorted.sort_by(|a, b| a[0].partial_cmp(&b[0]).unwrap_or(std::cmp::Ordering::Equal));
    let mut out = String::new();
    for p in sorted {
        out.push_str(name);
        for v in p {
            out.push_str(&format!(",{v:.6e}"));
        }
        out.push('\n');
    }
    out
}

/// Formats a hypervolume percentage for tables: integers like the paper,
/// `inf` for division by zero.
pub fn pct(p: f64) -> String {
    if p.is_infinite() {
        "inf".to_owned()
    } else {
        format!("{p:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(vec!["col".into(), "x".into()]);
        t.row(vec!["longvalue".into(), "1".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("---"));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_row_panics() {
        Table::new(vec!["a".into()]).row(vec![]);
    }

    #[test]
    fn series_sorts_by_first_axis() {
        let s = series("m", &[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("m,1.0"));
        assert!(lines[1].starts_with("m,2.0"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(231.4), "231");
        assert_eq!(pct(f64::INFINITY), "inf");
    }
}

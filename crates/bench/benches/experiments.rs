//! Criterion benchmarks covering every paper artifact: one bench per
//! table and figure, each timing a smoke-scale run of the exact code that
//! regenerates the artifact (see `src/bin/experiments.rs` for the
//! paper-scale reports).

use criterion::{criterion_group, criterion_main, Criterion};

use clre_bench::exec_config::ExecConfig;
use clre_bench::{system, tasklevel, RunScale};

fn tasklevel_benches(c: &mut Criterion) {
    c.bench_function("exp_fig6a_dvfs_fronts", |b| b.iter(tasklevel::fig6a));
    c.bench_function("exp_fig6b_masking_fronts", |b| b.iter(tasklevel::fig6b));
    c.bench_function("exp_table4_sobel_counts", |b| b.iter(tasklevel::table4));
    c.bench_function("exp_fig9_library_sizes", |b| b.iter(tasklevel::fig9));
    c.bench_function("exp_chkpt_interval_study", |b| b.iter(tasklevel::chkpt));
}

fn system_benches(c: &mut Criterion) {
    c.bench_function("exp_fig7_clr_vs_agnostic", |b| {
        b.iter(|| system::fig7(RunScale::Tiny, &ExecConfig::default()))
    });
    c.bench_function("exp_table5_hv_vs_agnostic", |b| {
        b.iter(|| system::table5(RunScale::Tiny, &ExecConfig::default()))
    });
    c.bench_function("exp_fig8_proposed_vs_fcclr", |b| {
        b.iter(|| system::fig8(RunScale::Tiny, &ExecConfig::default()))
    });
    c.bench_function("exp_table6_hv_vs_fcclr", |b| {
        b.iter(|| system::table6(RunScale::Tiny, &ExecConfig::default()))
    });
    c.bench_function("exp_fig10_proposed_vs_pfclr", |b| {
        b.iter(|| system::fig10(RunScale::Tiny, &ExecConfig::default()))
    });
    c.bench_function("exp_table7_hv_vs_pfclr3", |b| {
        b.iter(|| system::table7(RunScale::Tiny, &ExecConfig::default()))
    });
}

fn ablation_benches(c: &mut Criterion) {
    c.bench_function("ablation_seeding", |b| {
        b.iter(|| system::ablation_seeding(RunScale::Tiny, &ExecConfig::default()))
    });
    c.bench_function("ablation_tournament", |b| {
        b.iter(|| system::ablation_tournament(RunScale::Tiny, &ExecConfig::default()))
    });
    c.bench_function("ablation_pruning", |b| {
        b.iter(|| system::ablation_pruning(RunScale::Tiny, &ExecConfig::default()))
    });
    c.bench_function("ablation_comm", |b| {
        b.iter(|| system::ablation_comm(RunScale::Tiny, &ExecConfig::default()))
    });
    c.bench_function("ablation_moea", |b| {
        b.iter(|| system::ablation_moea(RunScale::Tiny, &ExecConfig::default()))
    });
    c.bench_function("exp_multiobj_3d", |b| {
        b.iter(|| system::multiobj(RunScale::Tiny, &ExecConfig::default()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = tasklevel_benches, system_benches, ablation_benches
}
criterion_main!(benches);

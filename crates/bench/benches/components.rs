//! Criterion microbenchmarks of the workspace substrates: Markov
//! analysis, list scheduling + QoS estimation, NSGA-II generations,
//! hypervolume and task-level library construction.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use clre::apps;
use clre::encoding::{ChoiceMode, Codec};
use clre::methodology::{ClrEarly, StageBudget};
use clre::tdse::{build_library, TdseConfig};
use clre_markov::clr::{analyze, ClrChainParams};
use clre_moea::hypervolume::hypervolume;
use clre_sched::QosEvaluator;
use clre_sim::TaskSimulator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn markov_bench(c: &mut Criterion) {
    let params = ClrChainParams {
        m_hw: 0.7,
        m_impl_ssw: 0.05,
        cov_det: 0.95,
        m_tol: 0.98,
        m_asw: 0.55,
        intervals: 4,
        t_det: 5.0e-6,
        t_tol: 5.0e-6,
        t_chk: 8.0e-6,
        p_chk_err: 1.0e-4,
        ..ClrChainParams::unprotected(300.0e-6, 300.0)
    };
    c.bench_function("markov_analyze_4_intervals", |b| {
        b.iter(|| analyze(std::hint::black_box(&params)).expect("analyzable"))
    });
}

fn sched_bench(c: &mut Criterion) {
    let (platform, graph) = apps::synthetic_app(50, 7).expect("app builds");
    let lib = build_library(&graph, &platform, &TdseConfig::default()).expect("library");
    let codec = Codec::new(&graph, &platform, &lib, ChoiceMode::ParetoFiltered).expect("codec");
    let evaluator = QosEvaluator::new(&platform);
    let mut rng = StdRng::seed_from_u64(1);
    let genome = codec.random_genome(&mut rng);
    c.bench_function("schedule_and_qos_t50", |b| {
        b.iter_batched(
            || codec.decode(&genome),
            |mapping| evaluator.evaluate(&graph, &mapping).expect("valid"),
            BatchSize::SmallInput,
        )
    });
}

fn nsga2_bench(c: &mut Criterion) {
    let (platform, graph) = apps::synthetic_app(20, 7).expect("app builds");
    let dse = ClrEarly::new(&graph, &platform).expect("tDSE");
    let budget = StageBudget::new(16, 5).with_seed(3);
    c.bench_function("nsga2_pf_16pop_5gen_t20", |b| {
        b.iter(|| {
            dse.run(&clre::CampaignPlan::pf(), std::hint::black_box(&budget))
                .expect("runs")
        })
    });
}

fn hypervolume_bench(c: &mut Criterion) {
    let front: Vec<Vec<f64>> = (0..64)
        .map(|i| {
            let t = i as f64 / 63.0;
            vec![t, (1.0 - t.sqrt()).powi(2)]
        })
        .collect();
    c.bench_function("hypervolume_2d_64pts", |b| {
        b.iter(|| hypervolume(std::hint::black_box(&front), &[1.1, 1.1]))
    });
    let front3: Vec<Vec<f64>> = (0..24)
        .map(|i| {
            let t = i as f64 / 23.0;
            vec![t, 1.0 - t, (t - 0.5).abs()]
        })
        .collect();
    c.bench_function("hypervolume_wfg_3d_24pts", |b| {
        b.iter(|| hypervolume(std::hint::black_box(&front3), &[1.1, 1.1, 1.1]))
    });
}

fn sim_bench(c: &mut Criterion) {
    let params = ClrChainParams {
        m_hw: 0.7,
        cov_det: 0.95,
        m_tol: 0.98,
        m_asw: 0.55,
        intervals: 3,
        t_det: 5.0e-6,
        t_tol: 5.0e-6,
        t_chk: 8.0e-6,
        ..ClrChainParams::unprotected(300.0e-6, 500.0)
    };
    let sim = TaskSimulator::new(params);
    c.bench_function("fault_injection_10k_runs", |b| {
        b.iter(|| sim.run(std::hint::black_box(10_000), 7))
    });
}

fn spea2_bench(c: &mut Criterion) {
    let (platform, graph) = apps::synthetic_app(20, 7).expect("app builds");
    let dse = ClrEarly::new(&graph, &platform).expect("tDSE");
    let budget = StageBudget::new(16, 5).with_seed(3);
    c.bench_function("spea2_pf_16pop_5gen_t20", |b| {
        b.iter(|| {
            dse.run(
                &clre::CampaignPlan::pf_spea2(),
                std::hint::black_box(&budget),
            )
            .expect("runs")
        })
    });
}

fn tdse_bench(c: &mut Criterion) {
    let platform = apps::paper_platform();
    let graph = apps::sobel(&platform, 42).expect("sobel builds");
    c.bench_function("tdse_library_sobel", |b| {
        b.iter(|| build_library(&graph, &platform, &TdseConfig::default()).expect("library"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = markov_bench, sched_bench, nsga2_bench, spea2_bench, hypervolume_bench, tdse_bench, sim_bench
}
criterion_main!(benches);

//! The CLR-integrated task-mapping problem (Equation 5) as a
//! [`clre_moea::Problem`].
//!
//! Fitness evaluation decodes the genome into a [`Mapping`], runs the list
//! scheduler, derives the Table III metrics and projects them onto the
//! chosen system-level [`ObjectiveSet`]; QoS constraints from a
//! [`QosSpec`] become the constraint violation driving Deb's
//! constraint-domination in NSGA-II.
//!
//! [`Mapping`]: clre_sched::Mapping

use clre_model::qos::{ObjectiveSet, QosSpec, SystemMetrics};
use clre_moea::{Evaluation, Problem};
use clre_sched::QosEvaluator;
use rand::RngCore;

use crate::encoding::{Codec, Genome};
use crate::DseError;

/// The system-level mapping optimization problem.
#[derive(Debug, Clone)]
pub struct SystemProblem<'a> {
    codec: Codec<'a>,
    evaluator: QosEvaluator<'a>,
    objectives: ObjectiveSet,
    spec: QosSpec,
}

impl<'a> SystemProblem<'a> {
    /// Creates a problem over a prepared codec.
    pub fn new(codec: Codec<'a>, objectives: ObjectiveSet, spec: QosSpec) -> Self {
        let evaluator = QosEvaluator::new(codec.platform());
        SystemProblem {
            codec,
            evaluator,
            objectives,
            spec,
        }
    }

    /// The codec backing this problem.
    pub fn codec(&self) -> &Codec<'a> {
        &self.codec
    }

    /// The system-level objective set.
    pub fn objectives(&self) -> &ObjectiveSet {
        &self.objectives
    }

    /// Decodes and fully evaluates a genome, returning the raw Table III
    /// metrics (used to annotate final fronts).
    ///
    /// # Panics
    ///
    /// Panics if `genome` is invalid for this problem's codec; genomes
    /// produced by the GA always validate. Use
    /// [`SystemProblem::try_metrics_of`] for untrusted genomes.
    pub fn metrics_of(&self, genome: &Genome) -> SystemMetrics {
        match self.try_metrics_of(genome) {
            Ok(m) => m,
            Err(e) => panic!("genome evaluation failed: {e}"),
        }
    }

    /// Fallible variant of [`SystemProblem::metrics_of`]: validates the
    /// genome and propagates scheduling failures as typed errors.
    ///
    /// # Errors
    ///
    /// [`DseError::InvalidGenome`] for codec violations,
    /// [`DseError::Sched`] for scheduling/QoS failures.
    pub fn try_metrics_of(&self, genome: &Genome) -> Result<SystemMetrics, DseError> {
        let mapping = self.codec.try_decode(genome)?;
        Ok(self.evaluator.evaluate(self.codec.graph(), &mapping)?)
    }

    /// Fallible fitness evaluation: the typed-error twin of the
    /// [`Problem::evaluate`] impl, used by the resilient runtime to
    /// quarantine failing candidates instead of unwinding.
    ///
    /// # Errors
    ///
    /// [`DseError::InvalidGenome`] for codec violations,
    /// [`DseError::Sched`] for scheduling/QoS failures.
    pub fn try_evaluate(&self, genome: &Genome) -> Result<Evaluation, DseError> {
        let mapping = self.codec.try_decode(genome)?;
        let metrics = self.evaluator.evaluate(self.codec.graph(), &mapping)?;
        // QoS SPEC violations plus local-memory overflow (the storage
        // constraint of DESIGN.md §8; zero on unconstrained platforms).
        let violation = self.spec.violation(&metrics)
            + self
                .evaluator
                .memory_violation(self.codec.graph(), &mapping);
        Ok(Evaluation::with_violation(
            metrics.objective_vector(&self.objectives),
            violation,
        ))
    }
}

impl Problem for SystemProblem<'_> {
    type Genome = Genome;

    fn objective_count(&self) -> usize {
        self.objectives.len()
    }

    fn random_genome(&self, rng: &mut dyn RngCore) -> Genome {
        self.codec.random_genome(rng)
    }

    /// Panics (with the underlying [`DseError`] in the message) if the
    /// genome is invalid — the [`Problem`] trait's signature admits no
    /// error channel. GA-produced genomes always validate; the resilient
    /// runtime catches this unwind and quarantines the candidate.
    fn evaluate(&self, genome: &Genome) -> Evaluation {
        match self.try_evaluate(genome) {
            Ok(eval) => eval,
            Err(e) => panic!("genome evaluation failed: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::ChoiceMode;
    use crate::tdse::{build_library, TdseConfig};
    use clre_model::platform::paper_platform;
    use clre_model::TaskType;
    use clre_profile::SyntheticCharacterizer;
    use clre_tgff::TgffConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (clre_model::Platform, clre_model::TaskGraph) {
        let platform = paper_platform();
        let ch = SyntheticCharacterizer::new(5);
        let graph = clre_tgff::generate(&TgffConfig::new(8).with_type_count(4), 3, |ty| {
            ch.impls_for_type(ty, &platform)
        })
        .unwrap();
        (platform, graph)
    }

    #[test]
    fn evaluation_matches_direct_computation() {
        let (p, g) = setup();
        let lib = build_library(&g, &p, &TdseConfig::default()).unwrap();
        let codec = Codec::new(&g, &p, &lib, ChoiceMode::ParetoFiltered).unwrap();
        let problem = SystemProblem::new(codec, ObjectiveSet::system_bi(), QosSpec::new());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let genome = problem.random_genome(&mut rng);
            let eval = problem.evaluate(&genome);
            let metrics = problem.metrics_of(&genome);
            assert_eq!(eval.objectives, vec![metrics.makespan, metrics.error_prob]);
            assert_eq!(eval.violation, 0.0);
        }
    }

    #[test]
    fn constraints_flow_into_violation() {
        let (p, g) = setup();
        let lib = build_library(&g, &p, &TdseConfig::default()).unwrap();
        let codec = Codec::new(&g, &p, &lib, ChoiceMode::ParetoFiltered).unwrap();
        // Impossible makespan bound: everything is infeasible.
        let spec = QosSpec::new().with_max_makespan(1.0e-12);
        let problem = SystemProblem::new(codec, ObjectiveSet::system_bi(), spec);
        let mut rng = StdRng::seed_from_u64(2);
        let genome = problem.random_genome(&mut rng);
        assert!(problem.evaluate(&genome).violation > 0.0);
    }

    #[test]
    fn objective_count_follows_set() {
        let (p, g) = setup();
        let lib = build_library(&g, &p, &TdseConfig::default()).unwrap();
        let codec = Codec::new(&g, &p, &lib, ChoiceMode::Full).unwrap();
        let problem = SystemProblem::new(
            codec,
            ObjectiveSet::new(vec![
                clre_model::Objective::Makespan,
                clre_model::Objective::ErrorProbability,
                clre_model::Objective::Mttf,
                clre_model::Objective::Energy,
            ]),
            QosSpec::new(),
        );
        let mut rng = StdRng::seed_from_u64(3);
        let genome = problem.random_genome(&mut rng);
        assert_eq!(problem.objective_count(), 4);
        assert_eq!(problem.evaluate(&genome).objectives.len(), 4);
    }

    #[test]
    fn tgff_generated_types_may_be_unused() {
        // TGFF materializes the whole type pool; unused types must not
        // break library construction or evaluation.
        let (p, g) = setup();
        let lib = build_library(&g, &p, &TdseConfig::default()).unwrap();
        assert_eq!(lib.type_count(), 4);
        assert!(Codec::new(&g, &p, &lib, ChoiceMode::ParetoFiltered).is_ok());
        let _ = TaskType::new("sentinel"); // silence unused-import pedantry
    }
}

//! The CLR-integrated task-mapping problem (Equation 5) as a
//! [`clre_moea::Problem`].
//!
//! Fitness evaluation decodes the genome into a [`Mapping`], runs the list
//! scheduler, derives the Table III metrics and projects them onto the
//! chosen system-level [`ObjectiveSet`]; QoS constraints from a
//! [`QosSpec`] become the constraint violation driving Deb's
//! constraint-domination in NSGA-II.
//!
//! [`Mapping`]: clre_sched::Mapping

use std::sync::Arc;

use clre_model::qos::{ObjectiveSet, QosSpec, SystemMetrics};
use clre_moea::{EvalError, Evaluation, Problem, RemoteEval};
use clre_sched::QosEvaluator;
use rand::RngCore;

use crate::cache::{CachedFitness, EvalCache, Fnv};
use crate::encoding::{Codec, Genome};
use crate::remote::encode_genome_text;
use crate::DseError;

/// The system-level mapping optimization problem.
#[derive(Debug, Clone)]
pub struct SystemProblem<'a> {
    codec: Codec<'a>,
    evaluator: QosEvaluator<'a>,
    objectives: ObjectiveSet,
    spec: QosSpec,
    cache: Option<Arc<EvalCache>>,
    /// Content digest scoping this problem's fitness-cache entries;
    /// computed once at [`SystemProblem::with_cache`] time.
    problem_digest: u64,
    /// Encoded [`RemoteContext`](crate::remote::RemoteContext) enabling
    /// backend dispatch; `None` keeps evaluation strictly in-process.
    remote_context: Option<String>,
}

impl<'a> SystemProblem<'a> {
    /// Creates a problem over a prepared codec.
    pub fn new(codec: Codec<'a>, objectives: ObjectiveSet, spec: QosSpec) -> Self {
        let evaluator = QosEvaluator::new(codec.platform());
        SystemProblem {
            codec,
            evaluator,
            objectives,
            spec,
            cache: None,
            problem_digest: 0,
            remote_context: None,
        }
    }

    /// Attaches an encoded [`RemoteContext`](crate::remote::RemoteContext)
    /// (builder style): with one attached, [`Problem::remote`] offers
    /// this problem to whatever [`EvalBackend`](clre_exec::EvalBackend)
    /// the stage executor carries. Without a backend — or on any remote
    /// failure — evaluation stays in-process and bit-identical.
    #[must_use]
    pub fn with_remote(mut self, context: String) -> Self {
        self.remote_context = Some(context);
        self
    }

    /// Attaches a shared genome-fitness cache (builder style).
    ///
    /// Entries are keyed by the exact gene sequence *plus* this problem's
    /// [`SystemProblem::content_digest`], so one cache instance may be
    /// shared across stages, campaigns and sweep cells without
    /// cross-contamination.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<EvalCache>) -> Self {
        self.problem_digest = self.content_digest();
        self.cache = Some(cache);
        self
    }

    /// FNV-1a digest of everything a fitness value depends on: the task
    /// graph (types, criticalities, edges and communication volumes), the
    /// platform (PE placement, memory, interconnect), the library's
    /// candidate content, the objective set and the QoS spec.
    ///
    /// The codec's [`ChoiceMode`](crate::encoding::ChoiceMode) is
    /// deliberately *not* folded in: a gene's `choice` indexes the
    /// candidate list directly, so equal genomes evaluate identically
    /// under fcCLR and pfCLR — sharing their cache entries is what makes
    /// the seeded two-stage flow warm-start its second stage.
    pub fn content_digest(&self) -> u64 {
        let mut fnv = Fnv::new();
        let graph = self.codec.graph();
        fnv.write_f64(graph.period());
        fnv.write_u64(graph.tasks().len() as u64);
        for task in graph.tasks() {
            fnv.write_u64(task.task_type().index() as u64);
            fnv.write_f64(task.criticality());
            for &(pred, volume) in graph.predecessor_edges(task.id()) {
                fnv.write_u64(pred.index() as u64);
                fnv.write_f64(volume);
            }
        }
        let platform = self.codec.platform();
        fnv.write_u64(platform.pes().len() as u64);
        for pe in platform.pes() {
            fnv.write_u64(pe.pe_type().index() as u64);
        }
        for ty in platform.pe_types() {
            fnv.write_f64(ty.local_memory_bytes());
        }
        match platform.interconnect() {
            Some(ic) => {
                fnv.write_f64(ic.latency());
                fnv.write_f64(ic.bandwidth());
            }
            None => fnv.write_u64(u64::MAX),
        }
        fnv.write_u64(self.codec.library().content_digest());
        for objective in self.objectives.objectives() {
            fnv.write_bytes(objective.to_string().as_bytes());
        }
        for bound in self.spec.bounds() {
            match bound {
                Some(v) => fnv.write_f64(v),
                None => fnv.write_u64(u64::MAX),
            }
        }
        fnv.finish()
    }

    /// The codec backing this problem.
    pub fn codec(&self) -> &Codec<'a> {
        &self.codec
    }

    /// The system-level objective set.
    pub fn objectives(&self) -> &ObjectiveSet {
        &self.objectives
    }

    /// Decodes and fully evaluates a genome, returning the raw Table III
    /// metrics (used to annotate final fronts). With a cache attached
    /// (see [`SystemProblem::with_cache`]) a genome the GA already
    /// evaluated is answered as a pure lookup — no re-decode, no
    /// re-schedule.
    ///
    /// # Panics
    ///
    /// Panics if `genome` is invalid for this problem's codec; genomes
    /// produced by the GA always validate. Use the fallible twin
    /// [`SystemProblem::try_metrics_of`] for untrusted genomes.
    pub fn metrics_of(&self, genome: &Genome) -> SystemMetrics {
        match self.try_metrics_of(genome) {
            Ok(m) => m,
            Err(e) => panic!("genome evaluation failed: {e}"),
        }
    }

    /// Fallible variant of [`SystemProblem::metrics_of`]: validates the
    /// genome and propagates scheduling failures as typed errors.
    ///
    /// # Errors
    ///
    /// [`DseError::InvalidGenome`] for codec violations,
    /// [`DseError::Sched`] for scheduling/QoS failures.
    pub fn try_metrics_of(&self, genome: &Genome) -> Result<SystemMetrics, DseError> {
        self.metrics_and_violation(genome).map(|(m, _)| m)
    }

    /// Fallible fitness evaluation: the typed-error twin of the
    /// [`Problem::evaluate`] impl, used by the resilient runtime to
    /// quarantine failing candidates instead of unwinding.
    ///
    /// # Errors
    ///
    /// [`DseError::InvalidGenome`] for codec violations,
    /// [`DseError::Sched`] for scheduling/QoS failures.
    pub fn try_evaluate(&self, genome: &Genome) -> Result<Evaluation, DseError> {
        let (metrics, violation) = self.metrics_and_violation(genome)?;
        Ok(Evaluation::with_violation(
            metrics.objective_vector(&self.objectives),
            violation,
        ))
    }

    /// The single evaluation path every public entry point funnels
    /// through: fitness cache first, then decode → schedule → Table III
    /// metrics → violation, with the result inserted for the next caller.
    fn metrics_and_violation(&self, genome: &Genome) -> Result<(SystemMetrics, f64), DseError> {
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.fitness(self.problem_digest, genome) {
                return Ok((hit.metrics, hit.violation));
            }
        }
        let mapping = self.codec.try_decode(genome)?;
        let metrics = self.evaluator.evaluate(self.codec.graph(), &mapping)?;
        // QoS SPEC violations plus local-memory overflow (the storage
        // constraint of DESIGN.md §8; zero on unconstrained platforms).
        let violation = self.spec.violation(&metrics)
            + self
                .evaluator
                .memory_violation(self.codec.graph(), &mapping);
        if let Some(cache) = &self.cache {
            let stored = cache.insert_fitness(
                self.problem_digest,
                genome,
                CachedFitness { metrics, violation },
            );
            return Ok((stored.metrics, stored.violation));
        }
        Ok((metrics, violation))
    }
}

impl Problem for SystemProblem<'_> {
    type Genome = Genome;

    fn objective_count(&self) -> usize {
        self.objectives.len()
    }

    fn random_genome(&self, rng: &mut dyn RngCore) -> Genome {
        self.codec.random_genome(rng)
    }

    /// Panics (with the underlying [`DseError`] in the message) if the
    /// genome is invalid — the [`Problem`] trait's signature admits no
    /// error channel. GA-produced genomes always validate; the resilient
    /// runtime catches this unwind and quarantines the candidate.
    fn evaluate(&self, genome: &Genome) -> Evaluation {
        match self.try_evaluate(genome) {
            Ok(eval) => eval,
            Err(e) => panic!("genome evaluation failed: {e}"),
        }
    }

    /// Native fallible evaluation: converts the typed [`DseError`] into
    /// the optimizer-facing [`EvalError`] instead of unwinding, so
    /// resilient executors never need `catch_unwind` for this problem.
    fn try_evaluate(&self, genome: &Genome) -> Result<Evaluation, EvalError> {
        SystemProblem::try_evaluate(self, genome).map_err(|e| EvalError::new(e.to_string()))
    }

    fn reports_errors(&self) -> bool {
        true
    }

    fn remote(&self) -> Option<&dyn RemoteEval<Genome>> {
        self.remote_context
            .as_ref()
            .map(|_| self as &dyn RemoteEval<Genome>)
    }
}

impl RemoteEval<Genome> for SystemProblem<'_> {
    fn context(&self) -> String {
        self.remote_context
            .clone()
            .expect("remote() gated on an attached context")
    }

    fn encode_item(&self, genome: &Genome) -> String {
        encode_genome_text(genome)
    }

    fn decode_output(&self, output: &str) -> Result<Evaluation, EvalError> {
        let values = clre_exec::wire::decode_f64s(output).map_err(EvalError::new)?;
        let (violation, objectives) = match values.split_first() {
            Some((v, rest)) if rest.len() == self.objectives.len() => (*v, rest.to_vec()),
            _ => {
                return Err(EvalError::new(format!(
                    "remote output carries {} values, expected violation + {} objectives",
                    values.len(),
                    self.objectives.len()
                )))
            }
        };
        Ok(Evaluation::with_violation(objectives, violation))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::ChoiceMode;
    use crate::tdse::{build_library, TdseConfig};
    use clre_model::platform::paper_platform;
    use clre_model::TaskType;
    use clre_profile::SyntheticCharacterizer;
    use clre_tgff::TgffConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (clre_model::Platform, clre_model::TaskGraph) {
        let platform = paper_platform();
        let ch = SyntheticCharacterizer::new(5);
        let graph = clre_tgff::generate(&TgffConfig::new(8).with_type_count(4), 3, |ty| {
            ch.impls_for_type(ty, &platform)
        })
        .unwrap();
        (platform, graph)
    }

    #[test]
    fn evaluation_matches_direct_computation() {
        let (p, g) = setup();
        let lib = build_library(&g, &p, &TdseConfig::default()).unwrap();
        let codec = Codec::new(&g, &p, &lib, ChoiceMode::ParetoFiltered).unwrap();
        let problem = SystemProblem::new(codec, ObjectiveSet::system_bi(), QosSpec::new());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let genome = problem.random_genome(&mut rng);
            let eval = problem.evaluate(&genome);
            let metrics = problem.metrics_of(&genome);
            assert_eq!(eval.objectives, vec![metrics.makespan, metrics.error_prob]);
            assert_eq!(eval.violation, 0.0);
        }
    }

    #[test]
    fn constraints_flow_into_violation() {
        let (p, g) = setup();
        let lib = build_library(&g, &p, &TdseConfig::default()).unwrap();
        let codec = Codec::new(&g, &p, &lib, ChoiceMode::ParetoFiltered).unwrap();
        // Impossible makespan bound: everything is infeasible.
        let spec = QosSpec::new().with_max_makespan(1.0e-12);
        let problem = SystemProblem::new(codec, ObjectiveSet::system_bi(), spec);
        let mut rng = StdRng::seed_from_u64(2);
        let genome = problem.random_genome(&mut rng);
        assert!(problem.evaluate(&genome).violation > 0.0);
    }

    #[test]
    fn objective_count_follows_set() {
        let (p, g) = setup();
        let lib = build_library(&g, &p, &TdseConfig::default()).unwrap();
        let codec = Codec::new(&g, &p, &lib, ChoiceMode::Full).unwrap();
        let problem = SystemProblem::new(
            codec,
            ObjectiveSet::new(vec![
                clre_model::Objective::Makespan,
                clre_model::Objective::ErrorProbability,
                clre_model::Objective::Mttf,
                clre_model::Objective::Energy,
            ]),
            QosSpec::new(),
        );
        let mut rng = StdRng::seed_from_u64(3);
        let genome = problem.random_genome(&mut rng);
        assert_eq!(problem.objective_count(), 4);
        assert_eq!(problem.evaluate(&genome).objectives.len(), 4);
    }

    #[test]
    fn cached_evaluation_is_bit_identical() {
        let (p, g) = setup();
        let lib = build_library(&g, &p, &TdseConfig::default()).unwrap();
        let codec = Codec::new(&g, &p, &lib, ChoiceMode::ParetoFiltered).unwrap();
        let plain = SystemProblem::new(codec.clone(), ObjectiveSet::system_bi(), QosSpec::new());
        let cache = crate::cache::EvalCache::shared();
        let cached = SystemProblem::new(codec, ObjectiveSet::system_bi(), QosSpec::new())
            .with_cache(Arc::clone(&cache));
        let mut rng = StdRng::seed_from_u64(7);
        let genomes: Vec<_> = (0..12).map(|_| plain.random_genome(&mut rng)).collect();
        for genome in &genomes {
            let want = plain.evaluate(genome);
            let miss = cached.evaluate(genome); // populates the cache
            let hit = cached.evaluate(genome); // answered from the cache
            assert_eq!(want.objectives, miss.objectives);
            assert_eq!(want.objectives, hit.objectives);
            assert_eq!(want.violation.to_bits(), hit.violation.to_bits());
            let want_m = plain.metrics_of(genome);
            let hit_m = cached.metrics_of(genome);
            assert_eq!(want_m.makespan.to_bits(), hit_m.makespan.to_bits());
            assert_eq!(want_m.error_prob.to_bits(), hit_m.error_prob.to_bits());
            assert_eq!(want_m.mttf.to_bits(), hit_m.mttf.to_bits());
            assert_eq!(want_m.energy.to_bits(), hit_m.energy.to_bits());
            assert_eq!(want_m.peak_power.to_bits(), hit_m.peak_power.to_bits());
        }
        let counts = cache.fitness_counts();
        assert_eq!(counts.inserts, genomes.len() as u64);
        assert!(counts.hits >= 2 * genomes.len() as u64); // 2nd evaluate + metrics_of
    }

    #[test]
    fn content_digest_separates_distinct_problems() {
        let (p, g) = setup();
        let lib = build_library(&g, &p, &TdseConfig::default()).unwrap();
        let full = Codec::new(&g, &p, &lib, ChoiceMode::Full).unwrap();
        let pf = Codec::new(&g, &p, &lib, ChoiceMode::ParetoFiltered).unwrap();
        let base = SystemProblem::new(pf.clone(), ObjectiveSet::system_bi(), QosSpec::new());
        // The choice mode steers sampling only — digests deliberately match
        // so pfCLR and fcCLR stages share fitness entries.
        let full_mode = SystemProblem::new(full, ObjectiveSet::system_bi(), QosSpec::new());
        assert_eq!(base.content_digest(), full_mode.content_digest());
        // A different objective set or QoS spec is a different problem.
        let tri = SystemProblem::new(
            pf.clone(),
            ObjectiveSet::new(vec![
                clre_model::Objective::Makespan,
                clre_model::Objective::ErrorProbability,
                clre_model::Objective::Energy,
            ]),
            QosSpec::new(),
        );
        assert_ne!(base.content_digest(), tri.content_digest());
        let bounded = SystemProblem::new(
            pf,
            ObjectiveSet::system_bi(),
            QosSpec::new().with_max_makespan(0.5),
        );
        assert_ne!(base.content_digest(), bounded.content_digest());
    }

    #[test]
    fn typed_try_evaluate_reports_invalid_genomes() {
        let (p, g) = setup();
        let lib = build_library(&g, &p, &TdseConfig::default()).unwrap();
        let codec = Codec::new(&g, &p, &lib, ChoiceMode::ParetoFiltered).unwrap();
        let problem = SystemProblem::new(codec, ObjectiveSet::system_bi(), QosSpec::new());
        assert!(problem.reports_errors());
        let err = Problem::try_evaluate(&problem, &Vec::new()).unwrap_err();
        assert!(err.message().contains("genome"), "got: {}", err.message());
    }

    #[test]
    fn tgff_generated_types_may_be_unused() {
        // TGFF materializes the whole type pool; unused types must not
        // break library construction or evaluation.
        let (p, g) = setup();
        let lib = build_library(&g, &p, &TdseConfig::default()).unwrap();
        assert_eq!(lib.type_count(), 4);
        assert!(Codec::new(&g, &p, &lib, ChoiceMode::ParetoFiltered).is_ok());
        let _ = TaskType::new("sentinel"); // silence unused-import pedantry
    }
}

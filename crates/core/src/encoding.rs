//! GA encoding for CLR-integrated task mapping (Fig. 5 of the paper).
//!
//! An individual is an ordered sequence of per-task [`Gene`]s; the
//! schedule priority is implicitly encoded in the gene order. Each gene
//! carries the task id, the PE binding and a *candidate choice* — an index
//! into the task type's candidate list in the [`ImplLibrary`]. Under
//! [`ChoiceMode::Full`] the choice ranges over the whole
//! `implementations × DVFS × CLR` product (fcCLR); under
//! [`ChoiceMode::ParetoFiltered`] it is restricted to the task-level
//! Pareto front (pfCLR). Because the pfCLR choices are a subset of the
//! fcCLR choices, a pfCLR genome is *also* a valid fcCLR genome — which is
//! exactly what makes the proposed seeded two-stage search a plain
//! population injection.
//!
//! The genetic operators follow Section V-C:
//!
//! * **crossover** — (1) a two-point crossover over the *task-id space*
//!   exchanging the configuration data of a contiguous id range, and
//!   (2) a single-point order crossover (OX) exchanging scheduling
//!   information while preserving permutation validity;
//! * **mutation** — (1) a single-point configuration mutation
//!   re-randomizing one task's `(PE, choice)`, and (2) a two-point
//!   scheduling mutation swapping two randomly selected equal-length
//!   subsequences.

use clre_model::{PeId, Platform, TaskGraph, TaskId, TaskTypeId};
use clre_moea::Variation;
use clre_sched::Mapping;
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

use crate::library::ImplLibrary;
use crate::DseError;

/// One task's mapping decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gene {
    /// The task this gene configures.
    pub task: TaskId,
    /// The PE executing the task.
    pub pe: PeId,
    /// Index into the task type's candidate list (implementation + DVFS +
    /// CLR configuration).
    pub choice: u32,
}

/// A full individual: a permutation of all tasks with their decisions.
pub type Genome = Vec<Gene>;

/// Which choice lists sampling and repair draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChoiceMode {
    /// The full `impl × DVFS × CLR` space (fcCLR).
    Full,
    /// The task-level Pareto-filtered space (pfCLR).
    ParetoFiltered,
}

/// Encoder/decoder between genomes and scheduler-level [`Mapping`]s,
/// carrying all the context the operators need.
#[derive(Debug, Clone)]
pub struct Codec<'a> {
    graph: &'a TaskGraph,
    platform: &'a Platform,
    library: &'a ImplLibrary,
    mode: ChoiceMode,
    /// `mappable_pes[ty]` — PEs whose type has a non-empty choice group
    /// for task type `ty`.
    mappable_pes: Vec<Vec<PeId>>,
}

impl<'a> Codec<'a> {
    /// Creates a codec.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::EmptyChoiceGroup`] if some task type used by
    /// the graph has no mappable PE under `mode`.
    pub fn new(
        graph: &'a TaskGraph,
        platform: &'a Platform,
        library: &'a ImplLibrary,
        mode: ChoiceMode,
    ) -> Result<Self, DseError> {
        let mut mappable_pes = Vec::with_capacity(graph.task_types().len());
        for ty in 0..graph.task_types().len() {
            let ty = TaskTypeId::new(ty as u32);
            let pes: Vec<PeId> = platform
                .pes()
                .iter()
                .filter(|pe| !Self::choice_list(library, mode, ty, pe.pe_type().index()).is_empty())
                .map(|pe| pe.id())
                .collect();
            mappable_pes.push(pes);
        }
        for task in graph.tasks() {
            if mappable_pes[task.task_type().index()].is_empty() {
                return Err(DseError::EmptyChoiceGroup {
                    ty: task.task_type(),
                });
            }
        }
        Ok(Codec {
            graph,
            platform,
            library,
            mode,
            mappable_pes,
        })
    }

    fn choice_list(
        library: &ImplLibrary,
        mode: ChoiceMode,
        ty: TaskTypeId,
        pe_ty: usize,
    ) -> &[usize] {
        let pe_ty = clre_model::PeTypeId::new(pe_ty as u32);
        match mode {
            ChoiceMode::Full => library.full_choices(ty, pe_ty),
            ChoiceMode::ParetoFiltered => library.pareto_choices(ty, pe_ty),
        }
    }

    /// The valid candidate choices for a task type on a given PE; an
    /// out-of-range `pe` simply has no choices (empty slice), so callers
    /// uniformly treat it as "not mappable there".
    ///
    /// # Panics
    ///
    /// Panics if `ty` is out of range.
    pub fn choices(&self, ty: TaskTypeId, pe: PeId) -> &[usize] {
        match self.platform.pe(pe) {
            Some(pe) => Self::choice_list(self.library, self.mode, ty, pe.pe_type().index()),
            None => &[],
        }
    }

    /// The application graph.
    pub fn graph(&self) -> &'a TaskGraph {
        self.graph
    }

    /// The platform.
    pub fn platform(&self) -> &'a Platform {
        self.platform
    }

    /// The underlying library.
    pub fn library(&self) -> &'a ImplLibrary {
        self.library
    }

    /// The active choice mode.
    pub fn mode(&self) -> ChoiceMode {
        self.mode
    }

    /// Samples a random `(PE, choice)` pair for a task type.
    fn random_config(&self, ty: TaskTypeId, rng: &mut dyn RngCore) -> (PeId, u32) {
        let pes = &self.mappable_pes[ty.index()];
        let pe = pes[rng.gen_range(0..pes.len())];
        let list = self.choices(ty, pe);
        let choice = list[rng.gen_range(0..list.len())] as u32;
        (pe, choice)
    }

    /// Samples a uniformly random valid genome: a random task permutation
    /// with random compatible configurations.
    pub fn random_genome(&self, rng: &mut dyn RngCore) -> Genome {
        let n = self.graph.task_count();
        let mut order: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        order
            .into_iter()
            .map(|t| {
                let task = TaskId::new(t);
                let ty = self.graph.tasks()[t as usize].task_type();
                let (pe, choice) = self.random_config(ty, rng);
                Gene { task, pe, choice }
            })
            .collect()
    }

    /// Repairs a genome in place: any `(PE, choice)` pair that is invalid
    /// under the current mode is re-sampled. The permutation itself is
    /// never touched (the operators preserve it by construction).
    pub fn repair(&self, genome: &mut Genome, rng: &mut dyn RngCore) {
        for gene in genome.iter_mut() {
            let ty = self.graph.tasks()[gene.task.index()].task_type();
            if gene.pe.index() >= self.platform.pe_count() {
                let (pe, choice) = self.random_config(ty, rng);
                gene.pe = pe;
                gene.choice = choice;
                continue;
            }
            let list = self.choices(ty, gene.pe);
            if list.is_empty() {
                let (pe, choice) = self.random_config(ty, rng);
                gene.pe = pe;
                gene.choice = choice;
            } else if list.binary_search(&(gene.choice as usize)).is_err() {
                gene.choice = list[rng.gen_range(0..list.len())] as u32;
            }
        }
    }

    /// Validates a genome against this codec: correct length, a true task
    /// permutation, in-range PEs and in-range candidate indices.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::InvalidGenome`] describing the first violated
    /// invariant.
    pub fn validate_genome(&self, genome: &Genome) -> Result<(), DseError> {
        let n = self.graph.task_count();
        if genome.len() != n {
            return Err(DseError::InvalidGenome {
                what: "genome length differs from the graph's task count",
            });
        }
        let mut seen = vec![false; n];
        for gene in genome {
            let Some(task) = self.graph.tasks().get(gene.task.index()) else {
                return Err(DseError::InvalidGenome {
                    what: "gene references a task outside the graph",
                });
            };
            if std::mem::replace(&mut seen[gene.task.index()], true) {
                return Err(DseError::InvalidGenome {
                    what: "genome is not a task permutation (duplicate task)",
                });
            }
            if gene.pe.index() >= self.platform.pe_count() {
                return Err(DseError::InvalidGenome {
                    what: "gene references a PE outside the platform",
                });
            }
            let ty = task.task_type();
            if (gene.choice as usize) >= self.library.full_count(ty) {
                return Err(DseError::InvalidGenome {
                    what: "gene's candidate choice is outside the task type's library",
                });
            }
        }
        Ok(())
    }

    /// Validates and decodes a genome into a scheduler-level [`Mapping`].
    ///
    /// # Errors
    ///
    /// Returns [`DseError::InvalidGenome`] instead of panicking on any
    /// out-of-range index — the entry point for evaluating *untrusted*
    /// genomes (e.g. ones restored from a checkpoint).
    pub fn try_decode(&self, genome: &Genome) -> Result<Mapping, DseError> {
        self.validate_genome(genome)?;
        Ok(self.decode(genome))
    }

    /// Decodes a genome into a scheduler-level [`Mapping`].
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices; genomes produced by
    /// [`Codec::random_genome`] + the [`ClrVariation`] operators are
    /// always in range. Use [`Codec::try_decode`] for untrusted genomes.
    pub fn decode(&self, genome: &Genome) -> Mapping {
        let n = self.graph.task_count();
        let placeholder = self
            .library
            .candidate(self.graph.tasks()[0].task_type(), 0)
            .metrics;
        let mut pes = vec![PeId::new(0); n];
        let mut metrics = vec![placeholder; n];
        let mut footprints = vec![0.0f64; n];
        let mut priority = Vec::with_capacity(n);
        for gene in genome {
            let ty = self.graph.tasks()[gene.task.index()].task_type();
            let cand = self.library.candidate(ty, gene.choice as usize);
            pes[gene.task.index()] = gene.pe;
            metrics[gene.task.index()] = cand.metrics;
            footprints[gene.task.index()] = cand.memory_bytes;
            priority.push(gene.task);
        }
        Mapping::new(pes, metrics, priority).with_footprints(footprints)
    }
}

/// The paper's crossover and mutation operators over [`Genome`]s.
#[derive(Debug, Clone)]
pub struct ClrVariation<'a> {
    codec: &'a Codec<'a>,
}

impl<'a> ClrVariation<'a> {
    /// Creates the operator suite bound to a codec.
    pub fn new(codec: &'a Codec<'a>) -> Self {
        ClrVariation { codec }
    }

    /// Two-point crossover over the task-id space: tasks with ids inside a
    /// random `[lo, hi]` range swap their configuration data between the
    /// parents; each parent keeps its own ordering.
    fn config_crossover(&self, a: &Genome, b: &Genome, rng: &mut dyn RngCore) -> (Genome, Genome) {
        let n = a.len();
        let (mut lo, mut hi) = (rng.gen_range(0..n), rng.gen_range(0..n));
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        let mut conf_a = vec![(PeId::new(0), 0u32); n];
        let mut conf_b = vec![(PeId::new(0), 0u32); n];
        for g in a {
            conf_a[g.task.index()] = (g.pe, g.choice);
        }
        for g in b {
            conf_b[g.task.index()] = (g.pe, g.choice);
        }
        let mut c1 = a.clone();
        let mut c2 = b.clone();
        for g in c1.iter_mut() {
            let t = g.task.index();
            if t >= lo && t <= hi {
                g.pe = conf_b[t].0;
                g.choice = conf_b[t].1;
            }
        }
        for g in c2.iter_mut() {
            let t = g.task.index();
            if t >= lo && t <= hi {
                g.pe = conf_a[t].0;
                g.choice = conf_a[t].1;
            }
        }
        (c1, c2)
    }

    /// Single-point order crossover (OX): the child keeps one parent's
    /// prefix, then appends the remaining tasks in the other parent's
    /// order (with that parent's configurations).
    fn order_crossover(&self, a: &Genome, b: &Genome, rng: &mut dyn RngCore) -> (Genome, Genome) {
        let n = a.len();
        let cut = rng.gen_range(0..=n);
        let ox = |head: &Genome, tail: &Genome| -> Genome {
            let mut present = vec![false; n];
            let mut child: Genome = head[..cut].to_vec();
            for g in &child {
                present[g.task.index()] = true;
            }
            for g in tail {
                if !present[g.task.index()] {
                    child.push(*g);
                }
            }
            child
        };
        (ox(a, b), ox(b, a))
    }

    /// Single-point configuration mutation: one random task's
    /// `(PE, choice)` is re-randomized.
    fn config_mutation(&self, genome: &mut Genome, rng: &mut dyn RngCore) {
        let i = rng.gen_range(0..genome.len());
        let ty = self.codec.graph().tasks()[genome[i].task.index()].task_type();
        let (pe, choice) = self.codec.random_config(ty, rng);
        genome[i].pe = pe;
        genome[i].choice = choice;
    }

    /// Two-point scheduling mutation: two non-overlapping equal-length
    /// subsequences swap positions.
    fn order_mutation(&self, genome: &mut Genome, rng: &mut dyn RngCore) {
        let n = genome.len();
        if n < 2 {
            return;
        }
        let len = rng.gen_range(1..=(n / 2).max(1));
        let i = rng.gen_range(0..=(n - 2 * len));
        let j = rng.gen_range((i + len)..=(n - len));
        for k in 0..len {
            genome.swap(i + k, j + k);
        }
    }
}

impl Variation<Genome> for ClrVariation<'_> {
    fn crossover(&self, a: &Genome, b: &Genome, rng: &mut dyn RngCore) -> (Genome, Genome) {
        let (mut c1, mut c2) = if rng.gen_bool(0.5) {
            self.config_crossover(a, b, rng)
        } else {
            self.order_crossover(a, b, rng)
        };
        self.codec.repair(&mut c1, rng);
        self.codec.repair(&mut c2, rng);
        (c1, c2)
    }

    fn mutate(&self, genome: &mut Genome, rng: &mut dyn RngCore) {
        if rng.gen_bool(0.5) {
            self.config_mutation(genome, rng);
        } else {
            self.order_mutation(genome, rng);
        }
        self.codec.repair(genome, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tdse::{build_library, TdseConfig};
    use clre_model::platform::paper_platform;
    use clre_model::TaskType;
    use clre_profile::SyntheticCharacterizer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Platform, TaskGraph) {
        let platform = paper_platform();
        let ch = SyntheticCharacterizer::new(5);
        let mut b = TaskGraph::builder("g", 1.0e-2);
        for ty in 0..3 {
            let mut t = TaskType::new(format!("ty{ty}"));
            for imp in ch.impls_for_type(ty, &platform) {
                t = t.with_impl(imp);
            }
            b = b.task_type(t);
        }
        let g = b
            .task("a", "ty0")
            .unwrap()
            .task("b", "ty1")
            .unwrap()
            .task("c", "ty2")
            .unwrap()
            .task("d", "ty0")
            .unwrap()
            .task("e", "ty1")
            .unwrap()
            .edge(0, 1)
            .edge(0, 2)
            .edge(1, 3)
            .edge(2, 4)
            .build()
            .unwrap();
        (platform, g)
    }

    fn is_permutation(genome: &Genome, n: usize) -> bool {
        let mut seen = vec![false; n];
        for g in genome {
            if g.task.index() >= n || seen[g.task.index()] {
                return false;
            }
            seen[g.task.index()] = true;
        }
        genome.len() == n
    }

    fn is_valid(codec: &Codec<'_>, genome: &Genome) -> bool {
        is_permutation(genome, codec.graph().task_count())
            && genome.iter().all(|g| {
                let ty = codec.graph().tasks()[g.task.index()].task_type();
                codec
                    .choices(ty, g.pe)
                    .binary_search(&(g.choice as usize))
                    .is_ok()
            })
    }

    #[test]
    fn random_genomes_are_valid_in_both_modes() {
        let (p, g) = setup();
        let lib = build_library(&g, &p, &TdseConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for mode in [ChoiceMode::Full, ChoiceMode::ParetoFiltered] {
            let codec = Codec::new(&g, &p, &lib, mode).unwrap();
            for _ in 0..50 {
                let genome = codec.random_genome(&mut rng);
                assert!(is_valid(&codec, &genome));
            }
        }
    }

    #[test]
    fn pareto_genome_valid_under_full_mode() {
        // The seeding bridge: pfCLR genomes must be valid fcCLR genomes.
        let (p, g) = setup();
        let lib = build_library(&g, &p, &TdseConfig::default()).unwrap();
        let pf = Codec::new(&g, &p, &lib, ChoiceMode::ParetoFiltered).unwrap();
        let fc = Codec::new(&g, &p, &lib, ChoiceMode::Full).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let genome = pf.random_genome(&mut rng);
            assert!(is_valid(&fc, &genome));
        }
    }

    #[test]
    fn operators_preserve_validity() {
        let (p, g) = setup();
        let lib = build_library(&g, &p, &TdseConfig::default()).unwrap();
        let codec = Codec::new(&g, &p, &lib, ChoiceMode::Full).unwrap();
        let var = ClrVariation::new(&codec);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let a = codec.random_genome(&mut rng);
            let b = codec.random_genome(&mut rng);
            let (c1, c2) = var.crossover(&a, &b, &mut rng);
            assert!(is_valid(&codec, &c1), "crossover child 1 invalid");
            assert!(is_valid(&codec, &c2), "crossover child 2 invalid");
            let mut m = c1.clone();
            var.mutate(&mut m, &mut rng);
            assert!(is_valid(&codec, &m), "mutant invalid");
        }
    }

    #[test]
    fn decode_roundtrips_configuration() {
        let (p, g) = setup();
        let lib = build_library(&g, &p, &TdseConfig::default()).unwrap();
        let codec = Codec::new(&g, &p, &lib, ChoiceMode::ParetoFiltered).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let genome = codec.random_genome(&mut rng);
        let mapping = codec.decode(&genome);
        assert_eq!(mapping.task_count(), 5);
        for gene in &genome {
            assert_eq!(mapping.pe_of(gene.task), gene.pe);
            let ty = g.tasks()[gene.task.index()].task_type();
            let expect = lib.candidate(ty, gene.choice as usize).metrics;
            assert_eq!(
                mapping.metrics_of(gene.task).avg_exec_time,
                expect.avg_exec_time
            );
        }
        // Priority order follows gene order.
        let prio: Vec<TaskId> = genome.iter().map(|g| g.task).collect();
        assert_eq!(mapping.priority(), &prio[..]);
        // Decoded mappings schedule cleanly.
        assert!(mapping.validate(&g, &p).is_ok());
    }

    #[test]
    fn repair_fixes_foreign_choices() {
        let (p, g) = setup();
        let lib = build_library(&g, &p, &TdseConfig::default()).unwrap();
        let codec = Codec::new(&g, &p, &lib, ChoiceMode::ParetoFiltered).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut genome = codec.random_genome(&mut rng);
        for gene in genome.iter_mut() {
            gene.choice = u32::MAX;
        }
        codec.repair(&mut genome, &mut rng);
        assert!(is_valid(&codec, &genome));
        // Out-of-range PEs are also repaired.
        genome[0].pe = PeId::new(99);
        codec.repair(&mut genome, &mut rng);
        assert!(is_valid(&codec, &genome));
    }

    #[test]
    fn order_mutation_changes_order_only() {
        let (p, g) = setup();
        let lib = build_library(&g, &p, &TdseConfig::default()).unwrap();
        let codec = Codec::new(&g, &p, &lib, ChoiceMode::Full).unwrap();
        let var = ClrVariation::new(&codec);
        let mut rng = StdRng::seed_from_u64(6);
        let genome = codec.random_genome(&mut rng);
        let mut changed_order = false;
        for _ in 0..50 {
            let mut m = genome.clone();
            var.order_mutation(&mut m, &mut rng);
            assert!(is_permutation(&m, 5));
            let orig: Vec<TaskId> = genome.iter().map(|g| g.task).collect();
            let now: Vec<TaskId> = m.iter().map(|g| g.task).collect();
            if orig != now {
                changed_order = true;
            }
            // Configs unchanged per task.
            for g in &m {
                let src = genome.iter().find(|x| x.task == g.task).unwrap();
                assert_eq!((src.pe, src.choice), (g.pe, g.choice));
            }
        }
        assert!(changed_order, "order mutation never changed the order");
    }

    #[test]
    fn single_task_genome_operators_are_safe() {
        let platform = paper_platform();
        let ch = SyntheticCharacterizer::new(5);
        let mut t = TaskType::new("ty0");
        for imp in ch.impls_for_type(0, &platform) {
            t = t.with_impl(imp);
        }
        let g = TaskGraph::builder("one", 1.0)
            .task_type(t)
            .task("a", "ty0")
            .unwrap()
            .build()
            .unwrap();
        let lib = build_library(&g, &platform, &TdseConfig::default()).unwrap();
        let codec = Codec::new(&g, &platform, &lib, ChoiceMode::Full).unwrap();
        let var = ClrVariation::new(&codec);
        let mut rng = StdRng::seed_from_u64(7);
        let a = codec.random_genome(&mut rng);
        let b = codec.random_genome(&mut rng);
        for _ in 0..20 {
            let (c1, _) = var.crossover(&a, &b, &mut rng);
            let mut m = c1;
            var.mutate(&mut m, &mut rng);
            assert!(is_valid(&codec, &m));
        }
    }
}

//! Content-addressed evaluation cache: two-level memoization for the
//! exact, deterministic computations that dominate DSE cost.
//!
//! * **Level 1 — task analysis.** [`analyze_robust`] solves two absorbing
//!   Markov chains (LU factorizations) per `(implementation × DVFS × CLR)`
//!   point. The same points recur across campaign stages (`agnostic`
//!   rebuilds four single-layer libraries), across sweep cells, and across
//!   `ClrEarly` instances. The analysis cache keys on
//!   [`ClrChainParams::digest`] — FNV-1a over the IEEE-754 bit patterns of
//!   every field, exact bits, no quantization — and stores the full
//!   parameter set so a digest collision is detected by comparison and
//!   degrades to a recomputation, never to a wrong answer.
//! * **Level 2 — genome fitness.** Every GA generation re-decodes and
//!   re-schedules genomes that recur across generations and seeded stages.
//!   The fitness cache keys on the exact gene sequence plus a *problem
//!   digest* (graph, platform, library content, objectives, QoS spec) so
//!   one cache may be shared across stages and sweep cells without
//!   cross-contamination. It stores `(SystemMetrics, violation)` — not the
//!   projected objective vector — so front annotation is a pure lookup.
//!
//! Both levels use sharded locks (safe under the `clre-exec` worker pool)
//! with an **insert-once** discipline: the first writer wins, later
//! writers adopt the stored value. Because every cached computation is a
//! deterministic pure function of its key, a hit replays the uncached
//! computation bit-for-bit — cached and uncached runs produce identical
//! Pareto fronts for any worker count (DESIGN.md §12 gives the full
//! argument).
//!
//! # Persistence
//!
//! [`EvalCache::bind_sidecar`] attaches an append-only journal
//! (header [`CACHE_HEADER`]) next to the campaign checkpoint: existing
//! entries are loaded (warm start), and every subsequent first-insert
//! appends one self-contained line. Like the sweep ledger, the file is
//! torn-tail tolerant — a process killed mid-write leaves at most one
//! malformed line, which the loader skips; a corrupted or foreign file
//! degrades to a cold cache without error.
//!
//! # Examples
//!
//! ```
//! use clre::cache::EvalCache;
//! use clre_markov::clr::ClrChainParams;
//!
//! let cache = EvalCache::new();
//! let params = ClrChainParams::unprotected(300.0e-6, 100.0);
//! assert!(cache.analysis(&params).is_none()); // cold
//! let analysis = clre_markov::clr::analyze_robust(&params).unwrap();
//! cache.insert_analysis(&params, analysis);
//! assert_eq!(cache.analysis(&params), Some(analysis)); // exact replay
//! ```
//!
//! [`analyze_robust`]: clre_markov::clr::analyze_robust

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use clre_markov::clr::{
    ClrChainParams, ClrChainSpec, FaultMechanism, RobustAnalysis, TaskReliability,
};
use clre_model::qos::SystemMetrics;

use crate::encoding::Genome;

/// First line of every cache sidecar file.
pub const CACHE_HEADER: &str = "clrearly-cache v1";

/// Number of lock shards per cache level. A power of two so the shard
/// index is a cheap mask of the key digest.
const SHARDS: usize = 16;

/// Incremental FNV-1a (64-bit) hasher over machine words.
///
/// The cache's content digests — [`ClrChainParams::digest`], the genome
/// key, the problem digest — are all FNV-1a over little-endian byte
/// streams, built through this helper so every layer folds words the same
/// way.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    /// Folds one 64-bit word (as little-endian bytes).
    pub fn write_u64(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Folds an `f64` by its IEEE-754 bit pattern (exact bits: `-0.0`
    /// and `0.0` hash differently, as do distinct NaN payloads).
    pub fn write_f64(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }

    /// Folds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

/// Monotonic hit/miss/insert counts of one cache level (or the sum of
/// both, via [`EvalCache::counts`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounts {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing (or a digest collision).
    pub misses: u64,
    /// First-writer insertions (loaded sidecar entries not included).
    pub inserts: u64,
    /// Entries evicted by the size-capped LRU policy (0 when unbounded).
    pub evictions: u64,
}

impl CacheCounts {
    /// Fitness-style hit rate `hits / (hits + misses)`; `0.0` when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct LevelStats {
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

impl LevelStats {
    fn counts(&self) -> CacheCounts {
        CacheCounts {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// The memoized outcome of one genome evaluation: the full system metrics
/// plus the total constraint violation (QoS spec + memory capacity).
///
/// The objective vector is *not* stored: it is a pure projection of the
/// metrics through the problem's `ObjectiveSet`, recomputed on hit. This
/// is what lets front annotation reuse the cache as a pure lookup instead
/// of re-decoding and re-scheduling the genome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedFitness {
    /// The Table III system metrics of the decoded, scheduled mapping.
    pub metrics: SystemMetrics,
    /// Total normalized constraint violation; `0.0` means feasible.
    pub violation: f64,
}

/// One fitness-cache entry: the exact key (for collision detection) plus
/// the memoized value.
#[derive(Debug, Clone)]
struct FitnessEntry {
    problem: u64,
    genome: Genome,
    value: CachedFitness,
}

/// One analysis-cache slot: the exact chain spec (for collision
/// detection), the memoized analysis, and the LRU recency stamp.
#[derive(Debug, Clone, Copy)]
struct AnalysisSlot {
    spec: ClrChainSpec,
    analysis: RobustAnalysis,
    tick: u64,
}

/// One fitness-cache slot: the entry plus its LRU recency stamp.
#[derive(Debug, Clone)]
struct FitnessSlot {
    entry: FitnessEntry,
    tick: u64,
}

type AnalysisShard = Mutex<HashMap<u64, AnalysisSlot>>;
type FitnessShard = Mutex<HashMap<u64, FitnessSlot>>;

/// The two-level, thread-safe, content-addressed evaluation cache.
///
/// Shared by [`Arc`]: one instance may serve many `ClrEarly` campaigns,
/// sweep cells and worker threads concurrently. See the [module
/// docs](self) for the determinism argument and the sidecar format.
#[derive(Debug)]
pub struct EvalCache {
    analysis: Vec<AnalysisShard>,
    fitness: Vec<FitnessShard>,
    analysis_stats: LevelStats,
    fitness_stats: LevelStats,
    sidecar: Mutex<Option<fs::File>>,
    sidecar_skipped: AtomicU64,
    /// Monotonic recency clock shared by both levels; bumped on every
    /// hit and insert, stamped into the touched slot.
    tick: AtomicU64,
    /// Per-level entry ceiling (`0` = unbounded). Enforced per shard as
    /// `max(1, ceiling / SHARDS)`, so the bound is approximate when keys
    /// hash unevenly but never exceeds the ceiling by more than a shard.
    entry_ceiling: AtomicUsize,
}

impl Default for EvalCache {
    fn default() -> Self {
        Self::new()
    }
}

impl EvalCache {
    /// An empty, unbound (in-memory only) cache with no entry ceiling.
    pub fn new() -> Self {
        EvalCache {
            analysis: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            fitness: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            analysis_stats: LevelStats::default(),
            fitness_stats: LevelStats::default(),
            sidecar: Mutex::new(None),
            sidecar_skipped: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            entry_ceiling: AtomicUsize::new(0),
        }
    }

    /// An empty cache behind an [`Arc`], ready to share across campaign
    /// stages and worker threads.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Sets the per-level entry ceiling (`0` = unbounded). When a level
    /// exceeds its ceiling the least-recently-used entries are evicted
    /// (counted in [`CacheCounts::evictions`]). Eviction only affects hit
    /// rates, never answers: every cached computation is a pure function
    /// of its key, so a re-miss recomputes the identical bits.
    pub fn set_entry_ceiling(&self, ceiling: usize) {
        self.entry_ceiling.store(ceiling, Ordering::Relaxed);
    }

    /// The current per-level entry ceiling (`0` = unbounded).
    pub fn entry_ceiling(&self) -> usize {
        self.entry_ceiling.load(Ordering::Relaxed)
    }

    /// Per-shard slot budget derived from the ceiling; `None` = unbounded.
    fn shard_cap(&self) -> Option<usize> {
        match self.entry_ceiling.load(Ordering::Relaxed) {
            0 => None,
            ceiling => Some(std::cmp::max(1, ceiling / SHARDS)),
        }
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    fn shard(digest: u64) -> usize {
        // The digest's low byte is well-mixed (FNV multiplies last).
        (digest as usize) & (SHARDS - 1)
    }

    /// Looks up a task analysis by exact parameter bits (transient
    /// mechanism).
    ///
    /// Returns `None` on a true miss *and* on a digest collision (the
    /// stored parameters differ bit-wise) — a collision recomputes rather
    /// than ever replaying the wrong analysis.
    pub fn analysis(&self, params: &ClrChainParams) -> Option<RobustAnalysis> {
        self.analysis_spec(&ClrChainSpec::transient(*params))
    }

    /// Looks up a task analysis by exact chain-spec bits (parameters plus
    /// fault mechanism). Transient specs share keys with the historic
    /// parameter-based entries, so pre-mechanism sidecars keep hitting.
    pub fn analysis_spec(&self, spec: &ClrChainSpec) -> Option<RobustAnalysis> {
        let digest = spec.digest();
        let mut shard = self.analysis[Self::shard(digest)]
            .lock()
            .expect("analysis cache poisoned");
        match shard.get_mut(&digest) {
            Some(slot) if slot.spec == *spec => {
                slot.tick = self.next_tick();
                self.analysis_stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(slot.analysis)
            }
            _ => {
                self.analysis_stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a task analysis (insert-once: the first writer wins) and
    /// returns the stored value — callers use the return value so every
    /// worker proceeds with identical bits.
    pub fn insert_analysis(
        &self,
        params: &ClrChainParams,
        analysis: RobustAnalysis,
    ) -> RobustAnalysis {
        self.insert_analysis_spec(&ClrChainSpec::transient(*params), analysis)
    }

    /// Inserts a mechanism-aware task analysis (insert-once) and returns
    /// the stored value.
    pub fn insert_analysis_spec(
        &self,
        spec: &ClrChainSpec,
        analysis: RobustAnalysis,
    ) -> RobustAnalysis {
        let digest = spec.digest();
        let cap = self.shard_cap();
        let (stored, fresh, evicted) = {
            let mut shard = self.analysis[Self::shard(digest)]
                .lock()
                .expect("analysis cache poisoned");
            match shard.entry(digest) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    let slot = e.get();
                    // A collision slot belongs to the first key; adopt the
                    // stored value only for the matching key.
                    if slot.spec == *spec {
                        (slot.analysis, false, 0)
                    } else {
                        (analysis, false, 0)
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(AnalysisSlot {
                        spec: *spec,
                        analysis,
                        tick: self.next_tick(),
                    });
                    let evicted = match cap {
                        Some(cap) => evict_lru(&mut shard, cap, digest, |s| s.tick),
                        None => 0,
                    };
                    (analysis, true, evicted)
                }
            }
        };
        if evicted > 0 {
            self.analysis_stats
                .evictions
                .fetch_add(evicted, Ordering::Relaxed);
        }
        if fresh {
            self.analysis_stats.inserts.fetch_add(1, Ordering::Relaxed);
            self.append_line(&encode_analysis_spec(spec, &stored));
        }
        stored
    }

    /// Looks up a genome fitness by problem digest + exact gene sequence.
    pub fn fitness(&self, problem: u64, genome: &Genome) -> Option<CachedFitness> {
        let digest = fitness_digest(problem, genome);
        let mut shard = self.fitness[Self::shard(digest)]
            .lock()
            .expect("fitness cache poisoned");
        match shard.get_mut(&digest) {
            Some(slot) if slot.entry.problem == problem && slot.entry.genome == *genome => {
                slot.tick = self.next_tick();
                self.fitness_stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(slot.entry.value)
            }
            _ => {
                self.fitness_stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a genome fitness (insert-once: the first writer wins) and
    /// returns the stored value.
    pub fn insert_fitness(
        &self,
        problem: u64,
        genome: &Genome,
        value: CachedFitness,
    ) -> CachedFitness {
        let digest = fitness_digest(problem, genome);
        let cap = self.shard_cap();
        let (stored, fresh, evicted) = {
            let mut shard = self.fitness[Self::shard(digest)]
                .lock()
                .expect("fitness cache poisoned");
            match shard.entry(digest) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    let entry = &e.get().entry;
                    if entry.problem == problem && entry.genome == *genome {
                        (entry.value, false, 0)
                    } else {
                        (value, false, 0)
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(FitnessSlot {
                        entry: FitnessEntry {
                            problem,
                            genome: genome.clone(),
                            value,
                        },
                        tick: self.next_tick(),
                    });
                    let evicted = match cap {
                        Some(cap) => evict_lru(&mut shard, cap, digest, |s| s.tick),
                        None => 0,
                    };
                    (value, true, evicted)
                }
            }
        };
        if evicted > 0 {
            self.fitness_stats
                .evictions
                .fetch_add(evicted, Ordering::Relaxed);
        }
        if fresh {
            self.fitness_stats.inserts.fetch_add(1, Ordering::Relaxed);
            self.append_line(&encode_fitness(problem, genome, &stored));
        }
        stored
    }

    /// Analysis-level counters.
    pub fn analysis_counts(&self) -> CacheCounts {
        self.analysis_stats.counts()
    }

    /// Fitness-level counters.
    pub fn fitness_counts(&self) -> CacheCounts {
        self.fitness_stats.counts()
    }

    /// Both levels summed — what threads into `RunHealth` and the
    /// per-generation trace.
    pub fn counts(&self) -> CacheCounts {
        let a = self.analysis_counts();
        let f = self.fitness_counts();
        CacheCounts {
            hits: a.hits + f.hits,
            misses: a.misses + f.misses,
            inserts: a.inserts + f.inserts,
            evictions: a.evictions + f.evictions,
        }
    }

    /// Number of distinct analyses currently held.
    pub fn analysis_len(&self) -> usize {
        self.analysis
            .iter()
            .map(|s| s.lock().expect("analysis cache poisoned").len())
            .sum()
    }

    /// Number of distinct genome fitnesses currently held.
    pub fn fitness_len(&self) -> usize {
        self.fitness
            .iter()
            .map(|s| s.lock().expect("fitness cache poisoned").len())
            .sum()
    }

    /// Binds this cache to an append-only sidecar journal: loads every
    /// entry already journalled at `path` (warm start), then appends one
    /// line per future first-insert.
    ///
    /// Degrades rather than fails: a missing file is created; malformed
    /// lines — at most the torn tail of a killed run, or wholesale
    /// corruption — are skipped; a file with a foreign header is left
    /// untouched and the cache simply stays unbound (cold, in-memory
    /// only).
    ///
    /// # Errors
    ///
    /// Only genuine I/O failures (permissions, disk) are reported.
    pub fn bind_sidecar(&self, path: &Path) -> io::Result<()> {
        match fs::read_to_string(path) {
            Ok(text) => {
                let mut lines = text.lines();
                match lines.next() {
                    Some(first) if first != CACHE_HEADER => {
                        // Foreign file: never append into it.
                        return Ok(());
                    }
                    _ => {}
                }
                for line in lines {
                    if line.trim().is_empty() {
                        continue;
                    }
                    if !self.load_line(line) {
                        self.sidecar_skipped.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            fs::create_dir_all(dir)?;
        }
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        if file.metadata()?.len() == 0 {
            writeln!(file, "{CACHE_HEADER}")?;
        }
        *self.sidecar.lock().expect("cache sidecar poisoned") = Some(file);
        Ok(())
    }

    /// Whether a sidecar journal is currently bound.
    pub fn is_bound(&self) -> bool {
        self.sidecar
            .lock()
            .expect("cache sidecar poisoned")
            .is_some()
    }

    /// Number of sidecar lines skipped while loading: torn tails,
    /// wholesale corruption, or integrity-digest mismatches. Each skip
    /// degrades exactly one entry to a recomputation, never to a wrong
    /// answer.
    pub fn sidecar_skipped(&self) -> u64 {
        self.sidecar_skipped.load(Ordering::Relaxed)
    }

    /// Inserts one journal line without re-appending it; returns whether
    /// the line was loadable. Malformed or digest-mismatching lines are
    /// skipped (torn-tail tolerance).
    fn load_line(&self, line: &str) -> bool {
        let Some(body) = verify_line(line) else {
            return false;
        };
        if let Some((spec, analysis)) = parse_analysis_any(body) {
            let digest = spec.digest();
            let tick = self.next_tick();
            self.analysis[Self::shard(digest)]
                .lock()
                .expect("analysis cache poisoned")
                .entry(digest)
                .or_insert(AnalysisSlot {
                    spec,
                    analysis,
                    tick,
                });
            true
        } else if let Some(entry) = parse_fitness(body) {
            let digest = fitness_digest(entry.problem, &entry.genome);
            let tick = self.next_tick();
            self.fitness[Self::shard(digest)]
                .lock()
                .expect("fitness cache poisoned")
                .entry(digest)
                .or_insert(FitnessSlot { entry, tick });
            true
        } else {
            false
        }
    }

    /// Appends one line to the bound sidecar; unbound caches skip the
    /// write. Append failure is deliberately swallowed: the cache is an
    /// accelerator, a full disk must not fail the evaluation itself.
    fn append_line(&self, line: &str) {
        let mut guard = self.sidecar.lock().expect("cache sidecar poisoned");
        if let Some(file) = guard.as_mut() {
            let _ = writeln!(file, "{line}");
        }
    }
}

/// Evicts least-recently-used slots from one shard until it holds at most
/// `cap` entries, never evicting the just-inserted `keep` key. Returns the
/// number of evictions.
fn evict_lru<V>(
    shard: &mut HashMap<u64, V>,
    cap: usize,
    keep: u64,
    tick: impl Fn(&V) -> u64,
) -> u64 {
    let mut evicted = 0;
    while shard.len() > cap {
        let Some((&victim, _)) = shard
            .iter()
            .filter(|(&k, _)| k != keep)
            .min_by_key(|(_, v)| tick(v))
        else {
            break;
        };
        shard.remove(&victim);
        evicted += 1;
    }
    evicted
}

/// The sidecar journal path for a given checkpoint path: `cache.txt` next
/// to the checkpoint (mirroring the quarantine sidecar convention).
pub fn cache_sidecar_path(checkpoint_path: &Path) -> PathBuf {
    match checkpoint_path.parent() {
        Some(dir) => dir.join("cache.txt"),
        None => PathBuf::from("cache.txt"),
    }
}

/// Digest of one fitness key: the problem digest folded with every gene's
/// `(task, pe, choice)` triple.
fn fitness_digest(problem: u64, genome: &Genome) -> u64 {
    let mut fnv = Fnv::new();
    fnv.write_u64(problem);
    for gene in genome {
        fnv.write_u64(gene.task.index() as u64);
        fnv.write_u64(gene.pe.index() as u64);
        fnv.write_u64(u64::from(gene.choice));
    }
    fnv.finish()
}

/// Appends the per-line integrity token `i=<fnv1a64-hex>`, the digest of
/// every byte before it. A bit flip anywhere in the record — not just a
/// torn tail — is then caught by [`verify_line`] on reload.
fn seal_line(mut line: String) -> String {
    let mut fnv = Fnv::new();
    fnv.write_bytes(line.as_bytes());
    let _ = write!(line, " i={:016x}", fnv.finish());
    line
}

/// Checks a line's integrity token and returns the record body.
///
/// Lines written before the token existed (no ` i=` marker) pass through
/// unchanged — old sidecars keep warm-starting. A token that is present
/// but malformed or mismatching yields `None`: the line is corrupt and
/// must degrade to a recomputation.
fn verify_line(line: &str) -> Option<&str> {
    let Some(at) = line.rfind(" i=") else {
        return Some(line); // legacy line, no token
    };
    let (body, token) = (&line[..at], &line[at + 3..]);
    if token.len() != 16 {
        return None;
    }
    let digest = u64::from_str_radix(token, 16).ok()?;
    let mut fnv = Fnv::new();
    fnv.write_bytes(body.as_bytes());
    (fnv.finish() == digest).then_some(body)
}

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_f64_hex(tok: &str) -> Option<f64> {
    if tok.len() != 16 {
        return None;
    }
    u64::from_str_radix(tok, 16).ok().map(f64::from_bits)
}

/// One mechanism-aware analysis line. Transient specs keep the historic
/// `analysis …` record byte-for-byte (old and new builds share sidecars);
/// other mechanisms are journalled as
/// `analysis2 <tag hex> <payload hex> <legacy analysis body>` where
/// `(tag, payload)` is [`FaultMechanism::encode_words`].
fn encode_analysis_spec(spec: &ClrChainSpec, analysis: &RobustAnalysis) -> String {
    if spec.mechanism.is_transient() {
        return encode_analysis(&spec.params, analysis);
    }
    let (tag, payload) = spec.mechanism.encode_words();
    let legacy = analysis_body(&spec.params, analysis);
    seal_line(format!("analysis2 {tag:x} {payload:016x}{legacy}"))
}

/// One analysis line:
/// `analysis <11 param hex> <intervals> <min> <avg> <err> <degraded> <retried> i=<digest>`
/// with every `f64` as an IEEE-754 bit pattern (exact round-trip) and a
/// trailing per-line integrity token.
fn encode_analysis(params: &ClrChainParams, analysis: &RobustAnalysis) -> String {
    seal_line(format!("analysis{}", analysis_body(params, analysis)))
}

/// The space-prefixed parameter/metrics body shared by `analysis` and
/// `analysis2` records.
fn analysis_body(params: &ClrChainParams, analysis: &RobustAnalysis) -> String {
    let mut line = String::new();
    for v in [
        params.exec_time,
        params.seu_rate,
        params.m_hw,
        params.m_impl_ssw,
        params.cov_det,
        params.m_tol,
        params.m_asw,
    ] {
        let _ = write!(line, " {}", f64_hex(v));
    }
    let _ = write!(line, " {}", params.intervals);
    for v in [params.t_det, params.t_tol, params.t_chk, params.p_chk_err] {
        let _ = write!(line, " {}", f64_hex(v));
    }
    let _ = write!(
        line,
        " {} {} {} {} {}",
        f64_hex(analysis.reliability.min_exec_time),
        f64_hex(analysis.reliability.avg_exec_time),
        f64_hex(analysis.reliability.error_prob),
        u8::from(analysis.degraded),
        u8::from(analysis.retried),
    );
    line
}

/// Parses either analysis record flavour into a mechanism-aware spec.
fn parse_analysis_any(line: &str) -> Option<(ClrChainSpec, RobustAnalysis)> {
    let mut tokens = line.split_whitespace();
    let mechanism = match tokens.next()? {
        // Historic record: implicitly transient.
        "analysis" => FaultMechanism::Transient,
        // Mechanism-tagged record; an unknown tag means a future format —
        // skip the line (degrade to recomputation) rather than guess.
        "analysis2" => {
            let tag = u64::from_str_radix(tokens.next()?, 16).ok()?;
            let payload_tok = tokens.next()?;
            if payload_tok.len() != 16 {
                return None;
            }
            let payload = u64::from_str_radix(payload_tok, 16).ok()?;
            FaultMechanism::decode_words(tag, payload)?
        }
        _ => return None,
    };
    let (params, analysis) = parse_analysis_body(tokens)?;
    Some((ClrChainSpec { params, mechanism }, analysis))
}

fn parse_analysis_body<'a>(
    mut tokens: impl Iterator<Item = &'a str>,
) -> Option<(ClrChainParams, RobustAnalysis)> {
    let mut f = || parse_f64_hex(tokens.next()?);
    let exec_time = f()?;
    let seu_rate = f()?;
    let m_hw = f()?;
    let m_impl_ssw = f()?;
    let cov_det = f()?;
    let m_tol = f()?;
    let m_asw = f()?;
    let intervals: u32 = tokens.next()?.parse().ok()?;
    let mut f = || parse_f64_hex(tokens.next()?);
    let t_det = f()?;
    let t_tol = f()?;
    let t_chk = f()?;
    let p_chk_err = f()?;
    let min_exec_time = f()?;
    let avg_exec_time = f()?;
    let error_prob = f()?;
    let degraded = match tokens.next()? {
        "0" => false,
        "1" => true,
        _ => return None,
    };
    let retried = match tokens.next()? {
        "0" => false,
        "1" => true,
        _ => return None,
    };
    if tokens.next().is_some() {
        return None; // trailing garbage: treat the line as torn
    }
    Some((
        ClrChainParams {
            exec_time,
            seu_rate,
            m_hw,
            m_impl_ssw,
            cov_det,
            m_tol,
            m_asw,
            intervals,
            t_det,
            t_tol,
            t_chk,
            p_chk_err,
        },
        RobustAnalysis {
            reliability: TaskReliability {
                min_exec_time,
                avg_exec_time,
                error_prob,
            },
            degraded,
            retried,
        },
    ))
}

/// One fitness line:
/// `fitness <problem hex> <n> <task:pe:choice>* <violation> <5 metric hex> i=<digest>`
fn encode_fitness(problem: u64, genome: &Genome, value: &CachedFitness) -> String {
    let mut line = format!("fitness {problem:016x} {}", genome.len());
    for gene in genome {
        let _ = write!(
            line,
            " {}:{}:{}",
            gene.task.index(),
            gene.pe.index(),
            gene.choice
        );
    }
    let _ = write!(
        line,
        " {} {} {} {} {} {}",
        f64_hex(value.violation),
        f64_hex(value.metrics.makespan),
        f64_hex(value.metrics.error_prob),
        f64_hex(value.metrics.mttf),
        f64_hex(value.metrics.energy),
        f64_hex(value.metrics.peak_power),
    );
    seal_line(line)
}

fn parse_fitness(line: &str) -> Option<FitnessEntry> {
    use clre_model::{PeId, TaskId};

    let mut tokens = line.split_whitespace();
    if tokens.next() != Some("fitness") {
        return None;
    }
    let problem_tok = tokens.next()?;
    if problem_tok.len() != 16 {
        return None;
    }
    let problem = u64::from_str_radix(problem_tok, 16).ok()?;
    let count: usize = tokens.next()?.parse().ok()?;
    let mut genome = Vec::with_capacity(count);
    for _ in 0..count {
        let triple = tokens.next()?;
        let mut parts = triple.split(':');
        let task: u32 = parts.next()?.parse().ok()?;
        let pe: u32 = parts.next()?.parse().ok()?;
        let choice: u32 = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        genome.push(crate::encoding::Gene {
            task: TaskId::new(task),
            pe: PeId::new(pe),
            choice,
        });
    }
    let mut f = || parse_f64_hex(tokens.next()?);
    let violation = f()?;
    let makespan = f()?;
    let error_prob = f()?;
    let mttf = f()?;
    let energy = f()?;
    let peak_power = f()?;
    if tokens.next().is_some() {
        return None;
    }
    Some(FitnessEntry {
        problem,
        genome,
        value: CachedFitness {
            metrics: SystemMetrics {
                makespan,
                error_prob,
                mttf,
                energy,
                peak_power,
            },
            violation,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clre_model::{PeId, TaskId};

    fn params(seed: f64) -> ClrChainParams {
        let mut p = ClrChainParams::unprotected(300.0e-6 * seed, 100.0);
        p.m_hw = 0.25;
        p
    }

    fn analysis(seed: f64) -> RobustAnalysis {
        RobustAnalysis {
            reliability: TaskReliability {
                min_exec_time: 1.0e-3 * seed,
                avg_exec_time: 1.5e-3 * seed,
                error_prob: 0.125 * seed,
            },
            degraded: false,
            retried: true,
        }
    }

    fn genome(seed: u32) -> Genome {
        (0..3)
            .map(|i| crate::encoding::Gene {
                task: TaskId::new(i),
                pe: PeId::new((i + seed) % 4),
                choice: seed.wrapping_mul(7) + i,
            })
            .collect()
    }

    fn fitness_value(seed: f64) -> CachedFitness {
        CachedFitness {
            metrics: SystemMetrics {
                makespan: 1.0e-3 * seed,
                error_prob: 0.01 * seed,
                mttf: 1.0e7 * seed,
                energy: 0.5 * seed,
                peak_power: 2.0 * seed,
            },
            violation: 0.0,
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("clre-cache-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn analysis_roundtrip_and_counters() {
        let cache = EvalCache::new();
        let p = params(1.0);
        assert_eq!(cache.analysis(&p), None);
        let stored = cache.insert_analysis(&p, analysis(1.0));
        assert_eq!(stored, analysis(1.0));
        assert_eq!(cache.analysis(&p), Some(analysis(1.0)));
        let counts = cache.analysis_counts();
        assert_eq!((counts.hits, counts.misses, counts.inserts), (1, 1, 1));
        assert_eq!(cache.analysis_len(), 1);
    }

    #[test]
    fn insert_once_keeps_the_first_value() {
        let cache = EvalCache::new();
        let p = params(1.0);
        cache.insert_analysis(&p, analysis(1.0));
        // A second writer adopts the stored value, not its own.
        let stored = cache.insert_analysis(&p, analysis(9.0));
        assert_eq!(stored, analysis(1.0));
        assert_eq!(cache.analysis_counts().inserts, 1);

        let g = genome(1);
        cache.insert_fitness(3, &g, fitness_value(1.0));
        let stored = cache.insert_fitness(3, &g, fitness_value(9.0));
        assert_eq!(stored, fitness_value(1.0));
        assert_eq!(cache.fitness_counts().inserts, 1);
    }

    #[test]
    fn fitness_is_scoped_by_problem_digest() {
        let cache = EvalCache::new();
        let g = genome(2);
        cache.insert_fitness(1, &g, fitness_value(1.0));
        assert_eq!(cache.fitness(1, &g), Some(fitness_value(1.0)));
        assert_eq!(cache.fitness(2, &g), None, "other problem never hits");
        assert_eq!(cache.fitness(1, &genome(3)), None, "other genome misses");
    }

    #[test]
    fn sidecar_roundtrips_both_levels() {
        let path = temp_path("roundtrip.cache");
        let _ = fs::remove_file(&path);
        let cache = EvalCache::new();
        cache.bind_sidecar(&path).unwrap();
        assert!(cache.is_bound());
        cache.insert_analysis(&params(1.0), analysis(1.0));
        cache.insert_fitness(7, &genome(1), fitness_value(1.0));

        let warm = EvalCache::new();
        warm.bind_sidecar(&path).unwrap();
        assert_eq!(warm.analysis(&params(1.0)), Some(analysis(1.0)));
        assert_eq!(warm.fitness(7, &genome(1)), Some(fitness_value(1.0)));
        assert_eq!(warm.counts().inserts, 0, "loads are not inserts");
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.starts_with(CACHE_HEADER));
    }

    #[test]
    fn torn_tail_degrades_to_partial_load() {
        let path = temp_path("torn.cache");
        let mut text = format!("{CACHE_HEADER}\n");
        text.push_str(&encode_analysis(&params(1.0), &analysis(1.0)));
        text.push('\n');
        let torn = encode_fitness(7, &genome(1), &fitness_value(1.0));
        text.push_str(&torn[..torn.len() / 2]);
        fs::write(&path, text).unwrap();

        let cache = EvalCache::new();
        cache.bind_sidecar(&path).unwrap();
        assert_eq!(cache.analysis(&params(1.0)), Some(analysis(1.0)));
        assert_eq!(cache.fitness(7, &genome(1)), None, "torn tail skipped");
    }

    #[test]
    fn wholesale_corruption_degrades_to_cold_cache() {
        let path = temp_path("corrupt.cache");
        fs::write(&path, format!("{CACHE_HEADER}\n\u{0}garbage lines\nmore\n")).unwrap();
        let cache = EvalCache::new();
        cache.bind_sidecar(&path).unwrap();
        assert_eq!(cache.analysis_len() + cache.fitness_len(), 0);
        assert!(cache.is_bound(), "still journals fresh inserts");
    }

    #[test]
    fn foreign_files_are_left_untouched() {
        let path = temp_path("foreign.cache");
        fs::write(&path, "clrearly-sweep v1\ncell t/a 1 0 0\n").unwrap();
        let cache = EvalCache::new();
        cache.bind_sidecar(&path).unwrap();
        assert!(!cache.is_bound(), "cold cache, no appends");
        cache.insert_analysis(&params(1.0), analysis(1.0));
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text, "clrearly-sweep v1\ncell t/a 1 0 0\n");
    }

    #[test]
    fn exact_bit_fidelity_through_the_sidecar() {
        let path = temp_path("bits.cache");
        let _ = fs::remove_file(&path);
        let cache = EvalCache::new();
        cache.bind_sidecar(&path).unwrap();
        let mut v = fitness_value(1.0);
        v.metrics.makespan = f64::from_bits(0x3FF0_0000_0000_0001); // 1 + ulp
        v.violation = 1.0e30;
        cache.insert_fitness(5, &genome(4), v);

        let warm = EvalCache::new();
        warm.bind_sidecar(&path).unwrap();
        let hit = warm.fitness(5, &genome(4)).unwrap();
        assert_eq!(hit.metrics.makespan.to_bits(), v.metrics.makespan.to_bits());
        assert_eq!(hit.violation.to_bits(), v.violation.to_bits());
    }

    #[test]
    fn sidecar_lines_carry_verified_integrity_tokens() {
        let line = encode_analysis(&params(1.0), &analysis(1.0));
        assert!(line.contains(" i="), "encoder seals every line");
        assert!(verify_line(&line).is_some());
        // A single-bit flip in the body fails the digest.
        let mut tampered = line.clone().into_bytes();
        tampered[10] ^= 0x01;
        let tampered = String::from_utf8(tampered).unwrap();
        assert_eq!(verify_line(&tampered), None);
        // A legacy line without a token passes through unchanged.
        let body = &line[..line.rfind(" i=").unwrap()];
        assert_eq!(verify_line(body), Some(body));
        assert!(
            parse_analysis_any(body).is_some(),
            "legacy lines still parse"
        );
    }

    #[test]
    fn corrupt_sidecar_lines_are_skipped_and_counted() {
        let path = temp_path("tampered.cache");
        let good_a = encode_analysis(&params(1.0), &analysis(1.0));
        let good_f = encode_fitness(7, &genome(1), &fitness_value(1.0));
        // Flip one byte inside the fitness record's digest-covered body.
        let tampered_f = good_f.replacen("fitness", "fitmess", 1);
        fs::write(&path, format!("{CACHE_HEADER}\n{good_a}\n{tampered_f}\n")).unwrap();

        let cache = EvalCache::new();
        cache.bind_sidecar(&path).unwrap();
        assert_eq!(cache.analysis(&params(1.0)), Some(analysis(1.0)));
        assert_eq!(cache.fitness(7, &genome(1)), None, "tampered line dropped");
        assert_eq!(cache.sidecar_skipped(), 1);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sidecar_path_sits_next_to_the_checkpoint() {
        let p = cache_sidecar_path(Path::new("/runs/x/checkpoint.txt"));
        assert_eq!(p, Path::new("/runs/x/cache.txt"));
    }

    #[test]
    fn mechanism_specs_get_distinct_entries() {
        let cache = EvalCache::new();
        let p = params(1.0);
        let transient = ClrChainSpec::transient(p);
        let perm = ClrChainSpec::permanent_aging(p, 25.0);
        cache.insert_analysis_spec(&transient, analysis(1.0));
        assert_eq!(
            cache.analysis_spec(&perm),
            None,
            "same params, different mechanism never hits"
        );
        cache.insert_analysis_spec(&perm, analysis(2.0));
        assert_eq!(cache.analysis_spec(&transient), Some(analysis(1.0)));
        assert_eq!(cache.analysis_spec(&perm), Some(analysis(2.0)));
        // The params-based API is the transient spec API.
        assert_eq!(cache.analysis(&p), Some(analysis(1.0)));
        assert_eq!(cache.analysis_len(), 2);
    }

    #[test]
    fn mechanism_entries_roundtrip_the_sidecar() {
        let path = temp_path("mechanism.cache");
        let _ = fs::remove_file(&path);
        let cache = EvalCache::new();
        cache.bind_sidecar(&path).unwrap();
        let perm = ClrChainSpec::permanent_aging(params(1.0), 25.0);
        cache.insert_analysis_spec(&perm, analysis(2.0));
        cache.insert_analysis(&params(2.0), analysis(3.0));

        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("\nanalysis2 1 "), "tagged record: {text}");
        assert!(text.contains("\nanalysis "), "legacy record kept verbatim");

        let warm = EvalCache::new();
        warm.bind_sidecar(&path).unwrap();
        assert_eq!(warm.analysis_spec(&perm), Some(analysis(2.0)));
        assert_eq!(warm.analysis(&params(2.0)), Some(analysis(3.0)));

        // An analysis2 line with an unknown mechanism tag is foreign:
        // skipped and counted, never guessed at.
        let body = "analysis2 7 0000000000000000 junk";
        let mut fnv = Fnv::new();
        fnv.write_bytes(body.as_bytes());
        fs::write(
            &path,
            format!("{CACHE_HEADER}\n{body} i={:016x}\n", fnv.finish()),
        )
        .unwrap();
        let future = EvalCache::new();
        future.bind_sidecar(&path).unwrap();
        assert_eq!(future.analysis_len(), 0);
        assert_eq!(future.sidecar_skipped(), 1);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lru_eviction_bounds_entries_and_counts() {
        let cache = EvalCache::new();
        cache.set_entry_ceiling(SHARDS); // one slot per shard
        assert_eq!(cache.entry_ceiling(), SHARDS);
        for i in 0..200 {
            cache.insert_analysis(&params(1.0 + i as f64), analysis(1.0));
        }
        assert!(
            cache.analysis_len() <= SHARDS,
            "ceiling enforced: {} entries",
            cache.analysis_len()
        );
        let counts = cache.analysis_counts();
        assert_eq!(counts.inserts, 200);
        assert_eq!(counts.evictions, 200 - cache.analysis_len() as u64);
        assert_eq!(cache.counts().evictions, counts.evictions);

        // Fitness level is bounded by the same ceiling.
        for i in 0..100 {
            cache.insert_fitness(u64::from(i), &genome(i), fitness_value(1.0));
        }
        assert!(cache.fitness_len() <= SHARDS);
        assert!(cache.fitness_counts().evictions > 0);

        // Eviction never corrupts answers: a re-inserted key replays its
        // stored value exactly.
        let p = params(500.0);
        cache.insert_analysis(&p, analysis(5.0));
        assert_eq!(cache.analysis(&p), Some(analysis(5.0)));
    }

    #[test]
    fn ceiling_one_eviction_counters_stay_exact() {
        let cache = EvalCache::new();
        // The harshest setting: a ceiling of 1 clamps every shard to a
        // single slot, so almost every insert evicts. The invariant under
        // test is counter accuracy: inserts - evictions must equal the
        // number of resident entries, per level, exactly.
        cache.set_entry_ceiling(1);
        assert_eq!(cache.entry_ceiling(), 1);

        for i in 0..64 {
            cache.insert_analysis(&params(1.0 + f64::from(i)), analysis(1.0));
        }
        let analysis_counts = cache.analysis_counts();
        assert_eq!(analysis_counts.inserts, 64);
        assert!(
            cache.analysis_len() <= SHARDS,
            "one slot per shard: {} entries",
            cache.analysis_len()
        );
        assert_eq!(
            analysis_counts.evictions,
            analysis_counts.inserts - cache.analysis_len() as u64,
            "every insert past a shard's single slot is exactly one eviction"
        );
        assert!(analysis_counts.evictions > 0);

        for i in 0..64u32 {
            cache.insert_fitness(7, &genome(i), fitness_value(f64::from(i + 1)));
        }
        let fitness_counts = cache.fitness_counts();
        assert_eq!(fitness_counts.inserts, 64);
        assert!(cache.fitness_len() <= SHARDS);
        assert_eq!(
            fitness_counts.evictions,
            fitness_counts.inserts - cache.fitness_len() as u64
        );

        // The aggregate view sums both levels without double counting.
        assert_eq!(
            cache.counts().evictions,
            analysis_counts.evictions + fitness_counts.evictions
        );

        // LRU at cap one means the newest key in a shard survives, and
        // the survivor replays its stored value bit-exactly.
        let last = params(200.0);
        cache.insert_analysis(&last, analysis(3.0));
        assert_eq!(cache.analysis(&last), Some(analysis(3.0)));
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let cache = EvalCache::new();
        // Unbounded while warming, then capped: recently-touched entries
        // must survive a later squeeze.
        let hot = params(1.0);
        for i in 0..40 {
            cache.insert_analysis(&params(1.0 + i as f64), analysis(1.0));
        }
        assert_eq!(cache.analysis(&hot), Some(analysis(1.0))); // refresh
        cache.set_entry_ceiling(SHARDS);
        // Inserts into the hot entry's shard trigger evictions there; the
        // hot entry was just touched so colder keys go first.
        for i in 100..140 {
            cache.insert_analysis(&params(1.0 + i as f64), analysis(1.0));
        }
        let still_hot = cache.analysis(&hot).is_some();
        let total = cache.analysis_len();
        assert!(total <= SHARDS + 40, "squeeze converges: {total}");
        // The hot entry survives unless its own shard overflowed past it;
        // with one slot per shard the newest insert wins, so just assert
        // the lookup stays coherent either way.
        if still_hot {
            assert_eq!(cache.analysis(&hot), Some(analysis(1.0)));
        }
    }

    #[test]
    fn concurrent_inserts_agree() {
        let cache = EvalCache::shared();
        let g = genome(1);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let g = g.clone();
                scope.spawn(move || {
                    let stored = cache.insert_fitness(1, &g, fitness_value(1.0));
                    assert_eq!(stored, fitness_value(1.0));
                });
            }
        });
        assert_eq!(cache.fitness_counts().inserts, 1, "insert-once");
        assert_eq!(cache.fitness_len(), 1);
    }
}

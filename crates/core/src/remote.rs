//! Remote evaluation of the system-level mapping problem: the
//! `clre-eval v1` context grammar plus the vocabulary that lets a
//! subprocess worker (`clre-exec-worker`) reconstruct a
//! [`SystemProblem`] from a one-line description and evaluate genomes
//! shipped as text (DESIGN.md §17).
//!
//! The contract is *reconstruct, then verify*: a context names the
//! application ([`AppSpec`]), the reliability [`Scenario`], the choice
//! mode and the stage's library source — everything needed to rebuild
//! the problem from scratch — **and** carries the client-side
//! [`SystemProblem::content_digest`]. The worker rebuilds the problem
//! and refuses the context unless its own digest matches, so a client
//! that customized objectives or QoS bounds beyond what the scenario
//! implies falls back to in-process evaluation instead of silently
//! computing different fitness values. Combined with the bit-exact
//! `f64` hex transport of [`clre_exec::wire`], a remote evaluation is
//! indistinguishable from a local one.
//!
//! # Examples
//!
//! ```
//! use clre::apps::AppSpec;
//! use clre::campaign::LibrarySource;
//! use clre::encoding::ChoiceMode;
//! use clre::remote::RemoteContext;
//! use clre::scenario::Scenario;
//!
//! let ctx = RemoteContext {
//!     app: AppSpec::Synthetic { tasks: 8, seed: 3 },
//!     scenario: Scenario::Transient,
//!     mode: ChoiceMode::ParetoFiltered,
//!     library: LibrarySource::Main,
//!     digest: 0xdead_beef,
//! };
//! let line = ctx.encode();
//! assert_eq!(RemoteContext::parse(&line).unwrap(), ctx);
//! ```

use std::sync::Arc;

use clre_exec::{EvalVocab, ItemEval};
use clre_model::{Platform, TaskGraph};

use crate::apps::AppSpec;
use crate::campaign::LibrarySource;
use crate::encoding::{ChoiceMode, Codec, Genome};
use crate::library::ImplLibrary;
use crate::methodology::{ClrEarly, Layer};
use crate::problem::SystemProblem;
use crate::resilience::{encode_genome, parse_genome};
use crate::scenario::Scenario;
use crate::DseError;

/// Version tag opening every evaluation context line.
const CONTEXT_HEADER: &str = "clre-eval v1";

/// Everything a worker needs to rebuild one stage's [`SystemProblem`].
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteContext {
    /// The application + platform pair, by name.
    pub app: AppSpec,
    /// The reliability scenario (fault model, catalog, objectives).
    pub scenario: Scenario,
    /// The stage's genome sampling mode.
    pub mode: ChoiceMode,
    /// The stage's implementation-library source.
    pub library: LibrarySource,
    /// The client-side [`SystemProblem::content_digest`]; the worker
    /// verifies its reconstruction against this before evaluating.
    pub digest: u64,
}

impl RemoteContext {
    /// The canonical one-line form:
    /// `clre-eval v1 app=<spec> scenario=<name> mode=<full|pf>
    /// lib=<main|layer:NAME|subset:SEED> digest=<016x>`.
    pub fn encode(&self) -> String {
        format!(
            "{CONTEXT_HEADER} app={} scenario={} mode={} lib={} digest={:016x}",
            self.app.encode(),
            self.scenario.name(),
            encode_mode(self.mode),
            encode_library(self.library),
            self.digest,
        )
    }

    /// Parses the canonical form back.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed field —
    /// surfaced verbatim to the submitting client as the context
    /// rejection.
    pub fn parse(text: &str) -> Result<Self, String> {
        let rest = text
            .strip_prefix(CONTEXT_HEADER)
            .ok_or_else(|| format!("expected {CONTEXT_HEADER:?} header in {text:?}"))?;
        let mut app = None;
        let mut scenario = None;
        let mut mode = None;
        let mut library = None;
        let mut digest = None;
        for field in rest.split_whitespace() {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("malformed context field {field:?}"))?;
            match key {
                "app" => app = Some(AppSpec::parse(value)?),
                "scenario" => {
                    scenario = Some(Scenario::parse(value).map_err(|e| e.to_string())?);
                }
                "mode" => mode = Some(parse_mode(value)?),
                "lib" => library = Some(parse_library(value)?),
                "digest" => {
                    digest = Some(
                        u64::from_str_radix(value, 16)
                            .map_err(|_| format!("malformed digest {value:?}"))?,
                    );
                }
                other => return Err(format!("unknown context field {other:?}")),
            }
        }
        let missing = |what: &str| format!("context missing {what}= field");
        Ok(RemoteContext {
            app: app.ok_or_else(|| missing("app"))?,
            scenario: scenario.ok_or_else(|| missing("scenario"))?,
            mode: mode.ok_or_else(|| missing("mode"))?,
            library: library.ok_or_else(|| missing("lib"))?,
            digest: digest.ok_or_else(|| missing("digest"))?,
        })
    }
}

fn encode_mode(mode: ChoiceMode) -> &'static str {
    match mode {
        ChoiceMode::Full => "full",
        ChoiceMode::ParetoFiltered => "pf",
    }
}

fn parse_mode(text: &str) -> Result<ChoiceMode, String> {
    match text {
        "full" => Ok(ChoiceMode::Full),
        "pf" => Ok(ChoiceMode::ParetoFiltered),
        other => Err(format!("unknown choice mode {other:?} (expected full|pf)")),
    }
}

fn encode_library(library: LibrarySource) -> String {
    match library {
        LibrarySource::Main => "main".to_owned(),
        LibrarySource::SingleLayer(layer) => format!("layer:{}", layer.name()),
        LibrarySource::RandomSubset(seed) => format!("subset:{seed}"),
    }
}

fn parse_library(text: &str) -> Result<LibrarySource, String> {
    if text == "main" {
        return Ok(LibrarySource::Main);
    }
    if let Some(name) = text.strip_prefix("layer:") {
        let layer = Layer::ALL
            .into_iter()
            .find(|l| l.name() == name)
            .ok_or_else(|| format!("unknown layer {name:?}"))?;
        return Ok(LibrarySource::SingleLayer(layer));
    }
    if let Some(seed) = text.strip_prefix("subset:") {
        return seed
            .parse()
            .map(LibrarySource::RandomSubset)
            .map_err(|_| format!("malformed subset seed {seed:?}"));
    }
    Err(format!(
        "unknown library source {text:?} (expected main, layer:NAME, or subset:SEED)"
    ))
}

/// The text form of one genome item: `len task:pe:choice …` — the same
/// codec the checkpoint format uses, so every wire-visible genome reads
/// the same everywhere.
pub fn encode_genome_text(genome: &Genome) -> String {
    let mut out = String::new();
    encode_genome(&mut out, genome);
    out
}

/// Parses [`encode_genome_text`]'s form back.
///
/// # Errors
///
/// [`DseError::Checkpoint`] describing the first malformed token.
pub fn decode_genome_text(item: &str) -> Result<Genome, DseError> {
    let mut tokens = item.split_whitespace();
    let genome = parse_genome(&mut tokens)?;
    match tokens.next() {
        Some(extra) => Err(DseError::Checkpoint {
            what: format!("trailing genome token {extra:?}"),
        }),
        None => Ok(genome),
    }
}

/// The evaluation vocabulary of the DSE: resolves `clre-eval v1`
/// contexts into ready-to-run [`SystemProblem`] evaluators. This is
/// what the `clre-exec-worker` binary serves and what an in-process
/// [`ThreadBackend`](clre_exec::ThreadBackend) is given to mirror the
/// subprocess path exactly.
///
/// Each distinct context leaks its reconstructed platform, graph and
/// library (they must outlive the `'static` evaluator); backends cache
/// resolved contexts, so the leak is bounded by the number of distinct
/// stages a process ever evaluates for.
#[derive(Debug, Default, Clone, Copy)]
pub struct DseVocab;

impl EvalVocab for DseVocab {
    fn resolve(&self, context: &str) -> Result<Arc<dyn ItemEval>, String> {
        let ctx = RemoteContext::parse(context)?;
        let (platform, graph) = ctx.app.build().map_err(|e| e.to_string())?;
        let platform: &'static Platform = Box::leak(Box::new(platform));
        let graph: &'static TaskGraph = Box::leak(Box::new(graph));
        let dse =
            ClrEarly::with_scenario(graph, platform, &ctx.scenario).map_err(|e| e.to_string())?;
        let library: &'static ImplLibrary = Box::leak(Box::new(
            dse.resolve_library(ctx.library)
                .map_err(|e| e.to_string())?
                .into_owned(),
        ));
        let codec = Codec::new(graph, platform, library, ctx.mode).map_err(|e| e.to_string())?;
        let problem = SystemProblem::new(codec, dse.objectives.clone(), dse.spec);
        let got = problem.content_digest();
        if got != ctx.digest {
            return Err(format!(
                "problem digest mismatch (client {:016x}, worker {got:016x}): the submitting \
                 problem carries customizations the context grammar cannot express",
                ctx.digest
            ));
        }
        Ok(Arc::new(DseItemEval { problem }))
    }
}

/// One resolved context: a reconstructed, digest-verified problem.
struct DseItemEval {
    problem: SystemProblem<'static>,
}

impl ItemEval for DseItemEval {
    fn eval(&self, item: &str) -> Result<String, String> {
        let genome = decode_genome_text(item).map_err(|e| e.to_string())?;
        let evaluation = self
            .problem
            .try_evaluate(&genome)
            .map_err(|e| e.to_string())?;
        let mut values = Vec::with_capacity(1 + evaluation.objectives.len());
        values.push(evaluation.violation);
        values.extend(evaluation.objectives);
        Ok(clre_exec::wire::encode_f64s(&values))
    }
}

/// Where a campaign's evaluation batches run. The choice never changes
/// results — fronts are bit-identical across all three — only where the
/// work happens.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum BackendChoice {
    /// No [`EvalBackend`](clre_exec::EvalBackend): the executor's
    /// in-process pool evaluates decoded genomes directly (the historic
    /// path, and the only one that supports chaos injection).
    #[default]
    InProcess,
    /// [`ThreadBackend`](clre_exec::ThreadBackend) over [`DseVocab`]:
    /// still in-process, but through the same encoded-batch API the
    /// subprocess path uses.
    Threads,
    /// [`SubprocessBackend`](clre_exec::SubprocessBackend): a pool of
    /// `clre-exec-worker` children.
    Subprocess {
        /// The worker executable; `None` resolves through
        /// [`SubprocessBackend::default_command`](clre_exec::SubprocessBackend::default_command)
        /// (`$CLRE_EXEC_WORKER`, else a sibling of the current binary).
        command: Option<std::path::PathBuf>,
    },
}

impl BackendChoice {
    /// The short name reports carry (`inprocess`, `threads`,
    /// `subprocess`).
    pub fn name(&self) -> &'static str {
        match self {
            BackendChoice::InProcess => "inprocess",
            BackendChoice::Threads => "threads",
            BackendChoice::Subprocess { .. } => "subprocess",
        }
    }

    /// Parses a command-line argument:
    /// `inprocess` | `threads` | `subprocess[:<worker-path>]`.
    ///
    /// # Errors
    ///
    /// A human-readable description of the unknown choice.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "inprocess" => return Ok(BackendChoice::InProcess),
            "threads" => return Ok(BackendChoice::Threads),
            "subprocess" => return Ok(BackendChoice::Subprocess { command: None }),
            _ => {}
        }
        if let Some(path) = text.strip_prefix("subprocess:") {
            if path.is_empty() {
                return Err("empty subprocess worker path".to_owned());
            }
            return Ok(BackendChoice::Subprocess {
                command: Some(std::path::PathBuf::from(path)),
            });
        }
        Err(format!(
            "unknown backend {text:?} (expected inprocess, threads, or subprocess[:<worker-path>])"
        ))
    }

    /// Builds the backend this choice names, for `workers` workers.
    /// `Ok(None)` means [`BackendChoice::InProcess`] — attach nothing
    /// and let the executor pool evaluate directly.
    ///
    /// # Errors
    ///
    /// When a subprocess worker executable cannot be located.
    pub fn build(&self, workers: usize) -> Result<Option<Arc<dyn clre_exec::EvalBackend>>, String> {
        match self {
            BackendChoice::InProcess => Ok(None),
            BackendChoice::Threads => Ok(Some(Arc::new(clre_exec::ThreadBackend::new(
                clre_exec::ExecPool::new(workers),
                Arc::new(DseVocab),
            )))),
            BackendChoice::Subprocess { command } => {
                let command = command
                    .clone()
                    .or_else(clre_exec::SubprocessBackend::default_command)
                    .ok_or_else(|| {
                        format!(
                            "cannot locate the clre-exec-worker binary: pass \
                             subprocess:<path> or set ${}",
                            clre_exec::WORKER_PATH_ENV
                        )
                    })?;
                Ok(Some(Arc::new(clre_exec::SubprocessBackend::new(
                    command, workers,
                ))))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::synthetic_app;
    use crate::methodology::StageBudget;
    use clre_model::qos::QosSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn contexts() -> Vec<RemoteContext> {
        vec![
            RemoteContext {
                app: AppSpec::Synthetic { tasks: 8, seed: 3 },
                scenario: Scenario::Transient,
                mode: ChoiceMode::ParetoFiltered,
                library: LibrarySource::Main,
                digest: 7,
            },
            RemoteContext {
                app: AppSpec::Sobel { seed: 1 },
                scenario: Scenario::PermanentAging {
                    mission_time_hours: 100.0,
                },
                mode: ChoiceMode::Full,
                library: LibrarySource::SingleLayer(Layer::Ssw),
                digest: u64::MAX,
            },
            RemoteContext {
                app: AppSpec::Synthetic { tasks: 6, seed: 9 },
                scenario: Scenario::CheckpointModes,
                mode: ChoiceMode::Full,
                library: LibrarySource::RandomSubset(42),
                digest: 0,
            },
        ]
    }

    #[test]
    fn contexts_roundtrip() {
        for ctx in contexts() {
            let line = ctx.encode();
            assert_eq!(RemoteContext::parse(&line).unwrap(), ctx, "{line}");
        }
    }

    #[test]
    fn malformed_contexts_are_described() {
        for bad in [
            "clre-exec v1 app=sobel:1",
            "clre-eval v1 app=sobel:1 scenario=transient mode=pf lib=main",
            "clre-eval v1 app=sobel:1 scenario=transient mode=mid lib=main digest=0",
            "clre-eval v1 app=sobel:1 scenario=warp mode=pf lib=main digest=0",
            "clre-eval v1 app=sobel:1 scenario=transient mode=pf lib=layer:Zz digest=0",
            "clre-eval v1 app=sobel:1 scenario=transient mode=pf lib=main digest=zz",
            "clre-eval v1 app=sobel:1 scenario=transient mode=pf lib=main digest=0 x=1",
        ] {
            let err = RemoteContext::parse(bad).unwrap_err();
            assert!(!err.is_empty(), "{bad:?}");
        }
    }

    #[test]
    fn genome_text_roundtrips_and_rejects_trailers() {
        let (platform, graph) = synthetic_app(8, 3).unwrap();
        let dse = ClrEarly::new(&graph, &platform).unwrap();
        let codec =
            Codec::new(&graph, &platform, dse.library(), ChoiceMode::ParetoFiltered).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..8 {
            let genome = codec.random_genome(&mut rng);
            let text = encode_genome_text(&genome);
            assert_eq!(decode_genome_text(&text).unwrap(), genome);
            assert!(decode_genome_text(&format!("{text} 1:1:1")).is_err());
        }
        assert!(decode_genome_text("not-a-genome").is_err());
    }

    #[test]
    fn vocab_reconstructs_and_evaluates_bit_identically() {
        let (platform, graph) = synthetic_app(8, 3).unwrap();
        let dse = ClrEarly::new(&graph, &platform).unwrap();
        let codec =
            Codec::new(&graph, &platform, dse.library(), ChoiceMode::ParetoFiltered).unwrap();
        let problem = SystemProblem::new(
            codec.clone(),
            Scenario::Transient.system_objectives(),
            QosSpec::new(),
        );
        let ctx = RemoteContext {
            app: AppSpec::Synthetic { tasks: 8, seed: 3 },
            scenario: Scenario::Transient,
            mode: ChoiceMode::ParetoFiltered,
            library: LibrarySource::Main,
            digest: problem.content_digest(),
        };
        let eval = DseVocab.resolve(&ctx.encode()).unwrap();
        let mut rng = StdRng::seed_from_u64(StageBudget::smoke_test().seed);
        for _ in 0..6 {
            let genome = codec.random_genome(&mut rng);
            let want = problem.try_evaluate(&genome).unwrap();
            let got =
                clre_exec::wire::decode_f64s(&eval.eval(&encode_genome_text(&genome)).unwrap())
                    .unwrap();
            assert_eq!(got[0].to_bits(), want.violation.to_bits());
            assert_eq!(got.len(), 1 + want.objectives.len());
            for (g, w) in got[1..].iter().zip(&want.objectives) {
                assert_eq!(g.to_bits(), w.to_bits());
            }
        }
    }

    #[test]
    fn vocab_rejects_digest_mismatches() {
        let (platform, graph) = synthetic_app(8, 3).unwrap();
        let dse = ClrEarly::new(&graph, &platform).unwrap();
        let codec =
            Codec::new(&graph, &platform, dse.library(), ChoiceMode::ParetoFiltered).unwrap();
        let problem = SystemProblem::new(
            codec,
            Scenario::Transient.system_objectives(),
            QosSpec::new(),
        );
        let ctx = RemoteContext {
            app: AppSpec::Synthetic { tasks: 8, seed: 3 },
            scenario: Scenario::Transient,
            mode: ChoiceMode::ParetoFiltered,
            library: LibrarySource::Main,
            digest: problem.content_digest() ^ 1,
        };
        let err = DseVocab
            .resolve(&ctx.encode())
            .err()
            .expect("digest mismatch must be rejected");
        assert!(err.contains("digest mismatch"), "{err}");
    }
}

//! The subprocess evaluation worker: serves the `exec-wire v1`
//! protocol over stdin/stdout, resolving `clre-eval v1` contexts
//! through [`clre::remote::DseVocab`] — the child half of
//! [`clre_exec::SubprocessBackend`].
//!
//! The binary takes no arguments; everything it needs arrives over the
//! wire. One knob exists for the fault-injection tests:
//! `CLRE_EXEC_WORKER_DIE_AFTER=<k>` makes the process exit with status
//! 17 after `k` successful item evaluations, simulating a worker crash
//! mid-batch.

#![forbid(unsafe_code)]

use std::io::{stdin, stdout, BufWriter};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use clre::remote::DseVocab;
use clre_exec::{EvalVocab, ItemEval};

/// Environment knob: exit(17) after this many successful evaluations.
const DIE_AFTER_ENV: &str = "CLRE_EXEC_WORKER_DIE_AFTER";

/// A vocabulary wrapper whose evaluators abort the process after a
/// budget of successful evaluations — the crash seam the backend
/// recovery tests drive. The counter is shared across every resolved
/// context so the budget is process-wide.
#[derive(Debug)]
struct DoomedVocab {
    inner: DseVocab,
    remaining: Arc<AtomicU64>,
}

struct DoomedEval {
    inner: Arc<dyn ItemEval>,
    remaining: Arc<AtomicU64>,
}

impl ItemEval for DoomedEval {
    fn eval(&self, item: &str) -> Result<String, String> {
        let out = self.inner.eval(item);
        if out.is_ok() && self.remaining.fetch_sub(1, Ordering::SeqCst) <= 1 {
            // Simulated crash: abrupt exit without flushing the frame.
            std::process::exit(17);
        }
        out
    }
}

impl EvalVocab for DoomedVocab {
    fn resolve(&self, context: &str) -> Result<Arc<dyn ItemEval>, String> {
        let inner = self.inner.resolve(context)?;
        Ok(Arc::new(DoomedEval {
            inner,
            remaining: Arc::clone(&self.remaining),
        }))
    }
}

fn main() -> std::io::Result<()> {
    let mut input = stdin().lock();
    let mut output = BufWriter::new(stdout().lock());
    match std::env::var(DIE_AFTER_ENV)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        Some(budget) => {
            let vocab = DoomedVocab {
                inner: DseVocab,
                remaining: Arc::new(AtomicU64::new(budget.max(1))),
            };
            clre_exec::worker::run_worker(&mut input, &mut output, &vocab)
        }
        None => clre_exec::worker::run_worker(&mut input, &mut output, &DseVocab),
    }
}

use clre_markov::MarkovError;
use clre_model::{ModelError, TaskTypeId};
use clre_sched::SchedError;
use std::error::Error;
use std::fmt;

/// Error type for the DSE methodology.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DseError {
    /// A model-construction failure.
    Model(ModelError),
    /// A Markov-chain analysis failure.
    Markov(MarkovError),
    /// A scheduling/QoS failure.
    Sched(SchedError),
    /// Task-level DSE produced no candidate for some `(task type, PE
    /// type)` — the application cannot be mapped.
    EmptyChoiceGroup {
        /// The task type with no valid candidates anywhere.
        ty: TaskTypeId,
    },
    /// A configuration value was out of its documented domain.
    InvalidConfig {
        /// Description of the violated requirement.
        what: &'static str,
    },
    /// A genome failed validation against its codec (wrong length, not a
    /// task permutation, or an out-of-range PE/candidate index).
    InvalidGenome {
        /// Description of the violated invariant.
        what: &'static str,
    },
    /// A persisted run checkpoint could not be decoded or does not match
    /// the run it is being applied to.
    Checkpoint {
        /// Description of the mismatch or parse failure.
        what: String,
    },
    /// A fault deliberately injected by the chaos layer (a
    /// `FaultInjector` attached to the resilient runtime). Only ever
    /// produced under fault injection, never by a nominal run.
    Injected {
        /// The injected failure message.
        what: String,
    },
    /// A reliability-scenario string could not be parsed — an unknown
    /// axis name or a malformed parameter. Carries the offending input
    /// so callers (e.g. the campaign server's submit path) can report
    /// it without panicking.
    Scenario {
        /// Description of the parse failure, including the input.
        what: String,
    },
}

impl fmt::Display for DseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DseError::Model(e) => write!(f, "model error: {e}"),
            DseError::Markov(e) => write!(f, "markov analysis error: {e}"),
            DseError::Sched(e) => write!(f, "scheduling error: {e}"),
            DseError::EmptyChoiceGroup { ty } => {
                write!(f, "task type {ty} has no mappable candidate implementation")
            }
            DseError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            DseError::InvalidGenome { what } => write!(f, "invalid genome: {what}"),
            DseError::Checkpoint { what } => write!(f, "checkpoint error: {what}"),
            DseError::Injected { what } => write!(f, "injected fault: {what}"),
            DseError::Scenario { what } => write!(f, "invalid scenario: {what}"),
        }
    }
}

impl Error for DseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DseError::Model(e) => Some(e),
            DseError::Markov(e) => Some(e),
            DseError::Sched(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for DseError {
    fn from(e: ModelError) -> Self {
        DseError::Model(e)
    }
}

impl From<MarkovError> for DseError {
    fn from(e: MarkovError) -> Self {
        DseError::Markov(e)
    }
}

impl From<SchedError> for DseError {
    fn from(e: SchedError) -> Self {
        DseError::Sched(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = DseError::from(ModelError::EmptyGraph);
        assert!(e.to_string().contains("model error"));
        assert!(e.source().is_some());
        let e = DseError::EmptyChoiceGroup {
            ty: TaskTypeId::new(3),
        };
        assert!(e.to_string().contains("TT3"));
        assert!(e.source().is_none());
        let e = DseError::from(MarkovError::NoAbsorbingState);
        assert!(e.source().is_some());
        let e = DseError::from(SchedError::InvalidPriorityList);
        assert!(e.source().is_some());
    }
}

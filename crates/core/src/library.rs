//! Candidate implementation libraries: the interface between task-level
//! and system-level DSE.
//!
//! A [`CandidateImpl`] is one fully configured task-level design point —
//! a base implementation, a DVFS mode and a CLR configuration — together
//! with its Table II metrics. An [`ImplLibrary`] holds, for every task
//! type of an application:
//!
//! * the **full** candidate list (the fcCLR search space,
//!   `I_t × FM_CL` points per type), and
//! * per `(task type, PE type)` **Pareto-filtered** index lists (the
//!   pfCLR space, `I_pft` points per type).
//!
//! Pareto filtering is performed *within* each PE-type group so the
//! library always retains mappable candidates for every PE type that can
//! host the task — this is why Table IV row I reports one point per PE
//! type rather than a single global optimum.

use clre_model::qos::{ObjectiveSet, TaskMetrics};
use clre_model::reliability::ClrConfig;
use clre_model::{DvfsModeId, ImplId, PeTypeId, TaskGraph, TaskTypeId};
use clre_moea::kernels::non_dominated_matrix;
use clre_moea::ObjectiveMatrix;
use serde::{Deserialize, Serialize};

use crate::DseError;

/// One fully configured task-level design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CandidateImpl {
    /// The base implementation within the task type.
    pub impl_id: ImplId,
    /// The PE type this candidate can execute on.
    pub pe_type: PeTypeId,
    /// The DVFS mode of that PE type.
    pub dvfs: DvfsModeId,
    /// The cross-layer reliability configuration.
    pub clr: ClrConfig,
    /// The estimated Table II metrics.
    pub metrics: TaskMetrics,
    /// Memory footprint in bytes under this configuration (base
    /// implementation footprint times the methods' memory factors).
    pub memory_bytes: f64,
}

/// The per-application candidate library produced by task-level DSE.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImplLibrary {
    /// `candidates[ty]` — all candidates of task type `ty`.
    candidates: Vec<Vec<CandidateImpl>>,
    /// `full[ty][pe_ty]` — candidate indices compatible with PE type
    /// `pe_ty` (unfiltered).
    full: Vec<Vec<Vec<usize>>>,
    /// `pareto[ty][pe_ty]` — Pareto-filtered candidate indices.
    pareto: Vec<Vec<Vec<usize>>>,
}

impl ImplLibrary {
    /// Assembles a library from per-type candidate lists, grouping by PE
    /// type and Pareto-filtering each group under `objectives`.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::EmptyChoiceGroup`] if some task type has no
    /// candidate at all.
    pub fn from_candidates(
        candidates: Vec<Vec<CandidateImpl>>,
        pe_type_count: usize,
        objectives: &ObjectiveSet,
    ) -> Result<Self, DseError> {
        let mut full = Vec::with_capacity(candidates.len());
        let mut pareto = Vec::with_capacity(candidates.len());
        // One flat matrix refilled per (task type, PE type) group instead
        // of a fresh Vec<Vec<f64>> per group.
        let mut points = ObjectiveMatrix::default();
        for (ty, cands) in candidates.iter().enumerate() {
            if cands.is_empty() {
                return Err(DseError::EmptyChoiceGroup {
                    ty: TaskTypeId::new(ty as u32),
                });
            }
            let mut groups: Vec<Vec<usize>> = vec![Vec::new(); pe_type_count];
            for (i, c) in cands.iter().enumerate() {
                if c.pe_type.index() >= pe_type_count {
                    return Err(DseError::InvalidConfig {
                        what: "candidate references a PE type outside the platform",
                    });
                }
                groups[c.pe_type.index()].push(i);
            }
            let mut filtered: Vec<Vec<usize>> = Vec::with_capacity(groups.len());
            for group in &groups {
                points.reset(0);
                for (pos, &i) in group.iter().enumerate() {
                    let v = cands[i].metrics.objective_vector(objectives);
                    if pos == 0 {
                        points.reset(v.len());
                    }
                    points.push_row(&v);
                }
                filtered.push(
                    non_dominated_matrix(&points)
                        .into_iter()
                        .map(|k| group[k])
                        .collect(),
                );
            }
            full.push(groups);
            pareto.push(filtered);
        }
        Ok(ImplLibrary {
            candidates,
            full,
            pareto,
        })
    }

    /// Number of task types covered.
    pub fn type_count(&self) -> usize {
        self.candidates.len()
    }

    /// Number of PE types the library was grouped against.
    pub fn pe_type_count(&self) -> usize {
        self.full.first().map_or(0, Vec::len)
    }

    /// All candidates of a task type.
    ///
    /// # Panics
    ///
    /// Panics if `ty` is out of range.
    pub fn candidates(&self, ty: TaskTypeId) -> &[CandidateImpl] {
        &self.candidates[ty.index()]
    }

    /// A specific candidate.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn candidate(&self, ty: TaskTypeId, choice: usize) -> &CandidateImpl {
        &self.candidates[ty.index()][choice]
    }

    /// Unfiltered candidate indices compatible with `pe_ty`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn full_choices(&self, ty: TaskTypeId, pe_ty: PeTypeId) -> &[usize] {
        &self.full[ty.index()][pe_ty.index()]
    }

    /// Pareto-filtered candidate indices compatible with `pe_ty`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn pareto_choices(&self, ty: TaskTypeId, pe_ty: PeTypeId) -> &[usize] {
        &self.pareto[ty.index()][pe_ty.index()]
    }

    /// Total Pareto-front size of a task type across all PE-type groups —
    /// the `I_pft` counts reported in Table IV and Fig. 9.
    ///
    /// # Panics
    ///
    /// Panics if `ty` is out of range.
    pub fn pareto_count(&self, ty: TaskTypeId) -> usize {
        self.pareto[ty.index()].iter().map(Vec::len).sum()
    }

    /// Total full-space size of a task type (`I_t × FM_CL`).
    ///
    /// # Panics
    ///
    /// Panics if `ty` is out of range.
    pub fn full_count(&self, ty: TaskTypeId) -> usize {
        self.full[ty.index()].iter().map(Vec::len).sum()
    }

    /// Returns a copy whose "Pareto" lists are *random* subsets of the
    /// full lists, each the same size as the true Pareto front of its
    /// group — the ablation baseline isolating the value of task-level
    /// Pareto pruning (DESIGN.md §5).
    ///
    /// Deterministic in `seed`.
    pub fn with_random_subsets(&self, seed: u64) -> ImplLibrary {
        let mut state = seed ^ 0x5EED_5EED;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let pareto = self
            .full
            .iter()
            .zip(&self.pareto)
            .map(|(full_groups, pareto_groups)| {
                full_groups
                    .iter()
                    .zip(pareto_groups)
                    .map(|(full, par)| {
                        let want = par.len().min(full.len());
                        // Partial Fisher–Yates over a copy, then sort so
                        // binary-search-based repair keeps working.
                        let mut pool = full.clone();
                        for i in 0..want {
                            let j = i + (next() as usize) % (pool.len() - i);
                            pool.swap(i, j);
                        }
                        let mut subset: Vec<usize> = pool[..want].to_vec();
                        subset.sort_unstable();
                        subset
                    })
                    .collect()
            })
            .collect();
        ImplLibrary {
            candidates: self.candidates.clone(),
            full: self.full.clone(),
            pareto,
        }
    }

    /// FNV-1a content digest over everything evaluation reads from this
    /// library: every candidate's identity, Table II metric bit patterns
    /// and memory footprint, in candidate order.
    ///
    /// The Pareto/full index lists are deliberately *not* folded in: they
    /// steer sampling and repair, never evaluation, so a library and its
    /// [`ImplLibrary::with_random_subsets`] twin share a digest — and may
    /// therefore share fitness-cache entries, which is exactly right
    /// because equal genomes evaluate identically under both.
    pub fn content_digest(&self) -> u64 {
        let mut fnv = crate::cache::Fnv::new();
        fnv.write_u64(self.candidates.len() as u64);
        for cands in &self.candidates {
            fnv.write_u64(cands.len() as u64);
            for c in cands {
                fnv.write_u64(c.impl_id.index() as u64);
                fnv.write_u64(c.pe_type.index() as u64);
                fnv.write_u64(c.dvfs.index() as u64);
                fnv.write_f64(c.metrics.min_exec_time);
                fnv.write_f64(c.metrics.avg_exec_time);
                fnv.write_f64(c.metrics.error_prob);
                fnv.write_f64(c.metrics.eta);
                fnv.write_f64(c.metrics.power);
                fnv.write_f64(c.metrics.energy);
                fnv.write_f64(c.metrics.peak_temp);
                fnv.write_f64(c.memory_bytes);
            }
        }
        fnv.finish()
    }

    /// Checks that every task of `graph` has at least one mappable
    /// candidate on at least one PE type.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::EmptyChoiceGroup`] naming the first offending
    /// task type.
    pub fn validate_for(&self, graph: &TaskGraph) -> Result<(), DseError> {
        for task in graph.tasks() {
            let ty = task.task_type();
            if ty.index() >= self.candidates.len()
                || self.full[ty.index()].iter().all(Vec::is_empty)
            {
                return Err(DseError::EmptyChoiceGroup { ty });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clre_model::reliability::ClrConfig;

    fn cand(pe_ty: u32, time: f64, err: f64) -> CandidateImpl {
        CandidateImpl {
            impl_id: ImplId::new(0),
            pe_type: PeTypeId::new(pe_ty),
            dvfs: DvfsModeId::new(0),
            clr: ClrConfig::unprotected(),
            metrics: TaskMetrics {
                min_exec_time: time,
                avg_exec_time: time,
                error_prob: err,
                eta: 1e8,
                power: 1.0,
                energy: time,
                peak_temp: 320.0,
            },
            memory_bytes: 0.0,
        }
    }

    #[test]
    fn groups_and_filters_per_pe_type() {
        // PE type 0: three candidates, one dominated. PE type 1: one.
        let cands = vec![vec![
            cand(0, 1.0, 0.3),
            cand(0, 2.0, 0.1),
            cand(0, 2.5, 0.35), // dominated by both
            cand(1, 9.0, 0.9),  // bad, but alone in its group → kept
        ]];
        let lib = ImplLibrary::from_candidates(cands, 2, &ObjectiveSet::set_ii()).unwrap();
        assert_eq!(
            lib.full_choices(TaskTypeId::new(0), PeTypeId::new(0)),
            &[0, 1, 2]
        );
        assert_eq!(
            lib.pareto_choices(TaskTypeId::new(0), PeTypeId::new(0)),
            &[0, 1]
        );
        assert_eq!(
            lib.pareto_choices(TaskTypeId::new(0), PeTypeId::new(1)),
            &[3]
        );
        assert_eq!(lib.pareto_count(TaskTypeId::new(0)), 3);
        assert_eq!(lib.full_count(TaskTypeId::new(0)), 4);
        assert_eq!(lib.type_count(), 1);
        assert_eq!(lib.pe_type_count(), 2);
    }

    #[test]
    fn single_objective_keeps_one_per_group() {
        let cands = vec![vec![
            cand(0, 1.0, 0.3),
            cand(0, 2.0, 0.1),
            cand(1, 3.0, 0.2),
        ]];
        let lib = ImplLibrary::from_candidates(cands, 2, &ObjectiveSet::set_i()).unwrap();
        // Min time only: index 0 in group 0, index 2 in group 1.
        assert_eq!(lib.pareto_count(TaskTypeId::new(0)), 2);
    }

    #[test]
    fn empty_type_rejected() {
        let err =
            ImplLibrary::from_candidates(vec![vec![]], 1, &ObjectiveSet::set_i()).unwrap_err();
        assert!(matches!(err, DseError::EmptyChoiceGroup { .. }));
    }

    #[test]
    fn out_of_range_pe_type_rejected() {
        let err =
            ImplLibrary::from_candidates(vec![vec![cand(5, 1.0, 0.1)]], 2, &ObjectiveSet::set_i())
                .unwrap_err();
        assert!(matches!(err, DseError::InvalidConfig { .. }));
    }

    #[test]
    fn random_subsets_preserve_sizes_and_validity() {
        let cands = vec![vec![
            cand(0, 1.0, 0.3),
            cand(0, 2.0, 0.1),
            cand(0, 2.5, 0.35),
            cand(0, 3.0, 0.05),
            cand(1, 9.0, 0.9),
        ]];
        let lib = ImplLibrary::from_candidates(cands, 2, &ObjectiveSet::set_ii()).unwrap();
        let rnd = lib.with_random_subsets(7);
        let ty = TaskTypeId::new(0);
        assert_eq!(rnd.pareto_count(ty), lib.pareto_count(ty));
        for pe in 0..2 {
            let pe = PeTypeId::new(pe);
            let full = lib.full_choices(ty, pe);
            let sub = rnd.pareto_choices(ty, pe);
            let mut sorted = sub.to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, sub, "subset must stay sorted");
            for c in sub {
                assert!(full.contains(c));
            }
        }
        // Deterministic per seed.
        assert_eq!(
            lib.with_random_subsets(7)
                .pareto_choices(ty, PeTypeId::new(0)),
            rnd.pareto_choices(ty, PeTypeId::new(0))
        );
    }

    #[test]
    fn content_digest_tracks_candidates_not_index_lists() {
        let cands = vec![vec![
            cand(0, 1.0, 0.3),
            cand(0, 2.0, 0.1),
            cand(0, 2.5, 0.35),
            cand(0, 3.0, 0.05),
            cand(1, 9.0, 0.9),
        ]];
        let lib = ImplLibrary::from_candidates(cands.clone(), 2, &ObjectiveSet::set_ii()).unwrap();
        // Random subsets reshuffle only the sampling lists: same digest.
        assert_eq!(
            lib.content_digest(),
            lib.with_random_subsets(7).content_digest()
        );
        // Any candidate metric change moves the digest.
        let mut changed = cands;
        changed[0][0].metrics.error_prob += 1.0e-12;
        let other = ImplLibrary::from_candidates(changed, 2, &ObjectiveSet::set_ii()).unwrap();
        assert_ne!(lib.content_digest(), other.content_digest());
    }

    #[test]
    fn candidate_accessor() {
        let cands = vec![vec![cand(0, 1.0, 0.3)]];
        let lib = ImplLibrary::from_candidates(cands, 1, &ObjectiveSet::set_i()).unwrap();
        let c = lib.candidate(TaskTypeId::new(0), 0);
        assert_eq!(c.metrics.avg_exec_time, 1.0);
        assert_eq!(lib.candidates(TaskTypeId::new(0)).len(), 1);
    }
}

//! The multi-stage system-level DSE methodology (Section V, Fig. 4).
//!
//! [`ClrEarly`] orchestrates every search variant evaluated in the
//! paper. Each method is a named [`CampaignPlan`] preset handed to the
//! single entry point [`ClrEarly::run`] (or its supervised/resumable
//! twins):
//!
//! * [`CampaignPlan::fc`] — **fcCLR**: a problem-agnostic GA over the
//!   full `mapping × scheduling × implementation × CLR` space (the Das
//!   et al. DATE'14 extension the paper compares against).
//! * [`CampaignPlan::pf`] — **pfCLR**: the same GA restricted to the
//!   task-level Pareto-filtered implementations.
//! * [`CampaignPlan::proposed`] — the **proposed** methodology: a full
//!   pfCLR run whose final front seeds an *additional* fcCLR run
//!   (guided/seeded search, Fig. 4(b)); the stage fronts are merged.
//! * [`CampaignPlan::single_layer`] / [`CampaignPlan::agnostic`] — the
//!   other-layer-agnostic baseline of Fig. 7: independent optimizations
//!   with a single degree of freedom each (DVFS / HWRel / SSWRel /
//!   ASWRel), merged and Pareto-filtered.
//!
//! The historic `run_fc`/`run_pf`/`run_proposed`-style wrappers remain
//! as `#[deprecated]` shims over the same plans.

use std::sync::Arc;

use clre_exec::Executor;
use clre_model::qos::{ObjectiveSet, QosSpec, SystemMetrics};
use clre_model::{Platform, TaskGraph};
use clre_moea::Nsga2Config;
use serde::{Deserialize, Serialize};

use crate::cache::EvalCache;
use crate::campaign::CampaignPlan;
use crate::encoding::Genome;
use crate::library::ImplLibrary;
use crate::resilience::{AlgorithmTag, Checkpoint, RunHealth, RunOutcome, RunSupervisor};
use crate::tdse::{build_library_with_health, TdseConfig, TdseHealth};
use crate::DseError;

/// A single reliability layer (degree of freedom) for the Agnostic
/// baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Layer {
    /// DVFS modes only; no CLR methods.
    Dvfs,
    /// Hardware-layer methods only, at the nominal DVFS mode.
    Hw,
    /// System-software-layer methods only, at the nominal DVFS mode.
    Ssw,
    /// Application-software-layer methods only, at the nominal DVFS mode.
    Asw,
}

impl Layer {
    /// All four layers, in the paper's presentation order.
    pub const ALL: [Layer; 4] = [Layer::Dvfs, Layer::Hw, Layer::Ssw, Layer::Asw];

    /// Human-readable name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Layer::Dvfs => "DVFS",
            Layer::Hw => "HWRel",
            Layer::Ssw => "SSWRel",
            Layer::Asw => "ASWRel",
        }
    }
}

/// Evaluation budget of one system-level GA run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageBudget {
    /// Population size.
    pub population: usize,
    /// Generations per GA run (each stage of the proposed flow runs this
    /// many).
    pub generations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl StageBudget {
    /// A paper-scale budget: population 100, 120 generations.
    pub fn new(population: usize, generations: usize) -> Self {
        StageBudget {
            population,
            generations,
            seed: 0,
        }
    }

    /// A tiny budget for unit tests and doc examples.
    pub fn smoke_test() -> Self {
        StageBudget {
            population: 16,
            generations: 8,
            seed: 1,
        }
    }

    /// Sets the RNG seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub(crate) fn nsga2_config(&self, generations: usize, salt: u64) -> Nsga2Config {
        Nsga2Config::new(self.population, generations.max(1))
            .with_seed(self.seed.wrapping_mul(0x9E37_79B9).wrapping_add(salt))
    }
}

impl Default for StageBudget {
    fn default() -> Self {
        StageBudget::new(100, 120)
    }
}

/// One point of a final Pareto front.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontPoint {
    /// The minimization objective vector under the run's objective set.
    pub objectives: Vec<f64>,
    /// The full Table III metrics of the design point.
    pub metrics: SystemMetrics,
    /// The design point itself — the genome realizing these metrics.
    pub genome: Genome,
}

/// The outcome of one methodology run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontResult {
    pub(crate) method: String,
    pub(crate) points: Vec<FrontPoint>,
    /// Total fitness evaluations spent.
    pub evaluations: usize,
    /// Resilience report: failures isolated, candidates quarantined,
    /// degraded analyses, checkpoint/resume activity. Populated by the
    /// supervised entry points ([`ClrEarly::run_supervised`] and
    /// friends); the plain runs leave it at its clean default.
    pub health: RunHealth,
}

impl FrontResult {
    /// The method label (`"fcCLR"`, `"pfCLR"`, `"proposed"`, …).
    pub fn method(&self) -> &str {
        &self.method
    }

    /// The Pareto-front points.
    pub fn front(&self) -> &[FrontPoint] {
        &self.points
    }

    /// The raw objective vectors of the front.
    pub fn objectives(&self) -> Vec<Vec<f64>> {
        self.points.iter().map(|p| p.objectives.clone()).collect()
    }

    /// Merges several results into one Pareto-filtered front (used by the
    /// Agnostic baseline and by multi-run studies).
    ///
    /// The merged `health` is reset to its clean default: per-stage health
    /// reports are cumulative under the supervised flow, so summing them
    /// here would double-count. Callers that track health across stages
    /// set it explicitly on the merged result.
    ///
    /// # Panics
    ///
    /// Panics if the results carry different objective dimensionalities.
    pub fn merge<'a>(
        label: impl Into<String>,
        results: impl IntoIterator<Item = &'a FrontResult>,
    ) -> FrontResult {
        let mut points = Vec::new();
        let mut evaluations = 0;
        for r in results {
            points.extend(r.points.iter().cloned());
            evaluations += r.evaluations;
        }
        let cols = points.first().map_or(0, |p| p.objectives.len());
        let mut objs = clre_moea::ObjectiveMatrix::with_capacity(cols, points.len());
        for p in &points {
            objs.push_row(&p.objectives);
        }
        let mut keep = vec![false; points.len()];
        for i in clre_moea::kernels::non_dominated_matrix(&objs) {
            keep[i] = true;
        }
        let points = points
            .into_iter()
            .zip(keep)
            .filter_map(|(p, k)| k.then_some(p))
            .collect();
        FrontResult {
            method: label.into(),
            points,
            evaluations,
            health: RunHealth::default(),
        }
    }
}

/// The CL(R)Early DSE orchestrator for one `(application, platform)` pair.
///
/// Construction runs the full-CLR task-level DSE once and reuses the
/// resulting [`ImplLibrary`] across every method; the single-layer
/// baselines build their own restricted libraries on demand.
#[derive(Debug)]
pub struct ClrEarly<'a> {
    pub(crate) graph: &'a TaskGraph,
    pub(crate) platform: &'a Platform,
    pub(crate) tdse: TdseConfig,
    pub(crate) library: ImplLibrary,
    pub(crate) tdse_health: TdseHealth,
    pub(crate) objectives: ObjectiveSet,
    pub(crate) spec: QosSpec,
    pub(crate) exec: Executor,
    pub(crate) cache: Option<Arc<EvalCache>>,
    pub(crate) remote: Option<(crate::apps::AppSpec, crate::scenario::Scenario)>,
}

impl<'a> ClrEarly<'a> {
    /// Creates an orchestrator with the default task-level DSE
    /// configuration and the bi-objective system set of Figs. 7–10.
    ///
    /// # Errors
    ///
    /// Propagates task-level DSE failures.
    pub fn new(graph: &'a TaskGraph, platform: &'a Platform) -> Result<Self, DseError> {
        Self::with_tdse_config(graph, platform, TdseConfig::default())
    }

    /// Creates an orchestrator with a custom task-level DSE configuration
    /// (e.g. a different Table IV objective set for the Fig. 9/10
    /// experiments).
    ///
    /// # Errors
    ///
    /// Propagates task-level DSE failures.
    pub fn with_tdse_config(
        graph: &'a TaskGraph,
        platform: &'a Platform,
        tdse: TdseConfig,
    ) -> Result<Self, DseError> {
        let (library, tdse_health) = build_library_with_health(graph, platform, &tdse)?;
        Ok(ClrEarly {
            graph,
            platform,
            tdse,
            library,
            tdse_health,
            objectives: ObjectiveSet::system_bi(),
            spec: QosSpec::new(),
            exec: Executor::serial(),
            cache: None,
            remote: None,
        })
    }

    /// Creates an orchestrator configured by a reliability
    /// [`Scenario`](crate::scenario::Scenario): the scenario's CLR
    /// catalog and fault mechanism parameterize the task-level DSE, and
    /// its objective set becomes the system-level front's axes (the
    /// `lifetime` scenario optimizes MTTF alongside makespan and error
    /// probability). Every campaign plan — fc, pf, proposed, Agnostic —
    /// runs unchanged on the resulting orchestrator.
    ///
    /// [`Scenario::Transient`](crate::scenario::Scenario::Transient)
    /// reproduces [`ClrEarly::new`] bit-for-bit.
    ///
    /// # Errors
    ///
    /// Propagates task-level DSE failures.
    pub fn with_scenario(
        graph: &'a TaskGraph,
        platform: &'a Platform,
        scenario: &crate::scenario::Scenario,
    ) -> Result<Self, DseError> {
        let tdse = scenario.tdse_config()?;
        Ok(Self::with_tdse_config(graph, platform, tdse)?
            .with_objectives(scenario.system_objectives()))
    }

    /// Sets the system-level objective set (builder style).
    #[must_use]
    pub fn with_objectives(mut self, objectives: ObjectiveSet) -> Self {
        self.objectives = objectives;
        self
    }

    /// Sets the QoS constraint specification (builder style).
    #[must_use]
    pub fn with_spec(mut self, spec: QosSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Sets the evaluation executor (builder style): every GA run of this
    /// orchestrator fans its fitness batches through it, re-labeled per
    /// stage. Results are bit-identical for any worker count; only the
    /// wall clock and the telemetry trace differ.
    #[must_use]
    pub fn with_executor(mut self, exec: Executor) -> Self {
        self.exec = exec;
        self
    }

    /// The orchestrator's evaluation executor.
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// Declares that this orchestrator's `(application, platform)` pair
    /// is the named [`AppSpec`](crate::apps::AppSpec) built under
    /// `scenario` (builder style). With this set, every campaign stage
    /// problem is tagged with its `clre-eval v1` remote context (see
    /// [`crate::remote`]), so an executor carrying an
    /// [`EvalBackend`](clre_exec::EvalBackend) — thread pool or
    /// `clre-exec-worker` subprocesses — evaluates generations out of
    /// line, bit-identically to the in-process path.
    ///
    /// Pass the same scenario the orchestrator was constructed with;
    /// the worker verifies its reconstructed problem digest and falls
    /// back to in-process evaluation on any mismatch, so a stale spec
    /// can cost performance but never correctness.
    #[must_use]
    pub fn with_remote(
        mut self,
        app: crate::apps::AppSpec,
        scenario: crate::scenario::Scenario,
    ) -> Self {
        self.remote = Some((app, scenario));
        self
    }

    /// Attaches a shared evaluation cache (builder style): every GA run
    /// of this orchestrator memoizes genome fitness through it, and the
    /// single-layer baselines reuse its task-analysis level when they
    /// rebuild their restricted libraries. Cached and uncached runs
    /// produce bit-identical fronts for any worker count; only the wall
    /// clock and the hit/miss telemetry differ.
    ///
    /// The library built at construction time predates this call; attach
    /// the cache through [`TdseConfig::with_eval_cache`] and
    /// [`ClrEarly::with_tdse_config`] to memoize that initial build too.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<EvalCache>) -> Self {
        self.tdse = self.tdse.clone().with_eval_cache(Arc::clone(&cache));
        self.cache = Some(cache);
        self
    }

    /// The attached evaluation cache, if any.
    pub fn cache(&self) -> Option<&Arc<EvalCache>> {
        self.cache.as_ref()
    }

    /// This orchestrator's executor re-labeled for one stage.
    pub(crate) fn stage_exec(&self, label: &str) -> Executor {
        self.exec.clone().with_label(label)
    }

    /// The task-level library built at construction.
    pub fn library(&self) -> &ImplLibrary {
        &self.library
    }

    /// Health counters of the task-level DSE sweep that built the
    /// library — notably how many Markov analyses fell back to the
    /// degraded closed-form solver.
    pub fn tdse_health(&self) -> &TdseHealth {
        &self.tdse_health
    }

    /// The application graph.
    pub fn graph(&self) -> &TaskGraph {
        self.graph
    }

    /// The platform.
    pub fn platform(&self) -> &Platform {
        self.platform
    }

    /// Runs the problem-agnostic fcCLR baseline.
    ///
    /// # Errors
    ///
    /// Propagates codec construction failures.
    #[deprecated(note = "use `ClrEarly::run` with `CampaignPlan::fc()`")]
    pub fn run_fc(&self, budget: &StageBudget) -> Result<FrontResult, DseError> {
        self.run(&CampaignPlan::fc(), budget)
    }

    /// Runs the task-level-Pareto-filtered pfCLR method.
    ///
    /// # Errors
    ///
    /// Propagates codec construction failures.
    #[deprecated(note = "use `ClrEarly::run` with `CampaignPlan::pf()`")]
    pub fn run_pf(&self, budget: &StageBudget) -> Result<FrontResult, DseError> {
        self.run(&CampaignPlan::pf(), budget)
    }

    /// Runs the proposed two-stage methodology exactly as Section VI-C
    /// describes it: a full pfCLR optimization (identical to
    /// [`ClrEarly::run_pf`], same seed and trajectory) followed by an
    /// *additional* fcCLR optimization seeded with the pfCLR front; the
    /// reported front is the Pareto merge of both stages.
    ///
    /// Because the first stage reproduces `run_pf` and the merge keeps
    /// its non-dominated points, the proposed result never falls below
    /// the standalone pfCLR result — the paper's "equal or marginally
    /// improved" behaviour in Table VII. It spends roughly twice the
    /// evaluations of a standalone run, as does the paper's flow.
    ///
    /// # Errors
    ///
    /// Propagates codec construction failures.
    #[deprecated(note = "use `ClrEarly::run` with `CampaignPlan::proposed()`")]
    pub fn run_proposed(&self, budget: &StageBudget) -> Result<FrontResult, DseError> {
        self.run(&CampaignPlan::proposed(), budget)
    }

    /// Runs fcCLR under a [`RunSupervisor`]: evaluation failures are
    /// isolated and quarantined, and the GA state is checkpointed so the
    /// run can be resumed by [`ClrEarly::resume_supervised`] after a
    /// crash — deterministically, to the identical final front.
    ///
    /// # Errors
    ///
    /// Propagates codec construction and checkpoint I/O failures.
    #[deprecated(note = "use `ClrEarly::run_supervised` with `CampaignPlan::fc()`")]
    pub fn run_fc_supervised(
        &self,
        budget: &StageBudget,
        supervisor: &RunSupervisor,
    ) -> Result<RunOutcome, DseError> {
        self.run_supervised(&CampaignPlan::fc(), budget, supervisor)
    }

    /// Runs pfCLR under a [`RunSupervisor`]; see
    /// [`ClrEarly::run_fc_supervised`].
    ///
    /// # Errors
    ///
    /// Propagates codec construction and checkpoint I/O failures.
    #[deprecated(note = "use `ClrEarly::run_supervised` with `CampaignPlan::pf()`")]
    pub fn run_pf_supervised(
        &self,
        budget: &StageBudget,
        supervisor: &RunSupervisor,
    ) -> Result<RunOutcome, DseError> {
        self.run_supervised(&CampaignPlan::pf(), budget, supervisor)
    }

    /// Runs the proposed two-stage methodology under a [`RunSupervisor`].
    /// Both stages checkpoint to the same file; the checkpoint records
    /// which stage it belongs to, and stage 1 checkpoints additionally
    /// carry the pf-stage front so a resume can reconstitute the final
    /// merge without re-running stage 0.
    ///
    /// # Errors
    ///
    /// Propagates codec construction and checkpoint I/O failures.
    #[deprecated(note = "use `ClrEarly::run_supervised` with `CampaignPlan::proposed()`")]
    pub fn run_proposed_supervised(
        &self,
        budget: &StageBudget,
        supervisor: &RunSupervisor,
    ) -> Result<RunOutcome, DseError> {
        self.run_supervised(&CampaignPlan::proposed(), budget, supervisor)
    }

    /// Runs the layer-agnostic baseline campaign under a
    /// [`RunSupervisor`]: all four single-layer stages checkpoint to the
    /// same file, so a crash in any stage resumes there with the earlier
    /// layers' fronts reconstituted from the checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates codec construction and checkpoint I/O failures.
    #[deprecated(note = "use `ClrEarly::run_supervised` with `CampaignPlan::agnostic()`")]
    pub fn run_agnostic_supervised(
        &self,
        budget: &StageBudget,
        supervisor: &RunSupervisor,
    ) -> Result<RunOutcome, DseError> {
        self.run_supervised(&CampaignPlan::agnostic(), budget, supervisor)
    }

    /// Runs the SPEA2-backed pfCLR ablation under a [`RunSupervisor`] —
    /// checkpoint/resume works identically to the NSGA-II runs via the
    /// shared `EvolutionState` path.
    ///
    /// # Errors
    ///
    /// Propagates codec construction and checkpoint I/O failures.
    #[deprecated(note = "use `ClrEarly::run_supervised` with `CampaignPlan::pf_spea2()`")]
    pub fn run_pf_spea2_supervised(
        &self,
        budget: &StageBudget,
        supervisor: &RunSupervisor,
    ) -> Result<RunOutcome, DseError> {
        self.run_supervised(&CampaignPlan::pf_spea2(), budget, supervisor)
    }

    /// Resumes an interrupted supervised run from the supervisor's
    /// checkpoint file and drives it to completion (unless the
    /// supervisor's crash-injection seam interrupts it again).
    ///
    /// The checkpoint's configuration echo (method, stage, budget, seed,
    /// objective count, genome shape) is validated against this
    /// orchestrator first; any mismatch is a [`DseError::Checkpoint`].
    /// Because the checkpoint restores the exact population, RNG state
    /// words and stage bookkeeping, the resumed run reproduces the
    /// uninterrupted run's final front bit-for-bit.
    ///
    /// # Errors
    ///
    /// [`DseError::Checkpoint`] for a missing, malformed, or mismatched
    /// checkpoint; otherwise as for the supervised runs.
    pub fn resume_supervised(
        &self,
        budget: &StageBudget,
        supervisor: &RunSupervisor,
    ) -> Result<RunOutcome, DseError> {
        // Fallback-tolerant load: the method name must be recoverable even
        // when the primary checkpoint is corrupt. The skipped-file count is
        // discarded here — `resume_campaign` re-loads through the same
        // chain and records it in the run's health.
        let (cp, _) = Checkpoint::load_with_fallback(
            supervisor.checkpoint_path(),
            supervisor.config().keep_checkpoints,
        )?;
        let plan = match plan_by_name(&cp.method) {
            Some(plan) => plan,
            None => {
                return Err(DseError::Checkpoint {
                    what: format!("cannot resume method {:?} at stage {}", cp.method, cp.stage),
                })
            }
        };
        self.resume(&plan, budget, supervisor)
    }

    /// Runs a single-degree-of-freedom baseline for one layer.
    ///
    /// # Errors
    ///
    /// Propagates task-level DSE and codec failures.
    #[deprecated(note = "use `ClrEarly::run` with `CampaignPlan::single_layer(layer)`")]
    pub fn run_single_layer(
        &self,
        layer: Layer,
        budget: &StageBudget,
    ) -> Result<FrontResult, DseError> {
        self.run(&CampaignPlan::single_layer(layer), budget)
    }

    /// Runs pfCLR under the SPEA2 backend instead of NSGA-II — the
    /// `ablation_moea` study of DESIGN.md §5 (the paper prototypes on
    /// both DEAP and PYGMO, i.e. multiple MOEA implementations).
    ///
    /// # Errors
    ///
    /// Propagates codec construction failures.
    #[deprecated(note = "use `ClrEarly::run` with `CampaignPlan::pf_spea2()`")]
    pub fn run_pf_spea2(&self, budget: &StageBudget) -> Result<FrontResult, DseError> {
        self.run(&CampaignPlan::pf_spea2(), budget)
    }

    /// Runs pfCLR with a non-default tournament size — the
    /// `ablation_tournament` study of DESIGN.md §5.
    ///
    /// # Errors
    ///
    /// Propagates codec construction failures.
    ///
    /// # Panics
    ///
    /// Panics if `tournament_size == 0`.
    #[deprecated(note = "use `ClrEarly::run` with `CampaignPlan::pf_with_tournament(k)`")]
    pub fn run_pf_with_tournament(
        &self,
        budget: &StageBudget,
        tournament_size: usize,
    ) -> Result<FrontResult, DseError> {
        self.run(&CampaignPlan::pf_with_tournament(tournament_size), budget)
    }

    /// Runs the pruning ablation of DESIGN.md §5: a pfCLR-shaped search
    /// whose per-group choice lists are *random* subsets of the full
    /// space, each the same size as the true task-level Pareto front.
    ///
    /// # Errors
    ///
    /// Propagates codec construction failures.
    #[deprecated(note = "use `ClrEarly::run` with `CampaignPlan::random_subset(seed)`")]
    pub fn run_random_subset(
        &self,
        budget: &StageBudget,
        subset_seed: u64,
    ) -> Result<FrontResult, DseError> {
        self.run(&CampaignPlan::random_subset(subset_seed), budget)
    }

    /// Runs the other-layer-agnostic baseline: all four single-layer
    /// optimizations, merged and Pareto-filtered.
    ///
    /// The comparison is budget-fair: each layer receives a quarter of
    /// `budget.generations`, so the merged baseline spends approximately
    /// the same number of fitness evaluations as one CLR run.
    ///
    /// # Errors
    ///
    /// Propagates single-layer failures.
    #[deprecated(note = "use `ClrEarly::run` with `CampaignPlan::agnostic()`")]
    pub fn run_agnostic(&self, budget: &StageBudget) -> Result<FrontResult, DseError> {
        self.run(&CampaignPlan::agnostic(), budget)
    }
}

/// Resolves a built-in plan family by its campaign name — the inverse
/// of the preset constructors, used to reconstruct the plan a
/// checkpoint belongs to. An `/islands<n>` suffix resolves to the
/// default-epoch island expansion of the base plan
/// ([`CampaignPlan::islands`]); island plans with a non-default epoch
/// count are not name-resumable and must be resumed through
/// [`ClrEarly::resume`] with the explicit plan.
pub fn plan_by_name(name: &str) -> Option<CampaignPlan> {
    let base = |m: &str| {
        Some(match m {
            "fcCLR" => CampaignPlan::fc(),
            "pfCLR" => CampaignPlan::pf(),
            "proposed" => CampaignPlan::proposed(),
            "Agnostic" => CampaignPlan::agnostic(),
            "pfCLR/spea2" => CampaignPlan::pf_spea2(),
            "DVFS" => CampaignPlan::single_layer(Layer::Dvfs),
            "HWRel" => CampaignPlan::single_layer(Layer::Hw),
            "SSWRel" => CampaignPlan::single_layer(Layer::Ssw),
            "ASWRel" => CampaignPlan::single_layer(Layer::Asw),
            _ => return None,
        })
    };
    if let Some(plan) = base(name) {
        return Some(plan);
    }
    if let Some((prefix, count)) = name.rsplit_once("/islands") {
        if let Ok(islands) = count.parse::<usize>() {
            if islands > 0 {
                return base(prefix)
                    .filter(|plan| plan.stages[0].algorithm.tag() == AlgorithmTag::Nsga2)
                    .map(|plan| plan.islands(islands));
            }
        }
    }
    None
}

/// Computes a common hypervolume reference point for a family of fronts:
/// 10% beyond the worst observed value on every objective.
///
/// # Panics
///
/// Panics if `fronts` is empty or contains empty objective vectors of
/// differing dimensionality.
///
/// # Examples
///
/// ```
/// use clre::methodology::reference_point;
///
/// let fronts = vec![vec![vec![1.0, 4.0]], vec![vec![2.0, 3.0]]];
/// let r = reference_point(fronts.iter().map(|f| f.as_slice()));
/// assert!(r[0] > 2.0 && r[1] > 4.0);
/// ```
pub fn reference_point<'a>(fronts: impl IntoIterator<Item = &'a [Vec<f64>]>) -> Vec<f64> {
    let mut worst: Option<Vec<f64>> = None;
    let mut best: Option<Vec<f64>> = None;
    for front in fronts {
        for p in front {
            match (&mut worst, &mut best) {
                (Some(w), Some(b)) => {
                    assert_eq!(w.len(), p.len(), "dimensionality mismatch");
                    for i in 0..p.len() {
                        w[i] = w[i].max(p[i]);
                        b[i] = b[i].min(p[i]);
                    }
                }
                _ => {
                    worst = Some(p.clone());
                    best = Some(p.clone());
                }
            }
        }
    }
    let worst = worst.expect("at least one non-empty front is required");
    let best = best.expect("at least one non-empty front is required");
    worst
        .into_iter()
        .zip(best)
        .map(|(w, b)| {
            let span = (w - b).abs();
            if span > 0.0 {
                w + 0.1 * span
            } else {
                // Degenerate axis: nudge by 10% of magnitude (or 1).
                w + 0.1 * w.abs().max(1.0)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clre_model::platform::paper_platform;
    use clre_moea::hypervolume::hypervolume;
    use clre_moea::pareto::non_dominated_indices;
    use clre_profile::SyntheticCharacterizer;
    use clre_tgff::TgffConfig;

    fn setup(tasks: usize) -> (Platform, TaskGraph) {
        let platform = paper_platform();
        let ch = SyntheticCharacterizer::new(5);
        let graph = clre_tgff::generate(&TgffConfig::new(tasks).with_type_count(5), 7, |ty| {
            ch.impls_for_type(ty, &platform)
        })
        .unwrap();
        (platform, graph)
    }

    #[test]
    fn all_methods_produce_nonempty_fronts() {
        let (p, g) = setup(8);
        let dse = ClrEarly::new(&g, &p).unwrap();
        let budget = StageBudget::smoke_test();
        for result in [
            dse.run(&CampaignPlan::fc(), &budget).unwrap(),
            dse.run(&CampaignPlan::pf(), &budget).unwrap(),
            dse.run(&CampaignPlan::proposed(), &budget).unwrap(),
            dse.run(&CampaignPlan::agnostic(), &budget).unwrap(),
        ] {
            assert!(!result.front().is_empty(), "{} empty", result.method());
            for pt in result.front() {
                assert_eq!(pt.objectives.len(), 2);
                assert!(pt.metrics.makespan > 0.0);
                assert!((0.0..=1.0).contains(&pt.metrics.error_prob));
            }
        }
    }

    #[test]
    fn front_objectives_are_mutually_nondominated() {
        let (p, g) = setup(8);
        let dse = ClrEarly::new(&g, &p).unwrap();
        let r = dse
            .run(&CampaignPlan::pf(), &StageBudget::smoke_test())
            .unwrap();
        let objs = r.objectives();
        let keep = non_dominated_indices(&objs);
        assert_eq!(keep.len(), objs.len());
    }

    #[test]
    fn proposed_is_pf_plus_additional_fc_run() {
        let (p, g) = setup(6);
        let dse = ClrEarly::new(&g, &p).unwrap();
        let budget = StageBudget::smoke_test();
        let fc = dse.run(&CampaignPlan::fc(), &budget).unwrap();
        let proposed = dse.run(&CampaignPlan::proposed(), &budget).unwrap();
        // Two full runs: twice the evaluations of one standalone run.
        assert_eq!(proposed.evaluations, 2 * fc.evaluations);
    }

    #[test]
    fn proposed_never_below_pfclr() {
        use clre_moea::hypervolume::hypervolume;
        let (p, g) = setup(10);
        let dse = ClrEarly::new(&g, &p).unwrap();
        for seed in [1u64, 2, 3] {
            let budget = StageBudget::smoke_test().with_seed(seed);
            let pf = dse.run(&CampaignPlan::pf(), &budget).unwrap().objectives();
            let prop = dse
                .run(&CampaignPlan::proposed(), &budget)
                .unwrap()
                .objectives();
            let r = reference_point([pf.as_slice(), prop.as_slice()]);
            assert!(
                hypervolume(&prop, &r) >= hypervolume(&pf, &r) - 1e-15,
                "seed {seed}: proposed fell below pfCLR"
            );
        }
    }

    #[test]
    fn clr_beats_agnostic_in_hypervolume() {
        let (p, g) = setup(12);
        let dse = ClrEarly::new(&g, &p).unwrap();
        let budget = StageBudget::new(24, 20).with_seed(3);
        let clr = dse.run(&CampaignPlan::proposed(), &budget).unwrap();
        let agn = dse.run(&CampaignPlan::agnostic(), &budget).unwrap();
        let clr_objs = clr.objectives();
        let agn_objs = agn.objectives();
        let r = reference_point([clr_objs.as_slice(), agn_objs.as_slice()]);
        let hv_clr = hypervolume(&clr_objs, &r);
        let hv_agn = hypervolume(&agn_objs, &r);
        assert!(
            hv_clr > hv_agn,
            "CLR ({hv_clr}) should dominate Agnostic ({hv_agn})"
        );
    }

    #[test]
    fn single_layer_runs_have_distinct_tradeoffs() {
        let (p, g) = setup(8);
        let dse = ClrEarly::new(&g, &p).unwrap();
        let budget = StageBudget::smoke_test();
        let fronts: Vec<FrontResult> = Layer::ALL
            .iter()
            .map(|&l| dse.run(&CampaignPlan::single_layer(l), &budget).unwrap())
            .collect();
        for (layer, f) in Layer::ALL.iter().zip(&fronts) {
            assert_eq!(f.method(), layer.name());
            assert!(!f.front().is_empty());
        }
        let merged = FrontResult::merge("Agnostic", fronts.iter());
        assert!(!merged.front().is_empty());
        assert_eq!(
            merged.evaluations,
            fronts.iter().map(|f| f.evaluations).sum::<usize>()
        );
    }

    #[test]
    fn spea2_backend_produces_comparable_fronts() {
        use clre_moea::hypervolume::hypervolume;
        let (p, g) = setup(10);
        let dse = ClrEarly::new(&g, &p).unwrap();
        let budget = StageBudget::new(20, 12).with_seed(4);
        let nsga = dse.run(&CampaignPlan::pf(), &budget).unwrap();
        let spea = dse.run(&CampaignPlan::pf_spea2(), &budget).unwrap();
        assert_eq!(spea.method(), "pfCLR/spea2");
        assert!(!spea.front().is_empty());
        let a = nsga.objectives();
        let b = spea.objectives();
        let r = reference_point([a.as_slice(), b.as_slice()]);
        let (ha, hb) = (hypervolume(&a, &r), hypervolume(&b, &r));
        // Same order of magnitude: neither backend collapses.
        assert!(hb > 0.2 * ha, "SPEA2 collapsed: {hb} vs NSGA-II {ha}");
        assert!(ha > 0.2 * hb, "NSGA-II collapsed: {ha} vs SPEA2 {hb}");
    }

    #[test]
    fn deterministic_per_seed() {
        let (p, g) = setup(6);
        let dse = ClrEarly::new(&g, &p).unwrap();
        let b = StageBudget::smoke_test().with_seed(42);
        let a = dse.run(&CampaignPlan::proposed(), &b).unwrap();
        let c = dse.run(&CampaignPlan::proposed(), &b).unwrap();
        assert_eq!(a.objectives(), c.objectives());
    }

    #[test]
    fn reference_point_covers_all_fronts() {
        let fronts = [vec![vec![1.0, 5.0], vec![2.0, 4.0]], vec![vec![3.0, 1.0]]];
        let r = reference_point(fronts.iter().map(|f| f.as_slice()));
        for f in &fronts {
            for p in f {
                assert!(p[0] < r[0] && p[1] < r[1]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-empty front")]
    fn reference_point_requires_points() {
        reference_point(std::iter::empty::<&[Vec<f64>]>());
    }

    #[test]
    fn scenarios_run_every_plan_family_end_to_end() {
        use crate::scenario::Scenario;
        let (p, g) = setup(6);
        let budget = StageBudget::smoke_test();
        for name in ["lifetime:5000", "chkmodes", "fpga"] {
            let s = Scenario::parse(name).unwrap();
            let dse = ClrEarly::with_scenario(&g, &p, &s).unwrap();
            let objectives = s.system_objectives().len();
            // `proposed` exercises the pf and seeded-fc stages; the
            // Agnostic baseline rebuilds all four single-layer
            // libraries under the scenario's fault mechanism.
            for result in [
                dse.run(&CampaignPlan::proposed(), &budget).unwrap(),
                dse.run(&CampaignPlan::agnostic(), &budget).unwrap(),
            ] {
                assert!(!result.front().is_empty(), "{name}/{}", result.method());
                for pt in result.front() {
                    assert_eq!(pt.objectives.len(), objectives, "{name}");
                    assert!(pt.metrics.makespan > 0.0);
                    assert!(pt.metrics.mttf > 0.0);
                }
            }
        }
    }

    #[test]
    fn lifetime_scenario_front_trades_mttf() {
        use crate::scenario::Scenario;
        let (p, g) = setup(8);
        let s = Scenario::parse("lifetime").unwrap();
        let dse = ClrEarly::with_scenario(&g, &p, &s).unwrap();
        let r = dse
            .run(&CampaignPlan::pf(), &StageBudget::smoke_test())
            .unwrap();
        // Third objective is negated MTTF, consistent with the metrics.
        for pt in r.front() {
            assert_eq!(pt.objectives.len(), 3);
            assert!((pt.objectives[2] + pt.metrics.mttf).abs() <= 1e-9 * pt.metrics.mttf);
        }
    }

    #[test]
    fn permanent_fault_campaign_survives_a_chaos_storm() {
        use crate::scenario::Scenario;
        use clre_markov::clr::SolverFaultPlan;
        let (p, g) = setup(6);
        let budget = StageBudget::smoke_test();
        let storm_cfg = |seed| {
            Scenario::parse("lifetime:5000")
                .unwrap()
                .tdse_config()
                .unwrap()
                .with_solver_faults(SolverFaultPlan::new(seed, 1_000_000, 1_000_000))
        };
        // Every primary solve and every scaled retry fails: all task
        // analyses fall through to the degraded closed-form ladder, and
        // the campaign still completes with a coherent front.
        let dse = ClrEarly::with_tdse_config(&g, &p, storm_cfg(11)).unwrap();
        let health = dse.tdse_health();
        assert!(health.candidates_evaluated > 0);
        assert_eq!(health.degraded_analyses, health.candidates_evaluated);
        let front = dse.run(&CampaignPlan::pf(), &budget).unwrap();
        assert!(!front.front().is_empty());
        // Deterministic: the same storm seed reproduces the same front.
        let again = ClrEarly::with_tdse_config(&g, &p, storm_cfg(11))
            .unwrap()
            .run(&CampaignPlan::pf(), &budget)
            .unwrap();
        assert_eq!(front.objectives(), again.objectives());
    }

    #[test]
    fn budget_builders_validate() {
        let b = StageBudget::new(10, 20).with_seed(1);
        assert_eq!(b.seed, 1);
        assert_eq!(StageBudget::default().population, 100);
    }
}

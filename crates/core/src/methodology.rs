//! The multi-stage system-level DSE methodology (Section V, Fig. 4).
//!
//! [`ClrEarly`] orchestrates every search variant evaluated in the paper:
//!
//! * [`ClrEarly::run_fc`] — **fcCLR**: a problem-agnostic GA over the full
//!   `mapping × scheduling × implementation × CLR` space (the Das et al.
//!   DATE'14 extension the paper compares against).
//! * [`ClrEarly::run_pf`] — **pfCLR**: the same GA restricted to the
//!   task-level Pareto-filtered implementations.
//! * [`ClrEarly::run_proposed`] — the **proposed** methodology: a full
//!   pfCLR run whose final front seeds an *additional* fcCLR run
//!   (guided/seeded search, Fig. 4(b)); the stage fronts are merged.
//! * [`ClrEarly::run_single_layer`] / [`ClrEarly::run_agnostic`] — the
//!   other-layer-agnostic baseline of Fig. 7: independent optimizations
//!   with a single degree of freedom each (DVFS / HWRel / SSWRel /
//!   ASWRel), merged and Pareto-filtered.

use clre_exec::Executor;
use clre_model::qos::{ObjectiveSet, QosSpec, SystemMetrics};
use clre_model::reliability::ClrConfig;
use clre_model::{Platform, TaskGraph};
use clre_moea::pareto::non_dominated_indices;
use clre_moea::{Nsga2, Nsga2Config, Nsga2State, Spea2, Spea2Config};
use serde::{Deserialize, Serialize};

use crate::encoding::{ChoiceMode, ClrVariation, Codec, Genome};
use crate::library::ImplLibrary;
use crate::problem::SystemProblem;
use crate::resilience::{
    quarantine_sidecar_path, remove_checkpoint_files, write_quarantine_sidecar, Checkpoint,
    ResilientProblem, RunHealth, RunOutcome, RunSupervisor,
};
use crate::tdse::{build_library, build_library_with_health, DvfsPolicy, TdseConfig, TdseHealth};
use crate::DseError;

/// A single reliability layer (degree of freedom) for the Agnostic
/// baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Layer {
    /// DVFS modes only; no CLR methods.
    Dvfs,
    /// Hardware-layer methods only, at the nominal DVFS mode.
    Hw,
    /// System-software-layer methods only, at the nominal DVFS mode.
    Ssw,
    /// Application-software-layer methods only, at the nominal DVFS mode.
    Asw,
}

impl Layer {
    /// All four layers, in the paper's presentation order.
    pub const ALL: [Layer; 4] = [Layer::Dvfs, Layer::Hw, Layer::Ssw, Layer::Asw];

    /// Human-readable name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Layer::Dvfs => "DVFS",
            Layer::Hw => "HWRel",
            Layer::Ssw => "SSWRel",
            Layer::Asw => "ASWRel",
        }
    }
}

/// Evaluation budget of one system-level GA run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageBudget {
    /// Population size.
    pub population: usize,
    /// Generations per GA run (each stage of the proposed flow runs this
    /// many).
    pub generations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl StageBudget {
    /// A paper-scale budget: population 100, 120 generations.
    pub fn new(population: usize, generations: usize) -> Self {
        StageBudget {
            population,
            generations,
            seed: 0,
        }
    }

    /// A tiny budget for unit tests and doc examples.
    pub fn smoke_test() -> Self {
        StageBudget {
            population: 16,
            generations: 8,
            seed: 1,
        }
    }

    /// Sets the RNG seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn nsga2_config(&self, generations: usize, salt: u64) -> Nsga2Config {
        Nsga2Config::new(self.population, generations.max(1))
            .with_seed(self.seed.wrapping_mul(0x9E37_79B9).wrapping_add(salt))
    }
}

impl Default for StageBudget {
    fn default() -> Self {
        StageBudget::new(100, 120)
    }
}

/// One point of a final Pareto front.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontPoint {
    /// The minimization objective vector under the run's objective set.
    pub objectives: Vec<f64>,
    /// The full Table III metrics of the design point.
    pub metrics: SystemMetrics,
    /// The design point itself — the genome realizing these metrics.
    pub genome: Genome,
}

/// The outcome of one methodology run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontResult {
    method: String,
    points: Vec<FrontPoint>,
    /// Total fitness evaluations spent.
    pub evaluations: usize,
    /// Resilience report: failures isolated, candidates quarantined,
    /// degraded analyses, checkpoint/resume activity. Populated by the
    /// supervised entry points ([`ClrEarly::run_fc_supervised`] and
    /// friends); the plain runs leave it at its clean default.
    pub health: RunHealth,
}

impl FrontResult {
    /// The method label (`"fcCLR"`, `"pfCLR"`, `"proposed"`, …).
    pub fn method(&self) -> &str {
        &self.method
    }

    /// The Pareto-front points.
    pub fn front(&self) -> &[FrontPoint] {
        &self.points
    }

    /// The raw objective vectors of the front.
    pub fn objectives(&self) -> Vec<Vec<f64>> {
        self.points.iter().map(|p| p.objectives.clone()).collect()
    }

    /// Merges several results into one Pareto-filtered front (used by the
    /// Agnostic baseline and by multi-run studies).
    ///
    /// The merged `health` is reset to its clean default: per-stage health
    /// reports are cumulative under the supervised flow, so summing them
    /// here would double-count. Callers that track health across stages
    /// set it explicitly on the merged result.
    ///
    /// # Panics
    ///
    /// Panics if the results carry different objective dimensionalities.
    pub fn merge<'a>(
        label: impl Into<String>,
        results: impl IntoIterator<Item = &'a FrontResult>,
    ) -> FrontResult {
        let mut points = Vec::new();
        let mut evaluations = 0;
        for r in results {
            points.extend(r.points.iter().cloned());
            evaluations += r.evaluations;
        }
        let objs: Vec<Vec<f64>> = points.iter().map(|p| p.objectives.clone()).collect();
        let keep = non_dominated_indices(&objs);
        let points = keep.into_iter().map(|i| points[i].clone()).collect();
        FrontResult {
            method: label.into(),
            points,
            evaluations,
            health: RunHealth::default(),
        }
    }
}

/// The CL(R)Early DSE orchestrator for one `(application, platform)` pair.
///
/// Construction runs the full-CLR task-level DSE once and reuses the
/// resulting [`ImplLibrary`] across every method; the single-layer
/// baselines build their own restricted libraries on demand.
#[derive(Debug)]
pub struct ClrEarly<'a> {
    graph: &'a TaskGraph,
    platform: &'a Platform,
    tdse: TdseConfig,
    library: ImplLibrary,
    tdse_health: TdseHealth,
    objectives: ObjectiveSet,
    spec: QosSpec,
    exec: Executor,
}

impl<'a> ClrEarly<'a> {
    /// Creates an orchestrator with the default task-level DSE
    /// configuration and the bi-objective system set of Figs. 7–10.
    ///
    /// # Errors
    ///
    /// Propagates task-level DSE failures.
    pub fn new(graph: &'a TaskGraph, platform: &'a Platform) -> Result<Self, DseError> {
        Self::with_tdse_config(graph, platform, TdseConfig::default())
    }

    /// Creates an orchestrator with a custom task-level DSE configuration
    /// (e.g. a different Table IV objective set for the Fig. 9/10
    /// experiments).
    ///
    /// # Errors
    ///
    /// Propagates task-level DSE failures.
    pub fn with_tdse_config(
        graph: &'a TaskGraph,
        platform: &'a Platform,
        tdse: TdseConfig,
    ) -> Result<Self, DseError> {
        let (library, tdse_health) = build_library_with_health(graph, platform, &tdse)?;
        Ok(ClrEarly {
            graph,
            platform,
            tdse,
            library,
            tdse_health,
            objectives: ObjectiveSet::system_bi(),
            spec: QosSpec::new(),
            exec: Executor::serial(),
        })
    }

    /// Sets the system-level objective set (builder style).
    #[must_use]
    pub fn with_objectives(mut self, objectives: ObjectiveSet) -> Self {
        self.objectives = objectives;
        self
    }

    /// Sets the QoS constraint specification (builder style).
    #[must_use]
    pub fn with_spec(mut self, spec: QosSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Sets the evaluation executor (builder style): every GA run of this
    /// orchestrator fans its fitness batches through it, re-labeled per
    /// stage. Results are bit-identical for any worker count; only the
    /// wall clock and the telemetry trace differ.
    #[must_use]
    pub fn with_executor(mut self, exec: Executor) -> Self {
        self.exec = exec;
        self
    }

    /// The orchestrator's evaluation executor.
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// This orchestrator's executor re-labeled for one stage.
    fn stage_exec(&self, label: &str) -> Executor {
        self.exec.clone().with_label(label)
    }

    /// The task-level library built at construction.
    pub fn library(&self) -> &ImplLibrary {
        &self.library
    }

    /// Health counters of the task-level DSE sweep that built the
    /// library — notably how many Markov analyses fell back to the
    /// degraded closed-form solver.
    pub fn tdse_health(&self) -> &TdseHealth {
        &self.tdse_health
    }

    /// The application graph.
    pub fn graph(&self) -> &TaskGraph {
        self.graph
    }

    /// The platform.
    pub fn platform(&self) -> &Platform {
        self.platform
    }

    fn run_ga(
        &self,
        library: &ImplLibrary,
        mode: ChoiceMode,
        config: Nsga2Config,
        seeds: Vec<Genome>,
        label: &str,
    ) -> Result<(FrontResult, Vec<Genome>), DseError> {
        let codec = Codec::new(self.graph, self.platform, library, mode)?;
        let problem = SystemProblem::new(codec.clone(), self.objectives.clone(), self.spec);
        let variation = ClrVariation::new(&codec);
        let result = Nsga2::new(problem, variation, config)
            .with_seeds(seeds)
            .run_with(&self.stage_exec(label));
        let evaluations = result.evaluations;
        let front = result.into_front();
        let problem = SystemProblem::new(codec, self.objectives.clone(), self.spec);
        let mut points = Vec::with_capacity(front.len());
        let mut genomes = Vec::with_capacity(front.len());
        for ind in front {
            points.push(FrontPoint {
                objectives: ind.objectives.clone(),
                metrics: problem.metrics_of(&ind.genome),
                genome: ind.genome.clone(),
            });
            genomes.push(ind.genome);
        }
        // NSGA-II's rank-0 set may contain exact duplicates (neither copy
        // strictly dominates the other); report each front point once.
        let objs: Vec<Vec<f64>> = points.iter().map(|p| p.objectives.clone()).collect();
        let keep = non_dominated_indices(&objs);
        let points: Vec<FrontPoint> = keep.into_iter().map(|i| points[i].clone()).collect();
        Ok((
            FrontResult {
                method: label.to_owned(),
                points,
                evaluations,
                health: RunHealth::default(),
            },
            genomes,
        ))
    }

    /// Runs the problem-agnostic fcCLR baseline.
    ///
    /// # Errors
    ///
    /// Propagates codec construction failures.
    pub fn run_fc(&self, budget: &StageBudget) -> Result<FrontResult, DseError> {
        self.run_ga(
            &self.library,
            ChoiceMode::Full,
            budget.nsga2_config(budget.generations, 1),
            Vec::new(),
            "fcCLR",
        )
        .map(|(r, _)| r)
    }

    /// Runs the task-level-Pareto-filtered pfCLR method.
    ///
    /// # Errors
    ///
    /// Propagates codec construction failures.
    pub fn run_pf(&self, budget: &StageBudget) -> Result<FrontResult, DseError> {
        self.run_ga(
            &self.library,
            ChoiceMode::ParetoFiltered,
            budget.nsga2_config(budget.generations, 2),
            Vec::new(),
            "pfCLR",
        )
        .map(|(r, _)| r)
    }

    /// Runs the proposed two-stage methodology exactly as Section VI-C
    /// describes it: a full pfCLR optimization (identical to
    /// [`ClrEarly::run_pf`], same seed and trajectory) followed by an
    /// *additional* fcCLR optimization seeded with the pfCLR front; the
    /// reported front is the Pareto merge of both stages.
    ///
    /// Because the first stage reproduces `run_pf` and the merge keeps
    /// its non-dominated points, the proposed result never falls below
    /// the standalone pfCLR result — the paper's "equal or marginally
    /// improved" behaviour in Table VII. It spends roughly twice the
    /// evaluations of a standalone run, as does the paper's flow.
    ///
    /// # Errors
    ///
    /// Propagates codec construction failures.
    pub fn run_proposed(&self, budget: &StageBudget) -> Result<FrontResult, DseError> {
        let (pf_result, seeds) = self.run_ga(
            &self.library,
            ChoiceMode::ParetoFiltered,
            budget.nsga2_config(budget.generations, 2),
            Vec::new(),
            "proposed/pf-stage",
        )?;
        let (fc_result, _) = self.run_ga(
            &self.library,
            ChoiceMode::Full,
            budget.nsga2_config(budget.generations, 4),
            seeds,
            "proposed/fc-stage",
        )?;
        Ok(FrontResult::merge("proposed", [&pf_result, &fc_result]))
    }

    /// Runs fcCLR under a [`RunSupervisor`]: evaluation failures are
    /// isolated and quarantined, and the GA state is checkpointed so the
    /// run can be resumed by [`ClrEarly::resume_supervised`] after a
    /// crash — deterministically, to the identical final front.
    ///
    /// # Errors
    ///
    /// Propagates codec construction and checkpoint I/O failures.
    pub fn run_fc_supervised(
        &self,
        budget: &StageBudget,
        supervisor: &RunSupervisor,
    ) -> Result<RunOutcome, DseError> {
        let out = self.run_stage_supervised(
            StageContext::fresh("fcCLR", "fcCLR", 0, ChoiceMode::Full, 1),
            budget,
            supervisor,
        )?;
        self.conclude_single_stage(out, supervisor)
    }

    /// Runs pfCLR under a [`RunSupervisor`]; see
    /// [`ClrEarly::run_fc_supervised`].
    ///
    /// # Errors
    ///
    /// Propagates codec construction and checkpoint I/O failures.
    pub fn run_pf_supervised(
        &self,
        budget: &StageBudget,
        supervisor: &RunSupervisor,
    ) -> Result<RunOutcome, DseError> {
        let out = self.run_stage_supervised(
            StageContext::fresh("pfCLR", "pfCLR", 0, ChoiceMode::ParetoFiltered, 2),
            budget,
            supervisor,
        )?;
        self.conclude_single_stage(out, supervisor)
    }

    /// Runs the proposed two-stage methodology under a [`RunSupervisor`].
    /// Both stages checkpoint to the same file; the checkpoint records
    /// which stage it belongs to, and stage 1 checkpoints additionally
    /// carry the pf-stage front so a resume can reconstitute the final
    /// merge without re-running stage 0.
    ///
    /// # Errors
    ///
    /// Propagates codec construction and checkpoint I/O failures.
    pub fn run_proposed_supervised(
        &self,
        budget: &StageBudget,
        supervisor: &RunSupervisor,
    ) -> Result<RunOutcome, DseError> {
        let out = self.run_stage_supervised(
            StageContext::fresh(
                "proposed",
                "proposed/pf-stage",
                0,
                ChoiceMode::ParetoFiltered,
                2,
            ),
            budget,
            supervisor,
        )?;
        match out {
            StageOutcome::Complete { result, genomes } => {
                self.finish_proposed(result, genomes, budget, supervisor, None)
            }
            StageOutcome::Interrupted { generation } => Ok(RunOutcome::Interrupted {
                stage: 0,
                generation,
            }),
        }
    }

    /// Resumes an interrupted supervised run from the supervisor's
    /// checkpoint file and drives it to completion (unless the
    /// supervisor's crash-injection seam interrupts it again).
    ///
    /// The checkpoint's configuration echo (method, stage, budget, seed,
    /// objective count, genome shape) is validated against this
    /// orchestrator first; any mismatch is a [`DseError::Checkpoint`].
    /// Because the checkpoint restores the exact population, RNG state
    /// words and stage bookkeeping, the resumed run reproduces the
    /// uninterrupted run's final front bit-for-bit.
    ///
    /// # Errors
    ///
    /// [`DseError::Checkpoint`] for a missing, malformed, or mismatched
    /// checkpoint; otherwise as for the supervised runs.
    pub fn resume_supervised(
        &self,
        budget: &StageBudget,
        supervisor: &RunSupervisor,
    ) -> Result<RunOutcome, DseError> {
        let cp = Checkpoint::load(supervisor.checkpoint_path())?;
        self.validate_checkpoint(&cp, budget)?;
        let Checkpoint {
            method,
            stage,
            prior_evaluations,
            aux_genomes,
            state,
            mut health,
            ..
        } = cp;
        if health.resumed_from_generation.is_none() {
            health.resumed_from_generation = Some(state.generation);
        }
        match (method.as_str(), stage) {
            ("fcCLR", 0) => {
                let ctx = StageContext::resumed(
                    "fcCLR",
                    "fcCLR",
                    0,
                    ChoiceMode::Full,
                    1,
                    prior_evaluations,
                    aux_genomes,
                    health,
                    state,
                );
                let out = self.run_stage_supervised(ctx, budget, supervisor)?;
                self.conclude_single_stage(out, supervisor)
            }
            ("pfCLR", 0) => {
                let ctx = StageContext::resumed(
                    "pfCLR",
                    "pfCLR",
                    0,
                    ChoiceMode::ParetoFiltered,
                    2,
                    prior_evaluations,
                    aux_genomes,
                    health,
                    state,
                );
                let out = self.run_stage_supervised(ctx, budget, supervisor)?;
                self.conclude_single_stage(out, supervisor)
            }
            ("proposed", 0) => {
                let ctx = StageContext::resumed(
                    "proposed",
                    "proposed/pf-stage",
                    0,
                    ChoiceMode::ParetoFiltered,
                    2,
                    prior_evaluations,
                    aux_genomes,
                    health,
                    state,
                );
                match self.run_stage_supervised(ctx, budget, supervisor)? {
                    StageOutcome::Complete { result, genomes } => {
                        self.finish_proposed(result, genomes, budget, supervisor, None)
                    }
                    StageOutcome::Interrupted { generation } => Ok(RunOutcome::Interrupted {
                        stage: 0,
                        generation,
                    }),
                }
            }
            ("proposed", 1) => {
                // Stage 1 checkpoints carry the pf-stage front as aux
                // genomes: reconstitute that stage's result (its metrics
                // are a pure function of the genomes), then continue the
                // fc stage from the snapshot.
                let pf_result = self.front_from_genomes(
                    "proposed/pf-stage",
                    ChoiceMode::ParetoFiltered,
                    &aux_genomes,
                    prior_evaluations,
                )?;
                let ctx = StageContext::resumed(
                    "proposed",
                    "proposed/fc-stage",
                    1,
                    ChoiceMode::Full,
                    4,
                    prior_evaluations,
                    aux_genomes,
                    health,
                    state,
                );
                match self.run_stage_supervised(ctx, budget, supervisor)? {
                    StageOutcome::Complete { result, .. } => {
                        self.conclude_proposed(pf_result, result, supervisor)
                    }
                    StageOutcome::Interrupted { generation } => Ok(RunOutcome::Interrupted {
                        stage: 1,
                        generation,
                    }),
                }
            }
            (m, s) => Err(DseError::Checkpoint {
                what: format!("cannot resume method {m:?} at stage {s}"),
            }),
        }
    }

    /// Runs the fc stage of the proposed flow (fresh or resumed) and
    /// merges it with the pf-stage result.
    fn finish_proposed(
        &self,
        pf_result: FrontResult,
        seeds: Vec<Genome>,
        budget: &StageBudget,
        supervisor: &RunSupervisor,
        resume: Option<Nsga2State<Genome>>,
    ) -> Result<RunOutcome, DseError> {
        let base_health = pf_result.health.clone();
        let ctx = StageContext {
            method: "proposed",
            label: "proposed/fc-stage",
            stage: 1,
            mode: ChoiceMode::Full,
            salt: 4,
            prior_evaluations: pf_result.evaluations,
            aux_genomes: seeds,
            base_health,
            resume,
        };
        match self.run_stage_supervised(ctx, budget, supervisor)? {
            StageOutcome::Complete { result, .. } => {
                self.conclude_proposed(pf_result, result, supervisor)
            }
            StageOutcome::Interrupted { generation } => Ok(RunOutcome::Interrupted {
                stage: 1,
                generation,
            }),
        }
    }

    fn conclude_proposed(
        &self,
        pf_result: FrontResult,
        fc_result: FrontResult,
        supervisor: &RunSupervisor,
    ) -> Result<RunOutcome, DseError> {
        // The fc stage's health is cumulative across both stages (its
        // base was the pf stage's report), so it becomes the merged
        // report; merge() itself resets health to avoid double counting.
        let mut health = fc_result.health.clone();
        health.degraded_analyses += self.tdse_health.degraded_analyses;
        let mut merged = FrontResult::merge("proposed", [&pf_result, &fc_result]);
        merged.health = health;
        remove_checkpoint_files(
            supervisor.checkpoint_path(),
            supervisor.config().keep_checkpoints,
        );
        Ok(RunOutcome::Complete(merged))
    }

    fn conclude_single_stage(
        &self,
        out: StageOutcome,
        supervisor: &RunSupervisor,
    ) -> Result<RunOutcome, DseError> {
        match out {
            StageOutcome::Complete { mut result, .. } => {
                result.health.degraded_analyses += self.tdse_health.degraded_analyses;
                remove_checkpoint_files(
                    supervisor.checkpoint_path(),
                    supervisor.config().keep_checkpoints,
                );
                Ok(RunOutcome::Complete(result))
            }
            StageOutcome::Interrupted { generation } => Ok(RunOutcome::Interrupted {
                stage: 0,
                generation,
            }),
        }
    }

    /// One supervised GA stage: step-wise NSGA-II over a panic-isolating
    /// problem wrapper, checkpointing at the supervisor's cadence.
    fn run_stage_supervised(
        &self,
        ctx: StageContext<'_>,
        budget: &StageBudget,
        supervisor: &RunSupervisor,
    ) -> Result<StageOutcome, DseError> {
        let config = budget.nsga2_config(budget.generations, ctx.salt);
        let codec = Codec::new(self.graph, self.platform, &self.library, ctx.mode)?;
        let problem = SystemProblem::new(codec.clone(), self.objectives.clone(), self.spec);
        let resilient =
            ResilientProblem::new(problem).with_max_retries(supervisor.config().max_retries);
        let eval_health = resilient.health();
        let quarantine_log = resilient.quarantine_log();
        let variation = ClrVariation::new(&codec);
        let exec = self.stage_exec(ctx.label);
        // Seeds only shape init_state, so passing them on resume is a
        // no-op; the aux genomes double as this stage's seeds.
        let ga = Nsga2::new(resilient, variation, config).with_seeds(ctx.aux_genomes.clone());
        let fresh = ctx.resume.is_none();
        let mut state = match ctx.resume {
            Some(s) => s,
            None => ga.init_state_with(&exec),
        };

        let mut checkpoints = 0usize;
        let health_now = |checkpoints: usize| {
            let mut h = ctx.base_health.clone();
            h.merge(&eval_health.lock().expect("run health poisoned"));
            h.checkpoints_written += checkpoints;
            h
        };
        // Checkpoints carry nothing thread-dependent: the GA state's
        // population and RNG words are identical for any worker count, and
        // the health counters are totals, not per-worker data.
        let save = |state: &Nsga2State<Genome>, health: RunHealth| -> Result<(), DseError> {
            Checkpoint {
                method: ctx.method.to_owned(),
                stage: ctx.stage,
                population_size: budget.population,
                generations: budget.generations,
                seed: budget.seed,
                objective_count: self.objectives.len(),
                prior_evaluations: ctx.prior_evaluations,
                aux_genomes: ctx.aux_genomes.clone(),
                state: state.clone(),
                health,
            }
            .save_rotated(
                supervisor.checkpoint_path(),
                supervisor.config().keep_checkpoints,
            )?;
            write_quarantine_sidecar(
                &quarantine_sidecar_path(supervisor.checkpoint_path()),
                &quarantine_log.lock().expect("quarantine log poisoned"),
            )
        };
        // Stamp the cumulative quarantine/degraded counters onto the trace
        // record of the batch that just ran (no batch ran on resume).
        let annotate = || {
            let h = health_now(0);
            exec.annotate_health(h.quarantined, h.degraded_analyses);
        };
        if fresh {
            annotate();
        }

        loop {
            if supervisor.should_interrupt(ctx.stage, state.generation) {
                checkpoints += 1;
                save(&state, health_now(checkpoints))?;
                return Ok(StageOutcome::Interrupted {
                    generation: state.generation,
                });
            }
            if !ga.step_with(&mut state, &exec) {
                break;
            }
            annotate();
            if state.generation % supervisor.config().every_generations == 0 {
                checkpoints += 1;
                save(&state, health_now(checkpoints))?;
            }
        }
        // Stage-end sidecar write, so triage data survives even when the
        // run completes and the checkpoints are cleaned up.
        write_quarantine_sidecar(
            &quarantine_sidecar_path(supervisor.checkpoint_path()),
            &quarantine_log.lock().expect("quarantine log poisoned"),
        )?;

        let health = health_now(checkpoints);
        let evaluations = state.evaluations;
        let result = ga.finalize(state);
        let front = result.into_front();
        let metrics_problem = SystemProblem::new(codec, self.objectives.clone(), self.spec);
        let mut points = Vec::with_capacity(front.len());
        let mut genomes = Vec::with_capacity(front.len());
        for ind in front {
            // A fully quarantined population can push unevaluable
            // genomes onto rank 0; they carry no physical metrics, so
            // they are dropped from the reported front (the quarantine
            // events themselves are visible in `health`).
            if let Ok(metrics) = metrics_problem.try_metrics_of(&ind.genome) {
                points.push(FrontPoint {
                    objectives: ind.objectives.clone(),
                    metrics,
                    genome: ind.genome.clone(),
                });
            }
            genomes.push(ind.genome);
        }
        let objs: Vec<Vec<f64>> = points.iter().map(|p| p.objectives.clone()).collect();
        let keep = non_dominated_indices(&objs);
        let points: Vec<FrontPoint> = keep.into_iter().map(|i| points[i].clone()).collect();
        Ok(StageOutcome::Complete {
            result: FrontResult {
                method: ctx.label.to_owned(),
                points,
                evaluations,
                health,
            },
            genomes,
        })
    }

    /// Reconstitutes a stage result from its front genomes: metrics (and
    /// thus objectives) are a pure function of each genome, so a
    /// checkpoint only needs the genomes.
    fn front_from_genomes(
        &self,
        label: &str,
        mode: ChoiceMode,
        genomes: &[Genome],
        evaluations: usize,
    ) -> Result<FrontResult, DseError> {
        let codec = Codec::new(self.graph, self.platform, &self.library, mode)?;
        let problem = SystemProblem::new(codec, self.objectives.clone(), self.spec);
        let mut points = Vec::with_capacity(genomes.len());
        for g in genomes {
            if let Ok(metrics) = problem.try_metrics_of(g) {
                points.push(FrontPoint {
                    objectives: metrics.objective_vector(&self.objectives),
                    metrics,
                    genome: g.clone(),
                });
            }
        }
        let objs: Vec<Vec<f64>> = points.iter().map(|p| p.objectives.clone()).collect();
        let keep = non_dominated_indices(&objs);
        let points: Vec<FrontPoint> = keep.into_iter().map(|i| points[i].clone()).collect();
        Ok(FrontResult {
            method: label.to_owned(),
            points,
            evaluations,
            health: RunHealth::default(),
        })
    }

    fn validate_checkpoint(&self, cp: &Checkpoint, budget: &StageBudget) -> Result<(), DseError> {
        let mismatch =
            |what: String| -> Result<(), DseError> { Err(DseError::Checkpoint { what }) };
        if cp.population_size != budget.population {
            return mismatch(format!(
                "population mismatch: checkpoint {}, budget {}",
                cp.population_size, budget.population
            ));
        }
        if cp.generations != budget.generations {
            return mismatch(format!(
                "generation budget mismatch: checkpoint {}, budget {}",
                cp.generations, budget.generations
            ));
        }
        if cp.seed != budget.seed {
            return mismatch(format!(
                "seed mismatch: checkpoint {}, budget {}",
                cp.seed, budget.seed
            ));
        }
        if cp.objective_count != self.objectives.len() {
            return mismatch(format!(
                "objective count mismatch: checkpoint {}, run {}",
                cp.objective_count,
                self.objectives.len()
            ));
        }
        if cp.state.generation > cp.generations {
            return mismatch(format!(
                "corrupt snapshot: generation {} beyond budget {}",
                cp.state.generation, cp.generations
            ));
        }
        let task_count = self.graph.tasks().len();
        let genome_shapes = cp
            .state
            .population
            .iter()
            .map(|ind| &ind.genome)
            .chain(cp.aux_genomes.iter());
        for g in genome_shapes {
            if g.len() != task_count {
                return mismatch(format!(
                    "genome length {} does not match application task count {task_count}",
                    g.len()
                ));
            }
        }
        Ok(())
    }

    /// Runs a single-degree-of-freedom baseline for one layer.
    ///
    /// # Errors
    ///
    /// Propagates task-level DSE and codec failures.
    pub fn run_single_layer(
        &self,
        layer: Layer,
        budget: &StageBudget,
    ) -> Result<FrontResult, DseError> {
        let (catalog, policy) = match layer {
            Layer::Dvfs => (vec![ClrConfig::unprotected()], DvfsPolicy::All),
            Layer::Hw => (ClrConfig::hw_only_catalog(), DvfsPolicy::NominalOnly),
            Layer::Ssw => (ClrConfig::ssw_only_catalog(), DvfsPolicy::NominalOnly),
            Layer::Asw => (ClrConfig::asw_only_catalog(), DvfsPolicy::NominalOnly),
        };
        let tdse = self
            .tdse
            .clone()
            .with_clr_catalog(catalog)
            .with_dvfs_policy(policy);
        let library = build_library(self.graph, self.platform, &tdse)?;
        self.run_ga(
            &library,
            ChoiceMode::Full,
            budget.nsga2_config(budget.generations, 10 + layer as u64),
            Vec::new(),
            layer.name(),
        )
        .map(|(r, _)| r)
    }

    /// Runs pfCLR under the SPEA2 backend instead of NSGA-II — the
    /// `ablation_moea` study of DESIGN.md §5 (the paper prototypes on
    /// both DEAP and PYGMO, i.e. multiple MOEA implementations).
    ///
    /// # Errors
    ///
    /// Propagates codec construction failures.
    pub fn run_pf_spea2(&self, budget: &StageBudget) -> Result<FrontResult, DseError> {
        let codec = Codec::new(
            self.graph,
            self.platform,
            &self.library,
            ChoiceMode::ParetoFiltered,
        )?;
        let problem = SystemProblem::new(codec.clone(), self.objectives.clone(), self.spec);
        let variation = ClrVariation::new(&codec);
        let config = Spea2Config::new(budget.population, budget.generations.max(1))
            .with_seed(budget.seed.wrapping_mul(0x9E37_79B9).wrapping_add(7));
        let result =
            Spea2::new(problem, variation, config).run_with(&self.stage_exec("pfCLR/spea2"));
        let evaluations = result.evaluations;
        let problem = SystemProblem::new(codec, self.objectives.clone(), self.spec);
        let mut points: Vec<FrontPoint> = result
            .archive()
            .iter()
            .map(|ind| FrontPoint {
                objectives: ind.objectives.clone(),
                metrics: problem.metrics_of(&ind.genome),
                genome: ind.genome.clone(),
            })
            .collect();
        let objs: Vec<Vec<f64>> = points.iter().map(|p| p.objectives.clone()).collect();
        let keep = non_dominated_indices(&objs);
        points = keep.into_iter().map(|i| points[i].clone()).collect();
        Ok(FrontResult {
            method: "pfCLR/spea2".to_owned(),
            points,
            evaluations,
            health: RunHealth::default(),
        })
    }

    /// Runs pfCLR with a non-default tournament size — the
    /// `ablation_tournament` study of DESIGN.md §5.
    ///
    /// # Errors
    ///
    /// Propagates codec construction failures.
    ///
    /// # Panics
    ///
    /// Panics if `tournament_size == 0`.
    pub fn run_pf_with_tournament(
        &self,
        budget: &StageBudget,
        tournament_size: usize,
    ) -> Result<FrontResult, DseError> {
        let config = budget
            .nsga2_config(budget.generations, 2)
            .with_tournament_size(tournament_size);
        self.run_ga(
            &self.library,
            ChoiceMode::ParetoFiltered,
            config,
            Vec::new(),
            "pfCLR",
        )
        .map(|(r, _)| r)
    }

    /// Runs the pruning ablation of DESIGN.md §5: a pfCLR-shaped search
    /// whose per-group choice lists are *random* subsets of the full
    /// space, each the same size as the true task-level Pareto front.
    ///
    /// # Errors
    ///
    /// Propagates codec construction failures.
    pub fn run_random_subset(
        &self,
        budget: &StageBudget,
        subset_seed: u64,
    ) -> Result<FrontResult, DseError> {
        let library = self.library.with_random_subsets(subset_seed);
        self.run_ga(
            &library,
            ChoiceMode::ParetoFiltered,
            budget.nsga2_config(budget.generations, 5),
            Vec::new(),
            "random-subset",
        )
        .map(|(r, _)| r)
    }

    /// Runs the other-layer-agnostic baseline: all four single-layer
    /// optimizations, merged and Pareto-filtered.
    ///
    /// The comparison is budget-fair: each layer receives a quarter of
    /// `budget.generations`, so the merged baseline spends approximately
    /// the same number of fitness evaluations as one CLR run.
    ///
    /// # Errors
    ///
    /// Propagates single-layer failures.
    pub fn run_agnostic(&self, budget: &StageBudget) -> Result<FrontResult, DseError> {
        let per_layer = StageBudget {
            generations: (budget.generations / Layer::ALL.len()).max(1),
            ..budget.clone()
        };
        let runs = Layer::ALL
            .iter()
            .map(|&l| self.run_single_layer(l, &per_layer))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FrontResult::merge("Agnostic", runs.iter()))
    }
}

/// Parameters of one supervised GA stage (fresh or resumed).
struct StageContext<'b> {
    /// Checkpoint method tag (validated on resume).
    method: &'b str,
    /// Label of the stage's [`FrontResult`].
    label: &'b str,
    /// Stage index within the method (0-based).
    stage: u32,
    /// Choice-list mode of the stage's codec.
    mode: ChoiceMode,
    /// Seed salt (same scheme as the plain runs, so supervised and plain
    /// runs of the same method share their RNG trajectory).
    salt: u64,
    /// Evaluations spent by earlier stages (checkpoint bookkeeping).
    prior_evaluations: usize,
    /// Seeds for this stage; persisted in checkpoints.
    aux_genomes: Vec<Genome>,
    /// Cumulative health carried into this stage (prior stages and, on
    /// resume, the pre-crash portion of this stage).
    base_health: RunHealth,
    /// Snapshot to continue from (`None` = fresh stage).
    resume: Option<Nsga2State<Genome>>,
}

impl<'b> StageContext<'b> {
    fn fresh(method: &'b str, label: &'b str, stage: u32, mode: ChoiceMode, salt: u64) -> Self {
        StageContext {
            method,
            label,
            stage,
            mode,
            salt,
            prior_evaluations: 0,
            aux_genomes: Vec::new(),
            base_health: RunHealth::default(),
            resume: None,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn resumed(
        method: &'b str,
        label: &'b str,
        stage: u32,
        mode: ChoiceMode,
        salt: u64,
        prior_evaluations: usize,
        aux_genomes: Vec<Genome>,
        base_health: RunHealth,
        state: Nsga2State<Genome>,
    ) -> Self {
        StageContext {
            method,
            label,
            stage,
            mode,
            salt,
            prior_evaluations,
            aux_genomes,
            base_health,
            resume: Some(state),
        }
    }
}

/// Outcome of one supervised stage.
enum StageOutcome {
    /// The stage ran to its generation budget.
    Complete {
        /// The stage's front (health cumulative up to this stage).
        result: FrontResult,
        /// All rank-0 genomes, in population order (stage-1 seeds).
        genomes: Vec<Genome>,
    },
    /// The supervisor's crash-injection seam fired; a checkpoint is on
    /// disk.
    Interrupted {
        /// Generations completed when the stage stopped.
        generation: usize,
    },
}

/// Computes a common hypervolume reference point for a family of fronts:
/// 10% beyond the worst observed value on every objective.
///
/// # Panics
///
/// Panics if `fronts` is empty or contains empty objective vectors of
/// differing dimensionality.
///
/// # Examples
///
/// ```
/// use clre::methodology::reference_point;
///
/// let fronts = vec![vec![vec![1.0, 4.0]], vec![vec![2.0, 3.0]]];
/// let r = reference_point(fronts.iter().map(|f| f.as_slice()));
/// assert!(r[0] > 2.0 && r[1] > 4.0);
/// ```
pub fn reference_point<'a>(fronts: impl IntoIterator<Item = &'a [Vec<f64>]>) -> Vec<f64> {
    let mut worst: Option<Vec<f64>> = None;
    let mut best: Option<Vec<f64>> = None;
    for front in fronts {
        for p in front {
            match (&mut worst, &mut best) {
                (Some(w), Some(b)) => {
                    assert_eq!(w.len(), p.len(), "dimensionality mismatch");
                    for i in 0..p.len() {
                        w[i] = w[i].max(p[i]);
                        b[i] = b[i].min(p[i]);
                    }
                }
                _ => {
                    worst = Some(p.clone());
                    best = Some(p.clone());
                }
            }
        }
    }
    let worst = worst.expect("at least one non-empty front is required");
    let best = best.expect("at least one non-empty front is required");
    worst
        .into_iter()
        .zip(best)
        .map(|(w, b)| {
            let span = (w - b).abs();
            if span > 0.0 {
                w + 0.1 * span
            } else {
                // Degenerate axis: nudge by 10% of magnitude (or 1).
                w + 0.1 * w.abs().max(1.0)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clre_model::platform::paper_platform;
    use clre_moea::hypervolume::hypervolume;
    use clre_profile::SyntheticCharacterizer;
    use clre_tgff::TgffConfig;

    fn setup(tasks: usize) -> (Platform, TaskGraph) {
        let platform = paper_platform();
        let ch = SyntheticCharacterizer::new(5);
        let graph = clre_tgff::generate(&TgffConfig::new(tasks).with_type_count(5), 7, |ty| {
            ch.impls_for_type(ty, &platform)
        })
        .unwrap();
        (platform, graph)
    }

    #[test]
    fn all_methods_produce_nonempty_fronts() {
        let (p, g) = setup(8);
        let dse = ClrEarly::new(&g, &p).unwrap();
        let budget = StageBudget::smoke_test();
        for result in [
            dse.run_fc(&budget).unwrap(),
            dse.run_pf(&budget).unwrap(),
            dse.run_proposed(&budget).unwrap(),
            dse.run_agnostic(&budget).unwrap(),
        ] {
            assert!(!result.front().is_empty(), "{} empty", result.method());
            for pt in result.front() {
                assert_eq!(pt.objectives.len(), 2);
                assert!(pt.metrics.makespan > 0.0);
                assert!((0.0..=1.0).contains(&pt.metrics.error_prob));
            }
        }
    }

    #[test]
    fn front_objectives_are_mutually_nondominated() {
        let (p, g) = setup(8);
        let dse = ClrEarly::new(&g, &p).unwrap();
        let r = dse.run_pf(&StageBudget::smoke_test()).unwrap();
        let objs = r.objectives();
        let keep = non_dominated_indices(&objs);
        assert_eq!(keep.len(), objs.len());
    }

    #[test]
    fn proposed_is_pf_plus_additional_fc_run() {
        let (p, g) = setup(6);
        let dse = ClrEarly::new(&g, &p).unwrap();
        let budget = StageBudget::smoke_test();
        let fc = dse.run_fc(&budget).unwrap();
        let proposed = dse.run_proposed(&budget).unwrap();
        // Two full runs: twice the evaluations of one standalone run.
        assert_eq!(proposed.evaluations, 2 * fc.evaluations);
    }

    #[test]
    fn proposed_never_below_pfclr() {
        use clre_moea::hypervolume::hypervolume;
        let (p, g) = setup(10);
        let dse = ClrEarly::new(&g, &p).unwrap();
        for seed in [1u64, 2, 3] {
            let budget = StageBudget::smoke_test().with_seed(seed);
            let pf = dse.run_pf(&budget).unwrap().objectives();
            let prop = dse.run_proposed(&budget).unwrap().objectives();
            let r = reference_point([pf.as_slice(), prop.as_slice()]);
            assert!(
                hypervolume(&prop, &r) >= hypervolume(&pf, &r) - 1e-15,
                "seed {seed}: proposed fell below pfCLR"
            );
        }
    }

    #[test]
    fn clr_beats_agnostic_in_hypervolume() {
        let (p, g) = setup(12);
        let dse = ClrEarly::new(&g, &p).unwrap();
        let budget = StageBudget::new(24, 20).with_seed(3);
        let clr = dse.run_proposed(&budget).unwrap();
        let agn = dse.run_agnostic(&budget).unwrap();
        let clr_objs = clr.objectives();
        let agn_objs = agn.objectives();
        let r = reference_point([clr_objs.as_slice(), agn_objs.as_slice()]);
        let hv_clr = hypervolume(&clr_objs, &r);
        let hv_agn = hypervolume(&agn_objs, &r);
        assert!(
            hv_clr > hv_agn,
            "CLR ({hv_clr}) should dominate Agnostic ({hv_agn})"
        );
    }

    #[test]
    fn single_layer_runs_have_distinct_tradeoffs() {
        let (p, g) = setup(8);
        let dse = ClrEarly::new(&g, &p).unwrap();
        let budget = StageBudget::smoke_test();
        let fronts: Vec<FrontResult> = Layer::ALL
            .iter()
            .map(|&l| dse.run_single_layer(l, &budget).unwrap())
            .collect();
        for (layer, f) in Layer::ALL.iter().zip(&fronts) {
            assert_eq!(f.method(), layer.name());
            assert!(!f.front().is_empty());
        }
        let merged = FrontResult::merge("Agnostic", fronts.iter());
        assert!(!merged.front().is_empty());
        assert_eq!(
            merged.evaluations,
            fronts.iter().map(|f| f.evaluations).sum::<usize>()
        );
    }

    #[test]
    fn spea2_backend_produces_comparable_fronts() {
        use clre_moea::hypervolume::hypervolume;
        let (p, g) = setup(10);
        let dse = ClrEarly::new(&g, &p).unwrap();
        let budget = StageBudget::new(20, 12).with_seed(4);
        let nsga = dse.run_pf(&budget).unwrap();
        let spea = dse.run_pf_spea2(&budget).unwrap();
        assert_eq!(spea.method(), "pfCLR/spea2");
        assert!(!spea.front().is_empty());
        let a = nsga.objectives();
        let b = spea.objectives();
        let r = reference_point([a.as_slice(), b.as_slice()]);
        let (ha, hb) = (hypervolume(&a, &r), hypervolume(&b, &r));
        // Same order of magnitude: neither backend collapses.
        assert!(hb > 0.2 * ha, "SPEA2 collapsed: {hb} vs NSGA-II {ha}");
        assert!(ha > 0.2 * hb, "NSGA-II collapsed: {ha} vs SPEA2 {hb}");
    }

    #[test]
    fn deterministic_per_seed() {
        let (p, g) = setup(6);
        let dse = ClrEarly::new(&g, &p).unwrap();
        let b = StageBudget::smoke_test().with_seed(42);
        let a = dse.run_proposed(&b).unwrap();
        let c = dse.run_proposed(&b).unwrap();
        assert_eq!(a.objectives(), c.objectives());
    }

    #[test]
    fn reference_point_covers_all_fronts() {
        let fronts = [vec![vec![1.0, 5.0], vec![2.0, 4.0]], vec![vec![3.0, 1.0]]];
        let r = reference_point(fronts.iter().map(|f| f.as_slice()));
        for f in &fronts {
            for p in f {
                assert!(p[0] < r[0] && p[1] < r[1]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-empty front")]
    fn reference_point_requires_points() {
        reference_point(std::iter::empty::<&[Vec<f64>]>());
    }

    #[test]
    fn budget_builders_validate() {
        let b = StageBudget::new(10, 20).with_seed(1);
        assert_eq!(b.seed, 1);
        assert_eq!(StageBudget::default().population, 100);
    }
}

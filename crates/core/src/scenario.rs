//! Reliability scenarios: the pluggable fault-model / mitigation-axis
//! presets that parameterize a DSE campaign (DESIGN.md §16).
//!
//! A [`Scenario`] bundles the three knobs the reliability-model layer
//! added to the stack — fault mechanism ([`ReliabilityModel`]), CLR
//! catalog (which mitigation axes the search may spend), and
//! system-level objective set — behind one name with a stable string
//! form, so campaign clients can request e.g. `fc@lifetime:40000`
//! without hand-assembling a [`TdseConfig`]. Every built-in plan family
//! (fc / pf / proposed / Agnostic) runs unchanged under every scenario:
//! plans choose *how to search*, scenarios choose *what physics and
//! catalog the search sees*.
//!
//! The default [`Scenario::Transient`] reproduces the original pipeline
//! bit-for-bit: default catalog, transient-only chains, bi-objective
//! fronts — pinned by the digest-stability tests.
//!
//! # Examples
//!
//! ```
//! use clre::scenario::Scenario;
//!
//! let s = Scenario::parse("lifetime:40000")?;
//! assert_eq!(s.name(), "lifetime:40000");
//! assert_eq!(s.system_objectives().len(), 3); // + MTTF
//! assert!(Scenario::parse("warpdrive").is_err());
//! # Ok::<(), clre::DseError>(())
//! ```

use clre_model::qos::ObjectiveSet;
use clre_model::reliability::ClrConfig;

use crate::tdse::{ReliabilityModel, TdseConfig};
use crate::DseError;

/// Default mission time (hours) of the `lifetime` scenario shorthand.
pub const DEFAULT_MISSION_HOURS: f64 = 40_000.0;

/// A named reliability scenario: fault mechanism + catalog axes +
/// objective set.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[non_exhaustive]
pub enum Scenario {
    /// Transient SEUs, default catalog, bi-objective fronts — the
    /// original pipeline, bit-identical under the digest tests.
    #[default]
    Transient,
    /// Permanent/aging faults compete with SEUs in every chain and the
    /// front gains a lifetime-MTTF objective. String form
    /// `lifetime:<hours>`.
    PermanentAging {
        /// Mission time in hours at which the Weibull hazard is
        /// evaluated.
        mission_time_hours: f64,
    },
    /// Heterogeneous checkpointing: the catalog additionally explores
    /// local (fast, corruptible) and remote (slow, safe) checkpoint
    /// interval modes per task. String form `chkmodes`.
    CheckpointModes,
    /// Reconfigurable-fabric SEU mitigation: the catalog additionally
    /// explores scrubbing and TMR+scrubbing styles, placeable only on
    /// reconfigurable-region PEs. String form `fpga`.
    FpgaMitigation,
}

impl Scenario {
    /// The scenario's canonical string form — accepted back by
    /// [`Scenario::parse`] and used in plan shorthands
    /// (`proposed@chkmodes`).
    pub fn name(&self) -> String {
        match self {
            Scenario::Transient => "transient".to_owned(),
            Scenario::PermanentAging { mission_time_hours } => {
                format!("lifetime:{mission_time_hours}")
            }
            Scenario::CheckpointModes => "chkmodes".to_owned(),
            Scenario::FpgaMitigation => "fpga".to_owned(),
        }
    }

    /// Parses a scenario string: `transient`, `lifetime` (default
    /// mission of [`DEFAULT_MISSION_HOURS`]), `lifetime:<hours>`,
    /// `chkmodes`, or `fpga`.
    ///
    /// # Errors
    ///
    /// [`DseError::Scenario`] for an unknown axis name or a
    /// non-positive / unparsable mission time — a typed error, so
    /// server submit paths reject bad input without panicking.
    pub fn parse(input: &str) -> Result<Self, DseError> {
        let bad = |what: String| Err(DseError::Scenario { what });
        match input.trim() {
            "transient" => Ok(Scenario::Transient),
            "chkmodes" => Ok(Scenario::CheckpointModes),
            "fpga" => Ok(Scenario::FpgaMitigation),
            "lifetime" => Ok(Scenario::PermanentAging {
                mission_time_hours: DEFAULT_MISSION_HOURS,
            }),
            s => match s.strip_prefix("lifetime:") {
                Some(hours) => match hours.parse::<f64>() {
                    Ok(h) if h.is_finite() && h > 0.0 => Ok(Scenario::PermanentAging {
                        mission_time_hours: h,
                    }),
                    _ => bad(format!("mission time {hours:?} must be a positive number")),
                },
                None => bad(format!(
                    "unknown scenario {s:?} (expected transient, lifetime[:hours], \
                     chkmodes, or fpga)"
                )),
            },
        }
    }

    /// The fault mechanism this scenario folds into every Markov chain.
    pub fn reliability_model(&self) -> ReliabilityModel {
        match self {
            Scenario::PermanentAging { mission_time_hours } => ReliabilityModel::PermanentAging {
                mission_time: mission_time_hours * 3600.0,
            },
            _ => ReliabilityModel::Transient,
        }
    }

    /// The CLR catalog the task-level DSE enumerates under this
    /// scenario. [`Scenario::Transient`] and
    /// [`Scenario::PermanentAging`] keep the default (pinned) catalog;
    /// the mitigation scenarios opt into their extended catalogs.
    pub fn clr_catalog(&self) -> Vec<ClrConfig> {
        match self {
            Scenario::Transient | Scenario::PermanentAging { .. } => ClrConfig::catalog(),
            Scenario::CheckpointModes => ClrConfig::checkpoint_mode_catalog(),
            Scenario::FpgaMitigation => ClrConfig::fpga_mitigation_catalog(),
        }
    }

    /// The system-level objective set: bi-objective
    /// (makespan + error) everywhere except the lifetime scenario,
    /// which adds negated MTTF.
    pub fn system_objectives(&self) -> ObjectiveSet {
        match self {
            Scenario::PermanentAging { .. } => ObjectiveSet::system_lifetime(),
            _ => ObjectiveSet::system_bi(),
        }
    }

    /// A task-level DSE configuration realizing this scenario on top of
    /// `base` (catalog and reliability model are overridden; profile,
    /// cache, executor-level settings are kept).
    ///
    /// # Errors
    ///
    /// Propagates catalog validation (never fails for the built-in
    /// catalogs, which are non-empty by construction).
    pub fn apply_to(&self, base: TdseConfig) -> Result<TdseConfig, DseError> {
        Ok(base
            .with_clr_catalog(self.clr_catalog())?
            .with_reliability_model(self.reliability_model()))
    }

    /// The task-level DSE configuration of this scenario over the
    /// default substrate.
    ///
    /// # Errors
    ///
    /// As for [`Scenario::apply_to`].
    pub fn tdse_config(&self) -> Result<TdseConfig, DseError> {
        self.apply_to(TdseConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_through_parse() {
        let scenarios = [
            Scenario::Transient,
            Scenario::PermanentAging {
                mission_time_hours: 1234.5,
            },
            Scenario::CheckpointModes,
            Scenario::FpgaMitigation,
        ];
        for s in scenarios {
            assert_eq!(Scenario::parse(&s.name()).unwrap(), s);
        }
        assert_eq!(
            Scenario::parse("lifetime").unwrap(),
            Scenario::PermanentAging {
                mission_time_hours: DEFAULT_MISSION_HOURS
            }
        );
        assert_eq!(Scenario::parse(" transient ").unwrap(), Scenario::Transient);
    }

    #[test]
    fn unknown_axes_are_typed_errors() {
        for bad in [
            "",
            "warpdrive",
            "lifetime:",
            "lifetime:-5",
            "lifetime:NaN+",
            "chkmode",
        ] {
            match Scenario::parse(bad) {
                Err(DseError::Scenario { what }) => {
                    assert!(!what.is_empty(), "{bad:?} needs a message")
                }
                other => panic!("{bad:?} must be a scenario error, got {other:?}"),
            }
        }
    }

    #[test]
    fn transient_scenario_is_the_default_config() {
        let cfg = Scenario::Transient.tdse_config().unwrap();
        assert_eq!(cfg, TdseConfig::default());
        assert_eq!(Scenario::default(), Scenario::Transient);
        assert_eq!(
            Scenario::Transient.system_objectives(),
            ObjectiveSet::system_bi()
        );
    }

    #[test]
    fn scenarios_select_their_axes() {
        assert_eq!(
            Scenario::CheckpointModes.clr_catalog().len(),
            ClrConfig::checkpoint_mode_catalog().len()
        );
        assert_eq!(
            Scenario::FpgaMitigation.clr_catalog().len(),
            ClrConfig::fpga_mitigation_catalog().len()
        );
        let lifetime = Scenario::parse("lifetime:100").unwrap();
        assert_eq!(
            lifetime.reliability_model(),
            ReliabilityModel::PermanentAging {
                mission_time: 360_000.0
            }
        );
        assert_eq!(
            lifetime.system_objectives(),
            ObjectiveSet::system_lifetime()
        );
    }
}

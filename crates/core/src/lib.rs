//! CL(R)Early core: early-stage design space exploration for cross-layer
//! reliability-aware task mapping on heterogeneous MPSoCs.
//!
//! This crate implements the paper's contribution on top of the workspace
//! substrates:
//!
//! * [`tdse`] — **task-level DSE**: enumerate every
//!   `(implementation, DVFS mode, CLR configuration)` point of a task
//!   type, estimate its Table II metrics through the Markov-chain models
//!   of `clre-markov`, and Pareto-filter within each PE-type group.
//! * [`library`] — the resulting [`ImplLibrary`]: the full candidate space
//!   (fcCLR's search space) plus per-group Pareto-filtered index lists
//!   (pfCLR's pruned space).
//! * [`encoding`] — the GA genome of Fig. 5: an ordered sequence of
//!   per-task genes (task id, PE binding, candidate choice) with the
//!   schedule implicitly encoded in gene order, plus the paper's
//!   crossover/mutation operators.
//! * [`problem`] — the mapping problem as a `clre-moea` [`Problem`]:
//!   decode → schedule → Table III metrics → objective vector (+
//!   constraint violation from a [`QosSpec`]).
//! * [`methodology`] — the multi-stage DSE methodology of Fig. 4:
//!   [`ClrEarly`] runs `fcCLR`, `pfCLR`, the **proposed** two-stage
//!   pfCLR-seeded-fcCLR flow, per-layer single-degree-of-freedom runs and
//!   the merged *Agnostic* baseline.
//! * [`campaign`] — the declarative stage-graph [`CampaignPlan`] runner
//!   every method above compiles into: one execution path threading the
//!   executor, telemetry labels, and checkpoint/resume supervision
//!   through NSGA-II and SPEA2 stages alike.
//! * [`apps`] — the Sobel Edge Detection case study (Fig. 2(b)) and the
//!   evaluation platforms.
//! * [`resilience`] — the fault-tolerant DSE runtime: panic/error-isolated
//!   fitness evaluation with quarantine, periodic GA checkpoints with
//!   deterministic resume, and per-run [`RunHealth`] reports.
//! * [`cache`] — the content-addressed evaluation cache: two-level
//!   (task-analysis + genome-fitness) memoization with a persistent
//!   sidecar for warm-started resumes; hits replay the uncached
//!   computation bit-for-bit.
//! * [`remote`] — the `clre-eval v1` context grammar and [`DseVocab`]:
//!   what lets the `clre-exec-worker` subprocess backend reconstruct a
//!   digest-verified stage problem from one line of text and evaluate
//!   genomes bit-identically to the in-process path.
//!
//! # Examples
//!
//! End-to-end: build the Sobel application, run the proposed methodology
//! and inspect the Pareto front:
//!
//! ```
//! use clre::apps;
//! use clre::campaign::CampaignPlan;
//! use clre::methodology::{ClrEarly, StageBudget};
//!
//! # fn main() -> Result<(), clre::DseError> {
//! let platform = apps::paper_platform();
//! let graph = apps::sobel(&platform, 42)?;
//! let dse = ClrEarly::new(&graph, &platform)?;
//! let result = dse.run(&CampaignPlan::proposed(), &StageBudget::smoke_test())?;
//! assert!(!result.front().is_empty());
//! for point in result.front() {
//!     assert!(point.metrics.makespan > 0.0);
//!     assert!(point.metrics.error_prob >= 0.0);
//! }
//! # Ok(())
//! # }
//! ```
//!
//! [`ImplLibrary`]: library::ImplLibrary
//! [`Problem`]: clre_moea::Problem
//! [`QosSpec`]: clre_model::qos::QosSpec
//! [`ClrEarly`]: methodology::ClrEarly
//! [`RunHealth`]: resilience::RunHealth
//! [`CampaignPlan`]: campaign::CampaignPlan

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod cache;
pub mod campaign;
pub mod encoding;
mod error;
pub mod library;
pub mod methodology;
pub mod problem;
pub mod remote;
pub mod resilience;
pub mod scenario;
pub mod tdse;

pub use apps::AppSpec;
pub use cache::{CacheCounts, CachedFitness, EvalCache};
pub use campaign::{CampaignPlan, LibrarySource, StageAlgorithm, StagePlan};
pub use error::DseError;
pub use library::{CandidateImpl, ImplLibrary};
pub use methodology::{ClrEarly, FrontPoint, FrontResult, Layer, StageBudget};
pub use remote::{BackendChoice, DseVocab, RemoteContext};
pub use resilience::{
    AlgorithmTag, Checkpoint, CompletedStage, HealthHandle, QuarantineRecord, RunHealth,
    RunOutcome, RunSupervisor, SupervisorConfig,
};
pub use scenario::Scenario;
pub use tdse::{ReliabilityModel, TdseConfig};

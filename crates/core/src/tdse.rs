//! Task-level design space exploration (Section IV + Table IV).
//!
//! For every task type, [`build_library`] enumerates the Cartesian product
//! of base implementations × DVFS modes × CLR configurations, estimates
//! each point's Table II metrics — timing and functional reliability
//! through the Markov chains of `clre-markov`, power/thermal/aging through
//! `clre-profile` — and Pareto-filters the result within each PE-type
//! group.
//!
//! The exploration axes are controlled by [`TdseConfig`]: the CLR catalog
//! (full cross-layer vs a single layer, for the Agnostic baseline), the
//! DVFS policy, the Pareto objective set (Table IV's sets I–VI) and an
//! optional implicit-masking override (Fig. 6(b)).

use std::sync::Arc;

use clre_markov::clr::{
    analyze_robust, analyze_robust_chaos, ClrChainParams, RobustAnalysis, SolverFaultPlan,
};
use clre_model::qos::{ObjectiveSet, TaskMetrics};
use clre_model::reliability::ClrConfig;
use clre_model::{BaseImpl, DvfsMode, DvfsModeId, ImplId, PeType, Platform, TaskGraph, TaskTypeId};
use clre_profile::ProfileModel;

use crate::cache::EvalCache;
use crate::library::{CandidateImpl, ImplLibrary};
use crate::DseError;

/// Which DVFS modes task-level DSE explores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DvfsPolicy {
    /// Explore every mode of each PE type.
    #[default]
    All,
    /// Only the first (nominal) mode — used by the HW/SSW/ASW-only
    /// baselines so DVFS is not a degree of freedom.
    NominalOnly,
}

/// Configuration of one task-level DSE run.
#[derive(Debug, Clone)]
pub struct TdseConfig {
    /// The CLR configurations to explore per candidate.
    pub clr_catalog: Vec<ClrConfig>,
    /// Which DVFS modes to explore.
    pub dvfs_policy: DvfsPolicy,
    /// Objective set for the per-group Pareto filter.
    pub objectives: ObjectiveSet,
    /// If set, overrides every implementation's implicit SSW masking
    /// (the Fig. 6(b) sweep).
    pub implicit_masking_override: Option<f64>,
    /// The characterization substrate.
    pub profile: ProfileModel,
    /// Optional task-analysis cache consulted in front of every
    /// [`analyze_robust`] call. Shared (via [`Arc`]) across library
    /// builds so campaign stages and sweep cells hit instead of
    /// re-factoring the same LU systems.
    pub cache: Option<Arc<EvalCache>>,
    /// Optional deterministic solver-fault plan (chaos testing): analyses
    /// whose content digest the plan selects have their primary LU solve
    /// (and optionally the scaled retry) fail with an injected singular
    /// pivot, exercising the recovery ladder of
    /// [`clre_markov::clr::analyze_robust`]. Injected analyses bypass the
    /// cache so fault-free runs sharing the same sidecar never replay a
    /// degraded verdict.
    pub solver_faults: Option<SolverFaultPlan>,
}

impl PartialEq for TdseConfig {
    /// Two configs are equal when they describe the same exploration;
    /// the attached cache is an accelerator, not part of the
    /// configuration's identity, and compares by instance (`Arc`
    /// pointer).
    fn eq(&self, other: &Self) -> bool {
        self.clr_catalog == other.clr_catalog
            && self.dvfs_policy == other.dvfs_policy
            && self.objectives == other.objectives
            && self.implicit_masking_override == other.implicit_masking_override
            && self.profile == other.profile
            && self.solver_faults == other.solver_faults
            && match (&self.cache, &other.cache) {
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                (None, None) => true,
                _ => false,
            }
    }
}

impl Default for TdseConfig {
    fn default() -> Self {
        TdseConfig {
            clr_catalog: ClrConfig::catalog(),
            dvfs_policy: DvfsPolicy::All,
            objectives: ObjectiveSet::set_ii(),
            implicit_masking_override: None,
            profile: ProfileModel::default(),
            cache: None,
            solver_faults: None,
        }
    }
}

impl TdseConfig {
    /// Full cross-layer exploration with Table IV objective set II
    /// (average execution time + error probability).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the CLR catalog (builder style).
    ///
    /// # Errors
    ///
    /// Returns [`DseError::InvalidConfig`] if `catalog` is empty — an
    /// empty catalog would make every task type unmappable.
    ///
    /// # Examples
    ///
    /// ```
    /// use clre::tdse::TdseConfig;
    /// use clre_model::reliability::ClrConfig;
    ///
    /// let cfg = TdseConfig::new().with_clr_catalog(vec![ClrConfig::unprotected()])?;
    /// assert_eq!(cfg.clr_catalog.len(), 1);
    /// assert!(TdseConfig::new().with_clr_catalog(vec![]).is_err());
    /// # Ok::<(), clre::DseError>(())
    /// ```
    pub fn with_clr_catalog(mut self, catalog: Vec<ClrConfig>) -> Result<Self, DseError> {
        if catalog.is_empty() {
            return Err(DseError::InvalidConfig {
                what: "CLR catalog must be non-empty",
            });
        }
        self.clr_catalog = catalog;
        Ok(self)
    }

    /// Panicking predecessor of [`TdseConfig::with_clr_catalog`], kept as
    /// a migration shim.
    ///
    /// # Panics
    ///
    /// Panics if `catalog` is empty.
    #[deprecated(note = "use `with_clr_catalog`, which returns `Result` instead of panicking")]
    #[must_use]
    pub fn with_clr_catalog_or_panic(self, catalog: Vec<ClrConfig>) -> Self {
        self.with_clr_catalog(catalog)
            .expect("CLR catalog must be non-empty")
    }

    /// Attaches a shared evaluation cache (builder style): every
    /// [`analyze_robust`] call made while building libraries under this
    /// config first consults the cache's task-analysis level.
    #[must_use]
    pub fn with_eval_cache(mut self, cache: Arc<EvalCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Sets the DVFS policy (builder style).
    #[must_use]
    pub fn with_dvfs_policy(mut self, policy: DvfsPolicy) -> Self {
        self.dvfs_policy = policy;
        self
    }

    /// Sets the Pareto objective set (builder style).
    #[must_use]
    pub fn with_objectives(mut self, objectives: ObjectiveSet) -> Self {
        self.objectives = objectives;
        self
    }

    /// Overrides the implicit SSW masking of every implementation
    /// (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `m ∉ [0, 1]`.
    #[must_use]
    pub fn with_implicit_masking(mut self, m: f64) -> Self {
        assert!((0.0..=1.0).contains(&m), "masking must be within [0, 1]");
        self.implicit_masking_override = Some(m);
        self
    }

    /// Sets the profiling model (builder style).
    #[must_use]
    pub fn with_profile(mut self, profile: ProfileModel) -> Self {
        self.profile = profile;
        self
    }

    /// Attaches a deterministic solver-fault plan (builder style) — see
    /// [`TdseConfig::solver_faults`].
    #[must_use]
    pub fn with_solver_faults(mut self, plan: SolverFaultPlan) -> Self {
        self.solver_faults = Some(plan);
        self
    }
}

/// Health counters from one task-level DSE sweep — how many candidate
/// analyses ran and how many had to fall back to the degraded closed-form
/// solver (see [`clre_markov::clr::analyze_robust`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TdseHealth {
    /// Total candidate evaluations performed.
    pub candidates_evaluated: usize,
    /// Evaluations answered by the degraded closed-form fallback.
    pub degraded_analyses: usize,
    /// Evaluations where the plain solver failed and the scaled-pivoting
    /// retry was attempted; retries that succeed keep the analysis exact
    /// (they are *not* counted in [`TdseHealth::degraded_analyses`]).
    pub solver_retries: usize,
}

impl TdseHealth {
    /// Folds another sweep's counters into this one.
    pub fn merge(&mut self, other: &TdseHealth) {
        self.candidates_evaluated += other.candidates_evaluated;
        self.degraded_analyses += other.degraded_analyses;
        self.solver_retries += other.solver_retries;
    }
}

/// Estimates the Table II metrics of one fully configured candidate.
///
/// Steps:
/// 1. characterize `(cycles, capacitance)` at the DVFS mode,
/// 2. apply the HW/ASW time and power overhead factors,
/// 3. recompute temperature and Weibull `η` at the *protected* power —
///    TMR triples power, so it also heats and ages the PE faster,
/// 4. derate the raw SEU rate by the PE type's architectural masking
///    factor (`1 − AVF`),
/// 5. run the timing and functional Markov chains.
///
/// # Errors
///
/// Propagates [`DseError::Markov`] for degenerate chain parameters.
///
/// # Examples
///
/// ```
/// use clre::tdse::evaluate_candidate;
/// use clre_model::{reliability::ClrConfig, BaseImpl, DvfsMode, PeType, PeTypeId};
/// use clre_profile::ProfileModel;
///
/// # fn main() -> Result<(), clre::DseError> {
/// let pe = PeType::processor("p", 2.0, 0.3)
///     .with_dvfs_mode(DvfsMode::new("n", 1.2, 900.0e6));
/// let imp = BaseImpl::new("i", PeTypeId::new(0), 3.0e5, 1.0e-9);
/// let mode = &pe.dvfs_modes()[0];
/// let m = evaluate_candidate(&imp, &pe, mode, &ClrConfig::unprotected(),
///                            &ProfileModel::default(), None)?;
/// assert!(m.error_prob > 0.0 && m.error_prob < 0.1);
/// # Ok(())
/// # }
/// ```
pub fn evaluate_candidate(
    imp: &BaseImpl,
    pe_type: &PeType,
    mode: &DvfsMode,
    clr: &ClrConfig,
    profile: &ProfileModel,
    implicit_masking_override: Option<f64>,
) -> Result<TaskMetrics, DseError> {
    evaluate_candidate_robust(imp, pe_type, mode, clr, profile, implicit_masking_override)
        .map(|(metrics, _robust)| metrics)
}

/// [`evaluate_candidate`] exposing the full [`RobustAnalysis`] verdict —
/// whether the scaled-pivoting retry ran and whether the analysis had to
/// degrade to the closed-form fallback (the second tuple element).
///
/// # Errors
///
/// As for [`evaluate_candidate`].
pub fn evaluate_candidate_robust(
    imp: &BaseImpl,
    pe_type: &PeType,
    mode: &DvfsMode,
    clr: &ClrConfig,
    profile: &ProfileModel,
    implicit_masking_override: Option<f64>,
) -> Result<(TaskMetrics, RobustAnalysis), DseError> {
    evaluate_candidate_cached(
        imp,
        pe_type,
        mode,
        clr,
        profile,
        implicit_masking_override,
        None,
    )
}

/// [`evaluate_candidate_robust`] with an optional task-analysis cache in
/// front of the Markov solve. On a hit the stored [`RobustAnalysis`] —
/// including its `degraded`/`retried` flags — replays the uncached
/// computation bit-for-bit; the closed-form power/thermal/aging estimates
/// are cheap and always recomputed.
///
/// # Errors
///
/// As for [`evaluate_candidate`]. Failed analyses are never cached.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_candidate_cached(
    imp: &BaseImpl,
    pe_type: &PeType,
    mode: &DvfsMode,
    clr: &ClrConfig,
    profile: &ProfileModel,
    implicit_masking_override: Option<f64>,
    cache: Option<&EvalCache>,
) -> Result<(TaskMetrics, RobustAnalysis), DseError> {
    evaluate_candidate_chaos(
        imp,
        pe_type,
        mode,
        clr,
        profile,
        implicit_masking_override,
        cache,
        None,
    )
}

/// [`evaluate_candidate_cached`] under an optional deterministic
/// [`SolverFaultPlan`]. Analyses the plan selects (by content digest) run
/// through [`analyze_robust_chaos`] and bypass the cache in both
/// directions: an injected verdict is never stored, and a clean cached
/// verdict never masks the injection. Unselected analyses take the normal
/// cached path, so a zero-rate plan is bit-identical to no plan.
///
/// # Errors
///
/// As for [`evaluate_candidate`].
#[allow(clippy::too_many_arguments)]
pub fn evaluate_candidate_chaos(
    imp: &BaseImpl,
    pe_type: &PeType,
    mode: &DvfsMode,
    clr: &ClrConfig,
    profile: &ProfileModel,
    implicit_masking_override: Option<f64>,
    cache: Option<&EvalCache>,
    solver_faults: Option<&SolverFaultPlan>,
) -> Result<(TaskMetrics, RobustAnalysis), DseError> {
    let op = profile.operating_point(imp.cycles(), imp.capacitance(), mode);
    let hw = clr.hw.params();
    let asw = clr.asw.params();
    let power = op.power * hw.power_factor * asw.power_factor;
    let temp = profile.steady_temp(power);
    let eta = profile.eta_at(temp);
    let params = chain_params(imp, pe_type, mode, clr, profile, implicit_masking_override);
    let robust = match solver_faults {
        Some(plan) if plan.primary_fails(params.digest()) => analyze_robust_chaos(&params, plan)?,
        _ => match cache {
            Some(cache) => match cache.analysis(&params) {
                Some(hit) => hit,
                None => cache.insert_analysis(&params, analyze_robust(&params)?),
            },
            None => analyze_robust(&params)?,
        },
    };
    let r = robust.reliability;
    Ok((
        TaskMetrics {
            min_exec_time: r.min_exec_time,
            avg_exec_time: r.avg_exec_time,
            error_prob: r.error_prob,
            eta,
            power,
            energy: r.avg_exec_time * power,
            peak_temp: temp,
        },
        robust,
    ))
}

/// The Markov-chain parameters of a fully configured candidate — the
/// exact inputs [`evaluate_candidate`] analyzes, exposed so that the
/// Monte-Carlo validator (`clre-sim`) can inject faults against the same
/// semantics (C-INTERMEDIATE).
pub fn chain_params(
    imp: &BaseImpl,
    pe_type: &PeType,
    mode: &DvfsMode,
    clr: &ClrConfig,
    profile: &ProfileModel,
    implicit_masking_override: Option<f64>,
) -> ClrChainParams {
    let op = profile.operating_point(imp.cycles(), imp.capacitance(), mode);
    let hw = clr.hw.params();
    let ssw = clr.ssw.params();
    let asw = clr.asw.params();
    let exec_time = op.exec_time * hw.time_factor * asw.time_factor;
    // Architectural masking lowers the *effective* SEU rate on this PE type.
    let seu_rate = op.seu_rate * (1.0 - pe_type.masking_factor());
    let m_impl = implicit_masking_override.unwrap_or(imp.implicit_ssw_masking());
    let intervals = ssw.intervals.max(1);
    ClrChainParams {
        exec_time,
        seu_rate,
        m_hw: hw.masking,
        m_impl_ssw: m_impl,
        cov_det: ssw.detection_coverage,
        m_tol: ssw.tolerance_masking,
        m_asw: asw.masking,
        intervals,
        t_det: ssw.detection_overhead * exec_time / intervals as f64,
        t_tol: ssw.tolerance_overhead * exec_time,
        t_chk: ssw.checkpoint_overhead * exec_time,
        p_chk_err: ssw.checkpoint_error_prob,
    }
}

/// Memory footprint of an implementation under a CLR configuration:
/// spatial and information redundancy multiply the base footprint, and
/// checkpointing reserves a 25% state buffer.
///
/// # Examples
///
/// ```
/// use clre::tdse::candidate_memory;
/// use clre_model::{reliability::ClrConfig, BaseImpl, HwMethod, PeTypeId, SswMethod, AswMethod};
///
/// let imp = BaseImpl::new("i", PeTypeId::new(0), 1e5, 1e-9).with_memory_bytes(1000.0);
/// let bare = candidate_memory(&imp, &ClrConfig::unprotected());
/// let tmr = candidate_memory(
///     &imp,
///     &ClrConfig::new(HwMethod::Tmr, SswMethod::Checkpoint { intervals: 2 }, AswMethod::None),
/// );
/// assert_eq!(bare, 1000.0);
/// assert!(tmr > 3.0 * bare);
/// ```
pub fn candidate_memory(imp: &BaseImpl, clr: &ClrConfig) -> f64 {
    let hw = clr.hw.params();
    let ssw = clr.ssw.params();
    let asw = clr.asw.params();
    let checkpoint_buffer = if ssw.intervals > 1 { 1.25 } else { 1.0 };
    imp.memory_bytes() * hw.mem_factor * asw.mem_factor * checkpoint_buffer
}

/// Enumerates and evaluates all candidates of one task type.
///
/// # Errors
///
/// Propagates evaluation failures.
pub fn candidates_for_type(
    graph: &TaskGraph,
    platform: &Platform,
    ty: TaskTypeId,
    config: &TdseConfig,
) -> Result<Vec<CandidateImpl>, DseError> {
    let mut health = TdseHealth::default();
    candidates_for_type_with_health(graph, platform, ty, config, &mut health)
}

/// [`candidates_for_type`] that also accumulates degraded-analysis
/// counters into `health`.
///
/// # Errors
///
/// As for [`candidates_for_type`].
pub fn candidates_for_type_with_health(
    graph: &TaskGraph,
    platform: &Platform,
    ty: TaskTypeId,
    config: &TdseConfig,
    health: &mut TdseHealth,
) -> Result<Vec<CandidateImpl>, DseError> {
    let task_type = graph.task_type(ty).ok_or(DseError::InvalidConfig {
        what: "task type id out of range",
    })?;
    let mut out = Vec::new();
    for (impl_idx, imp) in task_type.impls().iter().enumerate() {
        let Some(pe_type) = platform.pe_type(imp.pe_type()) else {
            // Implementation targets a PE type absent from this platform:
            // simply not mappable here.
            continue;
        };
        let modes: &[DvfsMode] = match config.dvfs_policy {
            DvfsPolicy::All => pe_type.dvfs_modes(),
            DvfsPolicy::NominalOnly => &pe_type.dvfs_modes()[..1],
        };
        for (mode_idx, mode) in modes.iter().enumerate() {
            for clr in &config.clr_catalog {
                let (metrics, robust) = evaluate_candidate_chaos(
                    imp,
                    pe_type,
                    mode,
                    clr,
                    &config.profile,
                    config.implicit_masking_override,
                    config.cache.as_deref(),
                    config.solver_faults.as_ref(),
                )?;
                health.candidates_evaluated += 1;
                health.degraded_analyses += usize::from(robust.degraded);
                health.solver_retries += usize::from(robust.retried);
                out.push(CandidateImpl {
                    impl_id: ImplId::new(impl_idx as u32),
                    pe_type: imp.pe_type(),
                    dvfs: DvfsModeId::new(mode_idx as u32),
                    clr: *clr,
                    metrics,
                    memory_bytes: candidate_memory(imp, clr),
                });
            }
        }
    }
    Ok(out)
}

/// Runs task-level DSE for every task type of `graph` and assembles the
/// [`ImplLibrary`].
///
/// # Errors
///
/// * [`DseError::EmptyChoiceGroup`] if some task type ends up unmappable.
/// * Evaluation failures from [`evaluate_candidate`].
pub fn build_library(
    graph: &TaskGraph,
    platform: &Platform,
    config: &TdseConfig,
) -> Result<ImplLibrary, DseError> {
    build_library_with_health(graph, platform, config).map(|(lib, _)| lib)
}

/// [`build_library`] that also reports how many candidate analyses ran
/// and how many used the degraded closed-form fallback.
///
/// # Errors
///
/// As for [`build_library`].
pub fn build_library_with_health(
    graph: &TaskGraph,
    platform: &Platform,
    config: &TdseConfig,
) -> Result<(ImplLibrary, TdseHealth), DseError> {
    let mut health = TdseHealth::default();
    let mut all = Vec::with_capacity(graph.task_types().len());
    for ty in 0..graph.task_types().len() {
        all.push(candidates_for_type_with_health(
            graph,
            platform,
            TaskTypeId::new(ty as u32),
            config,
            &mut health,
        )?);
    }
    let lib = ImplLibrary::from_candidates(all, platform.pe_types().len(), &config.objectives)?;
    lib.validate_for(graph)?;
    Ok((lib, health))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clre_model::platform::paper_platform;
    use clre_model::reliability::{AswMethod, HwMethod, SswMethod};
    use clre_model::TaskType;
    use clre_profile::SyntheticCharacterizer;

    fn test_graph(platform: &Platform) -> TaskGraph {
        let ch = SyntheticCharacterizer::new(5);
        let mut ty = TaskType::new("t");
        for imp in ch.impls_for_type(0, platform) {
            ty = ty.with_impl(imp);
        }
        TaskGraph::builder("g", 1.0e-2)
            .task_type(ty)
            .task("a", "t")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn candidate_counts_match_cartesian_product() {
        let p = paper_platform();
        let g = test_graph(&p);
        let cfg = TdseConfig::default();
        let cands = candidates_for_type(&g, &p, TaskTypeId::new(0), &cfg).unwrap();
        // 2 processor impls × 3 modes × 80 + 1 accel impl × 1 mode × 80.
        assert_eq!(cands.len(), (2 * 3 + 1) * 80);
    }

    #[test]
    fn cached_library_build_is_bit_identical() {
        let p = paper_platform();
        let g = test_graph(&p);
        let cold = build_library_with_health(&g, &p, &TdseConfig::default()).unwrap();

        let cache = EvalCache::shared();
        let cfg = TdseConfig::default().with_eval_cache(Arc::clone(&cache));
        let first = build_library_with_health(&g, &p, &cfg).unwrap();
        let after_first = cache.analysis_counts();
        assert!(after_first.inserts > 0, "cold build populates the cache");

        let warm = build_library_with_health(&g, &p, &cfg).unwrap();
        let after_warm = cache.analysis_counts();
        assert_eq!(
            after_warm.inserts, after_first.inserts,
            "warm build inserts nothing new"
        );
        assert!(after_warm.hits > after_first.hits);

        // Cache off, cache cold, cache warm: all bit-identical — including
        // the degraded/retried health counters replayed from stored flags.
        assert_eq!(cold.0, first.0);
        assert_eq!(first.0, warm.0);
        assert_eq!(cold.1, first.1);
        assert_eq!(first.1, warm.1);
    }

    #[test]
    fn solver_fault_plan_degrades_deterministically() {
        let p = paper_platform();
        let g = test_graph(&p);
        let clean = build_library_with_health(&g, &p, &TdseConfig::default()).unwrap();

        // A zero-rate plan is bit-identical to no plan at all.
        let zero = TdseConfig::default().with_solver_faults(SolverFaultPlan::new(7, 0, 0));
        let z = build_library_with_health(&g, &p, &zero).unwrap();
        assert_eq!(clean.0, z.0);
        assert_eq!(clean.1, z.1);

        // Every primary solve failing drives every analysis through the
        // scaled retry; the retry succeeds, so nothing degrades.
        let storm = TdseConfig::default().with_solver_faults(SolverFaultPlan::new(7, 1_000_000, 0));
        let s = build_library_with_health(&g, &p, &storm).unwrap();
        assert_eq!(s.1.solver_retries, s.1.candidates_evaluated);
        assert_eq!(s.1.degraded_analyses, 0);

        // Same seed reproduces the same library and counters bit-for-bit;
        // injected analyses never leak into an attached cache.
        let cache = EvalCache::shared();
        let storm_cached = TdseConfig::default()
            .with_solver_faults(SolverFaultPlan::new(7, 1_000_000, 0))
            .with_eval_cache(Arc::clone(&cache));
        let s2 = build_library_with_health(&g, &p, &storm_cached).unwrap();
        assert_eq!(s.0, s2.0);
        assert_eq!(s.1, s2.1);
        assert_eq!(cache.analysis_counts().inserts, 0);
    }

    #[test]
    fn empty_catalog_is_a_typed_error() {
        let err = TdseConfig::default().with_clr_catalog(vec![]).unwrap_err();
        assert!(matches!(err, DseError::InvalidConfig { .. }));
    }

    #[test]
    fn nominal_only_prunes_modes() {
        let p = paper_platform();
        let g = test_graph(&p);
        let cfg = TdseConfig::default().with_dvfs_policy(DvfsPolicy::NominalOnly);
        let cands = candidates_for_type(&g, &p, TaskTypeId::new(0), &cfg).unwrap();
        assert_eq!(cands.len(), 3 * 80);
    }

    #[test]
    fn protection_trades_error_for_time() {
        let p = paper_platform();
        let pe = p.pe_type(clre_model::PeTypeId::new(0)).unwrap();
        let imp = BaseImpl::new("i", clre_model::PeTypeId::new(0), 3.0e5, 1.0e-9);
        let mode = &pe.dvfs_modes()[0];
        let profile = ProfileModel::default();
        let bare =
            evaluate_candidate(&imp, pe, mode, &ClrConfig::unprotected(), &profile, None).unwrap();
        let tmr = evaluate_candidate(
            &imp,
            pe,
            mode,
            &ClrConfig::new(HwMethod::Tmr, SswMethod::None, AswMethod::None),
            &profile,
            None,
        )
        .unwrap();
        assert!(tmr.error_prob < 0.1 * bare.error_prob);
        assert!(tmr.power > 2.5 * bare.power);
        // TMR heats the PE: it ages faster.
        assert!(tmr.eta < bare.eta);
        assert!(tmr.peak_temp > bare.peak_temp);

        let chk = evaluate_candidate(
            &imp,
            pe,
            mode,
            &ClrConfig::new(
                HwMethod::None,
                SswMethod::Checkpoint { intervals: 3 },
                AswMethod::None,
            ),
            &profile,
            None,
        )
        .unwrap();
        assert!(chk.error_prob < bare.error_prob);
        assert!(chk.avg_exec_time > bare.avg_exec_time);
        assert!(chk.min_exec_time > bare.min_exec_time);
    }

    #[test]
    fn architectural_masking_lowers_error() {
        let p = paper_platform();
        let imp = BaseImpl::new("i", clre_model::PeTypeId::new(0), 3.0e5, 1.0e-9);
        let profile = ProfileModel::default();
        let lo = p.pe_type_by_name("proc-lomask").unwrap();
        let hi = p.pe_type_by_name("proc-himask").unwrap();
        let m_lo = evaluate_candidate(
            &imp,
            p.pe_type(lo).unwrap(),
            &p.pe_type(lo).unwrap().dvfs_modes()[0],
            &ClrConfig::unprotected(),
            &profile,
            None,
        )
        .unwrap();
        let m_hi = evaluate_candidate(
            &imp,
            p.pe_type(hi).unwrap(),
            &p.pe_type(hi).unwrap().dvfs_modes()[0],
            &ClrConfig::unprotected(),
            &profile,
            None,
        )
        .unwrap();
        assert!(m_hi.error_prob < m_lo.error_prob);
    }

    #[test]
    fn implicit_masking_override_applies() {
        let p = paper_platform();
        let g = test_graph(&p);
        let base = TdseConfig::default();
        let masked = TdseConfig::default().with_implicit_masking(0.2);
        let c0 = candidates_for_type(&g, &p, TaskTypeId::new(0), &base).unwrap();
        let c1 = candidates_for_type(&g, &p, TaskTypeId::new(0), &masked).unwrap();
        // Same shape, strictly lower (or equal at zero) error everywhere.
        assert_eq!(c0.len(), c1.len());
        let better = c0
            .iter()
            .zip(&c1)
            .filter(|(a, b)| b.metrics.error_prob < a.metrics.error_prob)
            .count();
        assert!(better > c0.len() / 2);
    }

    #[test]
    fn library_builds_and_prunes() {
        let p = paper_platform();
        let g = test_graph(&p);
        let lib = build_library(&g, &p, &TdseConfig::default()).unwrap();
        let ty = TaskTypeId::new(0);
        assert!(lib.pareto_count(ty) >= 3); // at least one per PE type
        assert!(lib.pareto_count(ty) < lib.full_count(ty));
        assert_eq!(lib.full_count(ty), (2 * 3 + 1) * 80);
    }

    #[test]
    fn single_objective_library_is_one_per_group() {
        let p = paper_platform();
        let g = test_graph(&p);
        let cfg = TdseConfig::default().with_objectives(ObjectiveSet::set_i());
        let lib = build_library(&g, &p, &cfg).unwrap();
        assert_eq!(lib.pareto_count(TaskTypeId::new(0)), 3);
    }

    #[test]
    fn richer_objectives_grow_the_front() {
        let p = paper_platform();
        let g = test_graph(&p);
        let counts: Vec<usize> = [
            ObjectiveSet::set_i(),
            ObjectiveSet::set_ii(),
            ObjectiveSet::set_iii(),
        ]
        .into_iter()
        .map(|objs| {
            build_library(&g, &p, &TdseConfig::default().with_objectives(objs))
                .unwrap()
                .pareto_count(TaskTypeId::new(0))
        })
        .collect();
        assert!(counts[0] < counts[1], "set II must beat set I: {counts:?}");
        assert!(
            counts[1] <= counts[2],
            "set III at least set II: {counts:?}"
        );
    }

    #[test]
    fn incompatible_impls_skipped() {
        // An impl that targets a PE type not present in the platform.
        let p = paper_platform();
        let ty = TaskType::new("t")
            .with_impl(BaseImpl::new("ok", clre_model::PeTypeId::new(0), 1e5, 1e-9))
            .with_impl(BaseImpl::new(
                "alien",
                clre_model::PeTypeId::new(9),
                1e5,
                1e-9,
            ));
        let g = TaskGraph::builder("g", 1.0)
            .task_type(ty)
            .task("a", "t")
            .unwrap()
            .build()
            .unwrap();
        let cands =
            candidates_for_type(&g, &p, TaskTypeId::new(0), &TdseConfig::default()).unwrap();
        // Only the compatible impl contributes: 3 modes × 80.
        assert_eq!(cands.len(), 240);
    }
}

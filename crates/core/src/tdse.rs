//! Task-level design space exploration (Section IV + Table IV).
//!
//! For every task type, [`build_library`] enumerates the Cartesian product
//! of base implementations × DVFS modes × CLR configurations, estimates
//! each point's Table II metrics — timing and functional reliability
//! through the Markov chains of `clre-markov`, power/thermal/aging through
//! `clre-profile` — and Pareto-filters the result within each PE-type
//! group.
//!
//! The exploration axes are controlled by [`TdseConfig`]: the CLR catalog
//! (full cross-layer vs a single layer, for the Agnostic baseline), the
//! DVFS policy, the Pareto objective set (Table IV's sets I–VI) and an
//! optional implicit-masking override (Fig. 6(b)).

use std::sync::Arc;

use clre_markov::clr::{
    analyze_robust_chaos_spec, analyze_robust_spec, ClrChainParams, ClrChainSpec, RobustAnalysis,
    SolverFaultPlan,
};
use clre_model::platform::PeKind;
use clre_model::qos::{ObjectiveSet, TaskMetrics};
use clre_model::reliability::ClrConfig;
use clre_model::{BaseImpl, DvfsMode, DvfsModeId, ImplId, PeType, Platform, TaskGraph, TaskTypeId};
use clre_profile::ProfileModel;

use crate::cache::EvalCache;
use crate::library::{CandidateImpl, ImplLibrary};
use crate::DseError;

/// Which DVFS modes task-level DSE explores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DvfsPolicy {
    /// Explore every mode of each PE type.
    #[default]
    All,
    /// Only the first (nominal) mode — used by the HW/SSW/ASW-only
    /// baselines so DVFS is not a degree of freedom.
    NominalOnly,
}

/// Which fault mechanism task-level DSE folds into the Markov chains.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ReliabilityModel {
    /// Transient SEUs only — the single-mechanism model of the original
    /// pipeline. Chain specs carry
    /// [`clre_markov::clr::FaultMechanism::Transient`], whose digest
    /// equals the raw parameter digest, so every cache line, chaos-plan
    /// decision and Pareto front is bit-identical to the pre-spec code.
    #[default]
    Transient,
    /// Transient SEUs compete with permanent/aging faults: each
    /// candidate folds its PE type's Weibull hazard
    /// `h(t) = (β/η)·(t/η)^(β−1)` into the chain as a competing
    /// per-second failure rate, with shape `β` from
    /// [`PeType::weibull_beta`] and scale `η` evaluated at the
    /// candidate's *protected* steady-state temperature — TMR heats the
    /// PE, so it also raises the permanent hazard it must then mask.
    ///
    /// Under the default [`ProfileModel`] (η ≈ 10 years) the hazard is
    /// a small correction to per-execution error probability and the
    /// lifetime signal mostly flows through the `Mttf` objective;
    /// accelerated-aging profiles (small `aging_a`) make the permanent
    /// arm dominate, which the tests exploit.
    PermanentAging {
        /// Mission time `t` (seconds) at which the hazard is evaluated.
        mission_time: f64,
    },
}

/// Configuration of one task-level DSE run.
#[derive(Debug, Clone)]
pub struct TdseConfig {
    /// The CLR configurations to explore per candidate.
    pub clr_catalog: Vec<ClrConfig>,
    /// Which DVFS modes to explore.
    pub dvfs_policy: DvfsPolicy,
    /// Objective set for the per-group Pareto filter.
    pub objectives: ObjectiveSet,
    /// If set, overrides every implementation's implicit SSW masking
    /// (the Fig. 6(b) sweep).
    pub implicit_masking_override: Option<f64>,
    /// The characterization substrate.
    pub profile: ProfileModel,
    /// Optional task-analysis cache consulted in front of every
    /// [`analyze_robust_spec`] call. Shared (via [`Arc`]) across library
    /// builds so campaign stages and sweep cells hit instead of
    /// re-factoring the same LU systems.
    pub cache: Option<Arc<EvalCache>>,
    /// Optional deterministic solver-fault plan (chaos testing): analyses
    /// whose content digest the plan selects have their primary LU solve
    /// (and optionally the scaled retry) fail with an injected singular
    /// pivot, exercising the recovery ladder of
    /// [`clre_markov::clr::analyze_robust`]. Injected analyses bypass the
    /// cache so fault-free runs sharing the same sidecar never replay a
    /// degraded verdict.
    pub solver_faults: Option<SolverFaultPlan>,
    /// Which fault mechanism every candidate's Markov chains model.
    pub reliability_model: ReliabilityModel,
}

impl PartialEq for TdseConfig {
    /// Two configs are equal when they describe the same exploration;
    /// the attached cache is an accelerator, not part of the
    /// configuration's identity, and compares by instance (`Arc`
    /// pointer).
    fn eq(&self, other: &Self) -> bool {
        self.clr_catalog == other.clr_catalog
            && self.dvfs_policy == other.dvfs_policy
            && self.objectives == other.objectives
            && self.implicit_masking_override == other.implicit_masking_override
            && self.profile == other.profile
            && self.solver_faults == other.solver_faults
            && self.reliability_model == other.reliability_model
            && match (&self.cache, &other.cache) {
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                (None, None) => true,
                _ => false,
            }
    }
}

impl Default for TdseConfig {
    fn default() -> Self {
        TdseConfig {
            clr_catalog: ClrConfig::catalog(),
            dvfs_policy: DvfsPolicy::All,
            objectives: ObjectiveSet::set_ii(),
            implicit_masking_override: None,
            profile: ProfileModel::default(),
            cache: None,
            solver_faults: None,
            reliability_model: ReliabilityModel::Transient,
        }
    }
}

impl TdseConfig {
    /// Full cross-layer exploration with Table IV objective set II
    /// (average execution time + error probability).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the CLR catalog (builder style).
    ///
    /// # Errors
    ///
    /// Returns [`DseError::InvalidConfig`] if `catalog` is empty — an
    /// empty catalog would make every task type unmappable.
    ///
    /// # Examples
    ///
    /// ```
    /// use clre::tdse::TdseConfig;
    /// use clre_model::reliability::ClrConfig;
    ///
    /// let cfg = TdseConfig::new().with_clr_catalog(vec![ClrConfig::unprotected()])?;
    /// assert_eq!(cfg.clr_catalog.len(), 1);
    /// assert!(TdseConfig::new().with_clr_catalog(vec![]).is_err());
    /// # Ok::<(), clre::DseError>(())
    /// ```
    pub fn with_clr_catalog(mut self, catalog: Vec<ClrConfig>) -> Result<Self, DseError> {
        if catalog.is_empty() {
            return Err(DseError::InvalidConfig {
                what: "CLR catalog must be non-empty",
            });
        }
        self.clr_catalog = catalog;
        Ok(self)
    }

    /// Panicking predecessor of [`TdseConfig::with_clr_catalog`], kept as
    /// a migration shim.
    ///
    /// # Panics
    ///
    /// Panics if `catalog` is empty.
    #[deprecated(note = "use `with_clr_catalog`, which returns `Result` instead of panicking")]
    #[must_use]
    pub fn with_clr_catalog_or_panic(self, catalog: Vec<ClrConfig>) -> Self {
        self.with_clr_catalog(catalog)
            .expect("CLR catalog must be non-empty")
    }

    /// Attaches a shared evaluation cache (builder style): every
    /// [`analyze_robust_spec`] call made while building libraries under this
    /// config first consults the cache's task-analysis level.
    #[must_use]
    pub fn with_eval_cache(mut self, cache: Arc<EvalCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Sets the DVFS policy (builder style).
    #[must_use]
    pub fn with_dvfs_policy(mut self, policy: DvfsPolicy) -> Self {
        self.dvfs_policy = policy;
        self
    }

    /// Sets the Pareto objective set (builder style).
    #[must_use]
    pub fn with_objectives(mut self, objectives: ObjectiveSet) -> Self {
        self.objectives = objectives;
        self
    }

    /// Overrides the implicit SSW masking of every implementation
    /// (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `m ∉ [0, 1]`.
    #[must_use]
    pub fn with_implicit_masking(mut self, m: f64) -> Self {
        assert!((0.0..=1.0).contains(&m), "masking must be within [0, 1]");
        self.implicit_masking_override = Some(m);
        self
    }

    /// Sets the profiling model (builder style).
    #[must_use]
    pub fn with_profile(mut self, profile: ProfileModel) -> Self {
        self.profile = profile;
        self
    }

    /// Attaches a deterministic solver-fault plan (builder style) — see
    /// [`TdseConfig::solver_faults`].
    #[must_use]
    pub fn with_solver_faults(mut self, plan: SolverFaultPlan) -> Self {
        self.solver_faults = Some(plan);
        self
    }

    /// Sets the fault-mechanism model (builder style) — see
    /// [`ReliabilityModel`].
    #[must_use]
    pub fn with_reliability_model(mut self, model: ReliabilityModel) -> Self {
        self.reliability_model = model;
        self
    }
}

/// Health counters from one task-level DSE sweep — how many candidate
/// analyses ran and how many had to fall back to the degraded closed-form
/// solver (see [`clre_markov::clr::analyze_robust`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TdseHealth {
    /// Total candidate evaluations performed.
    pub candidates_evaluated: usize,
    /// Evaluations answered by the degraded closed-form fallback.
    pub degraded_analyses: usize,
    /// Evaluations where the plain solver failed and the scaled-pivoting
    /// retry was attempted; retries that succeed keep the analysis exact
    /// (they are *not* counted in [`TdseHealth::degraded_analyses`]).
    pub solver_retries: usize,
}

impl TdseHealth {
    /// Folds another sweep's counters into this one.
    pub fn merge(&mut self, other: &TdseHealth) {
        self.candidates_evaluated += other.candidates_evaluated;
        self.degraded_analyses += other.degraded_analyses;
        self.solver_retries += other.solver_retries;
    }
}

/// Estimates the Table II metrics of one fully configured candidate.
///
/// Steps:
/// 1. characterize `(cycles, capacitance)` at the DVFS mode,
/// 2. apply the HW/ASW time and power overhead factors,
/// 3. recompute temperature and Weibull `η` at the *protected* power —
///    TMR triples power, so it also heats and ages the PE faster,
/// 4. derate the raw SEU rate by the PE type's architectural masking
///    factor (`1 − AVF`),
/// 5. run the timing and functional Markov chains.
///
/// # Errors
///
/// Propagates [`DseError::Markov`] for degenerate chain parameters.
///
/// # Examples
///
/// ```
/// use clre::tdse::evaluate_candidate;
/// use clre_model::{reliability::ClrConfig, BaseImpl, DvfsMode, PeType, PeTypeId};
/// use clre_profile::ProfileModel;
///
/// # fn main() -> Result<(), clre::DseError> {
/// let pe = PeType::processor("p", 2.0, 0.3)
///     .with_dvfs_mode(DvfsMode::new("n", 1.2, 900.0e6));
/// let imp = BaseImpl::new("i", PeTypeId::new(0), 3.0e5, 1.0e-9);
/// let mode = &pe.dvfs_modes()[0];
/// let m = evaluate_candidate(&imp, &pe, mode, &ClrConfig::unprotected(),
///                            &ProfileModel::default(), None)?;
/// assert!(m.error_prob > 0.0 && m.error_prob < 0.1);
/// # Ok(())
/// # }
/// ```
pub fn evaluate_candidate(
    imp: &BaseImpl,
    pe_type: &PeType,
    mode: &DvfsMode,
    clr: &ClrConfig,
    profile: &ProfileModel,
    implicit_masking_override: Option<f64>,
) -> Result<TaskMetrics, DseError> {
    evaluate_candidate_robust(imp, pe_type, mode, clr, profile, implicit_masking_override)
        .map(|(metrics, _robust)| metrics)
}

/// [`evaluate_candidate`] exposing the full [`RobustAnalysis`] verdict —
/// whether the scaled-pivoting retry ran and whether the analysis had to
/// degrade to the closed-form fallback (the second tuple element).
///
/// # Errors
///
/// As for [`evaluate_candidate`].
pub fn evaluate_candidate_robust(
    imp: &BaseImpl,
    pe_type: &PeType,
    mode: &DvfsMode,
    clr: &ClrConfig,
    profile: &ProfileModel,
    implicit_masking_override: Option<f64>,
) -> Result<(TaskMetrics, RobustAnalysis), DseError> {
    evaluate_candidate_cached(
        imp,
        pe_type,
        mode,
        clr,
        profile,
        implicit_masking_override,
        None,
    )
}

/// [`evaluate_candidate_robust`] with an optional task-analysis cache in
/// front of the Markov solve. On a hit the stored [`RobustAnalysis`] —
/// including its `degraded`/`retried` flags — replays the uncached
/// computation bit-for-bit; the closed-form power/thermal/aging estimates
/// are cheap and always recomputed.
///
/// # Errors
///
/// As for [`evaluate_candidate`]. Failed analyses are never cached.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_candidate_cached(
    imp: &BaseImpl,
    pe_type: &PeType,
    mode: &DvfsMode,
    clr: &ClrConfig,
    profile: &ProfileModel,
    implicit_masking_override: Option<f64>,
    cache: Option<&EvalCache>,
) -> Result<(TaskMetrics, RobustAnalysis), DseError> {
    evaluate_candidate_chaos(
        imp,
        pe_type,
        mode,
        clr,
        profile,
        implicit_masking_override,
        cache,
        None,
        ReliabilityModel::Transient,
    )
}

/// [`evaluate_candidate_cached`] under an optional deterministic
/// [`SolverFaultPlan`] and an explicit [`ReliabilityModel`]. Analyses the
/// plan selects (by spec digest) run through [`analyze_robust_chaos_spec`]
/// and bypass the cache in both directions: an injected verdict is never
/// stored, and a clean cached verdict never masks the injection.
/// Unselected analyses take the normal cached path, so a zero-rate plan is
/// bit-identical to no plan.
///
/// # Errors
///
/// As for [`evaluate_candidate`].
#[allow(clippy::too_many_arguments)]
pub fn evaluate_candidate_chaos(
    imp: &BaseImpl,
    pe_type: &PeType,
    mode: &DvfsMode,
    clr: &ClrConfig,
    profile: &ProfileModel,
    implicit_masking_override: Option<f64>,
    cache: Option<&EvalCache>,
    solver_faults: Option<&SolverFaultPlan>,
    model: ReliabilityModel,
) -> Result<(TaskMetrics, RobustAnalysis), DseError> {
    let op = profile.operating_point(imp.cycles(), imp.capacitance(), mode);
    let hw = clr.hw.params();
    let asw = clr.asw.params();
    let power = op.power * hw.power_factor * asw.power_factor;
    let temp = profile.steady_temp(power);
    let eta = profile.eta_at(temp);
    let spec = chain_spec(
        imp,
        pe_type,
        mode,
        clr,
        profile,
        implicit_masking_override,
        model,
    );
    let robust = match solver_faults {
        Some(plan) if plan.primary_fails(spec.digest()) => analyze_robust_chaos_spec(&spec, plan)?,
        _ => match cache {
            Some(cache) => match cache.analysis_spec(&spec) {
                Some(hit) => hit,
                None => cache.insert_analysis_spec(&spec, analyze_robust_spec(&spec)?),
            },
            None => analyze_robust_spec(&spec)?,
        },
    };
    let r = robust.reliability;
    Ok((
        TaskMetrics {
            min_exec_time: r.min_exec_time,
            avg_exec_time: r.avg_exec_time,
            error_prob: r.error_prob,
            eta,
            power,
            energy: r.avg_exec_time * power,
            peak_temp: temp,
        },
        robust,
    ))
}

/// The Markov-chain parameters of a fully configured candidate — the
/// exact inputs [`evaluate_candidate`] analyzes, exposed so that the
/// Monte-Carlo validator (`clre-sim`) can inject faults against the same
/// semantics (C-INTERMEDIATE).
pub fn chain_params(
    imp: &BaseImpl,
    pe_type: &PeType,
    mode: &DvfsMode,
    clr: &ClrConfig,
    profile: &ProfileModel,
    implicit_masking_override: Option<f64>,
) -> ClrChainParams {
    let op = profile.operating_point(imp.cycles(), imp.capacitance(), mode);
    let hw = clr.hw.params();
    let ssw = clr.ssw.params();
    let asw = clr.asw.params();
    let exec_time = op.exec_time * hw.time_factor * asw.time_factor;
    // Architectural masking lowers the *effective* SEU rate on this PE type.
    let seu_rate = op.seu_rate * (1.0 - pe_type.masking_factor());
    let m_impl = implicit_masking_override.unwrap_or(imp.implicit_ssw_masking());
    let intervals = ssw.intervals.max(1);
    ClrChainParams {
        exec_time,
        seu_rate,
        m_hw: hw.masking,
        m_impl_ssw: m_impl,
        cov_det: ssw.detection_coverage,
        m_tol: ssw.tolerance_masking,
        m_asw: asw.masking,
        intervals,
        t_det: ssw.detection_overhead * exec_time / intervals as f64,
        t_tol: ssw.tolerance_overhead * exec_time,
        t_chk: ssw.checkpoint_overhead * exec_time,
        p_chk_err: ssw.checkpoint_error_prob,
    }
}

/// The mechanism-aware chain specification of a fully configured
/// candidate: [`chain_params`] plus the fault mechanism derived from
/// `model`. Under [`ReliabilityModel::Transient`] the spec's digest
/// equals the raw parameter digest, so caches, sidecar files and
/// solver-fault plans behave exactly as before the mechanism axis
/// existed. Under [`ReliabilityModel::PermanentAging`] the PE type's
/// Weibull hazard at mission time — with scale `η` recomputed at the
/// candidate's protected power, mirroring [`evaluate_candidate`] — is
/// folded in as a competing permanent-fault rate.
pub fn chain_spec(
    imp: &BaseImpl,
    pe_type: &PeType,
    mode: &DvfsMode,
    clr: &ClrConfig,
    profile: &ProfileModel,
    implicit_masking_override: Option<f64>,
    model: ReliabilityModel,
) -> ClrChainSpec {
    let params = chain_params(imp, pe_type, mode, clr, profile, implicit_masking_override);
    match model {
        ReliabilityModel::Transient => ClrChainSpec::transient(params),
        ReliabilityModel::PermanentAging { mission_time } => {
            let op = profile.operating_point(imp.cycles(), imp.capacitance(), mode);
            let hw = clr.hw.params();
            let asw = clr.asw.params();
            let power = op.power * hw.power_factor * asw.power_factor;
            let eta = profile.eta_at(profile.steady_temp(power));
            let beta = pe_type.weibull_beta();
            let t = mission_time.max(0.0);
            let perm_rate = (beta / eta) * (t / eta).powf(beta - 1.0);
            ClrChainSpec::permanent_aging(params, perm_rate)
        }
    }
}

/// Memory footprint of an implementation under a CLR configuration:
/// spatial and information redundancy multiply the base footprint, and
/// checkpointing reserves a 25% state buffer.
///
/// # Examples
///
/// ```
/// use clre::tdse::candidate_memory;
/// use clre_model::{reliability::ClrConfig, BaseImpl, HwMethod, PeTypeId, SswMethod, AswMethod};
///
/// let imp = BaseImpl::new("i", PeTypeId::new(0), 1e5, 1e-9).with_memory_bytes(1000.0);
/// let bare = candidate_memory(&imp, &ClrConfig::unprotected());
/// let tmr = candidate_memory(
///     &imp,
///     &ClrConfig::new(HwMethod::Tmr, SswMethod::Checkpoint { intervals: 2 }, AswMethod::None),
/// );
/// assert_eq!(bare, 1000.0);
/// assert!(tmr > 3.0 * bare);
/// ```
pub fn candidate_memory(imp: &BaseImpl, clr: &ClrConfig) -> f64 {
    let hw = clr.hw.params();
    let ssw = clr.ssw.params();
    let asw = clr.asw.params();
    let checkpoint_buffer = if ssw.intervals > 1 { 1.25 } else { 1.0 };
    imp.memory_bytes() * hw.mem_factor * asw.mem_factor * checkpoint_buffer
}

/// Enumerates and evaluates all candidates of one task type.
///
/// # Errors
///
/// Propagates evaluation failures.
pub fn candidates_for_type(
    graph: &TaskGraph,
    platform: &Platform,
    ty: TaskTypeId,
    config: &TdseConfig,
) -> Result<Vec<CandidateImpl>, DseError> {
    let mut health = TdseHealth::default();
    candidates_for_type_with_health(graph, platform, ty, config, &mut health)
}

/// [`candidates_for_type`] that also accumulates degraded-analysis
/// counters into `health`.
///
/// # Errors
///
/// As for [`candidates_for_type`].
pub fn candidates_for_type_with_health(
    graph: &TaskGraph,
    platform: &Platform,
    ty: TaskTypeId,
    config: &TdseConfig,
    health: &mut TdseHealth,
) -> Result<Vec<CandidateImpl>, DseError> {
    let task_type = graph.task_type(ty).ok_or(DseError::InvalidConfig {
        what: "task type id out of range",
    })?;
    let mut out = Vec::new();
    for (impl_idx, imp) in task_type.impls().iter().enumerate() {
        let Some(pe_type) = platform.pe_type(imp.pe_type()) else {
            // Implementation targets a PE type absent from this platform:
            // simply not mappable here.
            continue;
        };
        let modes: &[DvfsMode] = match config.dvfs_policy {
            DvfsPolicy::All => pe_type.dvfs_modes(),
            DvfsPolicy::NominalOnly => &pe_type.dvfs_modes()[..1],
        };
        for (mode_idx, mode) in modes.iter().enumerate() {
            for clr in &config.clr_catalog {
                // Configuration-memory mitigation styles (scrubbing,
                // TMR+scrubbing) only exist on reconfigurable fabric; a
                // processor has no bitstream to scrub.
                if clr.hw.requires_reconfigurable()
                    && pe_type.kind() != PeKind::ReconfigurableRegion
                {
                    continue;
                }
                let (metrics, robust) = evaluate_candidate_chaos(
                    imp,
                    pe_type,
                    mode,
                    clr,
                    &config.profile,
                    config.implicit_masking_override,
                    config.cache.as_deref(),
                    config.solver_faults.as_ref(),
                    config.reliability_model,
                )?;
                health.candidates_evaluated += 1;
                health.degraded_analyses += usize::from(robust.degraded);
                health.solver_retries += usize::from(robust.retried);
                out.push(CandidateImpl {
                    impl_id: ImplId::new(impl_idx as u32),
                    pe_type: imp.pe_type(),
                    dvfs: DvfsModeId::new(mode_idx as u32),
                    clr: *clr,
                    metrics,
                    memory_bytes: candidate_memory(imp, clr),
                });
            }
        }
    }
    Ok(out)
}

/// Runs task-level DSE for every task type of `graph` and assembles the
/// [`ImplLibrary`].
///
/// # Errors
///
/// * [`DseError::EmptyChoiceGroup`] if some task type ends up unmappable.
/// * Evaluation failures from [`evaluate_candidate`].
pub fn build_library(
    graph: &TaskGraph,
    platform: &Platform,
    config: &TdseConfig,
) -> Result<ImplLibrary, DseError> {
    build_library_with_health(graph, platform, config).map(|(lib, _)| lib)
}

/// [`build_library`] that also reports how many candidate analyses ran
/// and how many used the degraded closed-form fallback.
///
/// # Errors
///
/// As for [`build_library`].
pub fn build_library_with_health(
    graph: &TaskGraph,
    platform: &Platform,
    config: &TdseConfig,
) -> Result<(ImplLibrary, TdseHealth), DseError> {
    let mut health = TdseHealth::default();
    let mut all = Vec::with_capacity(graph.task_types().len());
    for ty in 0..graph.task_types().len() {
        all.push(candidates_for_type_with_health(
            graph,
            platform,
            TaskTypeId::new(ty as u32),
            config,
            &mut health,
        )?);
    }
    let lib = ImplLibrary::from_candidates(all, platform.pe_types().len(), &config.objectives)?;
    lib.validate_for(graph)?;
    Ok((lib, health))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clre_model::platform::paper_platform;
    use clre_model::reliability::{AswMethod, HwMethod, SswMethod};
    use clre_model::TaskType;
    use clre_profile::SyntheticCharacterizer;

    fn test_graph(platform: &Platform) -> TaskGraph {
        let ch = SyntheticCharacterizer::new(5);
        let mut ty = TaskType::new("t");
        for imp in ch.impls_for_type(0, platform) {
            ty = ty.with_impl(imp);
        }
        TaskGraph::builder("g", 1.0e-2)
            .task_type(ty)
            .task("a", "t")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn candidate_counts_match_cartesian_product() {
        let p = paper_platform();
        let g = test_graph(&p);
        let cfg = TdseConfig::default();
        let cands = candidates_for_type(&g, &p, TaskTypeId::new(0), &cfg).unwrap();
        // 2 processor impls × 3 modes × 80 + 1 accel impl × 1 mode × 80.
        assert_eq!(cands.len(), (2 * 3 + 1) * 80);
    }

    #[test]
    fn cached_library_build_is_bit_identical() {
        let p = paper_platform();
        let g = test_graph(&p);
        let cold = build_library_with_health(&g, &p, &TdseConfig::default()).unwrap();

        let cache = EvalCache::shared();
        let cfg = TdseConfig::default().with_eval_cache(Arc::clone(&cache));
        let first = build_library_with_health(&g, &p, &cfg).unwrap();
        let after_first = cache.analysis_counts();
        assert!(after_first.inserts > 0, "cold build populates the cache");

        let warm = build_library_with_health(&g, &p, &cfg).unwrap();
        let after_warm = cache.analysis_counts();
        assert_eq!(
            after_warm.inserts, after_first.inserts,
            "warm build inserts nothing new"
        );
        assert!(after_warm.hits > after_first.hits);

        // Cache off, cache cold, cache warm: all bit-identical — including
        // the degraded/retried health counters replayed from stored flags.
        assert_eq!(cold.0, first.0);
        assert_eq!(first.0, warm.0);
        assert_eq!(cold.1, first.1);
        assert_eq!(first.1, warm.1);
    }

    #[test]
    fn solver_fault_plan_degrades_deterministically() {
        let p = paper_platform();
        let g = test_graph(&p);
        let clean = build_library_with_health(&g, &p, &TdseConfig::default()).unwrap();

        // A zero-rate plan is bit-identical to no plan at all.
        let zero = TdseConfig::default().with_solver_faults(SolverFaultPlan::new(7, 0, 0));
        let z = build_library_with_health(&g, &p, &zero).unwrap();
        assert_eq!(clean.0, z.0);
        assert_eq!(clean.1, z.1);

        // Every primary solve failing drives every analysis through the
        // scaled retry; the retry succeeds, so nothing degrades.
        let storm = TdseConfig::default().with_solver_faults(SolverFaultPlan::new(7, 1_000_000, 0));
        let s = build_library_with_health(&g, &p, &storm).unwrap();
        assert_eq!(s.1.solver_retries, s.1.candidates_evaluated);
        assert_eq!(s.1.degraded_analyses, 0);

        // Same seed reproduces the same library and counters bit-for-bit;
        // injected analyses never leak into an attached cache.
        let cache = EvalCache::shared();
        let storm_cached = TdseConfig::default()
            .with_solver_faults(SolverFaultPlan::new(7, 1_000_000, 0))
            .with_eval_cache(Arc::clone(&cache));
        let s2 = build_library_with_health(&g, &p, &storm_cached).unwrap();
        assert_eq!(s.0, s2.0);
        assert_eq!(s.1, s2.1);
        assert_eq!(cache.analysis_counts().inserts, 0);
    }

    #[test]
    fn empty_catalog_is_a_typed_error() {
        let err = TdseConfig::default().with_clr_catalog(vec![]).unwrap_err();
        assert!(matches!(err, DseError::InvalidConfig { .. }));
    }

    #[test]
    fn nominal_only_prunes_modes() {
        let p = paper_platform();
        let g = test_graph(&p);
        let cfg = TdseConfig::default().with_dvfs_policy(DvfsPolicy::NominalOnly);
        let cands = candidates_for_type(&g, &p, TaskTypeId::new(0), &cfg).unwrap();
        assert_eq!(cands.len(), 3 * 80);
    }

    #[test]
    fn protection_trades_error_for_time() {
        let p = paper_platform();
        let pe = p.pe_type(clre_model::PeTypeId::new(0)).unwrap();
        let imp = BaseImpl::new("i", clre_model::PeTypeId::new(0), 3.0e5, 1.0e-9);
        let mode = &pe.dvfs_modes()[0];
        let profile = ProfileModel::default();
        let bare =
            evaluate_candidate(&imp, pe, mode, &ClrConfig::unprotected(), &profile, None).unwrap();
        let tmr = evaluate_candidate(
            &imp,
            pe,
            mode,
            &ClrConfig::new(HwMethod::Tmr, SswMethod::None, AswMethod::None),
            &profile,
            None,
        )
        .unwrap();
        assert!(tmr.error_prob < 0.1 * bare.error_prob);
        assert!(tmr.power > 2.5 * bare.power);
        // TMR heats the PE: it ages faster.
        assert!(tmr.eta < bare.eta);
        assert!(tmr.peak_temp > bare.peak_temp);

        let chk = evaluate_candidate(
            &imp,
            pe,
            mode,
            &ClrConfig::new(
                HwMethod::None,
                SswMethod::Checkpoint { intervals: 3 },
                AswMethod::None,
            ),
            &profile,
            None,
        )
        .unwrap();
        assert!(chk.error_prob < bare.error_prob);
        assert!(chk.avg_exec_time > bare.avg_exec_time);
        assert!(chk.min_exec_time > bare.min_exec_time);
    }

    #[test]
    fn architectural_masking_lowers_error() {
        let p = paper_platform();
        let imp = BaseImpl::new("i", clre_model::PeTypeId::new(0), 3.0e5, 1.0e-9);
        let profile = ProfileModel::default();
        let lo = p.pe_type_by_name("proc-lomask").unwrap();
        let hi = p.pe_type_by_name("proc-himask").unwrap();
        let m_lo = evaluate_candidate(
            &imp,
            p.pe_type(lo).unwrap(),
            &p.pe_type(lo).unwrap().dvfs_modes()[0],
            &ClrConfig::unprotected(),
            &profile,
            None,
        )
        .unwrap();
        let m_hi = evaluate_candidate(
            &imp,
            p.pe_type(hi).unwrap(),
            &p.pe_type(hi).unwrap().dvfs_modes()[0],
            &ClrConfig::unprotected(),
            &profile,
            None,
        )
        .unwrap();
        assert!(m_hi.error_prob < m_lo.error_prob);
    }

    #[test]
    fn implicit_masking_override_applies() {
        let p = paper_platform();
        let g = test_graph(&p);
        let base = TdseConfig::default();
        let masked = TdseConfig::default().with_implicit_masking(0.2);
        let c0 = candidates_for_type(&g, &p, TaskTypeId::new(0), &base).unwrap();
        let c1 = candidates_for_type(&g, &p, TaskTypeId::new(0), &masked).unwrap();
        // Same shape, strictly lower (or equal at zero) error everywhere.
        assert_eq!(c0.len(), c1.len());
        let better = c0
            .iter()
            .zip(&c1)
            .filter(|(a, b)| b.metrics.error_prob < a.metrics.error_prob)
            .count();
        assert!(better > c0.len() / 2);
    }

    #[test]
    fn library_builds_and_prunes() {
        let p = paper_platform();
        let g = test_graph(&p);
        let lib = build_library(&g, &p, &TdseConfig::default()).unwrap();
        let ty = TaskTypeId::new(0);
        assert!(lib.pareto_count(ty) >= 3); // at least one per PE type
        assert!(lib.pareto_count(ty) < lib.full_count(ty));
        assert_eq!(lib.full_count(ty), (2 * 3 + 1) * 80);
    }

    #[test]
    fn single_objective_library_is_one_per_group() {
        let p = paper_platform();
        let g = test_graph(&p);
        let cfg = TdseConfig::default().with_objectives(ObjectiveSet::set_i());
        let lib = build_library(&g, &p, &cfg).unwrap();
        assert_eq!(lib.pareto_count(TaskTypeId::new(0)), 3);
    }

    #[test]
    fn richer_objectives_grow_the_front() {
        let p = paper_platform();
        let g = test_graph(&p);
        let counts: Vec<usize> = [
            ObjectiveSet::set_i(),
            ObjectiveSet::set_ii(),
            ObjectiveSet::set_iii(),
        ]
        .into_iter()
        .map(|objs| {
            build_library(&g, &p, &TdseConfig::default().with_objectives(objs))
                .unwrap()
                .pareto_count(TaskTypeId::new(0))
        })
        .collect();
        assert!(counts[0] < counts[1], "set II must beat set I: {counts:?}");
        assert!(
            counts[1] <= counts[2],
            "set III at least set II: {counts:?}"
        );
    }

    #[test]
    fn default_reliability_model_is_transient_and_bit_identical() {
        let p = paper_platform();
        let g = test_graph(&p);
        assert_eq!(
            TdseConfig::default().reliability_model,
            ReliabilityModel::Transient
        );
        let implicit = build_library_with_health(&g, &p, &TdseConfig::default()).unwrap();
        let explicit = build_library_with_health(
            &g,
            &p,
            &TdseConfig::default().with_reliability_model(ReliabilityModel::Transient),
        )
        .unwrap();
        assert_eq!(implicit.0, explicit.0);
        assert_eq!(implicit.1, explicit.1);
    }

    /// A profile with η on the scale of seconds instead of years, so the
    /// permanent hazard competes visibly with the SEU rate.
    fn accelerated_aging_profile() -> ProfileModel {
        ProfileModel {
            aging_a: 1.0e-6,
            ..ProfileModel::default()
        }
    }

    #[test]
    fn permanent_aging_raises_the_error_floor() {
        let p = paper_platform();
        let pe = p.pe_type(clre_model::PeTypeId::new(0)).unwrap();
        let imp = BaseImpl::new("i", clre_model::PeTypeId::new(0), 3.0e5, 1.0e-9);
        let mode = &pe.dvfs_modes()[0];
        let profile = accelerated_aging_profile();
        let eval = |clr: &ClrConfig, model| {
            evaluate_candidate_chaos(&imp, pe, mode, clr, &profile, None, None, None, model)
                .unwrap()
                .0
        };
        let aging = ReliabilityModel::PermanentAging {
            mission_time: 100.0,
        };
        let bare = ClrConfig::unprotected();
        let transient = eval(&bare, ReliabilityModel::Transient);
        let permanent = eval(&bare, aging);
        assert!(
            permanent.error_prob > 1.02 * transient.error_prob,
            "permanent hazard must raise the error floor: {} vs {}",
            permanent.error_prob,
            transient.error_prob
        );
        // Checkpointing cannot repair a dead resource; spatial TMR can.
        let chk = ClrConfig::new(
            HwMethod::None,
            SswMethod::Checkpoint { intervals: 3 },
            AswMethod::None,
        );
        let tmr = ClrConfig::new(HwMethod::Tmr, SswMethod::None, AswMethod::None);
        let floor = permanent.error_prob - transient.error_prob;
        let chk_gap =
            eval(&chk, aging).error_prob - eval(&chk, ReliabilityModel::Transient).error_prob;
        assert!(chk_gap > 0.5 * floor, "checkpointing keeps the floor");
        // TMR masks 95% of permanent faults, but its tripled power heats
        // the PE, shrinking η and inflating the very hazard it masks.
        // Under transient-only analysis TMR dominates; once aging is
        // modeled, the hot redundant design loses to the cool bare one —
        // the mechanism axis reverses a DSE verdict.
        let tmr_trans = eval(&tmr, ReliabilityModel::Transient).error_prob;
        let tmr_perm = eval(&tmr, aging).error_prob;
        assert!(tmr_trans < 0.1 * transient.error_prob, "TMR wins on SEUs");
        assert!(
            tmr_perm > permanent.error_prob,
            "thermal feedback must flip the verdict: {tmr_perm} vs {}",
            permanent.error_prob
        );
        assert!(tmr_perm - tmr_trans > floor, "TMR concedes more to aging");
    }

    #[test]
    fn permanent_library_build_is_cached_bit_identically() {
        let p = paper_platform();
        let g = test_graph(&p);
        let model = ReliabilityModel::PermanentAging { mission_time: 50.0 };
        let base = TdseConfig::default()
            .with_profile(accelerated_aging_profile())
            .with_reliability_model(model);
        let cold = build_library_with_health(&g, &p, &base).unwrap();

        let cache = EvalCache::shared();
        let cfg = base.clone().with_eval_cache(Arc::clone(&cache));
        let first = build_library_with_health(&g, &p, &cfg).unwrap();
        assert!(cache.analysis_counts().inserts > 0);
        let warm = build_library_with_health(&g, &p, &cfg).unwrap();
        assert_eq!(cold.0, first.0);
        assert_eq!(first.0, warm.0);
        assert_eq!(cold.1, warm.1);

        // The permanent library is genuinely different from transient.
        let transient = build_library_with_health(
            &g,
            &p,
            &TdseConfig::default().with_profile(accelerated_aging_profile()),
        )
        .unwrap();
        assert_ne!(transient.0, cold.0);
    }

    #[test]
    fn fpga_styles_only_map_to_reconfigurable_regions() {
        let p = paper_platform();
        let g = test_graph(&p);
        let cfg = TdseConfig::default()
            .with_clr_catalog(ClrConfig::fpga_mitigation_catalog())
            .unwrap();
        let cands = candidates_for_type(&g, &p, TaskTypeId::new(0), &cfg).unwrap();
        // Processor impls keep only the 4 non-scrubbing HW methods
        // (4·5·4 = 80 of the 120-entry catalog); the accelerator impl on
        // the reconfigurable region explores all 120.
        assert_eq!(cands.len(), 2 * 3 * 80 + 120);
        for c in &cands {
            if c.clr.hw.requires_reconfigurable() {
                let kind = p.pe_type(c.pe_type).unwrap().kind();
                assert_eq!(kind, PeKind::ReconfigurableRegion);
            }
        }
    }

    #[test]
    fn incompatible_impls_skipped() {
        // An impl that targets a PE type not present in the platform.
        let p = paper_platform();
        let ty = TaskType::new("t")
            .with_impl(BaseImpl::new("ok", clre_model::PeTypeId::new(0), 1e5, 1e-9))
            .with_impl(BaseImpl::new(
                "alien",
                clre_model::PeTypeId::new(9),
                1e5,
                1e-9,
            ));
        let g = TaskGraph::builder("g", 1.0)
            .task_type(ty)
            .task("a", "t")
            .unwrap()
            .build()
            .unwrap();
        let cands =
            candidates_for_type(&g, &p, TaskTypeId::new(0), &TdseConfig::default()).unwrap();
        // Only the compatible impl contributes: 3 modes × 80.
        assert_eq!(cands.len(), 240);
    }
}

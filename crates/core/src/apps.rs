//! Case-study applications and evaluation platforms.
//!
//! * [`sobel`] — the Sobel Edge Detection task graph of Fig. 2(b): five
//!   tasks of four types (`GScale`, `GSmth`, two `SobGrad` instances,
//!   `CombThr`) with five dependency edges.
//! * [`paper_platform`] — the 6-PE / 3-type HMPSoC of Section VI-A.
//! * [`sobel_platform`] — the 2-PE-type variant used for the Table IV
//!   task-level study (one embedded processor type plus one partially
//!   reconfigurable region, matching the table's "one implementation for
//!   each of the two PETypes").
//! * [`synthetic_app`] — a convenience wrapper generating a TGFF-style
//!   application with synthetic characterization, as used by all the
//!   scaling experiments (Tables V–VII).
//! * [`AppSpec`] — the workload *named as data* (`synthetic:20:7`,
//!   `sobel:42`): the form campaign clients and evaluation-worker
//!   contexts ship over the wire instead of model objects.

pub use clre_model::platform::paper_platform;

use clre_model::platform::{DvfsMode, Interconnect, PeType, Platform};
use clre_model::{TaskGraph, TaskType};
use clre_profile::SyntheticCharacterizer;
use clre_tgff::TgffConfig;

use crate::DseError;

/// The four Sobel task-type names, in task-type-id order.
pub const SOBEL_TYPES: [&str; 4] = ["GScale", "GSmth", "SobGrad", "CombThr"];

/// Builds the Sobel Edge Detection application (Fig. 2(b)) on `platform`,
/// characterizing each task type synthetically from `seed`.
///
/// The graph is `T0:GScale → T1:GSmth → {T2, T3}:SobGrad → T4:CombThr`
/// with `SobGradX`/`SobGradY` sharing one task type — 5 tasks of 4 types
/// and 5 edges, period 10 ms.
///
/// # Errors
///
/// Propagates graph-validation failures (none occur for valid platforms).
///
/// # Examples
///
/// ```
/// let platform = clre::apps::paper_platform();
/// let g = clre::apps::sobel(&platform, 42)?;
/// assert_eq!(g.task_count(), 5);
/// assert_eq!(g.task_types().len(), 4);
/// assert_eq!(g.edges().len(), 5);
/// # Ok::<(), clre::DseError>(())
/// ```
pub fn sobel(platform: &Platform, seed: u64) -> Result<TaskGraph, DseError> {
    let ch = SyntheticCharacterizer::new(seed);
    let mut builder = TaskGraph::builder("sobel-edge-detection", 10.0e-3);
    for (idx, name) in SOBEL_TYPES.iter().enumerate() {
        let mut ty = TaskType::new(*name);
        for imp in ch.impls_for_type(idx as u32, platform) {
            ty = ty.with_impl(imp);
        }
        builder = builder.task_type(ty);
    }
    let graph = builder
        .task("GScale", "GScale")?
        .task("GSmth", "GSmth")?
        .task("SobGradX", "SobGrad")?
        .task("SobGradY", "SobGrad")?
        // The threshold stage is the most critical output stage.
        .task_with_criticality("CombThr", "CombThr", 2.0)?
        .edge(0, 1)
        .edge(1, 2)
        .edge(1, 3)
        .edge(2, 4)
        .edge(3, 4)
        .build()?;
    Ok(graph)
}

/// The 2-type platform of the Table IV task-level study: one embedded
/// processor type (three DVFS modes) and one partially reconfigurable
/// region.
///
/// # Examples
///
/// ```
/// let p = clre::apps::sobel_platform();
/// assert_eq!(p.pe_types().len(), 2);
/// ```
pub fn sobel_platform() -> Platform {
    let mut proc = PeType::processor("embedded-proc", 2.0, 0.30);
    for m in [
        DvfsMode::new("1.2V/900MHz", 1.2, 900.0e6),
        DvfsMode::new("1.1V/600MHz", 1.1, 600.0e6),
        DvfsMode::new("1.06V/300MHz", 1.06, 300.0e6),
    ] {
        proc = proc.with_dvfs_mode(m);
    }
    let pr = PeType::reconfigurable_region("pr-region", 1.8, 0.10).with_dvfs_mode(DvfsMode::new(
        "1.0V/250MHz",
        1.0,
        250.0e6,
    ));
    Platform::builder()
        .pe_type(proc)
        .pe_type(pr)
        .pes_of_type("embedded-proc", 4)
        .expect("type registered")
        .pes_of_type("pr-region", 2)
        .expect("type registered")
        .build()
        .expect("statically valid")
}

/// The paper platform extended with an explicit on-chip interconnect
/// (1 µs per-transfer latency, 1 GB/s shared bandwidth) — the
/// communication-aware extension the paper lists as future work
/// (DESIGN.md §8). Inter-PE edges then delay successors by the transfer
/// time of their data volume.
///
/// # Examples
///
/// ```
/// let p = clre::apps::paper_platform_with_noc();
/// assert!(p.interconnect().is_some());
/// ```
pub fn paper_platform_with_noc() -> Platform {
    let base = paper_platform();
    let mut builder = Platform::builder();
    for ty in base.pe_types() {
        builder = builder.pe_type(ty.clone());
    }
    for pe in base.pes() {
        builder = builder.pe(pe.pe_type());
    }
    builder
        .interconnect(Interconnect::new(1.0e-6, 1.0e9))
        .build()
        .expect("statically valid")
}

/// A named benchmark application: which workload a campaign optimizes,
/// as data. Builders ([`AppSpec::build`]) construct the platform/graph
/// pair themselves, so campaign clients — the `clre-serve` wire
/// protocol, the `clre-exec-worker` evaluation contexts — name the
/// workload instead of shipping model objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppSpec {
    /// [`synthetic_app`]`(tasks, seed)` on the paper platform.
    Synthetic {
        /// Task count of the generated graph.
        tasks: usize,
        /// TGFF generator seed.
        seed: u64,
    },
    /// [`sobel`]`(&`[`sobel_platform`]`(), seed)`.
    Sobel {
        /// Profile jitter seed.
        seed: u64,
    },
}

impl AppSpec {
    /// The cache-sharing domain: campaigns whose apps map to the same
    /// label share one `EvalCache` (and its persisted sidecar).
    pub fn platform_label(&self) -> &'static str {
        match self {
            AppSpec::Synthetic { .. } => "paper",
            AppSpec::Sobel { .. } => "sobel",
        }
    }

    /// Wire form: `synthetic:<tasks>:<seed>` or `sobel:<seed>`.
    pub fn encode(&self) -> String {
        match self {
            AppSpec::Synthetic { tasks, seed } => format!("synthetic:{tasks}:{seed}"),
            AppSpec::Sobel { seed } => format!("sobel:{seed}"),
        }
    }

    /// Parses the wire form.
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed spec.
    ///
    /// # Examples
    ///
    /// ```
    /// use clre::apps::AppSpec;
    ///
    /// let app = AppSpec::parse("synthetic:12:3").unwrap();
    /// assert_eq!(app, AppSpec::Synthetic { tasks: 12, seed: 3 });
    /// assert_eq!(app.encode(), "synthetic:12:3");
    /// assert!(AppSpec::parse("warp:1").is_err());
    /// ```
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut parts = text.split(':');
        match parts.next() {
            Some("synthetic") => {
                let tasks = parse_num(parts.next(), "synthetic task count")?;
                let seed = parse_num(parts.next(), "synthetic seed")?;
                expect_end(parts, text)?;
                Ok(AppSpec::Synthetic { tasks, seed })
            }
            Some("sobel") => {
                let seed = parse_num(parts.next(), "sobel seed")?;
                expect_end(parts, text)?;
                Ok(AppSpec::Sobel { seed })
            }
            _ => Err(format!("unknown app spec {text:?}")),
        }
    }

    /// Builds the platform/graph pair this spec names.
    ///
    /// # Errors
    ///
    /// Propagates model-construction failures.
    pub fn build(&self) -> Result<(Platform, TaskGraph), DseError> {
        match self {
            AppSpec::Synthetic { tasks, seed } => synthetic_app(*tasks, *seed),
            AppSpec::Sobel { seed } => {
                let platform = sobel_platform();
                let graph = sobel(&platform, *seed)?;
                Ok((platform, graph))
            }
        }
    }
}

fn parse_num<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> Result<T, String> {
    tok.ok_or_else(|| format!("missing {what}"))?
        .parse()
        .map_err(|_| format!("malformed {what}"))
}

fn expect_end<'a>(mut parts: impl Iterator<Item = &'a str>, text: &str) -> Result<(), String> {
    match parts.next() {
        None => Ok(()),
        Some(_) => Err(format!("trailing tokens in {text:?}")),
    }
}

/// Generates a synthetic TGFF-style application with `tasks` tasks on the
/// paper platform, drawing task types from the 10-type pool
/// (`SYN_0`…`SYN_9`) used in the scaling experiments.
///
/// # Errors
///
/// Propagates generator/validation failures.
///
/// # Examples
///
/// ```
/// let (platform, graph) = clre::apps::synthetic_app(20, 7)?;
/// assert_eq!(graph.task_count(), 20);
/// assert_eq!(platform.pe_count(), 6);
/// # Ok::<(), clre::DseError>(())
/// ```
pub fn synthetic_app(tasks: usize, seed: u64) -> Result<(Platform, TaskGraph), DseError> {
    let platform = paper_platform();
    let ch = SyntheticCharacterizer::new(seed ^ 0xABCD);
    let graph = clre_tgff::generate(&TgffConfig::new(tasks).with_type_count(10), seed, |ty| {
        ch.impls_for_type(ty, &platform)
    })?;
    Ok((platform, graph))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clre_model::TaskId;

    #[test]
    fn sobel_matches_fig_2b() {
        let p = paper_platform();
        let g = sobel(&p, 1).unwrap();
        assert_eq!(g.task_count(), 5);
        assert_eq!(g.task_types().len(), 4);
        assert_eq!(g.edges().len(), 5);
        // SobGradX and SobGradY share a type.
        assert_eq!(g.tasks()[2].task_type(), g.tasks()[3].task_type());
        // CombThr joins both gradient branches.
        assert_eq!(g.predecessors(TaskId::new(4)).len(), 2);
        // GScale is the single source.
        assert!(g.predecessors(TaskId::new(0)).is_empty());
        assert_eq!(g.period(), 10.0e-3);
    }

    #[test]
    fn sobel_criticality_emphasizes_output() {
        let p = paper_platform();
        let g = sobel(&p, 1).unwrap();
        let z = g.normalized_criticalities();
        assert!(z[4] > z[0]);
        assert!((z.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sobel_platform_has_two_types() {
        let p = sobel_platform();
        assert_eq!(p.pe_types().len(), 2);
        assert_eq!(p.pe_count(), 6);
    }

    #[test]
    fn synthetic_app_scales() {
        for &n in &[10usize, 30] {
            let (p, g) = synthetic_app(n, 3).unwrap();
            assert_eq!(g.task_count(), n);
            assert_eq!(g.task_types().len(), 10);
            assert_eq!(p.pe_count(), 6);
        }
    }

    #[test]
    fn noc_platform_mirrors_paper_platform() {
        let a = paper_platform();
        let b = paper_platform_with_noc();
        assert_eq!(a.pe_count(), b.pe_count());
        assert_eq!(a.pe_types(), b.pe_types());
        assert!(a.interconnect().is_none());
        assert!(b.interconnect().is_some());
    }

    #[test]
    fn app_specs_roundtrip_and_build() {
        for (text, tasks) in [("synthetic:8:3", 8), ("sobel:7", 5)] {
            let spec = AppSpec::parse(text).unwrap();
            assert_eq!(spec.encode(), text);
            let (platform, graph) = spec.build().unwrap();
            assert_eq!(graph.task_count(), tasks);
            assert!(platform.pe_count() > 0);
        }
        assert!(AppSpec::parse("synthetic:12").is_err(), "missing seed");
        assert!(AppSpec::parse("synthetic:12:3:9").is_err(), "trailing");
        assert!(AppSpec::parse("fpga:1").is_err(), "unknown app");
        assert_eq!(
            AppSpec::Sobel { seed: 1 }.platform_label(),
            "sobel",
            "cache domains follow the platform"
        );
    }

    #[test]
    fn synthetic_app_deterministic() {
        let (_, a) = synthetic_app(15, 9).unwrap();
        let (_, b) = synthetic_app(15, 9).unwrap();
        assert_eq!(a.edges(), b.edges());
    }
}

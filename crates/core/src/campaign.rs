//! The declarative stage-graph `Campaign` runner — one execution path
//! for every DSE method.
//!
//! The paper's methods are all *compositions* of GA stages: fcCLR and
//! pfCLR are single stages, the proposed flow chains a pf stage into a
//! seeded fc stage, and the layer-agnostic baseline merges four
//! single-layer stages. [`CampaignPlan`] expresses each composition as
//! data — a list of [`StagePlan`] nodes with explicit seeding edges —
//! and [`ClrEarly::run`] / [`ClrEarly::run_supervised`] compile any
//! plan into the one execution path, so the `clre-exec` executor, trace
//! telemetry labels, checkpoint/rotate/quarantine supervision, and
//! resume logic are threaded through every method exactly once. The stages are driven
//! through the algorithm-agnostic
//! [`EvolutionState`](clre_moea::EvolutionState) trait, so NSGA-II and
//! SPEA2 stages checkpoint and resume identically.
//!
//! Any plan scales out as an **island model**
//! ([`CampaignPlan::islands`]): the plan is replicated into per-island
//! subpopulation lineages with salted RNG streams, and each epoch's
//! first stage is seeded through ordinary seeding edges from the
//! previous epoch's island fronts — its own plus its ring neighbor's
//! (the migration topology). Because migration reuses the same seeding
//! edges the proposed flow uses, island campaigns checkpoint, resume
//! and merge deterministically, bit-identical for every evaluation
//! backend.
//!
//! # Examples
//!
//! The proposed methodology as a plan (identical trajectory and front
//! to the deprecated `run_proposed` wrapper):
//!
//! ```no_run
//! use clre::{CampaignPlan, ClrEarly, StageBudget};
//! use clre_model::platform::paper_platform;
//! # fn graph() -> clre_model::TaskGraph { unimplemented!() }
//!
//! let platform = paper_platform();
//! let graph = graph();
//! let dse = ClrEarly::new(&graph, &platform)?;
//! let plan = CampaignPlan::proposed(); // pf stage → seeded fc stage
//! let front = dse.run(&plan, &StageBudget::smoke_test())?;
//! assert_eq!(front.method(), "proposed");
//! # Ok::<(), clre::DseError>(())
//! ```

use std::borrow::Cow;
use std::sync::Arc;

use clre_exec::Executor;
use clre_model::reliability::ClrConfig;
use clre_moea::{
    EvoOutcome, EvoSnapshot, EvolutionState, Nsga2, Nsga2State, ObjectiveMatrix, Spea2,
    Spea2Config, Spea2State,
};

use crate::cache::{cache_sidecar_path, EvalCache};
use crate::encoding::{ChoiceMode, ClrVariation, Codec, Genome};
use crate::library::ImplLibrary;
use crate::methodology::{ClrEarly, FrontPoint, FrontResult, Layer, StageBudget};
use crate::problem::SystemProblem;
use crate::resilience::{
    quarantine_sidecar_path, read_quarantine_sidecar, remove_checkpoint_files,
    write_quarantine_sidecar, AlgorithmTag, Checkpoint, CheckpointWriter, CompletedStage,
    QuarantineRecord, ResilientProblem, RunHealth, RunOutcome, RunSupervisor,
};
use crate::tdse::{build_library, DvfsPolicy};
use crate::DseError;

/// The MOEA backend driving one campaign stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageAlgorithm {
    /// NSGA-II, optionally with a non-default tournament size.
    Nsga2 {
        /// Tournament size override (`None` = the paper's default of 5).
        tournament: Option<usize>,
    },
    /// SPEA2 (the `ablation_moea` backend). SPEA2 stages cannot be the
    /// target of a seeding edge.
    Spea2,
}

impl StageAlgorithm {
    /// The checkpoint tag identifying this backend.
    pub fn tag(self) -> AlgorithmTag {
        match self {
            StageAlgorithm::Nsga2 { .. } => AlgorithmTag::Nsga2,
            StageAlgorithm::Spea2 => AlgorithmTag::Spea2,
        }
    }
}

/// Which implementation library a stage searches over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LibrarySource {
    /// The full-CLR library built at orchestrator construction.
    Main,
    /// A restricted library with a single reliability degree of freedom
    /// (the Agnostic baseline's per-layer searches); built on demand.
    SingleLayer(Layer),
    /// The pruning-ablation library: random per-group subsets of the
    /// full space, deterministic in the given seed.
    RandomSubset(u64),
}

/// One node of a campaign's stage graph.
#[derive(Debug, Clone, PartialEq)]
pub struct StagePlan {
    /// Stage label: names the stage's [`FrontResult`], its executor
    /// telemetry records, and its checkpoint bookkeeping. Must be
    /// whitespace-free (it is embedded in the checkpoint text format).
    pub label: String,
    /// The MOEA backend.
    pub algorithm: StageAlgorithm,
    /// Choice-list mode of the stage's codec.
    pub mode: ChoiceMode,
    /// The implementation library the stage searches.
    pub library: LibrarySource,
    /// Seed salt: the stage GA seed is
    /// `budget.seed · 0x9E3779B9 + salt`, the same scheme the historic
    /// `run_*` methods used, so campaign stages reproduce their
    /// trajectories bit-exactly.
    pub salt: u64,
    /// The stage runs `(budget.generations / divisor).max(1)`
    /// generations — the Agnostic baseline's budget-fair quartering.
    pub generations_divisor: usize,
    /// Seeding edges: indices of earlier stages whose front genomes
    /// seed this stage's initial population, concatenated in edge
    /// order — the proposed flow's pf → fc hand-off, and the island
    /// model's migration channel.
    pub seed_from: Vec<usize>,
}

impl StagePlan {
    /// A default-shaped NSGA-II stage over the main library: the
    /// building block custom plans start from (override fields with
    /// struct-update syntax, as the built-in constructors do).
    pub fn nsga2(label: &str, mode: ChoiceMode, salt: u64) -> Self {
        StagePlan {
            label: label.to_owned(),
            algorithm: StageAlgorithm::Nsga2 { tournament: None },
            mode,
            library: LibrarySource::Main,
            salt,
            generations_divisor: 1,
            seed_from: Vec::new(),
        }
    }

    /// Sets the implementation library this stage searches (builder
    /// style).
    ///
    /// # Examples
    ///
    /// ```
    /// use clre::campaign::{LibrarySource, StagePlan};
    /// use clre::encoding::ChoiceMode;
    ///
    /// let stage = StagePlan::nsga2("ablation", ChoiceMode::ParetoFiltered, 5)
    ///     .with_library(LibrarySource::RandomSubset(9));
    /// assert_eq!(stage.library, LibrarySource::RandomSubset(9));
    /// ```
    #[must_use]
    pub fn with_library(mut self, library: LibrarySource) -> Self {
        self.library = library;
        self
    }

    /// Sets the NSGA-II tournament size override (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the stage is not an NSGA-II stage or `k == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use clre::campaign::{StageAlgorithm, StagePlan};
    /// use clre::encoding::ChoiceMode;
    ///
    /// let stage = StagePlan::nsga2("pfCLR", ChoiceMode::ParetoFiltered, 2)
    ///     .with_tournament(3);
    /// assert_eq!(
    ///     stage.algorithm,
    ///     StageAlgorithm::Nsga2 { tournament: Some(3) }
    /// );
    /// ```
    #[must_use]
    pub fn with_tournament(mut self, k: usize) -> Self {
        assert!(k > 0, "tournament size must be at least 1");
        match &mut self.algorithm {
            StageAlgorithm::Nsga2 { tournament } => *tournament = Some(k),
            StageAlgorithm::Spea2 => panic!("SPEA2 stages have no tournament size"),
        }
        self
    }

    /// Sets the budget-fairness divisor (builder style): the stage runs
    /// `(budget.generations / divisor).max(1)` generations.
    ///
    /// # Panics
    ///
    /// Panics if `divisor == 0`.
    #[must_use]
    pub fn with_generations_divisor(mut self, divisor: usize) -> Self {
        assert!(divisor > 0, "divisor must be at least 1");
        self.generations_divisor = divisor;
        self
    }

    /// Declares a seeding edge from an earlier stage (builder style): the
    /// front genomes of stage `index` seed this stage's initial
    /// population, the pf → fc hand-off of the proposed flow. May be
    /// called repeatedly; seeds concatenate in edge order.
    #[must_use]
    pub fn with_seed_from(mut self, index: usize) -> Self {
        self.seed_from.push(index);
        self
    }

    /// This stage's generation budget under `budget`.
    pub fn generations(&self, budget: &StageBudget) -> usize {
        (budget.generations / self.generations_divisor).max(1)
    }
}

/// A declarative multi-stage DSE plan: the stage nodes plus their
/// seeding edges. Built-in constructors reproduce every method of the
/// paper; custom plans compose the same vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignPlan {
    /// The campaign name: the final [`FrontResult`]'s method label and
    /// the checkpoint method tag. Must be whitespace-free.
    pub name: String,
    /// The stages, in execution order. Seeding edges must point
    /// backwards.
    pub stages: Vec<StagePlan>,
}

impl CampaignPlan {
    /// The problem-agnostic fcCLR baseline: one full-space stage.
    pub fn fc() -> Self {
        CampaignPlan {
            name: "fcCLR".to_owned(),
            stages: vec![StagePlan::nsga2("fcCLR", ChoiceMode::Full, 1)],
        }
    }

    /// The task-level-Pareto-filtered pfCLR method: one filtered stage.
    pub fn pf() -> Self {
        CampaignPlan {
            name: "pfCLR".to_owned(),
            stages: vec![StagePlan::nsga2("pfCLR", ChoiceMode::ParetoFiltered, 2)],
        }
    }

    /// pfCLR with a non-default tournament size (the
    /// `ablation_tournament` study).
    ///
    /// # Panics
    ///
    /// Panics if `tournament_size == 0`.
    pub fn pf_with_tournament(tournament_size: usize) -> Self {
        assert!(tournament_size > 0, "tournament size must be at least 1");
        let mut plan = CampaignPlan::pf();
        plan.stages[0].algorithm = StageAlgorithm::Nsga2 {
            tournament: Some(tournament_size),
        };
        plan
    }

    /// pfCLR under the SPEA2 backend (the `ablation_moea` study).
    pub fn pf_spea2() -> Self {
        CampaignPlan {
            name: "pfCLR/spea2".to_owned(),
            stages: vec![StagePlan {
                algorithm: StageAlgorithm::Spea2,
                ..StagePlan::nsga2("pfCLR/spea2", ChoiceMode::ParetoFiltered, 7)
            }],
        }
    }

    /// The proposed methodology (Fig. 4(b)): a full pf stage whose front
    /// seeds an additional full-space fc stage; fronts merged.
    pub fn proposed() -> Self {
        let fc_stage = StagePlan {
            seed_from: vec![0],
            ..StagePlan::nsga2("proposed/fc-stage", ChoiceMode::Full, 4)
        };
        CampaignPlan {
            name: "proposed".to_owned(),
            stages: vec![
                StagePlan::nsga2("proposed/pf-stage", ChoiceMode::ParetoFiltered, 2),
                fc_stage,
            ],
        }
    }

    /// One single-degree-of-freedom baseline stage for `layer`.
    pub fn single_layer(layer: Layer) -> Self {
        CampaignPlan {
            name: layer.name().to_owned(),
            stages: vec![StagePlan {
                library: LibrarySource::SingleLayer(layer),
                ..StagePlan::nsga2(layer.name(), ChoiceMode::Full, 10 + layer as u64)
            }],
        }
    }

    /// The other-layer-agnostic baseline (Fig. 7): all four single-layer
    /// stages, each on a quarter of the generation budget, merged and
    /// Pareto-filtered.
    pub fn agnostic() -> Self {
        CampaignPlan {
            name: "Agnostic".to_owned(),
            stages: Layer::ALL
                .iter()
                .map(|&layer| StagePlan {
                    library: LibrarySource::SingleLayer(layer),
                    generations_divisor: Layer::ALL.len(),
                    ..StagePlan::nsga2(layer.name(), ChoiceMode::Full, 10 + layer as u64)
                })
                .collect(),
        }
    }

    /// The pruning ablation: a pfCLR-shaped stage over random per-group
    /// subsets of the full space.
    pub fn random_subset(subset_seed: u64) -> Self {
        CampaignPlan {
            name: "random-subset".to_owned(),
            stages: vec![StagePlan {
                library: LibrarySource::RandomSubset(subset_seed),
                ..StagePlan::nsga2("random-subset", ChoiceMode::ParetoFiltered, 5)
            }],
        }
    }

    /// Appends a stage to the plan (builder style).
    ///
    /// # Examples
    ///
    /// A custom two-stage plan with an explicit seeding edge:
    ///
    /// ```
    /// use clre::campaign::{CampaignPlan, StagePlan};
    /// use clre::encoding::ChoiceMode;
    ///
    /// let plan = CampaignPlan::named("pf-then-fc")
    ///     .with_stage(StagePlan::nsga2("pf", ChoiceMode::ParetoFiltered, 2))
    ///     .with_stage(StagePlan::nsga2("fc", ChoiceMode::Full, 4).with_seed_from(0));
    /// assert_eq!(plan.stages.len(), 2);
    /// assert_eq!(plan.stages[1].seed_from, vec![0]);
    /// ```
    #[must_use]
    pub fn with_stage(mut self, stage: StagePlan) -> Self {
        self.stages.push(stage);
        self
    }

    /// An empty plan with the given campaign name; add stages with
    /// [`CampaignPlan::with_stage`]. The name must be whitespace-free.
    pub fn named(name: impl Into<String>) -> Self {
        CampaignPlan {
            name: name.into(),
            stages: Vec::new(),
        }
    }

    /// The island-model expansion of this plan with the default two
    /// migration epochs: `islands` independent subpopulation lineages,
    /// each a full copy of the plan under a distinct salted RNG stream,
    /// with each epoch's entry stage seeded by the previous epoch's
    /// fronts of its own lineage *and* its ring neighbor (see
    /// [`CampaignPlan::islands_with_epochs`]).
    ///
    /// The resulting plan is named `{name}/islands{n}` and runs on the
    /// ordinary [`ClrEarly::run`] path: stages execute in deterministic
    /// order and fronts merge through the indexed-slot concluder, so
    /// the final front is bit-identical for every evaluation backend
    /// and worker count. `islands(1)` still runs two chained epochs of
    /// the plan (a seeded restart); the identity expansion is
    /// `islands_with_epochs(1, 1)`.
    ///
    /// # Panics
    ///
    /// As [`CampaignPlan::islands_with_epochs`].
    #[must_use]
    pub fn islands(&self, islands: usize) -> Self {
        self.islands_with_epochs(islands, 2)
    }

    /// The island-model expansion with an explicit epoch count.
    ///
    /// The plan's stage list is replicated `islands × epochs` times, in
    /// epoch-major order. Block `(e, i)` keeps the base plan's internal
    /// seeding edges (remapped into the block) and derives its RNG
    /// streams by adding `block « 32` to every stage salt, so island
    /// lineages never share a generation's random stream. For `e > 0`,
    /// the block's first stage gains two migration edges: the final
    /// stage of block `(e−1, i)` and of block `(e−1, (i+1) mod n)` —
    /// front points travel the ring exactly like the proposed flow's
    /// pf → fc hand-off, which keeps checkpoint/resume and determinism
    /// arguments unchanged. Per-stage generation budgets are divided by
    /// `epochs` so one lineage spends the same generation budget as the
    /// base plan.
    ///
    /// `islands_with_epochs(1, 1)` returns the plan unchanged (same
    /// name, no label suffixes).
    ///
    /// # Panics
    ///
    /// Panics if `islands == 0` or `epochs == 0`, on a structurally
    /// invalid base plan, or when `epochs > 1` and the plan's first
    /// stage is not NSGA-II (migration seeds an unseedable stage).
    #[must_use]
    pub fn islands_with_epochs(&self, islands: usize, epochs: usize) -> Self {
        assert!(islands > 0, "island count must be at least 1");
        assert!(epochs > 0, "epoch count must be at least 1");
        self.assert_well_formed();
        if islands == 1 && epochs == 1 {
            return self.clone();
        }
        if epochs > 1 {
            assert!(
                self.stages[0].algorithm.tag() == AlgorithmTag::Nsga2,
                "island migration seeds the first stage, which must be NSGA-II"
            );
        }
        let base_len = self.stages.len();
        let mut stages = Vec::with_capacity(base_len * islands * epochs);
        for epoch in 0..epochs {
            for island in 0..islands {
                let block = epoch * islands + island;
                let block_start = block * base_len;
                for (offset, base) in self.stages.iter().enumerate() {
                    let mut stage = base.clone();
                    stage.label = format!("{}#e{epoch}i{island}", base.label);
                    stage.salt = base.salt.wrapping_add((block as u64) << 32);
                    stage.generations_divisor *= epochs;
                    stage.seed_from = base.seed_from.iter().map(|&s| s + block_start).collect();
                    if offset == 0 && epoch > 0 {
                        let last_of =
                            |isl: usize| ((epoch - 1) * islands + isl) * base_len + (base_len - 1);
                        stage.seed_from.push(last_of(island));
                        if islands > 1 {
                            stage.seed_from.push(last_of((island + 1) % islands));
                        }
                    }
                    stages.push(stage);
                }
            }
        }
        CampaignPlan {
            name: format!("{}/islands{islands}", self.name),
            stages,
        }
    }

    /// Structural sanity of the stage graph.
    ///
    /// # Panics
    ///
    /// Panics on an empty plan, whitespace in labels/name, a seeding
    /// edge that does not point backwards, or a seeded SPEA2 stage.
    fn assert_well_formed(&self) {
        assert!(!self.stages.is_empty(), "campaign plan has no stages");
        assert!(
            !self.name.contains(char::is_whitespace),
            "campaign name must be whitespace-free"
        );
        for (i, stage) in self.stages.iter().enumerate() {
            assert!(
                !stage.label.contains(char::is_whitespace),
                "stage labels must be whitespace-free"
            );
            assert!(stage.generations_divisor > 0, "divisor must be at least 1");
            for &src in &stage.seed_from {
                assert!(src < i, "seeding edges must point to earlier stages");
                assert!(
                    stage.algorithm.tag() == AlgorithmTag::Nsga2,
                    "SPEA2 stages cannot be seeded"
                );
            }
        }
    }
}

/// Outcome of one supervised campaign stage.
enum StageOutcome {
    /// The stage ran to its generation budget.
    Complete {
        /// The stage's front (boxed: it dwarfs the other variant);
        /// health cumulative up to this stage.
        result: Box<FrontResult>,
        /// All approximation-set genomes (seeds for downstream stages).
        genomes: Vec<Genome>,
    },
    /// The supervisor's crash-injection seam fired; a checkpoint is on
    /// disk.
    Interrupted {
        /// Generations completed when the stage stopped.
        generation: usize,
    },
}

/// Outcome of the generic supervised drive loop (pre-metrics).
enum SupervisedDrive {
    Complete {
        members: Vec<clre_moea::Individual<Genome>>,
        evaluations: usize,
        health: RunHealth,
    },
    Interrupted {
        generation: usize,
    },
}

/// Checkpoint identity of the stage being driven.
struct CheckpointMeta<'b> {
    method: &'b str,
    algorithm: AlgorithmTag,
    stage: u32,
    budget: &'b StageBudget,
    objective_count: usize,
    completed: &'b [CompletedStage],
}

impl<'a> ClrEarly<'a> {
    /// Runs a campaign plan without supervision: every stage is driven
    /// through the shared [`EvolutionState`] path and the executor, and
    /// the stage fronts are merged (single-stage plans return that
    /// stage's front directly). Deterministic in `budget.seed`; the
    /// built-in plans reproduce the corresponding `run_*` results
    /// bit-exactly.
    ///
    /// # Errors
    ///
    /// Propagates codec construction and (for single-layer stages)
    /// task-level DSE failures.
    ///
    /// # Panics
    ///
    /// Panics on a structurally invalid plan (empty, whitespace labels,
    /// forward seeding edges, seeded SPEA2 stages).
    pub fn run(&self, plan: &CampaignPlan, budget: &StageBudget) -> Result<FrontResult, DseError> {
        plan.assert_well_formed();
        let mut results: Vec<FrontResult> = Vec::with_capacity(plan.stages.len());
        let mut stage_genomes: Vec<Vec<Genome>> = Vec::with_capacity(plan.stages.len());
        for stage in &plan.stages {
            let seeds = stage
                .seed_from
                .iter()
                .flat_map(|&i| stage_genomes[i].iter().cloned())
                .collect();
            let (result, genomes) = self.run_plan_stage(stage, budget, seeds)?;
            results.push(result);
            stage_genomes.push(genomes);
        }
        Ok(conclude_plain(plan, results))
    }

    /// Deprecated name of [`ClrEarly::run`].
    ///
    /// # Errors
    ///
    /// As [`ClrEarly::run`].
    #[deprecated(note = "renamed to `ClrEarly::run`")]
    pub fn run_campaign(
        &self,
        plan: &CampaignPlan,
        budget: &StageBudget,
    ) -> Result<FrontResult, DseError> {
        self.run(plan, budget)
    }

    /// Runs a campaign plan under a [`RunSupervisor`]: evaluation
    /// failures are isolated and quarantined, and every stage
    /// checkpoints at the supervisor's cadence — the checkpoint records
    /// the stage index and the fronts of all completed stages, so
    /// [`ClrEarly::resume`] continues at the interrupted stage with
    /// earlier stages reconstituted, never re-run.
    ///
    /// # Errors
    ///
    /// Propagates codec construction and checkpoint I/O failures.
    ///
    /// # Panics
    ///
    /// As [`ClrEarly::run`].
    pub fn run_supervised(
        &self,
        plan: &CampaignPlan,
        budget: &StageBudget,
        supervisor: &RunSupervisor,
    ) -> Result<RunOutcome, DseError> {
        plan.assert_well_formed();
        self.bind_cache_sidecar(supervisor);
        self.drive_campaign(
            plan,
            budget,
            supervisor,
            Vec::new(),
            Vec::new(),
            RunHealth::default(),
            None,
            Vec::new(),
        )
    }

    /// Deprecated name of [`ClrEarly::run_supervised`].
    ///
    /// # Errors
    ///
    /// As [`ClrEarly::run_supervised`].
    #[deprecated(note = "renamed to `ClrEarly::run_supervised`")]
    pub fn run_campaign_supervised(
        &self,
        plan: &CampaignPlan,
        budget: &StageBudget,
        supervisor: &RunSupervisor,
    ) -> Result<RunOutcome, DseError> {
        self.run_supervised(plan, budget, supervisor)
    }

    /// Resumes an interrupted supervised campaign from the supervisor's
    /// checkpoint file and drives it to completion (unless the
    /// supervisor's crash-injection seam interrupts it again).
    ///
    /// The checkpoint's configuration echo (campaign name, stage index
    /// and algorithm, budget, seed, objective count, genome shape) is
    /// validated against `plan` and this orchestrator first; any
    /// mismatch is a [`DseError::Checkpoint`]. Because the checkpoint
    /// restores the exact population/archive, RNG state words and stage
    /// bookkeeping, the resumed campaign reproduces the uninterrupted
    /// campaign's final front bit-for-bit — for NSGA-II and SPEA2 stages
    /// alike.
    ///
    /// A corrupt or truncated primary checkpoint is not fatal: the load
    /// falls back through the rotation chain (`.1`, `.2`, …) to the
    /// newest file whose integrity digest verifies, losing at most the
    /// generations since that rotation. Every skipped file is counted in
    /// [`RunHealth::checkpoint_fallbacks`]. The quarantine sidecar is
    /// re-read alongside (malformed lines skipped and counted in
    /// [`RunHealth::sidecar_lines_skipped`]) so previously quarantined
    /// genomes stay visible in the resumed run's sidecar.
    ///
    /// # Errors
    ///
    /// [`DseError::Checkpoint`] when no file in the rotation chain loads,
    /// or for a mismatched checkpoint; otherwise as for the supervised
    /// runs.
    ///
    /// # Panics
    ///
    /// As [`ClrEarly::run`].
    pub fn resume(
        &self,
        plan: &CampaignPlan,
        budget: &StageBudget,
        supervisor: &RunSupervisor,
    ) -> Result<RunOutcome, DseError> {
        plan.assert_well_formed();
        // Warm-start: load the persisted cache before the completed
        // stages are reconstituted, so their re-annotation is answered
        // from the sidecar instead of re-scheduling every front genome.
        self.bind_cache_sidecar(supervisor);
        let (cp, fallbacks) = Checkpoint::load_with_fallback(
            supervisor.checkpoint_path(),
            supervisor.config().keep_checkpoints,
        )?;
        self.validate_campaign_checkpoint(plan, &cp, budget)?;
        let Checkpoint {
            completed,
            state,
            mut health,
            ..
        } = cp;
        if health.resumed_from_generation.is_none() {
            health.resumed_from_generation = Some(state.generation);
        }
        health.checkpoint_fallbacks += fallbacks;
        let (quarantine_seed, malformed) =
            read_quarantine_sidecar(&quarantine_sidecar_path(supervisor.checkpoint_path()))?;
        health.sidecar_lines_skipped += malformed;
        // Completed stages are reconstituted from their checkpointed
        // genomes: metrics (and thus objectives) are a pure function of
        // the genome, so the fronts need no re-evaluation.
        let mut results = Vec::with_capacity(completed.len());
        for (done, stage) in completed.iter().zip(&plan.stages) {
            results.push(self.front_from_genomes(
                stage,
                &done.label,
                &done.genomes,
                done.evaluations,
            )?);
        }
        self.drive_campaign(
            plan,
            budget,
            supervisor,
            completed,
            results,
            health,
            Some(state),
            quarantine_seed,
        )
    }

    /// Deprecated name of [`ClrEarly::resume`].
    ///
    /// # Errors
    ///
    /// As [`ClrEarly::resume`].
    #[deprecated(note = "renamed to `ClrEarly::resume`")]
    pub fn resume_campaign(
        &self,
        plan: &CampaignPlan,
        budget: &StageBudget,
        supervisor: &RunSupervisor,
    ) -> Result<RunOutcome, DseError> {
        self.resume(plan, budget, supervisor)
    }

    /// The shared supervised loop over a plan's stages, starting at
    /// stage `completed.len()` (fresh runs pass empty vectors, resumes
    /// pass the reconstituted prefix plus the interrupted stage's
    /// snapshot).
    #[allow(clippy::too_many_arguments)]
    fn drive_campaign(
        &self,
        plan: &CampaignPlan,
        budget: &StageBudget,
        supervisor: &RunSupervisor,
        mut completed: Vec<CompletedStage>,
        mut results: Vec<FrontResult>,
        base_health: RunHealth,
        mut resume: Option<EvoSnapshot<Genome>>,
        mut quarantine_seed: Vec<QuarantineRecord>,
    ) -> Result<RunOutcome, DseError> {
        let mut health = base_health;
        for index in completed.len()..plan.stages.len() {
            let stage = &plan.stages[index];
            let seeds = stage
                .seed_from
                .iter()
                .flat_map(|&i| completed[i].genomes.iter().cloned())
                .collect();
            let outcome = self.run_plan_stage_supervised(
                plan,
                index,
                budget,
                supervisor,
                &completed,
                seeds,
                health.clone(),
                resume.take(),
                std::mem::take(&mut quarantine_seed),
            )?;
            match outcome {
                StageOutcome::Interrupted { generation } => {
                    return Ok(RunOutcome::Interrupted {
                        stage: u32::try_from(index).expect("stage index fits u32"),
                        generation,
                    });
                }
                StageOutcome::Complete { result, genomes } => {
                    // Stage health reports are cumulative: the next
                    // stage builds on this one's totals.
                    health = result.health.clone();
                    completed.push(CompletedStage {
                        label: stage.label.clone(),
                        evaluations: result.evaluations,
                        genomes,
                    });
                    results.push(*result);
                }
            }
        }
        let mut final_result = conclude_plain(plan, results);
        health.degraded_analyses += self.tdse_health.degraded_analyses;
        final_result.health = health;
        remove_checkpoint_files(
            supervisor.checkpoint_path(),
            supervisor.config().keep_checkpoints,
        );
        Ok(RunOutcome::Complete(final_result))
    }

    /// A stage problem over `codec` with this orchestrator's objective
    /// set, QoS spec and (if attached) fitness cache. When the
    /// orchestrator carries a remote app spec ([`ClrEarly::with_remote`])
    /// and the caller passes the stage, the problem is additionally
    /// tagged with its `clre-eval v1` context so stage executors with an
    /// [`EvalBackend`](clre_exec::EvalBackend) can ship its evaluations
    /// out of process.
    fn stage_problem<'b>(&self, codec: Codec<'b>, stage: Option<&StagePlan>) -> SystemProblem<'b> {
        let problem = SystemProblem::new(codec, self.objectives.clone(), self.spec);
        let problem = match &self.cache {
            Some(cache) => problem.with_cache(Arc::clone(cache)),
            None => problem,
        };
        match (&self.remote, stage) {
            (Some((app, scenario)), Some(stage)) => {
                let context = crate::remote::RemoteContext {
                    app: app.clone(),
                    scenario: *scenario,
                    mode: stage.mode,
                    library: stage.library,
                    digest: problem.content_digest(),
                };
                problem.with_remote(context.encode())
            }
            _ => problem,
        }
    }

    /// Binds the attached cache's persistence sidecar next to the
    /// supervisor's checkpoint file (idempotent; a cache bound earlier —
    /// e.g. to a sweep-wide sidecar — keeps its binding). Failures are
    /// swallowed: the cache is an accelerator, and a read-only disk must
    /// degrade it to in-memory, not fail the campaign.
    fn bind_cache_sidecar(&self, supervisor: &RunSupervisor) {
        if let Some(cache) = &self.cache {
            if !cache.is_bound() {
                let _ = cache.bind_sidecar(&cache_sidecar_path(supervisor.checkpoint_path()));
            }
        }
    }

    /// Resolves a stage's implementation library (also used by the
    /// remote-evaluation vocabulary to mirror stage construction).
    pub(crate) fn resolve_library(
        &self,
        source: LibrarySource,
    ) -> Result<Cow<'_, ImplLibrary>, DseError> {
        match source {
            LibrarySource::Main => Ok(Cow::Borrowed(&self.library)),
            LibrarySource::SingleLayer(layer) => {
                let (catalog, policy) = match layer {
                    Layer::Dvfs => (vec![ClrConfig::unprotected()], DvfsPolicy::All),
                    Layer::Hw => (ClrConfig::hw_only_catalog(), DvfsPolicy::NominalOnly),
                    Layer::Ssw => (ClrConfig::ssw_only_catalog(), DvfsPolicy::NominalOnly),
                    Layer::Asw => (ClrConfig::asw_only_catalog(), DvfsPolicy::NominalOnly),
                };
                let tdse = self
                    .tdse
                    .clone()
                    .with_clr_catalog(catalog)?
                    .with_dvfs_policy(policy);
                Ok(Cow::Owned(build_library(self.graph, self.platform, &tdse)?))
            }
            LibrarySource::RandomSubset(seed) => {
                Ok(Cow::Owned(self.library.with_random_subsets(seed)))
            }
        }
    }

    /// One unsupervised stage: build codec/problem/variation, drive the
    /// backend through [`EvolutionState`], realize the front points.
    fn run_plan_stage(
        &self,
        stage: &StagePlan,
        budget: &StageBudget,
        seeds: Vec<Genome>,
    ) -> Result<(FrontResult, Vec<Genome>), DseError> {
        let library = self.resolve_library(stage.library)?;
        let codec = Codec::new(self.graph, self.platform, &library, stage.mode)?;
        let problem = self.stage_problem(codec.clone(), Some(stage));
        let exec = self.stage_exec(&stage.label);
        let outcome = {
            let variation = ClrVariation::new(&codec);
            match stage.algorithm {
                StageAlgorithm::Nsga2 { tournament } => {
                    let mut config = budget.nsga2_config(stage.generations(budget), stage.salt);
                    if let Some(k) = tournament {
                        config = config.with_tournament_size(k);
                    }
                    let ga = Nsga2::new(problem, variation, config).with_seeds(seeds);
                    run_to_completion::<_, Nsga2State<Genome>>(&ga, &exec)
                }
                StageAlgorithm::Spea2 => {
                    debug_assert!(seeds.is_empty(), "SPEA2 stages cannot be seeded");
                    let config =
                        Spea2Config::new(budget.population, stage.generations(budget).max(1))
                            .with_seed(stage_seed(budget, stage.salt));
                    let ga = Spea2::new(problem, variation, config);
                    run_to_completion::<_, Spea2State<Genome>>(&ga, &exec)
                }
            }
        };
        let metrics_problem = self.stage_problem(codec, None);
        let mut points = Vec::with_capacity(outcome.members.len());
        let mut genomes = Vec::with_capacity(outcome.members.len());
        for ind in outcome.members {
            points.push(FrontPoint {
                objectives: ind.objectives.clone(),
                metrics: metrics_problem.metrics_of(&ind.genome),
                genome: ind.genome.clone(),
            });
            genomes.push(ind.genome);
        }
        Ok((
            FrontResult {
                method: stage.label.clone(),
                points: dedup_front(points),
                evaluations: outcome.evaluations,
                health: RunHealth::default(),
            },
            genomes,
        ))
    }

    /// One supervised stage: the same construction as
    /// [`ClrEarly::run_plan_stage`], but over a panic-isolating problem
    /// wrapper and with checkpointing threaded through the generic drive
    /// loop.
    #[allow(clippy::too_many_arguments)]
    fn run_plan_stage_supervised(
        &self,
        plan: &CampaignPlan,
        index: usize,
        budget: &StageBudget,
        supervisor: &RunSupervisor,
        completed: &[CompletedStage],
        seeds: Vec<Genome>,
        base_health: RunHealth,
        resume: Option<EvoSnapshot<Genome>>,
        quarantine_seed: Vec<QuarantineRecord>,
    ) -> Result<StageOutcome, DseError> {
        let stage = &plan.stages[index];
        let library = self.resolve_library(stage.library)?;
        let codec = Codec::new(self.graph, self.platform, &library, stage.mode)?;
        let problem = self.stage_problem(codec.clone(), Some(stage));
        let mut resilient = ResilientProblem::new(problem)
            .with_max_retries(supervisor.config().max_retries)
            .with_quarantine_seed(quarantine_seed);
        if let Some(deadline) = supervisor.config().eval_deadline {
            resilient = resilient.with_deadline(deadline);
        }
        if let Some(backoff) = supervisor.config().backoff {
            resilient = resilient.with_backoff(backoff);
        }
        if let Some(injector) = supervisor.fault_injector() {
            resilient = resilient.with_injector(injector);
        }
        let eval_health = resilient.health();
        let quarantine_log = resilient.quarantine_log();
        let exec = self.stage_exec(&stage.label);
        let meta = CheckpointMeta {
            method: &plan.name,
            algorithm: stage.algorithm.tag(),
            stage: u32::try_from(index).expect("stage index fits u32"),
            budget,
            objective_count: self.objectives.len(),
            completed,
        };
        let drive = {
            let variation = ClrVariation::new(&codec);
            match stage.algorithm {
                StageAlgorithm::Nsga2 { tournament } => {
                    let mut config = budget.nsga2_config(stage.generations(budget), stage.salt);
                    if let Some(k) = tournament {
                        config = config.with_tournament_size(k);
                    }
                    // Seeds only shape init_state, so passing them on
                    // resume is a no-op.
                    let ga = Nsga2::new(resilient, variation, config).with_seeds(seeds);
                    supervise::<_, Nsga2State<Genome>>(
                        &ga,
                        &exec,
                        &meta,
                        supervisor,
                        &base_health,
                        &eval_health,
                        &quarantine_log,
                        self.cache.as_deref(),
                        resume,
                    )?
                }
                StageAlgorithm::Spea2 => {
                    debug_assert!(seeds.is_empty(), "SPEA2 stages cannot be seeded");
                    let config =
                        Spea2Config::new(budget.population, stage.generations(budget).max(1))
                            .with_seed(stage_seed(budget, stage.salt));
                    let ga = Spea2::new(resilient, variation, config);
                    supervise::<_, Spea2State<Genome>>(
                        &ga,
                        &exec,
                        &meta,
                        supervisor,
                        &base_health,
                        &eval_health,
                        &quarantine_log,
                        self.cache.as_deref(),
                        resume,
                    )?
                }
            }
        };
        match drive {
            SupervisedDrive::Interrupted { generation } => {
                Ok(StageOutcome::Interrupted { generation })
            }
            SupervisedDrive::Complete {
                members,
                evaluations,
                health,
            } => {
                let metrics_problem = self.stage_problem(codec, None);
                let mut points = Vec::with_capacity(members.len());
                let mut genomes = Vec::with_capacity(members.len());
                for ind in members {
                    // A fully quarantined population can push unevaluable
                    // genomes onto the approximation set; they carry no
                    // physical metrics, so they are dropped from the
                    // reported front (the quarantine events themselves
                    // are visible in `health`).
                    if let Ok(metrics) = metrics_problem.try_metrics_of(&ind.genome) {
                        points.push(FrontPoint {
                            objectives: ind.objectives.clone(),
                            metrics,
                            genome: ind.genome.clone(),
                        });
                    }
                    genomes.push(ind.genome);
                }
                Ok(StageOutcome::Complete {
                    result: Box::new(FrontResult {
                        method: stage.label.clone(),
                        points: dedup_front(points),
                        evaluations,
                        health,
                    }),
                    genomes,
                })
            }
        }
    }

    /// Reconstitutes a stage result from its checkpointed front genomes.
    fn front_from_genomes(
        &self,
        stage: &StagePlan,
        label: &str,
        genomes: &[Genome],
        evaluations: usize,
    ) -> Result<FrontResult, DseError> {
        let library = self.resolve_library(stage.library)?;
        let codec = Codec::new(self.graph, self.platform, &library, stage.mode)?;
        let problem = self.stage_problem(codec, None);
        let mut points = Vec::with_capacity(genomes.len());
        for g in genomes {
            if let Ok(metrics) = problem.try_metrics_of(g) {
                points.push(FrontPoint {
                    objectives: metrics.objective_vector(&self.objectives),
                    metrics,
                    genome: g.clone(),
                });
            }
        }
        Ok(FrontResult {
            method: label.to_owned(),
            points: dedup_front(points),
            evaluations,
            health: RunHealth::default(),
        })
    }

    fn validate_campaign_checkpoint(
        &self,
        plan: &CampaignPlan,
        cp: &Checkpoint,
        budget: &StageBudget,
    ) -> Result<(), DseError> {
        let mismatch =
            |what: String| -> Result<(), DseError> { Err(DseError::Checkpoint { what }) };
        if cp.method != plan.name {
            return mismatch(format!(
                "campaign mismatch: checkpoint {:?}, plan {:?}",
                cp.method, plan.name
            ));
        }
        let stage_index = cp.stage as usize;
        let Some(stage) = plan.stages.get(stage_index) else {
            return mismatch(format!(
                "stage index {} beyond plan with {} stages",
                cp.stage,
                plan.stages.len()
            ));
        };
        if cp.algorithm != stage.algorithm.tag() {
            return mismatch(format!(
                "algorithm mismatch at stage {}: checkpoint {}, plan {}",
                cp.stage,
                cp.algorithm.as_str(),
                stage.algorithm.tag().as_str()
            ));
        }
        if cp.completed.len() != stage_index {
            return mismatch(format!(
                "checkpoint at stage {} records {} completed stages",
                cp.stage,
                cp.completed.len()
            ));
        }
        for (done, planned) in cp.completed.iter().zip(&plan.stages) {
            if done.label != planned.label {
                return mismatch(format!(
                    "completed stage label mismatch: checkpoint {:?}, plan {:?}",
                    done.label, planned.label
                ));
            }
        }
        if cp.population_size != budget.population {
            return mismatch(format!(
                "population mismatch: checkpoint {}, budget {}",
                cp.population_size, budget.population
            ));
        }
        if cp.generations != budget.generations {
            return mismatch(format!(
                "generation budget mismatch: checkpoint {}, budget {}",
                cp.generations, budget.generations
            ));
        }
        if cp.seed != budget.seed {
            return mismatch(format!(
                "seed mismatch: checkpoint {}, budget {}",
                cp.seed, budget.seed
            ));
        }
        if cp.objective_count != self.objectives.len() {
            return mismatch(format!(
                "objective count mismatch: checkpoint {}, run {}",
                cp.objective_count,
                self.objectives.len()
            ));
        }
        if cp.state.generation > stage.generations(budget) {
            return mismatch(format!(
                "corrupt snapshot: generation {} beyond stage budget {}",
                cp.state.generation,
                stage.generations(budget)
            ));
        }
        let task_count = self.graph.tasks().len();
        let genome_shapes = cp
            .state
            .population
            .iter()
            .chain(&cp.state.archive)
            .map(|ind| &ind.genome)
            .chain(cp.completed.iter().flat_map(|s| s.genomes.iter()));
        for g in genome_shapes {
            if g.len() != task_count {
                return mismatch(format!(
                    "genome length {} does not match application task count {task_count}",
                    g.len()
                ));
            }
        }
        Ok(())
    }
}

/// The per-stage GA seed (the historic salt scheme).
fn stage_seed(budget: &StageBudget, salt: u64) -> u64 {
    budget.seed.wrapping_mul(0x9E37_79B9).wrapping_add(salt)
}

/// Drives `alg` to completion through the trait (bit-identical to the
/// backend's own `run_with`).
fn run_to_completion<A, S: EvolutionState<A, Genome = Genome>>(
    alg: &A,
    exec: &Executor,
) -> EvoOutcome<Genome> {
    let mut state = S::init_with(alg, exec);
    while state.step_with(alg, exec) {}
    state.finalize(alg)
}

/// NSGA-II's rank-0 set (and merged fronts) may contain exact duplicates
/// (neither copy strictly dominates the other); report each point once.
///
/// Objectives are borrowed into one flat matrix and survivors are moved
/// out by keep-mask — no per-point clones.
fn dedup_front(points: Vec<FrontPoint>) -> Vec<FrontPoint> {
    let cols = points.first().map_or(0, |p| p.objectives.len());
    let mut objs = ObjectiveMatrix::with_capacity(cols, points.len());
    for p in &points {
        objs.push_row(&p.objectives);
    }
    let mut keep = vec![false; points.len()];
    for i in clre_moea::kernels::non_dominated_matrix(&objs) {
        keep[i] = true;
    }
    points
        .into_iter()
        .zip(keep)
        .filter_map(|(p, k)| k.then_some(p))
        .collect()
}

/// Final-result assembly shared by the plain and supervised paths: a
/// single-stage plan's result is reported directly under the campaign
/// name; multi-stage plans are Pareto-merged.
fn conclude_plain(plan: &CampaignPlan, mut results: Vec<FrontResult>) -> FrontResult {
    if results.len() == 1 {
        let mut r = results.pop().expect("one result");
        r.method = plan.name.clone();
        r
    } else {
        FrontResult::merge(plan.name.clone(), results.iter())
    }
}

/// The generic supervised drive loop: step-wise evolution over a
/// panic-isolating problem, checkpointing through a [`CheckpointWriter`]
/// at the supervisor's cadence, with the crash-injection seam honoured
/// before every generation. Works identically for NSGA-II and SPEA2
/// states — this is the single copy of the supervision plumbing.
#[allow(clippy::too_many_arguments)]
fn supervise<A, S: EvolutionState<A, Genome = Genome>>(
    ga: &A,
    exec: &Executor,
    meta: &CheckpointMeta<'_>,
    supervisor: &RunSupervisor,
    base_health: &RunHealth,
    eval_health: &crate::resilience::HealthHandle,
    quarantine_log: &std::sync::Arc<std::sync::Mutex<Vec<crate::resilience::QuarantineRecord>>>,
    cache: Option<&EvalCache>,
    resume: Option<EvoSnapshot<Genome>>,
) -> Result<SupervisedDrive, DseError> {
    let fresh = resume.is_none();
    let mut state = match resume {
        Some(snapshot) => S::restore(snapshot),
        None => S::init_with(ga, exec),
    };
    let mut writer = CheckpointWriter::new(supervisor.config());
    let mut checkpoints = 0usize;
    let health_now = |checkpoints: usize| {
        let mut h = base_health.clone();
        h.merge(&eval_health.lock().expect("run health poisoned"));
        h.checkpoints_written += checkpoints;
        // Cache counters are live process-wide totals of the attached
        // cache (sidecar warm-start loads are not counted as activity),
        // so they are stamped, not accumulated, to stay monotone across
        // the stages of one campaign.
        if let Some(cache) = cache {
            let counts = cache.counts();
            h.cache_hits = counts.hits;
            h.cache_misses = counts.misses;
            h.cache_inserts = counts.inserts;
        }
        h
    };
    // Checkpoints carry nothing thread-dependent: the state's population
    // and RNG words are identical for any worker count, and the health
    // counters are totals, not per-worker data.
    let save =
        |writer: &mut CheckpointWriter, state: &S, health: RunHealth| -> Result<(), DseError> {
            let cp = Checkpoint {
                method: meta.method.to_owned(),
                algorithm: meta.algorithm,
                stage: meta.stage,
                population_size: meta.budget.population,
                generations: meta.budget.generations,
                seed: meta.budget.seed,
                objective_count: meta.objective_count,
                completed: meta.completed.to_vec(),
                state: state.snapshot(),
                health,
            };
            writer.save(
                &cp,
                supervisor.checkpoint_path(),
                supervisor.config().keep_checkpoints,
            )?;
            write_quarantine_sidecar(
                &quarantine_sidecar_path(supervisor.checkpoint_path()),
                &quarantine_log.lock().expect("quarantine log poisoned"),
            )
        };
    // Stamp the cumulative quarantine/degraded counters onto the trace
    // record of the batch that just ran (no batch ran on resume).
    let annotate = || {
        let h = health_now(0);
        exec.annotate_health(h.quarantined, h.degraded_analyses);
        exec.annotate_faults(h.timeouts, h.backoff_ms, h.injected, h.recovered);
        if let Some(cache) = cache {
            let counts = cache.fitness_counts();
            exec.annotate_cache(counts.hits, counts.misses);
        }
    };
    if fresh {
        annotate();
        exec.flush_trace();
    }

    loop {
        if supervisor.should_interrupt(meta.stage, state.generation()) {
            checkpoints += 1;
            let health = health_now(checkpoints);
            let generation = state.generation();
            save(&mut writer, &state, health)?;
            exec.flush_trace();
            return Ok(SupervisedDrive::Interrupted { generation });
        }
        if !state.step_with(ga, exec) {
            break;
        }
        annotate();
        // Push the finalized trace line to any attached live stream now,
        // not at run end — a socket consumer sees each generation as it
        // completes.
        exec.flush_trace();
        if state.generation() % supervisor.config().every_generations == 0 {
            checkpoints += 1;
            let health = health_now(checkpoints);
            save(&mut writer, &state, health)?;
        }
    }
    // Stage-end sidecar write, so triage data survives even when the run
    // completes and the checkpoints are cleaned up.
    write_quarantine_sidecar(
        &quarantine_sidecar_path(supervisor.checkpoint_path()),
        &quarantine_log.lock().expect("quarantine log poisoned"),
    )?;

    let health = health_now(checkpoints);
    let outcome = state.finalize(ga);
    Ok(SupervisedDrive::Complete {
        members: outcome.members,
        evaluations: outcome.evaluations,
        health,
    })
}

//! Fault-tolerant DSE runtime: run health accounting, panic/error-isolated
//! candidate evaluation, and persistent GA checkpoints.
//!
//! Long early-stage DSE campaigns fail for boring reasons — a pathological
//! candidate panics the evaluator, a numeric corner case surfaces hours in,
//! the host machine reboots. This module keeps such events from destroying
//! a run:
//!
//! * [`RunHealth`] — counters describing everything non-nominal that
//!   happened during a run (caught panics, typed evaluation errors,
//!   retries, quarantined candidates, degraded Markov analyses,
//!   checkpoints written, resume point). Attached to
//!   [`FrontResult`](crate::methodology::FrontResult) by the supervised
//!   entry points.
//! * [`ResilientProblem`] — wraps any [`FallibleProblem`] so a panicking
//!   or erroring fitness evaluation is caught, retried a bounded number
//!   of times, and finally *quarantined*: the candidate receives
//!   [`QUARANTINE_OBJECTIVE`] on every axis plus an equal constraint
//!   violation, so Deb's constraint-domination ranks it behind every
//!   healthy individual and selection breeds it out.
//! * [`Checkpoint`] — a versioned, self-validating, plain-text snapshot
//!   of a GA stage (generation index, evaluated population, RNG state
//!   words, stage bookkeeping). Written atomically (temp file + rename)
//!   by the supervised runs in [`crate::methodology`] and decoded by
//!   [`ClrEarly::resume_supervised`](crate::ClrEarly::resume_supervised),
//!   which deterministically continues to the *identical* final front.
//! * [`RunSupervisor`] / [`SupervisorConfig`] — where checkpoints go, how
//!   often they are written, and how many retries a failing evaluation
//!   gets. The supervisor also hosts the crash-injection seam used by the
//!   resilience integration tests.
//!
//! Checkpoints encode every `f64` through its IEEE-754 bit pattern, so a
//! resumed run replays bit-identically; the GA side of that guarantee is
//! the step-wise API of [`clre_moea::Nsga2`] (`init_state`/`step`/
//! `finalize`), whose RNG state words round-trip exactly.

use std::fmt::Write as _;
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use clre_model::{PeId, TaskId};
use clre_moea::{Evaluation, Individual, Nsga2State, Problem};
use rand::RngCore;

use crate::encoding::{Gene, Genome};
use crate::methodology::FrontResult;
use crate::problem::SystemProblem;
use crate::DseError;

/// Objective value assigned to quarantined candidates. Finite (so sorting
/// and crowding stay well-defined) but far beyond any physical metric;
/// combined with an equal constraint violation it loses every
/// constraint-domination comparison against a healthy individual.
pub const QUARANTINE_OBJECTIVE: f64 = 1.0e30;

/// Shared, thread-safe handle to a [`RunHealth`]: the resilient wrapper
/// mutates the counters from whichever worker thread evaluates a
/// candidate, and the GA driver reads them between generations.
pub type HealthHandle = Arc<Mutex<RunHealth>>;

/// Everything non-nominal that happened during a (possibly multi-stage,
/// possibly resumed) DSE run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunHealth {
    /// Evaluations that panicked and were caught.
    pub panics_isolated: usize,
    /// Evaluations that returned a typed error (or non-finite fitness).
    pub errors_isolated: usize,
    /// Re-evaluation attempts made after a caught failure.
    pub retries: usize,
    /// Candidates that exhausted their retries and were assigned
    /// [`QUARANTINE_OBJECTIVE`] fitness.
    pub quarantined: usize,
    /// Task-level Markov analyses answered by the degraded closed-form
    /// fallback instead of the matrix solver.
    pub degraded_analyses: usize,
    /// Checkpoints written by the supervisor.
    pub checkpoints_written: usize,
    /// Generation the run was resumed from, if it was resumed.
    pub resumed_from_generation: Option<usize>,
}

impl RunHealth {
    /// `true` when nothing non-nominal happened: no failures were
    /// isolated, nothing was quarantined, and no analysis degraded.
    /// (Checkpointing and resuming are nominal supervisor activity.)
    pub fn is_clean(&self) -> bool {
        self.panics_isolated == 0
            && self.errors_isolated == 0
            && self.retries == 0
            && self.quarantined == 0
            && self.degraded_analyses == 0
    }

    /// Folds another health report's counters into this one.
    pub fn merge(&mut self, other: &RunHealth) {
        self.panics_isolated += other.panics_isolated;
        self.errors_isolated += other.errors_isolated;
        self.retries += other.retries;
        self.quarantined += other.quarantined;
        self.degraded_analyses += other.degraded_analyses;
        self.checkpoints_written += other.checkpoints_written;
        if self.resumed_from_generation.is_none() {
            self.resumed_from_generation = other.resumed_from_generation;
        }
    }
}

/// A problem that can report evaluation failures as typed errors instead
/// of (only) panicking. [`ResilientProblem`] uses this channel to count
/// and classify failures without unwinding where possible; panics remain
/// the fallback channel for truly unexpected failures.
pub trait FallibleProblem: Problem {
    /// Fallible fitness evaluation.
    ///
    /// # Errors
    ///
    /// Implementation-specific evaluation failures.
    fn try_evaluate(&self, genome: &Self::Genome) -> Result<Evaluation, DseError>;

    /// A human-readable rendering of a genome for triage artifacts (the
    /// quarantine sidecar). The default is a placeholder; problems with a
    /// meaningful text form should override it.
    fn describe_genome(&self, _genome: &Self::Genome) -> String {
        "<genome>".to_owned()
    }
}

impl FallibleProblem for SystemProblem<'_> {
    fn try_evaluate(&self, genome: &Genome) -> Result<Evaluation, DseError> {
        SystemProblem::try_evaluate(self, genome)
    }

    fn describe_genome(&self, genome: &Genome) -> String {
        let mut out = String::new();
        encode_genome(&mut out, genome);
        out
    }
}

/// One quarantined candidate: what it looked like and why every attempt
/// to evaluate it failed. Collected by [`ResilientProblem`] and persisted
/// as the `quarantine.txt` triage sidecar by the supervised runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// The genome, rendered via [`FallibleProblem::describe_genome`].
    pub genome: String,
    /// The failure message of the last attempt (panic payload or typed
    /// error).
    pub error: String,
}

impl QuarantineRecord {
    /// One-line `quarantine-v1 error=… genome=…` sidecar form. The error
    /// string is flattened to a single line.
    pub fn line(&self) -> String {
        format!(
            "quarantine-v1 error={} genome={}",
            self.error.replace(['\n', '\r'], " "),
            self.genome,
        )
    }
}

/// Writes the quarantine triage sidecar: one [`QuarantineRecord::line`]
/// per record. An empty record set removes any stale sidecar instead of
/// writing an empty file.
///
/// # Errors
///
/// [`DseError::Checkpoint`] wrapping the underlying I/O failure.
pub fn write_quarantine_sidecar(path: &Path, records: &[QuarantineRecord]) -> Result<(), DseError> {
    if records.is_empty() {
        let _ = fs::remove_file(path);
        return Ok(());
    }
    let mut out = String::new();
    for r in records {
        let _ = writeln!(out, "{}", r.line());
    }
    fs::write(path, out).map_err(|e| bad(format!("writing {}: {e}", path.display())))
}

/// The conventional sidecar location: `quarantine.txt` next to the
/// checkpoint file.
pub fn quarantine_sidecar_path(checkpoint_path: &Path) -> PathBuf {
    checkpoint_path
        .parent()
        .map_or_else(|| PathBuf::from("quarantine.txt"), Path::to_path_buf)
        .join("quarantine.txt")
}

/// Panic- and error-isolating wrapper around a [`FallibleProblem`].
///
/// Every evaluation runs under [`catch_unwind`]; a panic or typed error
/// is retried up to `max_retries` times and then quarantined with
/// [`QUARANTINE_OBJECTIVE`] fitness. All events are tallied in a shared
/// [`RunHealth`] handle so the GA driver can report them after the run.
///
/// # Examples
///
/// ```
/// use clre::resilience::{FallibleProblem, ResilientProblem, QUARANTINE_OBJECTIVE};
/// use clre_moea::{Evaluation, Problem};
/// use rand::RngCore;
///
/// struct Fragile;
/// impl Problem for Fragile {
///     type Genome = u32;
///     fn objective_count(&self) -> usize { 1 }
///     fn random_genome(&self, _: &mut dyn RngCore) -> u32 { 0 }
///     fn evaluate(&self, g: &u32) -> Evaluation {
///         if *g == 13 { panic!("unlucky") }
///         Evaluation::feasible(vec![f64::from(*g)])
///     }
/// }
/// impl FallibleProblem for Fragile {
///     fn try_evaluate(&self, g: &u32) -> Result<Evaluation, clre::DseError> {
///         Ok(self.evaluate(g))
///     }
/// }
///
/// let p = ResilientProblem::new(Fragile);
/// let health = p.health();
/// assert_eq!(p.evaluate(&2).objectives, vec![2.0]);
/// assert_eq!(p.evaluate(&13).objectives, vec![QUARANTINE_OBJECTIVE]);
/// assert_eq!(health.lock().unwrap().quarantined, 1);
/// ```
#[derive(Debug)]
pub struct ResilientProblem<P: FallibleProblem> {
    inner: P,
    max_retries: usize,
    health: HealthHandle,
    quarantine_log: Arc<Mutex<Vec<QuarantineRecord>>>,
}

impl<P: FallibleProblem> ResilientProblem<P> {
    /// Wraps `inner` with one retry per failing evaluation.
    pub fn new(inner: P) -> Self {
        ResilientProblem {
            inner,
            max_retries: 1,
            health: Arc::new(Mutex::new(RunHealth::default())),
            quarantine_log: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Sets the retry budget per failing evaluation (builder style).
    /// Zero means quarantine on the first failure.
    #[must_use]
    pub fn with_max_retries(mut self, max_retries: usize) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Shared handle to the failure counters, live during the run.
    pub fn health(&self) -> HealthHandle {
        Arc::clone(&self.health)
    }

    /// Shared handle to the quarantine triage log: one record per
    /// candidate that exhausted its retries, in quarantine order.
    pub fn quarantine_log(&self) -> Arc<Mutex<Vec<QuarantineRecord>>> {
        Arc::clone(&self.quarantine_log)
    }

    fn health_mut(&self) -> std::sync::MutexGuard<'_, RunHealth> {
        self.health.lock().expect("run health poisoned")
    }

    fn quarantine(&self, genome: &P::Genome, error: String) -> Evaluation {
        self.health_mut().quarantined += 1;
        self.quarantine_log
            .lock()
            .expect("quarantine log poisoned")
            .push(QuarantineRecord {
                genome: self.inner.describe_genome(genome),
                error,
            });
        Evaluation::with_violation(
            vec![QUARANTINE_OBJECTIVE; self.inner.objective_count()],
            QUARANTINE_OBJECTIVE,
        )
    }
}

/// Renders a `catch_unwind` payload as text (`&str`/`String` payloads
/// verbatim, anything else a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

impl<P: FallibleProblem> Problem for ResilientProblem<P> {
    type Genome = P::Genome;

    fn objective_count(&self) -> usize {
        self.inner.objective_count()
    }

    fn random_genome(&self, rng: &mut dyn RngCore) -> Self::Genome {
        self.inner.random_genome(rng)
    }

    fn evaluate(&self, genome: &Self::Genome) -> Evaluation {
        let mut last_error = String::new();
        for attempt in 0..=self.max_retries {
            if attempt > 0 {
                self.health_mut().retries += 1;
            }
            // AssertUnwindSafe: the inner problem is only read here, and a
            // caught failure discards the attempt's partial state entirely.
            match catch_unwind(AssertUnwindSafe(|| self.inner.try_evaluate(genome))) {
                Ok(Ok(eval))
                    if eval.violation.is_finite()
                        && eval.objectives.iter().all(|v| v.is_finite()) =>
                {
                    return eval;
                }
                Ok(Ok(_)) => {
                    self.health_mut().errors_isolated += 1;
                    last_error = "non-finite fitness".to_owned();
                }
                Ok(Err(e)) => {
                    self.health_mut().errors_isolated += 1;
                    last_error = e.to_string();
                }
                Err(payload) => {
                    self.health_mut().panics_isolated += 1;
                    last_error = format!("panic: {}", panic_message(payload.as_ref()));
                }
            }
        }
        self.quarantine(genome, last_error)
    }
}

/// Where and how often a supervised run checkpoints, and how failures are
/// retried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// File the checkpoint is (atomically) written to.
    pub checkpoint_path: PathBuf,
    /// Checkpoint every this many generations (≥ 1).
    pub every_generations: usize,
    /// Retry budget per failing fitness evaluation.
    pub max_retries: usize,
    /// Number of checkpoint generations to keep (≥ 1). The newest lives
    /// at `checkpoint_path`; older generations are rotated to
    /// `<path>.1 … <path>.keep-1`, oldest pruned.
    pub keep_checkpoints: usize,
}

impl SupervisorConfig {
    /// Checkpoints to `path` every generation with one retry per failure,
    /// keeping only the newest checkpoint.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        SupervisorConfig {
            checkpoint_path: path.into(),
            every_generations: 1,
            max_retries: 1,
            keep_checkpoints: 1,
        }
    }

    /// Sets the checkpoint cadence in generations (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    #[must_use]
    pub fn with_interval(mut self, every: usize) -> Self {
        assert!(every > 0, "checkpoint interval must be at least 1");
        self.every_generations = every;
        self
    }

    /// Sets the per-evaluation retry budget (builder style).
    #[must_use]
    pub fn with_max_retries(mut self, max_retries: usize) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Sets how many checkpoint generations to keep (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `keep == 0`.
    #[must_use]
    pub fn with_keep_checkpoints(mut self, keep: usize) -> Self {
        assert!(keep > 0, "must keep at least one checkpoint");
        self.keep_checkpoints = keep;
        self
    }
}

/// The path of rotation slot `n` of `path` (`n ≥ 1`): `<path>.<n>`.
pub fn rotated_checkpoint_path(path: &Path, n: usize) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(format!(".{n}"));
    PathBuf::from(os)
}

/// Rotates existing checkpoint generations aside and prunes the oldest:
/// `<path>.keep-2 → <path>.keep-1`, …, `<path> → <path>.1`; everything at
/// slot `keep-1` and beyond is removed. With `keep == 1` this just prunes
/// stale rotation files. Called by [`Checkpoint::save_rotated`] before
/// installing a fresh checkpoint at `path`.
fn rotate_checkpoints(path: &Path, keep: usize) {
    // Prune slots that fall outside the retention window (also covers a
    // `keep` that shrank between runs, up to a generous scan bound).
    let scan_to = keep.max(8) + 8;
    for n in (keep.max(1) - 1).max(1)..=scan_to {
        let _ = fs::remove_file(rotated_checkpoint_path(path, n));
    }
    // Shift the survivors one slot older, oldest first.
    for n in (1..keep.max(1) - 1).rev() {
        let _ = fs::rename(
            rotated_checkpoint_path(path, n),
            rotated_checkpoint_path(path, n + 1),
        );
    }
    if keep > 1 {
        let _ = fs::rename(path, rotated_checkpoint_path(path, 1));
    }
}

/// Removes the checkpoint at `path` and every rotation slot next to it
/// (used once a supervised run completes).
pub fn remove_checkpoint_files(path: &Path, keep: usize) {
    let _ = fs::remove_file(path);
    for n in 1..=keep.max(8) + 8 {
        let _ = fs::remove_file(rotated_checkpoint_path(path, n));
    }
}

/// Drives a supervised run: owns the [`SupervisorConfig`] plus the
/// crash-injection seam used by the resilience tests.
#[derive(Debug, Clone)]
pub struct RunSupervisor {
    config: SupervisorConfig,
    interrupt_at: Option<(u32, usize)>,
}

impl RunSupervisor {
    /// A supervisor over the given configuration.
    pub fn new(config: SupervisorConfig) -> Self {
        RunSupervisor {
            config,
            interrupt_at: None,
        }
    }

    /// Test seam: simulate a crash once stage `stage` has completed
    /// `generation` generations — the run writes a final checkpoint and
    /// returns [`RunOutcome::Interrupted`] instead of finishing.
    /// `generation` must be below the stage's generation budget for the
    /// interrupt to fire.
    #[must_use]
    pub fn with_interrupt_at(mut self, stage: u32, generation: usize) -> Self {
        self.interrupt_at = Some((stage, generation));
        self
    }

    /// The supervisor configuration.
    pub fn config(&self) -> &SupervisorConfig {
        &self.config
    }

    /// The checkpoint file location.
    pub fn checkpoint_path(&self) -> &Path {
        &self.config.checkpoint_path
    }

    /// Whether the crash-injection seam fires at this stage/generation.
    pub fn should_interrupt(&self, stage: u32, generation: usize) -> bool {
        self.interrupt_at == Some((stage, generation))
    }
}

/// Result of a supervised run: either a finished front or a persisted
/// interruption that [`ClrEarly::resume_supervised`] can continue.
///
/// [`ClrEarly::resume_supervised`]: crate::ClrEarly::resume_supervised
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// The run finished; the checkpoint file has been removed.
    Complete(FrontResult),
    /// The run stopped early; a checkpoint describing this exact point is
    /// on disk.
    Interrupted {
        /// Stage index at the interruption (0-based).
        stage: u32,
        /// Generations the interrupted stage had completed.
        generation: usize,
    },
}

impl RunOutcome {
    /// Unwraps the completed front.
    ///
    /// # Panics
    ///
    /// Panics if the run was interrupted.
    pub fn expect_complete(self) -> FrontResult {
        match self {
            RunOutcome::Complete(r) => r,
            RunOutcome::Interrupted { stage, generation } => {
                panic!("run was interrupted at stage {stage}, generation {generation}")
            }
        }
    }
}

/// A persisted snapshot of one GA stage of a supervised run.
///
/// The `method`/`stage`/budget fields echo the run configuration and are
/// validated on resume — resuming a checkpoint against a different
/// problem or budget is a [`DseError::Checkpoint`], not silent garbage.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Method label (`"fcCLR"`, `"pfCLR"`, `"proposed"`).
    pub method: String,
    /// Stage index within the method (0-based; `proposed` has stages 0
    /// and 1).
    pub stage: u32,
    /// Population size of the interrupted stage.
    pub population_size: usize,
    /// Generation budget of the interrupted stage.
    pub generations: usize,
    /// User-level RNG seed of the run ([`StageBudget::seed`]).
    ///
    /// [`StageBudget::seed`]: crate::methodology::StageBudget
    pub seed: u64,
    /// System-level objective count.
    pub objective_count: usize,
    /// Fitness evaluations spent by *earlier* stages of the run.
    pub prior_evaluations: usize,
    /// Auxiliary genomes carried between stages (the pf-stage front that
    /// seeds and reconstitutes stage 1 of `proposed`).
    pub aux_genomes: Vec<Genome>,
    /// The GA state at the last completed generation boundary.
    pub state: Nsga2State<Genome>,
    /// Cumulative run health up to this snapshot.
    pub health: RunHealth,
}

const CHECKPOINT_HEADER: &str = "clrearly-checkpoint v1";

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_f64(tok: &str) -> Result<f64, DseError> {
    u64::from_str_radix(tok, 16)
        .map(f64::from_bits)
        .map_err(|_| bad(format!("malformed f64 bits {tok:?}")))
}

fn parse_u64(tok: &str) -> Result<u64, DseError> {
    tok.parse()
        .map_err(|_| bad(format!("malformed integer {tok:?}")))
}

fn parse_usize(tok: &str) -> Result<usize, DseError> {
    tok.parse()
        .map_err(|_| bad(format!("malformed integer {tok:?}")))
}

fn bad(what: impl Into<String>) -> DseError {
    DseError::Checkpoint { what: what.into() }
}

fn encode_genome(out: &mut String, genome: &Genome) {
    let _ = write!(out, "{}", genome.len());
    for g in genome {
        let _ = write!(out, " {}:{}:{}", g.task.index(), g.pe.index(), g.choice);
    }
}

fn parse_genome(tokens: &mut std::str::SplitWhitespace<'_>) -> Result<Genome, DseError> {
    let len = parse_usize(tokens.next().ok_or_else(|| bad("missing genome length"))?)?;
    let mut genome = Vec::with_capacity(len);
    for _ in 0..len {
        let tok = tokens.next().ok_or_else(|| bad("truncated genome"))?;
        let mut parts = tok.split(':');
        let mut next = |what: &str| {
            parts
                .next()
                .ok_or_else(|| bad(format!("gene missing {what} in {tok:?}")))
        };
        let task = parse_usize(next("task")?)?;
        let pe = parse_usize(next("pe")?)?;
        let choice = parse_usize(next("choice")?)?;
        genome.push(Gene {
            task: TaskId::new(u32::try_from(task).map_err(|_| bad("task id overflow"))?),
            pe: PeId::new(u32::try_from(pe).map_err(|_| bad("pe id overflow"))?),
            choice: u32::try_from(choice).map_err(|_| bad("choice index overflow"))?,
        });
    }
    Ok(genome)
}

impl Checkpoint {
    /// Serializes to the versioned plain-text format. All floats are
    /// stored as IEEE-754 bit patterns, so encode → decode round-trips
    /// bit-exactly.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{CHECKPOINT_HEADER}");
        let _ = writeln!(out, "method {}", self.method);
        let _ = writeln!(out, "stage {}", self.stage);
        let _ = writeln!(out, "population-size {}", self.population_size);
        let _ = writeln!(out, "generations {}", self.generations);
        let _ = writeln!(out, "seed {}", self.seed);
        let _ = writeln!(out, "objectives {}", self.objective_count);
        let _ = writeln!(out, "prior-evaluations {}", self.prior_evaluations);
        let h = &self.health;
        let _ = writeln!(
            out,
            "health {} {} {} {} {} {} {}",
            h.panics_isolated,
            h.errors_isolated,
            h.retries,
            h.quarantined,
            h.degraded_analyses,
            h.checkpoints_written,
            h.resumed_from_generation
                .map_or_else(|| "-".to_owned(), |g| g.to_string()),
        );
        let _ = writeln!(out, "aux {}", self.aux_genomes.len());
        for g in &self.aux_genomes {
            out.push_str("genome ");
            encode_genome(&mut out, g);
            out.push('\n');
        }
        let _ = writeln!(out, "generation {}", self.state.generation);
        let _ = writeln!(out, "evaluations {}", self.state.evaluations);
        let w = self.state.rng_state;
        let _ = writeln!(
            out,
            "rng {:016x} {:016x} {:016x} {:016x}",
            w[0], w[1], w[2], w[3]
        );
        let _ = writeln!(out, "population {}", self.state.population.len());
        for ind in &self.state.population {
            out.push_str("individual ");
            let _ = write!(out, "{} {}", f64_hex(ind.violation), ind.objectives.len());
            for &o in &ind.objectives {
                let _ = write!(out, " {}", f64_hex(o));
            }
            out.push(' ');
            encode_genome(&mut out, &ind.genome);
            out.push('\n');
        }
        out
    }

    /// Parses the text format produced by [`Checkpoint::encode`].
    ///
    /// # Errors
    ///
    /// [`DseError::Checkpoint`] on any structural or lexical mismatch.
    pub fn decode(text: &str) -> Result<Checkpoint, DseError> {
        let mut lines = text.lines();
        if lines.next() != Some(CHECKPOINT_HEADER) {
            return Err(bad("not a clrearly v1 checkpoint"));
        }
        // Fixed-order `key value...` lines; keyed parsing keeps mistakes
        // loud instead of positional.
        let mut field = |key: &str| -> Result<String, DseError> {
            let line = lines.next().ok_or_else(|| bad(format!("missing {key}")))?;
            line.strip_prefix(key)
                .and_then(|rest| rest.strip_prefix(' '))
                .map(str::to_owned)
                .ok_or_else(|| bad(format!("expected `{key} …`, found {line:?}")))
        };
        let method = field("method")?;
        let stage =
            u32::try_from(parse_u64(&field("stage")?)?).map_err(|_| bad("stage index overflow"))?;
        let population_size = parse_usize(&field("population-size")?)?;
        let generations = parse_usize(&field("generations")?)?;
        let seed = parse_u64(&field("seed")?)?;
        let objective_count = parse_usize(&field("objectives")?)?;
        let prior_evaluations = parse_usize(&field("prior-evaluations")?)?;

        let health_line = field("health")?;
        let mut toks = health_line.split_whitespace();
        let mut next_count = |what: &str| -> Result<usize, DseError> {
            parse_usize(
                toks.next()
                    .ok_or_else(|| bad(format!("health missing {what}")))?,
            )
        };
        let health = RunHealth {
            panics_isolated: next_count("panics")?,
            errors_isolated: next_count("errors")?,
            retries: next_count("retries")?,
            quarantined: next_count("quarantined")?,
            degraded_analyses: next_count("degraded")?,
            checkpoints_written: next_count("checkpoints")?,
            resumed_from_generation: match toks.next() {
                Some("-") | None => None,
                Some(tok) => Some(parse_usize(tok)?),
            },
        };

        let aux_count = parse_usize(&field("aux")?)?;
        let mut aux_genomes = Vec::with_capacity(aux_count);
        for _ in 0..aux_count {
            let line = field("genome")?;
            let mut toks = line.split_whitespace();
            aux_genomes.push(parse_genome(&mut toks)?);
            if toks.next().is_some() {
                return Err(bad("trailing tokens after aux genome"));
            }
        }

        let generation = parse_usize(&field("generation")?)?;
        let evaluations = parse_usize(&field("evaluations")?)?;
        let rng_line = field("rng")?;
        let mut rng_state = [0u64; 4];
        let mut toks = rng_line.split_whitespace();
        for w in &mut rng_state {
            let tok = toks.next().ok_or_else(|| bad("truncated rng state"))?;
            *w = u64::from_str_radix(tok, 16)
                .map_err(|_| bad(format!("malformed rng word {tok:?}")))?;
        }

        let pop_count = parse_usize(&field("population")?)?;
        let mut population = Vec::with_capacity(pop_count);
        for _ in 0..pop_count {
            let line = field("individual")?;
            let mut toks = line.split_whitespace();
            let violation = parse_f64(
                toks.next()
                    .ok_or_else(|| bad("individual missing violation"))?,
            )?;
            let obj_count =
                parse_usize(toks.next().ok_or_else(|| bad("individual missing arity"))?)?;
            let mut objectives = Vec::with_capacity(obj_count);
            for _ in 0..obj_count {
                objectives.push(parse_f64(
                    toks.next().ok_or_else(|| bad("truncated objectives"))?,
                )?);
            }
            let genome = parse_genome(&mut toks)?;
            if toks.next().is_some() {
                return Err(bad("trailing tokens after individual"));
            }
            population.push(Individual {
                genome,
                objectives,
                violation,
            });
        }

        Ok(Checkpoint {
            method,
            stage,
            population_size,
            generations,
            seed,
            objective_count,
            prior_evaluations,
            aux_genomes,
            state: Nsga2State {
                population,
                generation,
                evaluations,
                rng_state,
            },
            health,
        })
    }

    /// Atomically writes the checkpoint: the encoded text goes to a
    /// sibling temp file first and is renamed into place, so a crash
    /// mid-write never corrupts an existing good checkpoint.
    ///
    /// # Errors
    ///
    /// [`DseError::Checkpoint`] wrapping the I/O failure.
    pub fn save(&self, path: &Path) -> Result<(), DseError> {
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, self.encode())
            .map_err(|e| bad(format!("writing {}: {e}", tmp.display())))?;
        fs::rename(&tmp, path).map_err(|e| bad(format!("installing {}: {e}", path.display())))
    }

    /// [`Checkpoint::save`] with retention: the previous checkpoint
    /// generations are rotated to `<path>.1 … <path>.keep-1` (oldest
    /// pruned) before the new checkpoint is atomically installed at
    /// `path`. With `keep == 1` this is exactly [`Checkpoint::save`]
    /// (plus pruning of stale rotation files).
    ///
    /// # Errors
    ///
    /// [`DseError::Checkpoint`] wrapping the I/O failure of the install;
    /// rotation failures of older generations are ignored (retention is
    /// best-effort, the newest checkpoint is the contract).
    pub fn save_rotated(&self, path: &Path, keep: usize) -> Result<(), DseError> {
        rotate_checkpoints(path, keep);
        self.save(path)
    }

    /// Reads and decodes a checkpoint file.
    ///
    /// # Errors
    ///
    /// [`DseError::Checkpoint`] if the file is missing, unreadable, or
    /// malformed.
    pub fn load(path: &Path) -> Result<Checkpoint, DseError> {
        let text = fs::read_to_string(path)
            .map_err(|e| bad(format!("reading {}: {e}", path.display())))?;
        Checkpoint::decode(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clre_moea::Evaluation;

    fn gene(t: u32, p: u32, c: u32) -> Gene {
        Gene {
            task: TaskId::new(t),
            pe: PeId::new(p),
            choice: c,
        }
    }

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            method: "proposed".to_owned(),
            stage: 1,
            population_size: 2,
            generations: 8,
            seed: 42,
            objective_count: 2,
            prior_evaluations: 144,
            aux_genomes: vec![vec![gene(0, 1, 2), gene(1, 0, 0)]],
            state: Nsga2State {
                population: vec![
                    Individual {
                        genome: vec![gene(1, 2, 3), gene(0, 0, 1)],
                        objectives: vec![1.5e-3, -0.0],
                        violation: 0.0,
                    },
                    Individual {
                        genome: vec![gene(0, 1, 0), gene(1, 1, 7)],
                        objectives: vec![f64::MIN_POSITIVE, 1.0 / 3.0],
                        violation: QUARANTINE_OBJECTIVE,
                    },
                ],
                generation: 5,
                evaluations: 112,
                rng_state: [u64::MAX, 1, 0x0123_4567_89ab_cdef, 7],
            },
            health: RunHealth {
                panics_isolated: 1,
                errors_isolated: 2,
                retries: 3,
                quarantined: 1,
                degraded_analyses: 4,
                checkpoints_written: 6,
                resumed_from_generation: Some(3),
            },
        }
    }

    #[test]
    fn checkpoint_roundtrips_bit_exactly() {
        let cp = sample_checkpoint();
        let decoded = Checkpoint::decode(&cp.encode()).unwrap();
        assert_eq!(decoded, cp);
        // -0.0 == 0.0 under PartialEq; check the sign bit survived too.
        assert!(decoded.state.population[0].objectives[1].is_sign_negative());
    }

    #[test]
    fn checkpoint_roundtrips_none_resume_marker() {
        let mut cp = sample_checkpoint();
        cp.health.resumed_from_generation = None;
        cp.aux_genomes.clear();
        assert_eq!(Checkpoint::decode(&cp.encode()).unwrap(), cp);
    }

    #[test]
    fn decode_rejects_malformed_inputs() {
        let good = sample_checkpoint().encode();
        assert!(Checkpoint::decode("").is_err());
        assert!(Checkpoint::decode("other-format v9\n").is_err());
        // Truncation anywhere must error, never panic.
        for cut in [10, 40, 80, good.len() / 2, good.len() - 5] {
            assert!(
                Checkpoint::decode(&good[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
        let corrupt = good.replace("rng ", "rng zz ");
        assert!(Checkpoint::decode(&corrupt).is_err());
    }

    #[test]
    fn save_and_load_roundtrip() {
        let dir = std::env::temp_dir().join("clre-resilience-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.ckpt");
        let cp = sample_checkpoint();
        cp.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), cp);
        fs::remove_file(&path).unwrap();
        assert!(matches!(
            Checkpoint::load(&path),
            Err(DseError::Checkpoint { .. })
        ));
    }

    #[test]
    fn health_merge_and_cleanliness() {
        let mut a = RunHealth::default();
        assert!(a.is_clean());
        a.checkpoints_written = 3;
        assert!(a.is_clean(), "checkpointing is nominal");
        let b = RunHealth {
            panics_isolated: 1,
            retries: 2,
            resumed_from_generation: Some(4),
            ..RunHealth::default()
        };
        a.merge(&b);
        assert!(!a.is_clean());
        assert_eq!(a.panics_isolated, 1);
        assert_eq!(a.retries, 2);
        assert_eq!(a.checkpoints_written, 3);
        assert_eq!(a.resumed_from_generation, Some(4));
        // First resume point wins.
        a.merge(&RunHealth {
            resumed_from_generation: Some(9),
            ..RunHealth::default()
        });
        assert_eq!(a.resumed_from_generation, Some(4));
    }

    // A deliberately unreliable scalar problem for isolation tests.
    struct Flaky {
        panic_on: u32,
        error_on: u32,
    }

    impl Problem for Flaky {
        type Genome = u32;
        fn objective_count(&self) -> usize {
            2
        }
        fn random_genome(&self, rng: &mut dyn RngCore) -> u32 {
            rng.next_u32() % 100
        }
        fn evaluate(&self, g: &u32) -> Evaluation {
            self.try_evaluate(g).unwrap()
        }
    }

    impl FallibleProblem for Flaky {
        fn try_evaluate(&self, g: &u32) -> Result<Evaluation, DseError> {
            if *g == self.panic_on {
                panic!("injected panic for genome {g}");
            }
            if *g == self.error_on {
                return Err(DseError::InvalidGenome {
                    what: "injected failure",
                });
            }
            Ok(Evaluation::feasible(vec![
                f64::from(*g),
                100.0 - f64::from(*g),
            ]))
        }
    }

    #[test]
    fn panics_are_isolated_and_quarantined() {
        let p = ResilientProblem::new(Flaky {
            panic_on: 7,
            error_on: 9,
        })
        .with_max_retries(2);
        let health = p.health();

        // Suppress the default panic hook's stderr spew for this test.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let eval = p.evaluate(&7);
        std::panic::set_hook(prev);

        assert_eq!(eval.objectives, vec![QUARANTINE_OBJECTIVE; 2]);
        assert_eq!(eval.violation, QUARANTINE_OBJECTIVE);
        assert!(!eval.is_feasible());
        let h = health.lock().unwrap();
        assert_eq!(h.panics_isolated, 3, "initial attempt + 2 retries");
        assert_eq!(h.retries, 2);
        assert_eq!(h.quarantined, 1);
    }

    #[test]
    fn typed_errors_are_isolated_without_unwinding() {
        let p = ResilientProblem::new(Flaky {
            panic_on: 7,
            error_on: 9,
        })
        .with_max_retries(0);
        let health = p.health();
        let eval = p.evaluate(&9);
        assert_eq!(eval.objectives, vec![QUARANTINE_OBJECTIVE; 2]);
        let h = health.lock().unwrap();
        assert_eq!(h.errors_isolated, 1);
        assert_eq!(h.panics_isolated, 0);
        assert_eq!(h.retries, 0);
        assert_eq!(h.quarantined, 1);
    }

    #[test]
    fn healthy_evaluations_pass_through_untouched() {
        let p = ResilientProblem::new(Flaky {
            panic_on: 7,
            error_on: 9,
        });
        let health = p.health();
        let eval = p.evaluate(&30);
        assert_eq!(eval.objectives, vec![30.0, 70.0]);
        assert_eq!(eval.violation, 0.0);
        assert!(health.lock().unwrap().is_clean());
    }

    struct NonFinite;
    impl Problem for NonFinite {
        type Genome = u32;
        fn objective_count(&self) -> usize {
            1
        }
        fn random_genome(&self, _: &mut dyn RngCore) -> u32 {
            0
        }
        fn evaluate(&self, _: &u32) -> Evaluation {
            Evaluation::feasible(vec![f64::NAN])
        }
    }
    impl FallibleProblem for NonFinite {
        fn try_evaluate(&self, g: &u32) -> Result<Evaluation, DseError> {
            Ok(self.evaluate(g))
        }
    }

    #[test]
    fn non_finite_fitness_is_quarantined() {
        let p = ResilientProblem::new(NonFinite).with_max_retries(0);
        let health = p.health();
        let eval = p.evaluate(&0);
        assert_eq!(eval.objectives, vec![QUARANTINE_OBJECTIVE]);
        assert_eq!(health.lock().unwrap().errors_isolated, 1);
        assert_eq!(health.lock().unwrap().quarantined, 1);
    }

    #[test]
    fn save_rotated_keeps_last_n_checkpoints() {
        let dir = std::env::temp_dir().join(format!("clre-rotation-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let keep = 3;
        let mut cp = sample_checkpoint();
        for generation in 0..5 {
            cp.state.generation = generation;
            cp.save_rotated(&path, keep).unwrap();
        }
        // Newest at `path`, then one generation older per slot.
        assert_eq!(Checkpoint::load(&path).unwrap().state.generation, 4);
        for (slot, generation) in [(1, 3), (2, 2)] {
            let rotated = rotated_checkpoint_path(&path, slot);
            assert_eq!(
                Checkpoint::load(&rotated).unwrap().state.generation,
                generation,
                "slot {slot}"
            );
        }
        // Slot keep-1+1 and beyond were pruned.
        assert!(!rotated_checkpoint_path(&path, 3).exists());
        remove_checkpoint_files(&path, keep);
        assert!(!path.exists());
        assert!(!rotated_checkpoint_path(&path, 1).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_rotated_keep_one_matches_plain_save() {
        let dir = std::env::temp_dir().join(format!("clre-rotation-one-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let cp = sample_checkpoint();
        cp.save_rotated(&path, 1).unwrap();
        cp.save_rotated(&path, 1).unwrap();
        assert!(path.exists());
        assert!(!rotated_checkpoint_path(&path, 1).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantine_log_records_genome_and_error() {
        let p = ResilientProblem::new(Flaky {
            panic_on: 7,
            error_on: 9,
        })
        .with_max_retries(0);
        let log = p.quarantine_log();
        let _ = p.evaluate(&9);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let _ = p.evaluate(&7);
        std::panic::set_hook(prev);
        let records = log.lock().unwrap().clone();
        assert_eq!(records.len(), 2);
        assert!(records[0].error.contains("injected failure"), "{records:?}");
        assert!(records[1].error.contains("injected panic"), "{records:?}");
        let line = records[0].line();
        assert!(line.starts_with("quarantine-v1 error="));
        assert!(line.contains("genome="));
    }

    #[test]
    fn quarantine_sidecar_roundtrips_and_clears() {
        let dir = std::env::temp_dir().join(format!("clre-quarantine-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = quarantine_sidecar_path(&dir.join("run.ckpt"));
        assert_eq!(path, dir.join("quarantine.txt"));
        let records = vec![QuarantineRecord {
            genome: "2 0:1:2 1:0:0".to_owned(),
            error: "panic: multi\nline".to_owned(),
        }];
        write_quarantine_sidecar(&path, &records).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(
            text,
            "quarantine-v1 error=panic: multi line genome=2 0:1:2 1:0:0\n"
        );
        // Empty record set removes the stale sidecar.
        write_quarantine_sidecar(&path, &[]).unwrap();
        assert!(!path.exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn system_problem_genomes_render_as_gene_triples() {
        let mut out = String::new();
        encode_genome(&mut out, &vec![gene(0, 1, 2), gene(3, 4, 5)]);
        assert_eq!(out, "2 0:1:2 3:4:5");
    }

    #[test]
    fn supervisor_interrupt_seam() {
        let sup = RunSupervisor::new(SupervisorConfig::new("/tmp/x.ckpt")).with_interrupt_at(1, 3);
        assert!(sup.should_interrupt(1, 3));
        assert!(!sup.should_interrupt(0, 3));
        assert!(!sup.should_interrupt(1, 2));
        let plain = RunSupervisor::new(SupervisorConfig::new("/tmp/x.ckpt"));
        assert!(!plain.should_interrupt(0, 0));
        assert_eq!(plain.config().every_generations, 1);
    }
}

//! Fault-tolerant DSE runtime: run health accounting, panic/error-isolated
//! candidate evaluation, and persistent GA checkpoints.
//!
//! Long early-stage DSE campaigns fail for boring reasons — a pathological
//! candidate panics the evaluator, a numeric corner case surfaces hours in,
//! the host machine reboots. This module keeps such events from destroying
//! a run:
//!
//! * [`RunHealth`] — counters describing everything non-nominal that
//!   happened during a run (caught panics, typed evaluation errors,
//!   retries, quarantined candidates, degraded Markov analyses,
//!   checkpoints written, resume point). Attached to
//!   [`FrontResult`](crate::methodology::FrontResult) by the supervised
//!   entry points.
//! * [`ResilientProblem`] — wraps any [`FallibleProblem`] so a panicking
//!   or erroring fitness evaluation is caught, retried a bounded number
//!   of times, and finally *quarantined*: the candidate receives
//!   [`QUARANTINE_OBJECTIVE`] on every axis plus an equal constraint
//!   violation, so Deb's constraint-domination ranks it behind every
//!   healthy individual and selection breeds it out.
//! * [`Checkpoint`] — a versioned, self-validating, plain-text snapshot
//!   of a GA stage (generation index, evaluated population, RNG state
//!   words, stage bookkeeping). Written atomically (temp file + rename)
//!   by the supervised runs in [`crate::methodology`] and decoded by
//!   [`ClrEarly::resume_supervised`](crate::ClrEarly::resume_supervised),
//!   which deterministically continues to the *identical* final front.
//! * [`RunSupervisor`] / [`SupervisorConfig`] — where checkpoints go, how
//!   often they are written, and how many retries a failing evaluation
//!   gets. The supervisor also hosts the crash-injection seam used by the
//!   resilience integration tests.
//!
//! Checkpoints encode every `f64` through its IEEE-754 bit pattern, so a
//! resumed run replays bit-identically; the GA side of that guarantee is
//! the step-wise API of [`clre_moea::Nsga2`] (`init_state`/`step`/
//! `finalize`), whose RNG state words round-trip exactly.

use std::fmt::Write as _;
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use clre_model::{PeId, TaskId};
use clre_moea::{Evaluation, EvoSnapshot, Individual, Problem};
use rand::RngCore;

use crate::encoding::{Gene, Genome};
use crate::methodology::FrontResult;
use crate::problem::SystemProblem;
use crate::DseError;

/// Objective value assigned to quarantined candidates. Finite (so sorting
/// and crowding stay well-defined) but far beyond any physical metric;
/// combined with an equal constraint violation it loses every
/// constraint-domination comparison against a healthy individual.
pub const QUARANTINE_OBJECTIVE: f64 = 1.0e30;

/// Shared, thread-safe handle to a [`RunHealth`]: the resilient wrapper
/// mutates the counters from whichever worker thread evaluates a
/// candidate, and the GA driver reads them between generations.
pub type HealthHandle = Arc<Mutex<RunHealth>>;

/// Everything non-nominal that happened during a (possibly multi-stage,
/// possibly resumed) DSE run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunHealth {
    /// Evaluations that panicked and were caught.
    pub panics_isolated: usize,
    /// Evaluations that returned a typed error (or non-finite fitness).
    pub errors_isolated: usize,
    /// Re-evaluation attempts made after a caught failure.
    pub retries: usize,
    /// Candidates that exhausted their retries and were assigned
    /// [`QUARANTINE_OBJECTIVE`] fitness.
    pub quarantined: usize,
    /// Task-level Markov analyses answered by the degraded closed-form
    /// fallback instead of the matrix solver.
    pub degraded_analyses: usize,
    /// Checkpoints written by the supervisor.
    pub checkpoints_written: usize,
    /// Generation the run was resumed from, if it was resumed.
    pub resumed_from_generation: Option<usize>,
    /// Evaluation-cache lookups answered from the cache (both levels:
    /// task analyses and genome fitness). Zero when no cache is attached.
    pub cache_hits: u64,
    /// Evaluation-cache lookups that had to compute.
    pub cache_misses: u64,
    /// Fresh results inserted into the evaluation cache.
    pub cache_inserts: u64,
    /// Evaluations whose wall-clock exceeded the configured deadline and
    /// were converted into retryable timeouts by the watchdog.
    pub timeouts: usize,
    /// Total milliseconds of deterministic retry backoff slept.
    pub backoff_ms: u64,
    /// Faults fired by an attached [`FaultInjector`].
    pub injected: usize,
    /// Evaluations that failed at least once and then succeeded on a
    /// retry (the failure was fully recovered, nothing was quarantined).
    pub recovered: usize,
    /// Corrupt or unreadable checkpoint generations skipped in favour of
    /// an older rotation slot during resume.
    pub checkpoint_fallbacks: usize,
    /// Malformed sidecar lines skipped while reloading triage records.
    pub sidecar_lines_skipped: usize,
}

impl RunHealth {
    /// `true` when nothing non-nominal happened: no failures were
    /// isolated, nothing was quarantined, and no analysis degraded.
    /// (Checkpointing, resuming and cache activity are nominal
    /// supervisor/accelerator behaviour.)
    pub fn is_clean(&self) -> bool {
        self.panics_isolated == 0
            && self.errors_isolated == 0
            && self.retries == 0
            && self.quarantined == 0
            && self.degraded_analyses == 0
            && self.timeouts == 0
            && self.injected == 0
            && self.checkpoint_fallbacks == 0
            && self.sidecar_lines_skipped == 0
    }

    /// Folds another health report's counters into this one.
    pub fn merge(&mut self, other: &RunHealth) {
        self.panics_isolated += other.panics_isolated;
        self.errors_isolated += other.errors_isolated;
        self.retries += other.retries;
        self.quarantined += other.quarantined;
        self.degraded_analyses += other.degraded_analyses;
        self.checkpoints_written += other.checkpoints_written;
        self.timeouts += other.timeouts;
        self.backoff_ms += other.backoff_ms;
        self.injected += other.injected;
        self.recovered += other.recovered;
        self.checkpoint_fallbacks += other.checkpoint_fallbacks;
        self.sidecar_lines_skipped += other.sidecar_lines_skipped;
        if self.resumed_from_generation.is_none() {
            self.resumed_from_generation = other.resumed_from_generation;
        }
        // Cache counters are process-wide running totals (stamped, not
        // per-stage deltas), so merging keeps the larger snapshot rather
        // than summing — summing would double-count shared-cache stages.
        self.cache_hits = self.cache_hits.max(other.cache_hits);
        self.cache_misses = self.cache_misses.max(other.cache_misses);
        self.cache_inserts = self.cache_inserts.max(other.cache_inserts);
    }
}

/// A problem that can report evaluation failures as typed errors instead
/// of (only) panicking. [`ResilientProblem`] uses this channel to count
/// and classify failures without unwinding where possible; panics remain
/// the fallback channel for truly unexpected failures.
///
/// This is the domain-level (`DseError`-typed) sibling of the
/// MOEA-generic [`Problem::try_evaluate`]: a problem whose
/// [`Problem::reports_errors`] returns `true` promises that this channel
/// is its native failure path, which lets [`ResilientProblem`] skip
/// `catch_unwind` entirely in the common path.
pub trait FallibleProblem: Problem {
    /// Fallible fitness evaluation.
    ///
    /// # Errors
    ///
    /// Implementation-specific evaluation failures.
    fn try_evaluate(&self, genome: &Self::Genome) -> Result<Evaluation, DseError>;

    /// A human-readable rendering of a genome for triage artifacts (the
    /// quarantine sidecar). The default is a placeholder; problems with a
    /// meaningful text form should override it.
    fn describe_genome(&self, _genome: &Self::Genome) -> String {
        "<genome>".to_owned()
    }
}

impl FallibleProblem for SystemProblem<'_> {
    fn try_evaluate(&self, genome: &Genome) -> Result<Evaluation, DseError> {
        SystemProblem::try_evaluate(self, genome)
    }

    fn describe_genome(&self, genome: &Genome) -> String {
        let mut out = String::new();
        encode_genome(&mut out, genome);
        out
    }
}

/// One quarantined candidate: what it looked like and why every attempt
/// to evaluate it failed. Collected by [`ResilientProblem`] and persisted
/// as the `quarantine.txt` triage sidecar by the supervised runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// The genome, rendered via [`FallibleProblem::describe_genome`].
    pub genome: String,
    /// The failure message of the last attempt (panic payload or typed
    /// error).
    pub error: String,
}

impl QuarantineRecord {
    /// One-line `quarantine-v1 error=… genome=…` sidecar form. The error
    /// string is flattened to a single line.
    pub fn line(&self) -> String {
        format!(
            "quarantine-v1 error={} genome={}",
            self.error.replace(['\n', '\r'], " "),
            self.genome,
        )
    }
}

/// Writes the quarantine triage sidecar: one [`QuarantineRecord::line`]
/// per record. An empty record set removes any stale sidecar instead of
/// writing an empty file.
///
/// # Errors
///
/// [`DseError::Checkpoint`] wrapping the underlying I/O failure.
pub fn write_quarantine_sidecar(path: &Path, records: &[QuarantineRecord]) -> Result<(), DseError> {
    if records.is_empty() {
        let _ = fs::remove_file(path);
        return Ok(());
    }
    let mut out = String::new();
    for r in records {
        let _ = writeln!(out, "{}", r.line());
    }
    ensure_parent_dir(path)?;
    fs::write(path, out).map_err(|e| bad(format!("writing {}: {e}", path.display())))
}

/// Creates the missing parent directories of `path`, so sidecar and
/// checkpoint writers work under per-tenant server roots
/// (`<root>/<tenant>/<campaign>/…`) without pre-created directories.
pub(crate) fn ensure_parent_dir(path: &Path) -> Result<(), DseError> {
    match path.parent() {
        Some(dir) if !dir.as_os_str().is_empty() && !dir.exists() => {
            fs::create_dir_all(dir).map_err(|e| bad(format!("creating {}: {e}", dir.display())))
        }
        _ => Ok(()),
    }
}

/// The conventional sidecar location: `quarantine.txt` next to the
/// checkpoint file.
pub fn quarantine_sidecar_path(checkpoint_path: &Path) -> PathBuf {
    checkpoint_path
        .parent()
        .map_or_else(|| PathBuf::from("quarantine.txt"), Path::to_path_buf)
        .join("quarantine.txt")
}

/// Reads the quarantine triage sidecar back: the parsed records plus the
/// number of malformed lines skipped.
///
/// Mirrors the cache sidecar's torn-tail tolerance: a malformed line —
/// the torn tail of a killed run, or byte-level corruption — is skipped
/// and counted, never fatal to the rest of the file. A missing file is
/// simply zero records.
///
/// # Errors
///
/// Only genuine I/O failures (permissions, disk); not-found is `Ok`.
pub fn read_quarantine_sidecar(path: &Path) -> Result<(Vec<QuarantineRecord>, usize), DseError> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => return Err(bad(format!("reading {}: {e}", path.display()))),
    };
    let mut records = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_quarantine_line(line) {
            Some(record) => records.push(record),
            None => skipped += 1,
        }
    }
    Ok((records, skipped))
}

fn parse_quarantine_line(line: &str) -> Option<QuarantineRecord> {
    let rest = line
        .strip_prefix("quarantine-v1 ")?
        .strip_prefix("error=")?;
    // The error text is free-form (flattened to one line); the genome
    // rendering never contains `=`, so the *last* ` genome=` marker
    // splits the two unambiguously.
    let at = rest.rfind(" genome=")?;
    let genome = rest[at + " genome=".len()..].to_owned();
    if genome.is_empty() {
        return None;
    }
    Some(QuarantineRecord {
        genome,
        error: rest[..at].to_owned(),
    })
}

/// One fault decision from a [`FaultInjector`]: what happens to a single
/// evaluation attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectedFault {
    /// Fail the attempt as a caught panic with this message (exercises
    /// the unwind-isolation arm of [`ResilientProblem`]).
    Panic(String),
    /// Fail the attempt with a typed evaluation error (exercises the
    /// typed-error arm).
    Error(String),
    /// Return NaN objectives (exercises the non-finite fitness guard).
    PoisonObjectives,
    /// Sleep this long before the evaluation runs, modelling a hung
    /// evaluator (exercises the deadline watchdog when the stall exceeds
    /// the configured deadline).
    Stall(Duration),
}

/// A deterministic fault source consulted by [`ResilientProblem`] before
/// every evaluation attempt.
///
/// Implementations must be pure functions of `(key, attempt)` — the key
/// is the genome's [`FallibleProblem::describe_genome`] rendering — and
/// never of call order, thread identity, or wall clock, so the fault
/// schedule of a seeded run is identical across worker counts, thread
/// interleavings, and reruns. `clre-chaos`'s `FaultPlan` is the
/// canonical implementation.
pub trait FaultInjector: std::fmt::Debug + Send + Sync {
    /// The fault to inject when evaluating `key` on `attempt` (0-based),
    /// or `None` to leave the attempt untouched.
    fn eval_fault(&self, key: &str, attempt: usize) -> Option<InjectedFault>;
}

/// Deterministic exponential-backoff policy for evaluation retries.
///
/// The delay before retry `attempt` doubles from `base_ms` up to
/// `cap_ms`, with salted jitter derived from the genome key and the
/// policy seed — *not* from wall clock or a shared RNG — so the exact
/// backoff schedule (and the `backoff_ms` health counter) is a pure
/// function of `(seed, genome, attempt)` and reproduces bit-identically
/// on rerun.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// First-retry delay, in milliseconds.
    pub base_ms: u64,
    /// Upper bound any single delay is clamped to, in milliseconds.
    pub cap_ms: u64,
    /// Jitter salt; the run seed by convention.
    pub seed: u64,
}

impl BackoffPolicy {
    /// A policy with the given base delay, cap, and jitter seed.
    pub fn new(base_ms: u64, cap_ms: u64, seed: u64) -> Self {
        BackoffPolicy {
            base_ms,
            cap_ms,
            seed,
        }
    }

    /// The delay in milliseconds before retry `attempt` (0-based) of the
    /// evaluation keyed by `key`: `base·2^attempt` clamped to the cap,
    /// jittered into `[delay/2, delay]` by an FNV-1a hash of
    /// `(seed, key, attempt)`.
    pub fn delay_ms(&self, key: u64, attempt: usize) -> u64 {
        let exp = u32::try_from(attempt.min(20)).unwrap_or(20);
        let raw = self
            .base_ms
            .saturating_mul(1u64 << exp)
            .min(self.cap_ms.max(self.base_ms));
        if raw == 0 {
            return 0;
        }
        let mut buf = [0u8; 24];
        buf[..8].copy_from_slice(&self.seed.to_le_bytes());
        buf[8..16].copy_from_slice(&key.to_le_bytes());
        buf[16..].copy_from_slice(&u64::try_from(attempt).unwrap_or(u64::MAX).to_le_bytes());
        let span = raw - raw / 2;
        raw / 2 + fnv1a64(&buf) % (span + 1)
    }
}

/// Panic- and error-isolating wrapper around a [`FallibleProblem`].
///
/// Failures are retried up to `max_retries` times and then quarantined
/// with [`QUARANTINE_OBJECTIVE`] fitness; all events are tallied in a
/// shared [`RunHealth`] handle so the GA driver can report them after the
/// run. Problems that natively report failures as typed errors
/// ([`Problem::reports_errors`]) are driven through the typed channel
/// directly; [`catch_unwind`] is kept only as a last-resort fallback for
/// legacy problems whose sole failure channel is a panic.
///
/// # Examples
///
/// ```
/// use clre::resilience::{FallibleProblem, ResilientProblem, QUARANTINE_OBJECTIVE};
/// use clre_moea::{Evaluation, Problem};
/// use rand::RngCore;
///
/// struct Fragile;
/// impl Problem for Fragile {
///     type Genome = u32;
///     fn objective_count(&self) -> usize { 1 }
///     fn random_genome(&self, _: &mut dyn RngCore) -> u32 { 0 }
///     fn evaluate(&self, g: &u32) -> Evaluation {
///         if *g == 13 { panic!("unlucky") }
///         Evaluation::feasible(vec![f64::from(*g)])
///     }
/// }
/// impl FallibleProblem for Fragile {
///     fn try_evaluate(&self, g: &u32) -> Result<Evaluation, clre::DseError> {
///         Ok(self.evaluate(g))
///     }
/// }
///
/// let p = ResilientProblem::new(Fragile);
/// let health = p.health();
/// assert_eq!(p.evaluate(&2).objectives, vec![2.0]);
/// assert_eq!(p.evaluate(&13).objectives, vec![QUARANTINE_OBJECTIVE]);
/// assert_eq!(health.lock().unwrap().quarantined, 1);
/// ```
#[derive(Debug)]
pub struct ResilientProblem<P: FallibleProblem> {
    inner: P,
    max_retries: usize,
    health: HealthHandle,
    quarantine_log: Arc<Mutex<Vec<QuarantineRecord>>>,
    injector: Option<Arc<dyn FaultInjector>>,
    deadline: Option<Duration>,
    backoff: Option<BackoffPolicy>,
}

impl<P: FallibleProblem> ResilientProblem<P> {
    /// Wraps `inner` with one retry per failing evaluation.
    pub fn new(inner: P) -> Self {
        ResilientProblem {
            inner,
            max_retries: 1,
            health: Arc::new(Mutex::new(RunHealth::default())),
            quarantine_log: Arc::new(Mutex::new(Vec::new())),
            injector: None,
            deadline: None,
            backoff: None,
        }
    }

    /// Sets the retry budget per failing evaluation (builder style).
    /// Zero means quarantine on the first failure.
    #[must_use]
    pub fn with_max_retries(mut self, max_retries: usize) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Attaches a deterministic fault injector, consulted before every
    /// evaluation attempt (builder style).
    #[must_use]
    pub fn with_injector(mut self, injector: Arc<dyn FaultInjector>) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Sets a per-evaluation wall-clock deadline (builder style). The
    /// watchdog is cooperative: the clock is checked when the evaluation
    /// returns, converting an over-deadline attempt (e.g. an injected
    /// stall) into a retryable timeout instead of accepting its result.
    /// A truly diverging evaluation that never returns is outside the
    /// recovery model (DESIGN.md §14).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Enables deterministic exponential backoff with salted jitter
    /// between retry attempts (builder style).
    #[must_use]
    pub fn with_backoff(mut self, backoff: BackoffPolicy) -> Self {
        self.backoff = Some(backoff);
        self
    }

    /// Pre-seeds the quarantine triage log (used on resume so records
    /// recovered from the sidecar survive the next sidecar rewrite).
    #[must_use]
    pub fn with_quarantine_seed(self, records: Vec<QuarantineRecord>) -> Self {
        self.quarantine_log
            .lock()
            .expect("quarantine log poisoned")
            .extend(records);
        self
    }

    /// Shared handle to the failure counters, live during the run.
    pub fn health(&self) -> HealthHandle {
        Arc::clone(&self.health)
    }

    /// Shared handle to the quarantine triage log: one record per
    /// candidate that exhausted its retries, in quarantine order.
    pub fn quarantine_log(&self) -> Arc<Mutex<Vec<QuarantineRecord>>> {
        Arc::clone(&self.quarantine_log)
    }

    fn health_mut(&self) -> std::sync::MutexGuard<'_, RunHealth> {
        self.health.lock().expect("run health poisoned")
    }

    /// One un-injected evaluation attempt: the typed channel directly, or
    /// `catch_unwind` for legacy problems whose sole failure channel is a
    /// panic. `AssertUnwindSafe`: the inner problem is only read here,
    /// and a caught failure discards the attempt's partial state.
    #[allow(clippy::type_complexity)]
    fn attempt(
        &self,
        genome: &P::Genome,
        typed: bool,
    ) -> Result<Result<Evaluation, DseError>, Box<dyn std::any::Any + Send>> {
        if typed {
            Ok(FallibleProblem::try_evaluate(&self.inner, genome))
        } else {
            catch_unwind(AssertUnwindSafe(|| {
                FallibleProblem::try_evaluate(&self.inner, genome)
            }))
        }
    }

    fn quarantine(&self, genome: &P::Genome, error: String) -> Evaluation {
        self.health_mut().quarantined += 1;
        self.quarantine_log
            .lock()
            .expect("quarantine log poisoned")
            .push(QuarantineRecord {
                genome: self.inner.describe_genome(genome),
                error,
            });
        Evaluation::with_violation(
            vec![QUARANTINE_OBJECTIVE; self.inner.objective_count()],
            QUARANTINE_OBJECTIVE,
        )
    }
}

/// Renders a `catch_unwind` payload as text (`&str`/`String` payloads
/// verbatim, anything else a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

impl<P: FallibleProblem> Problem for ResilientProblem<P> {
    type Genome = P::Genome;

    fn objective_count(&self) -> usize {
        self.inner.objective_count()
    }

    fn random_genome(&self, rng: &mut dyn RngCore) -> Self::Genome {
        self.inner.random_genome(rng)
    }

    fn evaluate(&self, genome: &Self::Genome) -> Evaluation {
        // Common path: a problem that natively reports failures as typed
        // errors (`Problem::reports_errors`) is driven through the typed
        // channel directly — no unwind machinery at all. `catch_unwind`
        // is kept only as a last-resort fallback for legacy problems
        // whose sole failure channel is a panic.
        let typed = self.inner.reports_errors();
        // The genome key drives injection decisions and backoff jitter:
        // both are content-addressed, never call-order-addressed, so
        // fault and backoff schedules survive any thread interleaving.
        let chaos_key = if self.injector.is_some() || self.backoff.is_some() {
            Some(self.inner.describe_genome(genome))
        } else {
            None
        };
        let mut last_error = String::new();
        for attempt in 0..=self.max_retries {
            if attempt > 0 {
                self.health_mut().retries += 1;
                if let (Some(policy), Some(key)) = (self.backoff, chaos_key.as_deref()) {
                    let delay = policy.delay_ms(fnv1a64(key.as_bytes()), attempt - 1);
                    if delay > 0 {
                        self.health_mut().backoff_ms += delay;
                        std::thread::sleep(Duration::from_millis(delay));
                    }
                }
            }
            let fault = match (&self.injector, chaos_key.as_deref()) {
                (Some(injector), Some(key)) => injector.eval_fault(key, attempt),
                _ => None,
            };
            if fault.is_some() {
                self.health_mut().injected += 1;
            }
            let started = Instant::now();
            let outcome = match fault {
                Some(InjectedFault::Error(what)) => Ok(Err(DseError::Injected { what })),
                Some(InjectedFault::Panic(what)) => {
                    // Synthesized unwind payload: the recovery arm is the
                    // one real panics take, without the global panic hook
                    // spamming stderr for every scheduled fault.
                    Err(Box::new(what) as Box<dyn std::any::Any + Send>)
                }
                Some(InjectedFault::PoisonObjectives) => Ok(Ok(Evaluation::feasible(vec![
                    f64::NAN;
                    self.inner.objective_count()
                ]))),
                Some(InjectedFault::Stall(pause)) => {
                    std::thread::sleep(pause);
                    self.attempt(genome, typed)
                }
                None => self.attempt(genome, typed),
            };
            let timed_out = self.deadline.is_some_and(|d| started.elapsed() > d);
            match outcome {
                Err(payload) => {
                    self.health_mut().panics_isolated += 1;
                    last_error = format!("panic: {}", panic_message(payload.as_ref()));
                }
                Ok(_) if timed_out => {
                    self.health_mut().timeouts += 1;
                    last_error = "evaluation deadline exceeded".to_owned();
                }
                Ok(Ok(eval))
                    if eval.violation.is_finite()
                        && eval.objectives.iter().all(|v| v.is_finite()) =>
                {
                    if attempt > 0 {
                        self.health_mut().recovered += 1;
                    }
                    return eval;
                }
                Ok(Ok(_)) => {
                    self.health_mut().errors_isolated += 1;
                    last_error = "non-finite fitness".to_owned();
                }
                Ok(Err(e)) => {
                    self.health_mut().errors_isolated += 1;
                    last_error = e.to_string();
                }
            }
        }
        self.quarantine(genome, last_error)
    }

    fn try_evaluate(&self, genome: &Self::Genome) -> Result<Evaluation, clre_moea::EvalError> {
        Ok(self.evaluate(genome))
    }

    fn reports_errors(&self) -> bool {
        // Evaluation never fails: the quarantine absorbs every failure.
        true
    }

    /// Forwards the inner problem's remote-evaluation codec **only when
    /// no chaos machinery is armed**: injection, deadlines and backoff
    /// act per-attempt inside [`ResilientProblem::evaluate`], which a
    /// remote batch would bypass. With any of them configured the
    /// problem stays local so the chaos schedule (and its determinism
    /// guarantees) keep applying to every evaluation.
    fn remote(&self) -> Option<&dyn clre_moea::RemoteEval<Self::Genome>> {
        if self.injector.is_none() && self.deadline.is_none() && self.backoff.is_none() {
            self.inner.remote()
        } else {
            None
        }
    }
}

/// Where and how often a supervised run checkpoints, and how failures are
/// retried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// File the checkpoint is (atomically) written to.
    pub checkpoint_path: PathBuf,
    /// Checkpoint every this many generations (≥ 1).
    pub every_generations: usize,
    /// Retry budget per failing fitness evaluation.
    pub max_retries: usize,
    /// Number of checkpoint generations to keep (≥ 1). The newest lives
    /// at `checkpoint_path`; older generations are rotated to
    /// `<path>.1 … <path>.keep-1`, oldest pruned.
    pub keep_checkpoints: usize,
    /// When `Some(n)`, checkpoints between full keyframes are written as
    /// sparse deltas against the last keyframe (genomes change sparsely
    /// between generations); a fresh keyframe is forced every `n`
    /// snapshots. `None` (the default) writes every checkpoint in full.
    pub delta_checkpoints: Option<usize>,
    /// Per-evaluation wall-clock deadline; an attempt that exceeds it is
    /// converted into a retryable timeout. `None` disables the watchdog.
    pub eval_deadline: Option<Duration>,
    /// Deterministic exponential-backoff policy applied between retry
    /// attempts. `None` (the default) retries immediately.
    pub backoff: Option<BackoffPolicy>,
}

impl SupervisorConfig {
    /// Checkpoints to `path` every generation with one retry per failure,
    /// keeping only the newest checkpoint, every checkpoint written in
    /// full.
    ///
    /// Every `with_*` method is a consuming builder: it returns the
    /// updated configuration (and is `#[must_use]` — dropping the result
    /// discards the setting).
    ///
    /// # Examples
    ///
    /// ```
    /// use clre::resilience::SupervisorConfig;
    ///
    /// let config = SupervisorConfig::new("/tmp/run.ckpt")
    ///     .with_interval(5)
    ///     .with_max_retries(2)
    ///     .with_keep_checkpoints(3)
    ///     .with_delta_checkpoints(4);
    /// assert_eq!(config.every_generations, 5);
    /// assert_eq!(config.max_retries, 2);
    /// assert_eq!(config.keep_checkpoints, 3);
    /// assert_eq!(config.delta_checkpoints, Some(4));
    /// ```
    pub fn new(path: impl Into<PathBuf>) -> Self {
        SupervisorConfig {
            checkpoint_path: path.into(),
            every_generations: 1,
            max_retries: 1,
            keep_checkpoints: 1,
            delta_checkpoints: None,
            eval_deadline: None,
            backoff: None,
        }
    }

    /// Sets the checkpoint cadence in generations (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    #[must_use]
    pub fn with_interval(mut self, every: usize) -> Self {
        assert!(every > 0, "checkpoint interval must be at least 1");
        self.every_generations = every;
        self
    }

    /// Sets the per-evaluation retry budget (builder style).
    #[must_use]
    pub fn with_max_retries(mut self, max_retries: usize) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Sets how many checkpoint generations to keep (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `keep == 0`.
    #[must_use]
    pub fn with_keep_checkpoints(mut self, keep: usize) -> Self {
        assert!(keep > 0, "must keep at least one checkpoint");
        self.keep_checkpoints = keep;
        self
    }

    /// Enables sparse delta encoding between consecutive checkpoints
    /// (builder style): a full keyframe is written every `keyframe_every`
    /// snapshots (and whenever the stage changes), the checkpoints in
    /// between store only the individuals that changed since the
    /// keyframe.
    ///
    /// # Panics
    ///
    /// Panics if `keyframe_every == 0`.
    #[must_use]
    pub fn with_delta_checkpoints(mut self, keyframe_every: usize) -> Self {
        assert!(keyframe_every > 0, "keyframe cadence must be at least 1");
        self.delta_checkpoints = Some(keyframe_every);
        self
    }

    /// Sets a per-evaluation wall-clock deadline (builder style): an
    /// attempt that exceeds it is discarded, counted as a timeout, and
    /// retried — see [`ResilientProblem::with_deadline`].
    #[must_use]
    pub fn with_eval_deadline(mut self, deadline: Duration) -> Self {
        self.eval_deadline = Some(deadline);
        self
    }

    /// Enables deterministic exponential backoff with salted jitter
    /// between retry attempts (builder style).
    #[must_use]
    pub fn with_backoff(mut self, backoff: BackoffPolicy) -> Self {
        self.backoff = Some(backoff);
        self
    }
}

/// The path of rotation slot `n` of `path` (`n ≥ 1`): `<path>.<n>`.
pub fn rotated_checkpoint_path(path: &Path, n: usize) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(format!(".{n}"));
    PathBuf::from(os)
}

/// Rotates existing checkpoint generations aside and prunes the oldest:
/// `<path>.keep-2 → <path>.keep-1`, …, `<path> → <path>.1`; everything at
/// slot `keep-1` and beyond is removed. With `keep == 1` this just prunes
/// stale rotation files. Called by [`Checkpoint::save_rotated`] before
/// installing a fresh checkpoint at `path`.
fn rotate_checkpoints(path: &Path, keep: usize) {
    // Prune slots that fall outside the retention window (also covers a
    // `keep` that shrank between runs, up to a generous scan bound).
    let scan_to = keep.max(8) + 8;
    for n in (keep.max(1) - 1).max(1)..=scan_to {
        let _ = fs::remove_file(rotated_checkpoint_path(path, n));
    }
    // Shift the survivors one slot older, oldest first.
    for n in (1..keep.max(1) - 1).rev() {
        let _ = fs::rename(
            rotated_checkpoint_path(path, n),
            rotated_checkpoint_path(path, n + 1),
        );
    }
    if keep > 1 {
        let _ = fs::rename(path, rotated_checkpoint_path(path, 1));
    }
}

/// Removes the checkpoint at `path`, its delta keyframe, and every
/// rotation slot next to it (used once a supervised run completes).
pub fn remove_checkpoint_files(path: &Path, keep: usize) {
    let _ = fs::remove_file(path);
    let _ = fs::remove_file(keyframe_path(path));
    for n in 1..=keep.max(8) + 8 {
        let _ = fs::remove_file(rotated_checkpoint_path(path, n));
    }
}

/// Drives a supervised run: owns the [`SupervisorConfig`] plus the
/// crash-injection seam used by the resilience tests.
#[derive(Debug, Clone)]
pub struct RunSupervisor {
    config: SupervisorConfig,
    interrupt_at: Option<(u32, usize)>,
    interrupt_flag: Option<Arc<AtomicBool>>,
    injector: Option<Arc<dyn FaultInjector>>,
}

impl RunSupervisor {
    /// A supervisor over the given configuration.
    pub fn new(config: SupervisorConfig) -> Self {
        RunSupervisor {
            config,
            interrupt_at: None,
            interrupt_flag: None,
            injector: None,
        }
    }

    /// Attaches a deterministic fault injector, threaded into every
    /// supervised stage's [`ResilientProblem`] (builder style).
    #[must_use]
    pub fn with_fault_injector(mut self, injector: Arc<dyn FaultInjector>) -> Self {
        self.injector = Some(injector);
        self
    }

    /// The attached fault injector, if any.
    pub fn fault_injector(&self) -> Option<Arc<dyn FaultInjector>> {
        self.injector.clone()
    }

    /// Test seam: simulate a crash once stage `stage` has completed
    /// `generation` generations — the run writes a final checkpoint and
    /// returns [`RunOutcome::Interrupted`] instead of finishing.
    /// `generation` must be below the stage's generation budget for the
    /// interrupt to fire.
    #[must_use]
    pub fn with_interrupt_at(mut self, stage: u32, generation: usize) -> Self {
        self.interrupt_at = Some((stage, generation));
        self
    }

    /// Attaches an external stop signal: once the flag turns `true`
    /// (e.g. from a `SIGTERM` handler or a server's shutdown path), the
    /// supervised run checkpoints at the next generation boundary and
    /// returns [`RunOutcome::Interrupted`], exactly as if the
    /// [`RunSupervisor::with_interrupt_at`] seam had fired there.
    #[must_use]
    pub fn with_interrupt_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.interrupt_flag = Some(flag);
        self
    }

    /// The supervisor configuration.
    pub fn config(&self) -> &SupervisorConfig {
        &self.config
    }

    /// The checkpoint file location.
    pub fn checkpoint_path(&self) -> &Path {
        &self.config.checkpoint_path
    }

    /// Whether the crash-injection seam fires at this stage/generation,
    /// or the external stop flag has been raised.
    pub fn should_interrupt(&self, stage: u32, generation: usize) -> bool {
        self.interrupt_at == Some((stage, generation))
            || self
                .interrupt_flag
                .as_ref()
                .is_some_and(|f| f.load(Ordering::SeqCst))
    }
}

/// Result of a supervised run: either a finished front or a persisted
/// interruption that [`ClrEarly::resume_supervised`] can continue.
///
/// [`ClrEarly::resume_supervised`]: crate::ClrEarly::resume_supervised
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// The run finished; the checkpoint file has been removed.
    Complete(FrontResult),
    /// The run stopped early; a checkpoint describing this exact point is
    /// on disk.
    Interrupted {
        /// Stage index at the interruption (0-based).
        stage: u32,
        /// Generations the interrupted stage had completed.
        generation: usize,
    },
}

impl RunOutcome {
    /// Unwraps the completed front.
    ///
    /// # Panics
    ///
    /// Panics if the run was interrupted.
    pub fn expect_complete(self) -> FrontResult {
        match self {
            RunOutcome::Complete(r) => r,
            RunOutcome::Interrupted { stage, generation } => {
                panic!("run was interrupted at stage {stage}, generation {generation}")
            }
        }
    }
}

/// Which MOEA backend produced a checkpointed state. Stage resumes are
/// validated against the campaign plan's algorithm, so an NSGA-II
/// snapshot can never be fed into a SPEA2 stage (or vice versa).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmTag {
    /// NSGA-II ([`clre_moea::Nsga2`]).
    Nsga2,
    /// SPEA2 ([`clre_moea::Spea2`]).
    Spea2,
}

impl AlgorithmTag {
    /// The checkpoint-format token of this tag.
    pub fn as_str(self) -> &'static str {
        match self {
            AlgorithmTag::Nsga2 => "nsga2",
            AlgorithmTag::Spea2 => "spea2",
        }
    }

    fn parse(tok: &str) -> Result<Self, DseError> {
        match tok {
            "nsga2" => Ok(AlgorithmTag::Nsga2),
            "spea2" => Ok(AlgorithmTag::Spea2),
            other => Err(bad(format!("unknown algorithm tag {other:?}"))),
        }
    }
}

/// The persisted record of one finished campaign stage: everything a
/// resume needs to reconstitute the stage's front (the metrics are a pure
/// function of the genomes) and to seed later stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedStage {
    /// The stage label (whitespace-free, e.g. `"proposed/pf-stage"`).
    pub label: String,
    /// Fitness evaluations the stage spent.
    pub evaluations: usize,
    /// The stage's approximation-set genomes, in member order.
    pub genomes: Vec<Genome>,
}

/// A persisted snapshot of one GA stage of a supervised campaign.
///
/// The `method`/`stage`/budget fields echo the run configuration and are
/// validated on resume — resuming a checkpoint against a different
/// problem, budget, or algorithm is a [`DseError::Checkpoint`], not
/// silent garbage. Earlier finished stages travel along as
/// [`CompletedStage`] records, so a multi-stage campaign resumes without
/// re-running anything that already completed.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Campaign plan name (`"fcCLR"`, `"proposed"`, `"Agnostic"`, …).
    pub method: String,
    /// MOEA backend of the interrupted stage.
    pub algorithm: AlgorithmTag,
    /// Stage index within the campaign (0-based).
    pub stage: u32,
    /// Population size of the interrupted stage.
    pub population_size: usize,
    /// Generation budget of the campaign ([`StageBudget::generations`]).
    ///
    /// [`StageBudget::generations`]: crate::methodology::StageBudget
    pub generations: usize,
    /// User-level RNG seed of the run ([`StageBudget::seed`]).
    ///
    /// [`StageBudget::seed`]: crate::methodology::StageBudget
    pub seed: u64,
    /// System-level objective count.
    pub objective_count: usize,
    /// Stages of this campaign that already ran to completion.
    pub completed: Vec<CompletedStage>,
    /// The GA state at the last completed generation boundary.
    pub state: EvoSnapshot<Genome>,
    /// Cumulative run health up to this snapshot.
    pub health: RunHealth,
}

const CHECKPOINT_HEADER: &str = "clrearly-checkpoint v2";
const DELTA_HEADER: &str = "clrearly-delta v1";

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_f64(tok: &str) -> Result<f64, DseError> {
    u64::from_str_radix(tok, 16)
        .map(f64::from_bits)
        .map_err(|_| bad(format!("malformed f64 bits {tok:?}")))
}

fn parse_u64(tok: &str) -> Result<u64, DseError> {
    tok.parse()
        .map_err(|_| bad(format!("malformed integer {tok:?}")))
}

fn parse_usize(tok: &str) -> Result<usize, DseError> {
    tok.parse()
        .map_err(|_| bad(format!("malformed integer {tok:?}")))
}

fn bad(what: impl Into<String>) -> DseError {
    DseError::Checkpoint { what: what.into() }
}

pub(crate) fn encode_genome(out: &mut String, genome: &Genome) {
    let _ = write!(out, "{}", genome.len());
    for g in genome {
        let _ = write!(out, " {}:{}:{}", g.task.index(), g.pe.index(), g.choice);
    }
}

pub(crate) fn parse_genome(tokens: &mut std::str::SplitWhitespace<'_>) -> Result<Genome, DseError> {
    let len = parse_usize(tokens.next().ok_or_else(|| bad("missing genome length"))?)?;
    let mut genome = Vec::with_capacity(len);
    for _ in 0..len {
        let tok = tokens.next().ok_or_else(|| bad("truncated genome"))?;
        let mut parts = tok.split(':');
        let mut next = |what: &str| {
            parts
                .next()
                .ok_or_else(|| bad(format!("gene missing {what} in {tok:?}")))
        };
        let task = parse_usize(next("task")?)?;
        let pe = parse_usize(next("pe")?)?;
        let choice = parse_usize(next("choice")?)?;
        genome.push(Gene {
            task: TaskId::new(u32::try_from(task).map_err(|_| bad("task id overflow"))?),
            pe: PeId::new(u32::try_from(pe).map_err(|_| bad("pe id overflow"))?),
            choice: u32::try_from(choice).map_err(|_| bad("choice index overflow"))?,
        });
    }
    Ok(genome)
}

fn encode_health(out: &mut String, h: &RunHealth) {
    let _ = writeln!(
        out,
        "health {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
        h.panics_isolated,
        h.errors_isolated,
        h.retries,
        h.quarantined,
        h.degraded_analyses,
        h.checkpoints_written,
        h.resumed_from_generation
            .map_or_else(|| "-".to_owned(), |g| g.to_string()),
        h.cache_hits,
        h.cache_misses,
        h.cache_inserts,
        h.timeouts,
        h.backoff_ms,
        h.injected,
        h.recovered,
        h.checkpoint_fallbacks,
        h.sidecar_lines_skipped,
    );
}

fn parse_health(line: &str) -> Result<RunHealth, DseError> {
    let mut toks = line.split_whitespace();
    let mut next_count = |what: &str| -> Result<usize, DseError> {
        parse_usize(
            toks.next()
                .ok_or_else(|| bad(format!("health missing {what}")))?,
        )
    };
    let panics_isolated = next_count("panics")?;
    let errors_isolated = next_count("errors")?;
    let retries = next_count("retries")?;
    let quarantined = next_count("quarantined")?;
    let degraded_analyses = next_count("degraded")?;
    let checkpoints_written = next_count("checkpoints")?;
    let resumed_from_generation = match toks.next() {
        Some("-") | None => None,
        Some(tok) => Some(parse_usize(tok)?),
    };
    // Cache and fault/recovery counters entered the format later; a
    // health line written by an earlier build simply lacks the trailing
    // tokens (a cold cache, a fault-free run).
    let mut opt_u64 = |missing: u64| -> Result<u64, DseError> {
        match toks.next() {
            Some(tok) => parse_u64(tok),
            None => Ok(missing),
        }
    };
    let to_usize = |v: u64| usize::try_from(v).unwrap_or(usize::MAX);
    let cache_hits = opt_u64(0)?;
    let cache_misses = opt_u64(0)?;
    let cache_inserts = opt_u64(0)?;
    let timeouts = to_usize(opt_u64(0)?);
    let backoff_ms = opt_u64(0)?;
    let injected = to_usize(opt_u64(0)?);
    let recovered = to_usize(opt_u64(0)?);
    let checkpoint_fallbacks = to_usize(opt_u64(0)?);
    let sidecar_lines_skipped = to_usize(opt_u64(0)?);
    Ok(RunHealth {
        panics_isolated,
        errors_isolated,
        retries,
        quarantined,
        degraded_analyses,
        checkpoints_written,
        resumed_from_generation,
        cache_hits,
        cache_misses,
        cache_inserts,
        timeouts,
        backoff_ms,
        injected,
        recovered,
        checkpoint_fallbacks,
        sidecar_lines_skipped,
    })
}

/// Encodes one individual as the whitespace-separated
/// `<violation-hex> <arity> <objective-hex…> <genome>` payload (no
/// leading keyword, no newline).
fn encode_individual(out: &mut String, ind: &Individual<Genome>) {
    let _ = write!(out, "{} {}", f64_hex(ind.violation), ind.objectives.len());
    for &o in &ind.objectives {
        let _ = write!(out, " {}", f64_hex(o));
    }
    out.push(' ');
    encode_genome(out, &ind.genome);
}

fn individual_line(ind: &Individual<Genome>) -> String {
    let mut out = String::new();
    encode_individual(&mut out, ind);
    out
}

fn parse_individual(
    toks: &mut std::str::SplitWhitespace<'_>,
) -> Result<Individual<Genome>, DseError> {
    let violation = parse_f64(
        toks.next()
            .ok_or_else(|| bad("individual missing violation"))?,
    )?;
    let obj_count = parse_usize(toks.next().ok_or_else(|| bad("individual missing arity"))?)?;
    let mut objectives = Vec::with_capacity(obj_count);
    for _ in 0..obj_count {
        objectives.push(parse_f64(
            toks.next().ok_or_else(|| bad("truncated objectives"))?,
        )?);
    }
    let genome = parse_genome(toks)?;
    if toks.next().is_some() {
        return Err(bad("trailing tokens after individual"));
    }
    Ok(Individual {
        genome,
        objectives,
        violation,
    })
}

fn parse_rng_words(line: &str) -> Result<[u64; 4], DseError> {
    let mut rng_state = [0u64; 4];
    let mut toks = line.split_whitespace();
    for w in &mut rng_state {
        let tok = toks.next().ok_or_else(|| bad("truncated rng state"))?;
        *w =
            u64::from_str_radix(tok, 16).map_err(|_| bad(format!("malformed rng word {tok:?}")))?;
    }
    Ok(rng_state)
}

/// Atomically writes `text` to `path` via a sibling `<path>.tmp` +
/// rename, so a crash mid-write never corrupts an existing good file.
fn atomic_write(path: &Path, text: &str) -> Result<(), DseError> {
    ensure_parent_dir(path)?;
    let mut os = path.as_os_str().to_owned();
    os.push(".tmp");
    let tmp = PathBuf::from(os);
    fs::write(&tmp, text).map_err(|e| bad(format!("writing {}: {e}", tmp.display())))?;
    fs::rename(&tmp, path).map_err(|e| bad(format!("installing {}: {e}", path.display())))
}

/// 64-bit FNV-1a digest, used to pin a delta checkpoint to the exact
/// keyframe bytes it was encoded against.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The delta keyframe location for the checkpoint at `path`:
/// `<path>.key`, with any numeric rotation suffix (`<path>.3`) stripped
/// first so rotated delta slots resolve to the same keyframe as the live
/// checkpoint.
pub fn keyframe_path(path: &Path) -> PathBuf {
    let s = path.as_os_str().to_string_lossy();
    let base = match s.rfind('.') {
        Some(i) if !s[i + 1..].is_empty() && s[i + 1..].bytes().all(|b| b.is_ascii_digit()) => {
            &s[..i]
        }
        _ => s.as_ref(),
    };
    PathBuf::from(format!("{base}.key"))
}

impl Checkpoint {
    /// Serializes to the versioned plain-text format. All floats are
    /// stored as IEEE-754 bit patterns, so encode → decode round-trips
    /// bit-exactly.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{CHECKPOINT_HEADER}");
        let _ = writeln!(out, "method {}", self.method);
        let _ = writeln!(out, "algorithm {}", self.algorithm.as_str());
        let _ = writeln!(out, "stage {}", self.stage);
        let _ = writeln!(out, "population-size {}", self.population_size);
        let _ = writeln!(out, "generations {}", self.generations);
        let _ = writeln!(out, "seed {}", self.seed);
        let _ = writeln!(out, "objectives {}", self.objective_count);
        encode_health(&mut out, &self.health);
        let _ = writeln!(out, "completed {}", self.completed.len());
        for s in &self.completed {
            debug_assert!(
                !s.label.contains(char::is_whitespace),
                "stage labels must be whitespace-free"
            );
            let _ = writeln!(
                out,
                "completed-stage {} {} {}",
                s.label,
                s.evaluations,
                s.genomes.len()
            );
            for g in &s.genomes {
                out.push_str("genome ");
                encode_genome(&mut out, g);
                out.push('\n');
            }
        }
        let _ = writeln!(out, "generation {}", self.state.generation);
        let _ = writeln!(out, "evaluations {}", self.state.evaluations);
        let w = self.state.rng_state;
        let _ = writeln!(
            out,
            "rng {:016x} {:016x} {:016x} {:016x}",
            w[0], w[1], w[2], w[3]
        );
        for (key, members) in [
            ("population", &self.state.population),
            ("archive", &self.state.archive),
        ] {
            let _ = writeln!(out, "{key} {}", members.len());
            for ind in members {
                out.push_str("individual ");
                encode_individual(&mut out, ind);
                out.push('\n');
            }
        }
        append_integrity_trailer(&mut out);
        out
    }

    /// Parses the text format produced by [`Checkpoint::encode`].
    ///
    /// # Errors
    ///
    /// [`DseError::Checkpoint`] on any structural or lexical mismatch.
    pub fn decode(text: &str) -> Result<Checkpoint, DseError> {
        verify_integrity(text)?;
        let mut lines = text.lines();
        if lines.next() != Some(CHECKPOINT_HEADER) {
            return Err(bad("not a clrearly v2 checkpoint"));
        }
        // Fixed-order `key value...` lines; keyed parsing keeps mistakes
        // loud instead of positional.
        let mut field = |key: &str| -> Result<String, DseError> {
            let line = lines.next().ok_or_else(|| bad(format!("missing {key}")))?;
            line.strip_prefix(key)
                .and_then(|rest| rest.strip_prefix(' '))
                .map(str::to_owned)
                .ok_or_else(|| bad(format!("expected `{key} …`, found {line:?}")))
        };
        let method = field("method")?;
        let algorithm = AlgorithmTag::parse(&field("algorithm")?)?;
        let stage =
            u32::try_from(parse_u64(&field("stage")?)?).map_err(|_| bad("stage index overflow"))?;
        let population_size = parse_usize(&field("population-size")?)?;
        let generations = parse_usize(&field("generations")?)?;
        let seed = parse_u64(&field("seed")?)?;
        let objective_count = parse_usize(&field("objectives")?)?;
        let health = parse_health(&field("health")?)?;

        let completed_count = parse_usize(&field("completed")?)?;
        let mut completed = Vec::with_capacity(completed_count);
        for _ in 0..completed_count {
            let line = field("completed-stage")?;
            let mut toks = line.split_whitespace();
            let label = toks
                .next()
                .ok_or_else(|| bad("completed stage missing label"))?
                .to_owned();
            let evaluations = parse_usize(
                toks.next()
                    .ok_or_else(|| bad("stage missing evaluations"))?,
            )?;
            let genome_count = parse_usize(
                toks.next()
                    .ok_or_else(|| bad("stage missing genome count"))?,
            )?;
            if toks.next().is_some() {
                return Err(bad("trailing tokens after completed stage"));
            }
            let mut genomes = Vec::with_capacity(genome_count);
            for _ in 0..genome_count {
                let line = field("genome")?;
                let mut toks = line.split_whitespace();
                genomes.push(parse_genome(&mut toks)?);
                if toks.next().is_some() {
                    return Err(bad("trailing tokens after stage genome"));
                }
            }
            completed.push(CompletedStage {
                label,
                evaluations,
                genomes,
            });
        }

        let generation = parse_usize(&field("generation")?)?;
        let evaluations = parse_usize(&field("evaluations")?)?;
        let rng_state = parse_rng_words(&field("rng")?)?;

        let mut sections: Vec<Vec<Individual<Genome>>> = Vec::with_capacity(2);
        for key in ["population", "archive"] {
            let count = parse_usize(&field(key)?)?;
            let mut members = Vec::with_capacity(count);
            for _ in 0..count {
                let line = field("individual")?;
                let mut toks = line.split_whitespace();
                members.push(parse_individual(&mut toks)?);
            }
            sections.push(members);
        }
        let archive = sections.pop().expect("archive section");
        let population = sections.pop().expect("population section");

        Ok(Checkpoint {
            method,
            algorithm,
            stage,
            population_size,
            generations,
            seed,
            objective_count,
            completed,
            state: EvoSnapshot {
                population,
                archive,
                generation,
                evaluations,
                rng_state,
            },
            health,
        })
    }

    /// Atomically writes the checkpoint: the encoded text goes to a
    /// sibling temp file first and is renamed into place, so a crash
    /// mid-write never corrupts an existing good checkpoint.
    ///
    /// # Errors
    ///
    /// [`DseError::Checkpoint`] wrapping the I/O failure.
    pub fn save(&self, path: &Path) -> Result<(), DseError> {
        atomic_write(path, &self.encode())
    }

    /// [`Checkpoint::save`] with retention: the previous checkpoint
    /// generations are rotated to `<path>.1 … <path>.keep-1` (oldest
    /// pruned) before the new checkpoint is atomically installed at
    /// `path`. With `keep == 1` this is exactly [`Checkpoint::save`]
    /// (plus pruning of stale rotation files).
    ///
    /// # Errors
    ///
    /// [`DseError::Checkpoint`] wrapping the I/O failure of the install;
    /// rotation failures of older generations are ignored (retention is
    /// best-effort, the newest checkpoint is the contract).
    pub fn save_rotated(&self, path: &Path, keep: usize) -> Result<(), DseError> {
        rotate_checkpoints(path, keep);
        self.save(path)
    }

    /// Reads and decodes a checkpoint file. A delta checkpoint (written
    /// by a [`CheckpointWriter`] with delta encoding enabled) is
    /// transparently resolved against its keyframe at
    /// [`keyframe_path`]; the keyframe's digest is verified first.
    ///
    /// # Errors
    ///
    /// [`DseError::Checkpoint`] if the file (or the keyframe a delta
    /// refers to) is missing, unreadable, malformed, or fails digest
    /// verification.
    pub fn load(path: &Path) -> Result<Checkpoint, DseError> {
        let text = fs::read_to_string(path)
            .map_err(|e| bad(format!("reading {}: {e}", path.display())))?;
        if text.starts_with(DELTA_HEADER) {
            let key = keyframe_path(path);
            let base_text = fs::read_to_string(&key)
                .map_err(|e| bad(format!("reading keyframe {}: {e}", key.display())))?;
            let base = Checkpoint::decode(&base_text)?;
            apply_delta(base, fnv1a64(base_text.as_bytes()), &text)
        } else {
            Checkpoint::decode(&text)
        }
    }

    /// [`Checkpoint::load`] with fallback through the rotation chain:
    /// if the primary file is missing, corrupt, or fails integrity
    /// verification, the rotated slots `<path>.1 … <path>.keep` are
    /// tried newest-first and the first digest-valid checkpoint wins.
    ///
    /// Returns the loaded checkpoint together with the number of
    /// *existing but unloadable* newer files that were skipped — zero on
    /// the happy path, positive when recovery fell back past corrupt
    /// state (callers surface this in [`RunHealth::checkpoint_fallbacks`]).
    ///
    /// # Errors
    ///
    /// [`DseError::Checkpoint`] with the primary file's failure when no
    /// file in the chain loads.
    pub fn load_with_fallback(path: &Path, keep: usize) -> Result<(Checkpoint, usize), DseError> {
        let mut skipped = 0usize;
        let mut first_err: Option<DseError> = None;
        let primary = Checkpoint::load(path);
        match primary {
            Ok(cp) => return Ok((cp, 0)),
            Err(e) => {
                if path.exists() {
                    skipped += 1;
                }
                first_err = first_err.or(Some(e));
            }
        }
        for n in 1..=keep.max(1) {
            let rotated = rotated_checkpoint_path(path, n);
            match Checkpoint::load(&rotated) {
                Ok(cp) => return Ok((cp, skipped)),
                Err(e) => {
                    if rotated.exists() {
                        skipped += 1;
                    }
                    first_err = first_err.or(Some(e));
                }
            }
        }
        Err(first_err.unwrap_or_else(|| bad("no checkpoint in rotation chain")))
    }
}

/// Encodes `cp` as a sparse delta against `base`: scalars that change
/// every generation (generation/evaluations/RNG/health) are stored in
/// full, population and archive members that already exist in the base
/// (bit-identically) are stored as `keep <base-index>` references into
/// the base's concatenated population∥archive.
fn encode_delta(base: &Checkpoint, base_digest: u64, cp: &Checkpoint) -> String {
    use std::collections::HashMap;
    let mut index: HashMap<String, usize> = HashMap::new();
    for (i, ind) in base
        .state
        .population
        .iter()
        .chain(&base.state.archive)
        .enumerate()
    {
        index.entry(individual_line(ind)).or_insert(i);
    }
    let mut out = String::new();
    let _ = writeln!(out, "{DELTA_HEADER}");
    let _ = writeln!(out, "base-digest {base_digest:016x}");
    let _ = writeln!(out, "generation {}", cp.state.generation);
    let _ = writeln!(out, "evaluations {}", cp.state.evaluations);
    let w = cp.state.rng_state;
    let _ = writeln!(
        out,
        "rng {:016x} {:016x} {:016x} {:016x}",
        w[0], w[1], w[2], w[3]
    );
    encode_health(&mut out, &cp.health);
    for (key, members) in [
        ("population", &cp.state.population),
        ("archive", &cp.state.archive),
    ] {
        let _ = writeln!(out, "{key} {}", members.len());
        for ind in members {
            let line = individual_line(ind);
            match index.get(&line) {
                Some(&i) => {
                    let _ = writeln!(out, "keep {i}");
                }
                None => {
                    let _ = writeln!(out, "individual {line}");
                }
            }
        }
    }
    append_integrity_trailer(&mut out);
    out
}

/// Appends the `integrity <fnv1a64-hex>` trailer line: the digest covers
/// every byte written so far, so any later flip or truncation is caught
/// by [`verify_integrity`] before the body is parsed.
fn append_integrity_trailer(out: &mut String) {
    let digest = fnv1a64(out.as_bytes());
    let _ = writeln!(out, "integrity {digest:016x}");
}

/// Verifies the `integrity` trailer of a checkpoint or delta file.
///
/// Legacy files that end without a trailer pass unchanged (pre-chaos
/// checkpoints stay loadable). A trailer that is *present* but malformed
/// or whose digest does not cover the preceding bytes is an error — a
/// truncated or bit-flipped file must never decode silently.
fn verify_integrity(text: &str) -> Result<(), DseError> {
    // The trailer is the final newline-terminated line.
    let body = text.strip_suffix('\n').unwrap_or(text);
    let (prefix_len, last) = match body.rfind('\n') {
        Some(i) => (i + 1, &body[i + 1..]),
        None => (0, body),
    };
    let Some(rest) = last.strip_prefix("integrity") else {
        return Ok(()); // legacy file, no trailer
    };
    let digest = rest
        .strip_prefix(' ')
        .filter(|hex| hex.len() == 16)
        .and_then(|hex| u64::from_str_radix(hex, 16).ok())
        .ok_or_else(|| bad("malformed integrity trailer"))?;
    let actual = fnv1a64(&text.as_bytes()[..prefix_len]);
    if actual != digest {
        return Err(bad(format!(
            "integrity digest mismatch (recorded {digest:016x}, computed {actual:016x})"
        )));
    }
    Ok(())
}

/// Resolves a delta checkpoint against its decoded keyframe.
/// `base_digest` is the FNV-1a digest of the keyframe's raw bytes and
/// must match the digest recorded in the delta.
fn apply_delta(base: Checkpoint, base_digest: u64, text: &str) -> Result<Checkpoint, DseError> {
    fn field(lines: &mut std::str::Lines<'_>, key: &str) -> Result<String, DseError> {
        let line = lines.next().ok_or_else(|| bad(format!("missing {key}")))?;
        line.strip_prefix(key)
            .and_then(|rest| rest.strip_prefix(' '))
            .map(str::to_owned)
            .ok_or_else(|| bad(format!("expected `{key} …`, found {line:?}")))
    }
    verify_integrity(text)?;
    let mut lines = text.lines();
    if lines.next() != Some(DELTA_HEADER) {
        return Err(bad("not a clrearly delta checkpoint"));
    }
    let recorded = u64::from_str_radix(&field(&mut lines, "base-digest")?, 16)
        .map_err(|_| bad("malformed base digest"))?;
    if recorded != base_digest {
        return Err(bad(format!(
            "delta was encoded against a different keyframe \
             (digest {recorded:016x}, keyframe {base_digest:016x})"
        )));
    }
    let generation = parse_usize(&field(&mut lines, "generation")?)?;
    let evaluations = parse_usize(&field(&mut lines, "evaluations")?)?;
    let rng_state = parse_rng_words(&field(&mut lines, "rng")?)?;
    let health = parse_health(&field(&mut lines, "health")?)?;

    let pool: Vec<&Individual<Genome>> = base
        .state
        .population
        .iter()
        .chain(&base.state.archive)
        .collect();
    let mut sections: Vec<Vec<Individual<Genome>>> = Vec::with_capacity(2);
    for key in ["population", "archive"] {
        let count = parse_usize(&field(&mut lines, key)?)?;
        let mut members = Vec::with_capacity(count);
        for _ in 0..count {
            let line = lines.next().ok_or_else(|| bad("truncated delta"))?;
            if let Some(rest) = line.strip_prefix("keep ") {
                let i = parse_usize(rest.trim())?;
                let ind = pool
                    .get(i)
                    .ok_or_else(|| bad(format!("delta keep index {i} out of range")))?;
                members.push((*ind).clone());
            } else if let Some(rest) = line.strip_prefix("individual ") {
                let mut toks = rest.split_whitespace();
                members.push(parse_individual(&mut toks)?);
            } else {
                return Err(bad(format!("expected `keep`/`individual`, found {line:?}")));
            }
        }
        sections.push(members);
    }
    let archive = sections.pop().expect("archive section");
    let population = sections.pop().expect("population section");

    Ok(Checkpoint {
        state: EvoSnapshot {
            population,
            archive,
            generation,
            evaluations,
            rng_state,
        },
        health,
        ..base
    })
}

/// Stateful checkpoint persister used by the supervised campaign driver:
/// with delta encoding off it is a thin wrapper over
/// [`Checkpoint::save_rotated`]; with delta encoding on it writes a full
/// keyframe (at the checkpoint path *and* the [`keyframe_path`] sidecar)
/// every `keyframe_every` snapshots and digest-pinned sparse deltas in
/// between. Create one writer per supervised stage — the first save of a
/// stage is always a keyframe.
#[derive(Debug)]
pub struct CheckpointWriter {
    keyframe_every: Option<usize>,
    since_keyframe: usize,
    base: Option<(Checkpoint, u64)>,
}

impl CheckpointWriter {
    /// A writer following `config`'s delta policy.
    pub fn new(config: &SupervisorConfig) -> Self {
        CheckpointWriter {
            keyframe_every: config.delta_checkpoints,
            since_keyframe: 0,
            base: None,
        }
    }

    /// Persists `cp` at `path` (with rotation retention `keep`), as a
    /// keyframe or delta per the writer's policy.
    ///
    /// # Errors
    ///
    /// [`DseError::Checkpoint`] wrapping the underlying I/O failure.
    pub fn save(&mut self, cp: &Checkpoint, path: &Path, keep: usize) -> Result<(), DseError> {
        let Some(keyframe_every) = self.keyframe_every else {
            return cp.save_rotated(path, keep);
        };
        let need_keyframe = match &self.base {
            None => true,
            Some(_) => self.since_keyframe >= keyframe_every,
        };
        if need_keyframe {
            cp.save_rotated(path, keep)?;
            let text = cp.encode();
            atomic_write(&keyframe_path(path), &text)?;
            self.base = Some((cp.clone(), fnv1a64(text.as_bytes())));
            self.since_keyframe = 1;
        } else {
            let (base, digest) = self.base.as_ref().expect("keyframe base");
            let delta = encode_delta(base, *digest, cp);
            rotate_checkpoints(path, keep);
            atomic_write(path, &delta)?;
            self.since_keyframe += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clre_moea::Evaluation;

    fn gene(t: u32, p: u32, c: u32) -> Gene {
        Gene {
            task: TaskId::new(t),
            pe: PeId::new(p),
            choice: c,
        }
    }

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            method: "proposed".to_owned(),
            algorithm: AlgorithmTag::Nsga2,
            stage: 1,
            population_size: 2,
            generations: 8,
            seed: 42,
            objective_count: 2,
            completed: vec![CompletedStage {
                label: "proposed/pf-stage".to_owned(),
                evaluations: 144,
                genomes: vec![vec![gene(0, 1, 2), gene(1, 0, 0)]],
            }],
            state: EvoSnapshot {
                population: vec![
                    Individual {
                        genome: vec![gene(1, 2, 3), gene(0, 0, 1)],
                        objectives: vec![1.5e-3, -0.0],
                        violation: 0.0,
                    },
                    Individual {
                        genome: vec![gene(0, 1, 0), gene(1, 1, 7)],
                        objectives: vec![f64::MIN_POSITIVE, 1.0 / 3.0],
                        violation: QUARANTINE_OBJECTIVE,
                    },
                ],
                archive: vec![Individual {
                    genome: vec![gene(1, 0, 4), gene(0, 2, 2)],
                    objectives: vec![2.25, 0.5],
                    violation: 0.0,
                }],
                generation: 5,
                evaluations: 112,
                rng_state: [u64::MAX, 1, 0x0123_4567_89ab_cdef, 7],
            },
            health: RunHealth {
                panics_isolated: 1,
                errors_isolated: 2,
                retries: 3,
                quarantined: 1,
                degraded_analyses: 4,
                checkpoints_written: 6,
                resumed_from_generation: Some(3),
                cache_hits: 250,
                cache_misses: 40,
                cache_inserts: 40,
                timeouts: 2,
                backoff_ms: 37,
                injected: 5,
                recovered: 3,
                checkpoint_fallbacks: 1,
                sidecar_lines_skipped: 2,
            },
        }
    }

    #[test]
    fn checkpoint_roundtrips_bit_exactly() {
        let cp = sample_checkpoint();
        let decoded = Checkpoint::decode(&cp.encode()).unwrap();
        assert_eq!(decoded, cp);
        // -0.0 == 0.0 under PartialEq; check the sign bit survived too.
        assert!(decoded.state.population[0].objectives[1].is_sign_negative());
    }

    #[test]
    fn checkpoint_roundtrips_none_resume_marker() {
        let mut cp = sample_checkpoint();
        cp.health.resumed_from_generation = None;
        cp.completed.clear();
        cp.state.archive.clear();
        assert_eq!(Checkpoint::decode(&cp.encode()).unwrap(), cp);
    }

    #[test]
    fn checkpoint_roundtrips_spea2_tag() {
        let mut cp = sample_checkpoint();
        cp.algorithm = AlgorithmTag::Spea2;
        assert_eq!(Checkpoint::decode(&cp.encode()).unwrap(), cp);
        let corrupt = cp.encode().replace("algorithm spea2", "algorithm cmaes");
        assert!(Checkpoint::decode(&corrupt).is_err());
    }

    #[test]
    fn decode_rejects_malformed_inputs() {
        let good = sample_checkpoint().encode();
        assert!(Checkpoint::decode("").is_err());
        assert!(Checkpoint::decode("other-format v9\n").is_err());
        // Truncation anywhere must error, never panic.
        for cut in [10, 40, 80, good.len() / 2, good.len() - 5] {
            assert!(
                Checkpoint::decode(&good[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
        let corrupt = good.replace("rng ", "rng zz ");
        assert!(Checkpoint::decode(&corrupt).is_err());
    }

    #[test]
    fn save_and_load_roundtrip() {
        let dir = std::env::temp_dir().join("clre-resilience-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.ckpt");
        let cp = sample_checkpoint();
        cp.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), cp);
        fs::remove_file(&path).unwrap();
        assert!(matches!(
            Checkpoint::load(&path),
            Err(DseError::Checkpoint { .. })
        ));
    }

    #[test]
    fn keyframe_path_strips_rotation_suffix() {
        let live = Path::new("/tmp/run.ckpt");
        assert_eq!(keyframe_path(live), Path::new("/tmp/run.ckpt.key"));
        assert_eq!(
            keyframe_path(&rotated_checkpoint_path(live, 3)),
            Path::new("/tmp/run.ckpt.key"),
            "rotated slots share the live checkpoint's keyframe"
        );
    }

    #[test]
    fn delta_checkpoints_roundtrip_through_load() {
        let dir = std::env::temp_dir().join(format!("clre-delta-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let config = SupervisorConfig::new(&path).with_delta_checkpoints(3);
        let mut writer = CheckpointWriter::new(&config);

        let mut cp = sample_checkpoint();
        for generation in 5..11 {
            cp.state.generation = generation;
            cp.state.evaluations += 16;
            cp.health.checkpoints_written += 1;
            // Mutate one member so deltas are genuinely sparse, not empty.
            cp.state.population[0].objectives[0] += 1.0;
            writer.save(&cp, &path, 1).unwrap();
            let text = fs::read_to_string(&path).unwrap();
            let expect_keyframe = (generation - 5) % 3 == 0;
            assert_eq!(
                text.starts_with(CHECKPOINT_HEADER),
                expect_keyframe,
                "generation {generation}"
            );
            if !expect_keyframe {
                assert!(text.starts_with(DELTA_HEADER));
                assert!(text.contains("\nkeep "), "unchanged members are references");
            }
            assert_eq!(Checkpoint::load(&path).unwrap(), cp, "gen {generation}");
        }

        // A delta whose keyframe has been replaced must fail digest
        // verification rather than resume from mismatched state.
        let final_text = fs::read_to_string(&path).unwrap();
        assert!(final_text.starts_with(DELTA_HEADER));
        cp.state.generation = 99;
        atomic_write(&keyframe_path(&path), &cp.encode()).unwrap();
        assert!(Checkpoint::load(&path).is_err());

        remove_checkpoint_files(&path, 1);
        assert!(!keyframe_path(&path).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delta_writer_disabled_writes_full_checkpoints() {
        let dir = std::env::temp_dir().join(format!("clre-delta-off-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let config = SupervisorConfig::new(&path);
        let mut writer = CheckpointWriter::new(&config);
        let cp = sample_checkpoint();
        for _ in 0..3 {
            writer.save(&cp, &path, 1).unwrap();
            assert!(fs::read_to_string(&path)
                .unwrap()
                .starts_with(CHECKPOINT_HEADER));
        }
        assert!(!keyframe_path(&path).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn health_merge_and_cleanliness() {
        let mut a = RunHealth::default();
        assert!(a.is_clean());
        a.checkpoints_written = 3;
        assert!(a.is_clean(), "checkpointing is nominal");
        let b = RunHealth {
            panics_isolated: 1,
            retries: 2,
            resumed_from_generation: Some(4),
            ..RunHealth::default()
        };
        a.merge(&b);
        assert!(!a.is_clean());
        assert_eq!(a.panics_isolated, 1);
        assert_eq!(a.retries, 2);
        assert_eq!(a.checkpoints_written, 3);
        assert_eq!(a.resumed_from_generation, Some(4));
        // First resume point wins.
        a.merge(&RunHealth {
            resumed_from_generation: Some(9),
            ..RunHealth::default()
        });
        assert_eq!(a.resumed_from_generation, Some(4));
        // Cache counters are snapshots: merge keeps the max, never sums,
        // and cache activity stays nominal.
        a.cache_hits = 10;
        a.merge(&RunHealth {
            cache_hits: 7,
            cache_misses: 5,
            ..RunHealth::default()
        });
        assert_eq!(a.cache_hits, 10);
        assert_eq!(a.cache_misses, 5);
        assert!(!a.is_clean(), "cleanliness unaffected by cache counters");
    }

    #[test]
    fn health_line_without_cache_counters_still_parses() {
        // The pre-cache seven-field line must keep decoding (old
        // checkpoints resume with a cold cache).
        let h = parse_health("1 2 3 4 5 6 -").unwrap();
        assert_eq!(h.panics_isolated, 1);
        assert_eq!(h.checkpoints_written, 6);
        assert_eq!((h.cache_hits, h.cache_misses, h.cache_inserts), (0, 0, 0));
        // The cache-era ten-field line decodes with fault-free counters.
        let h = parse_health("1 2 3 4 5 6 - 10 20 30").unwrap();
        assert_eq!((h.cache_hits, h.timeouts, h.injected), (10, 0, 0));
    }

    #[test]
    fn health_line_roundtrips_fault_counters() {
        let h = sample_checkpoint().health;
        let mut line = String::new();
        encode_health(&mut line, &h);
        let payload = line
            .trim_end()
            .strip_prefix("health ")
            .expect("health keyword");
        assert_eq!(parse_health(payload).unwrap(), h);
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_bounded() {
        let p = BackoffPolicy::new(10, 1000, 42);
        for attempt in 0..10usize {
            let d = p.delay_ms(77, attempt);
            assert_eq!(d, p.delay_ms(77, attempt), "pure in (seed, key, attempt)");
            let raw = (10u64 << attempt.min(20)).min(1000);
            assert!(
                d >= raw / 2 && d <= raw,
                "attempt {attempt}: {d} outside [{}, {raw}]",
                raw / 2
            );
        }
        // Jitter is salted by key and seed.
        assert!((0..10).any(|a| p.delay_ms(77, a) != p.delay_ms(78, a)));
        let q = BackoffPolicy::new(10, 1000, 43);
        assert!((0..10).any(|a| p.delay_ms(77, a) != q.delay_ms(77, a)));
        // A zero policy never sleeps.
        assert_eq!(BackoffPolicy::new(0, 0, 1).delay_ms(5, 3), 0);
    }

    // A healthy problem whose genomes key as their decimal rendering, so
    // scripted injectors can address individual genomes.
    struct Keyed;

    impl Problem for Keyed {
        type Genome = u32;
        fn objective_count(&self) -> usize {
            2
        }
        fn random_genome(&self, rng: &mut dyn RngCore) -> u32 {
            rng.next_u32() % 100
        }
        fn evaluate(&self, g: &u32) -> Evaluation {
            FallibleProblem::try_evaluate(self, g).unwrap()
        }
    }

    impl FallibleProblem for Keyed {
        fn try_evaluate(&self, g: &u32) -> Result<Evaluation, DseError> {
            Ok(Evaluation::feasible(vec![f64::from(*g), 1.0]))
        }
        fn describe_genome(&self, g: &u32) -> String {
            g.to_string()
        }
    }

    // One fault of every kind, each firing on attempt 0 only so a retry
    // always recovers.
    #[derive(Debug)]
    struct StormInjector {
        stall: Duration,
    }

    impl FaultInjector for StormInjector {
        fn eval_fault(&self, key: &str, attempt: usize) -> Option<InjectedFault> {
            if attempt > 0 {
                return None;
            }
            match key {
                "1" => Some(InjectedFault::Panic("storm panic".to_owned())),
                "2" => Some(InjectedFault::Error("storm error".to_owned())),
                "3" => Some(InjectedFault::PoisonObjectives),
                "4" => Some(InjectedFault::Stall(self.stall)),
                _ => None,
            }
        }
    }

    fn storm_problem() -> ResilientProblem<Keyed> {
        ResilientProblem::new(Keyed)
            .with_max_retries(2)
            .with_injector(Arc::new(StormInjector {
                stall: Duration::from_millis(30),
            }))
            .with_deadline(Duration::from_millis(10))
            .with_backoff(BackoffPolicy::new(1, 4, 99))
    }

    #[test]
    fn injected_faults_recover_on_retry() {
        let p = storm_problem();
        let health = p.health();
        // A clean genome is untouched.
        assert_eq!(p.evaluate(&0).objectives, vec![0.0, 1.0]);
        // Every fault kind fires on attempt 0 only and the retry recovers
        // to the exact fitness a fault-free evaluation produces.
        for g in 1..=4u32 {
            assert_eq!(
                p.evaluate(&g).objectives,
                vec![f64::from(g), 1.0],
                "genome {g}"
            );
        }
        let h = health.lock().unwrap().clone();
        assert_eq!(h.injected, 4);
        assert_eq!(h.recovered, 4);
        assert_eq!(h.panics_isolated, 1);
        assert_eq!(h.errors_isolated, 2, "typed error + poisoned objectives");
        assert_eq!(h.timeouts, 1, "30ms stall tripped the 10ms deadline");
        assert_eq!(h.retries, 4);
        assert!(h.backoff_ms > 0);
        assert_eq!(h.quarantined, 0);
    }

    #[test]
    fn fault_storm_telemetry_reproduces_bitwise() {
        let run = || {
            let p = storm_problem();
            let health = p.health();
            for g in 0..=5u32 {
                let _ = p.evaluate(&g);
            }
            let h = health.lock().unwrap().clone();
            h
        };
        assert_eq!(run(), run(), "same seed, same counters");
    }

    #[test]
    fn quarantine_sidecar_reader_skips_malformed_lines() {
        let dir = std::env::temp_dir().join(format!("clre-quarantine-read-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("quarantine.txt");
        fs::write(
            &path,
            "quarantine-v1 error=boom genome=7\n\
             \n\
             complete garbage\n\
             quarantine-v1 error=torn tail with no genom\n\
             quarantine-v1 error=ok genome=1 0:1:2\n",
        )
        .unwrap();
        let (records, skipped) = read_quarantine_sidecar(&path).unwrap();
        assert_eq!(skipped, 2, "garbage + torn tail skipped, blank ignored");
        assert_eq!(
            records,
            vec![
                QuarantineRecord {
                    genome: "7".to_owned(),
                    error: "boom".to_owned(),
                },
                QuarantineRecord {
                    genome: "1 0:1:2".to_owned(),
                    error: "ok".to_owned(),
                },
            ]
        );
        // Round-trip: what the writer emits, the reader accepts whole.
        write_quarantine_sidecar(&path, &records).unwrap();
        assert_eq!(read_quarantine_sidecar(&path).unwrap(), (records, 0));
        // A missing sidecar is zero records, not an error.
        assert_eq!(
            read_quarantine_sidecar(&dir.join("absent.txt")).unwrap(),
            (Vec::new(), 0)
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn integrity_trailer_detects_corruption() {
        let cp = sample_checkpoint();
        let good = cp.encode();
        assert!(
            good.trim_end()
                .lines()
                .last()
                .unwrap()
                .starts_with("integrity "),
            "encode appends the integrity trailer"
        );
        assert_eq!(Checkpoint::decode(&good).unwrap(), cp);
        // A byte flip anywhere in the body fails the digest before the
        // body is even parsed.
        let flipped = good.replacen("proposed", "pro-osed", 1);
        let err = Checkpoint::decode(&flipped).unwrap_err();
        assert!(err.to_string().contains("integrity"), "{err}");
        // Truncating into the trailer is malformed, never silently valid.
        assert!(Checkpoint::decode(&good[..good.len() - 3]).is_err());
        // A legacy checkpoint written before the trailer still decodes.
        let legacy: String = good
            .lines()
            .filter(|l| !l.starts_with("integrity "))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(Checkpoint::decode(&legacy).unwrap(), cp);
    }

    #[test]
    fn load_with_fallback_recovers_from_corrupt_primary() {
        let dir = std::env::temp_dir().join(format!("clre-fallback-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let mut cp = sample_checkpoint();
        cp.state.generation = 5;
        cp.save_rotated(&path, 3).unwrap();
        cp.state.generation = 6;
        cp.save_rotated(&path, 3).unwrap();
        // Pristine chain: the primary wins, nothing skipped.
        let (loaded, skipped) = Checkpoint::load_with_fallback(&path, 3).unwrap();
        assert_eq!((loaded.state.generation, skipped), (6, 0));
        // Corrupt the primary: plain load hard-errors, fallback recovers
        // the rotated predecessor and counts the skip.
        let mut text = fs::read_to_string(&path).unwrap();
        text.truncate(text.len() / 2);
        fs::write(&path, &text).unwrap();
        assert!(Checkpoint::load(&path).is_err());
        let (loaded, skipped) = Checkpoint::load_with_fallback(&path, 3).unwrap();
        assert_eq!((loaded.state.generation, skipped), (5, 1));
        // Nothing decodable anywhere: the failure finally surfaces.
        fs::write(rotated_checkpoint_path(&path, 1), "junk").unwrap();
        assert!(Checkpoint::load_with_fallback(&path, 3).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    // A deliberately unreliable scalar problem for isolation tests.
    struct Flaky {
        panic_on: u32,
        error_on: u32,
    }

    impl Problem for Flaky {
        type Genome = u32;
        fn objective_count(&self) -> usize {
            2
        }
        fn random_genome(&self, rng: &mut dyn RngCore) -> u32 {
            rng.next_u32() % 100
        }
        fn evaluate(&self, g: &u32) -> Evaluation {
            FallibleProblem::try_evaluate(self, g).unwrap()
        }
    }

    impl FallibleProblem for Flaky {
        fn try_evaluate(&self, g: &u32) -> Result<Evaluation, DseError> {
            if *g == self.panic_on {
                panic!("injected panic for genome {g}");
            }
            if *g == self.error_on {
                return Err(DseError::InvalidGenome {
                    what: "injected failure",
                });
            }
            Ok(Evaluation::feasible(vec![
                f64::from(*g),
                100.0 - f64::from(*g),
            ]))
        }
    }

    #[test]
    fn panics_are_isolated_and_quarantined() {
        let p = ResilientProblem::new(Flaky {
            panic_on: 7,
            error_on: 9,
        })
        .with_max_retries(2);
        let health = p.health();

        // Suppress the default panic hook's stderr spew for this test.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let eval = p.evaluate(&7);
        std::panic::set_hook(prev);

        assert_eq!(eval.objectives, vec![QUARANTINE_OBJECTIVE; 2]);
        assert_eq!(eval.violation, QUARANTINE_OBJECTIVE);
        assert!(!eval.is_feasible());
        let h = health.lock().unwrap();
        assert_eq!(h.panics_isolated, 3, "initial attempt + 2 retries");
        assert_eq!(h.retries, 2);
        assert_eq!(h.quarantined, 1);
    }

    #[test]
    fn typed_errors_are_isolated_without_unwinding() {
        let p = ResilientProblem::new(Flaky {
            panic_on: 7,
            error_on: 9,
        })
        .with_max_retries(0);
        let health = p.health();
        let eval = p.evaluate(&9);
        assert_eq!(eval.objectives, vec![QUARANTINE_OBJECTIVE; 2]);
        let h = health.lock().unwrap();
        assert_eq!(h.errors_isolated, 1);
        assert_eq!(h.panics_isolated, 0);
        assert_eq!(h.retries, 0);
        assert_eq!(h.quarantined, 1);
    }

    #[test]
    fn healthy_evaluations_pass_through_untouched() {
        let p = ResilientProblem::new(Flaky {
            panic_on: 7,
            error_on: 9,
        });
        let health = p.health();
        let eval = p.evaluate(&30);
        assert_eq!(eval.objectives, vec![30.0, 70.0]);
        assert_eq!(eval.violation, 0.0);
        assert!(health.lock().unwrap().is_clean());
    }

    struct NonFinite;
    impl Problem for NonFinite {
        type Genome = u32;
        fn objective_count(&self) -> usize {
            1
        }
        fn random_genome(&self, _: &mut dyn RngCore) -> u32 {
            0
        }
        fn evaluate(&self, _: &u32) -> Evaluation {
            Evaluation::feasible(vec![f64::NAN])
        }
    }
    impl FallibleProblem for NonFinite {
        fn try_evaluate(&self, g: &u32) -> Result<Evaluation, DseError> {
            Ok(self.evaluate(g))
        }
    }

    #[test]
    fn non_finite_fitness_is_quarantined() {
        let p = ResilientProblem::new(NonFinite).with_max_retries(0);
        let health = p.health();
        let eval = p.evaluate(&0);
        assert_eq!(eval.objectives, vec![QUARANTINE_OBJECTIVE]);
        assert_eq!(health.lock().unwrap().errors_isolated, 1);
        assert_eq!(health.lock().unwrap().quarantined, 1);
    }

    #[test]
    fn save_rotated_keeps_last_n_checkpoints() {
        let dir = std::env::temp_dir().join(format!("clre-rotation-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let keep = 3;
        let mut cp = sample_checkpoint();
        for generation in 0..5 {
            cp.state.generation = generation;
            cp.save_rotated(&path, keep).unwrap();
        }
        // Newest at `path`, then one generation older per slot.
        assert_eq!(Checkpoint::load(&path).unwrap().state.generation, 4);
        for (slot, generation) in [(1, 3), (2, 2)] {
            let rotated = rotated_checkpoint_path(&path, slot);
            assert_eq!(
                Checkpoint::load(&rotated).unwrap().state.generation,
                generation,
                "slot {slot}"
            );
        }
        // Slot keep-1+1 and beyond were pruned.
        assert!(!rotated_checkpoint_path(&path, 3).exists());
        remove_checkpoint_files(&path, keep);
        assert!(!path.exists());
        assert!(!rotated_checkpoint_path(&path, 1).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_rotated_keep_one_matches_plain_save() {
        let dir = std::env::temp_dir().join(format!("clre-rotation-one-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let cp = sample_checkpoint();
        cp.save_rotated(&path, 1).unwrap();
        cp.save_rotated(&path, 1).unwrap();
        assert!(path.exists());
        assert!(!rotated_checkpoint_path(&path, 1).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantine_log_records_genome_and_error() {
        let p = ResilientProblem::new(Flaky {
            panic_on: 7,
            error_on: 9,
        })
        .with_max_retries(0);
        let log = p.quarantine_log();
        let _ = p.evaluate(&9);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let _ = p.evaluate(&7);
        std::panic::set_hook(prev);
        let records = log.lock().unwrap().clone();
        assert_eq!(records.len(), 2);
        assert!(records[0].error.contains("injected failure"), "{records:?}");
        assert!(records[1].error.contains("injected panic"), "{records:?}");
        let line = records[0].line();
        assert!(line.starts_with("quarantine-v1 error="));
        assert!(line.contains("genome="));
    }

    #[test]
    fn quarantine_sidecar_roundtrips_and_clears() {
        let dir = std::env::temp_dir().join(format!("clre-quarantine-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = quarantine_sidecar_path(&dir.join("run.ckpt"));
        assert_eq!(path, dir.join("quarantine.txt"));
        let records = vec![QuarantineRecord {
            genome: "2 0:1:2 1:0:0".to_owned(),
            error: "panic: multi\nline".to_owned(),
        }];
        write_quarantine_sidecar(&path, &records).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(
            text,
            "quarantine-v1 error=panic: multi line genome=2 0:1:2 1:0:0\n"
        );
        // Empty record set removes the stale sidecar.
        write_quarantine_sidecar(&path, &[]).unwrap();
        assert!(!path.exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn system_problem_genomes_render_as_gene_triples() {
        let mut out = String::new();
        encode_genome(&mut out, &vec![gene(0, 1, 2), gene(3, 4, 5)]);
        assert_eq!(out, "2 0:1:2 3:4:5");
    }

    #[test]
    fn supervisor_interrupt_seam() {
        let sup = RunSupervisor::new(SupervisorConfig::new("/tmp/x.ckpt")).with_interrupt_at(1, 3);
        assert!(sup.should_interrupt(1, 3));
        assert!(!sup.should_interrupt(0, 3));
        assert!(!sup.should_interrupt(1, 2));
        let plain = RunSupervisor::new(SupervisorConfig::new("/tmp/x.ckpt"));
        assert!(!plain.should_interrupt(0, 0));
        assert_eq!(plain.config().every_generations, 1);
    }
}

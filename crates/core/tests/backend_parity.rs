//! The `EvalBackend` determinism contract, end to end: the same
//! island-model campaign produces a bit-identical front whether genomes
//! are evaluated in-process, on an in-process thread backend, or in
//! supervised `clre-exec-worker` subprocesses — including when a worker
//! is killed mid-batch and its chunk is re-sent to a respawn.

use std::sync::Arc;

use clre::apps::AppSpec;
use clre::methodology::{ClrEarly, StageBudget};
use clre::remote::DseVocab;
use clre::{CampaignPlan, Scenario};
use clre_exec::{EvalBackend, ExecPool, Executor, SubprocessBackend, ThreadBackend};

/// The real worker binary, built by cargo for this test run.
const WORKER: &str = env!("CARGO_BIN_EXE_clre-exec-worker");

fn budget() -> StageBudget {
    StageBudget::new(12, 4).with_seed(9)
}

/// Runs `plan` on the 10-task synthetic workload with the given backend
/// (None = the plain in-process executor) and returns the front's
/// objective matrix — raw f64 bits, the strongest identity check.
fn run_with(backend: Option<Arc<dyn EvalBackend>>, plan: &CampaignPlan) -> Vec<Vec<f64>> {
    let app = AppSpec::Synthetic {
        tasks: 10,
        seed: 23,
    };
    let (platform, graph) = app.build().expect("app builds");
    let mut exec = Executor::new(ExecPool::new(2));
    if let Some(backend) = backend {
        exec = exec.with_eval_backend(backend);
    }
    let dse = ClrEarly::new(&graph, &platform)
        .expect("tDSE succeeds")
        .with_executor(exec)
        .with_remote(app, Scenario::default());
    dse.run(plan, &budget())
        .expect("campaign runs")
        .objectives()
}

fn thread_backend() -> Arc<dyn EvalBackend> {
    Arc::new(ThreadBackend::new(ExecPool::new(2), Arc::new(DseVocab)))
}

/// fcCLR and the seeded proposed flow, expanded to 1, 2 and 4 islands:
/// every backend placement must reproduce the in-process front exactly.
#[test]
fn island_fronts_identical_across_backends() {
    let grid = [
        ("fcCLR", CampaignPlan::fc()),
        ("proposed", CampaignPlan::proposed()),
    ];
    for (label, base) in &grid {
        for islands in [1usize, 2, 4] {
            let plan = base.islands(islands);
            let reference = run_with(None, &plan);
            let threaded = run_with(Some(thread_backend()), &plan);
            assert_eq!(
                reference, threaded,
                "{label}/islands{islands}: thread backend diverged"
            );
            let sub = Arc::new(SubprocessBackend::new(WORKER, 2));
            let remote = run_with(Some(Arc::clone(&sub) as Arc<dyn EvalBackend>), &plan);
            assert_eq!(
                reference, remote,
                "{label}/islands{islands}: subprocess backend diverged"
            );
            let health = sub.health();
            assert!(
                health.items > 0,
                "{label}/islands{islands}: subprocess workers must actually \
                 evaluate items, not silently fall back: {health:?}"
            );
        }
    }
}

/// Kill a worker mid-batch (the first generation of children exits after
/// five successful evaluations) — the backend re-sends the chunk to a
/// clean respawn and the merged front stays bit-identical.
#[test]
fn worker_death_mid_batch_recovers_bit_identically() {
    let plan = CampaignPlan::proposed().islands(2);
    let reference = run_with(None, &plan);
    let doomed = Arc::new(
        SubprocessBackend::new(WORKER, 2).with_sticky_env("CLRE_EXEC_WORKER_DIE_AFTER", "5"),
    );
    let recovered = run_with(Some(Arc::clone(&doomed) as Arc<dyn EvalBackend>), &plan);
    assert_eq!(
        reference, recovered,
        "recovery after a worker death must not perturb the front"
    );
    let health = doomed.health();
    assert!(
        health.lost >= 1,
        "a worker must actually have died: {health:?}"
    );
    assert!(
        health.restarts >= 1,
        "the lost worker must have been respawned: {health:?}"
    );
    assert!(health.items > 0, "items must have flowed: {health:?}");
}

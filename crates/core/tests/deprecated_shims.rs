//! Compatibility: the deprecated campaign wrappers (`run_fc`,
//! `run_campaign`, …) still compile and forward bit-identically to the
//! `run(plan)` API that replaced them. This file is the only permitted
//! caller — everything else in the tree uses `run`/`run_supervised`/
//! `resume` directly, and `cargo clippy -D warnings` enforces that.
#![allow(deprecated)]

use clre::apps;
use clre::methodology::{ClrEarly, StageBudget};
use clre::CampaignPlan;

#[test]
fn deprecated_wrappers_forward_to_run() {
    let (platform, graph) = apps::synthetic_app(8, 5).expect("app builds");
    let dse = ClrEarly::new(&graph, &platform).expect("tDSE succeeds");
    let budget = StageBudget::smoke_test();

    let wrapper = dse.run_fc(&budget).expect("run_fc");
    let plan = dse.run(&CampaignPlan::fc(), &budget).expect("run fc");
    assert_eq!(
        wrapper.objectives(),
        plan.objectives(),
        "run_fc must forward to run(&CampaignPlan::fc())"
    );

    let wrapper = dse.run_proposed(&budget).expect("run_proposed");
    let plan = dse
        .run(&CampaignPlan::proposed(), &budget)
        .expect("run proposed");
    assert_eq!(
        wrapper.objectives(),
        plan.objectives(),
        "run_proposed must forward to run(&CampaignPlan::proposed())"
    );

    let renamed = dse
        .run_campaign(&CampaignPlan::pf(), &budget)
        .expect("run_campaign");
    let direct = dse.run(&CampaignPlan::pf(), &budget).expect("run pf");
    assert_eq!(
        renamed.objectives(),
        direct.objectives(),
        "run_campaign is a pure rename of run"
    );
}

//! Seeded TGFF-style synthetic task-graph generator.
//!
//! The paper generates its synthetic applications and task execution times
//! with the *Task Graphs For Free* (TGFF) tool. This crate reproduces the
//! relevant behaviour: layered, connected, acyclic task graphs with a
//! bounded width and in-degree, drawn from a pool of reusable task types —
//! reproducibly from a seed.
//!
//! Task-type *attributes* (cycles, power) are injected by the caller
//! through a closure, normally backed by
//! [`clre_profile::SyntheticCharacterizer`]; this keeps the generator
//! independent of the characterization substrate.
//!
//! # Examples
//!
//! ```
//! use clre_model::{BaseImpl, PeTypeId};
//! use clre_tgff::{generate, TgffConfig};
//!
//! # fn main() -> Result<(), clre_model::ModelError> {
//! let cfg = TgffConfig::new(20).with_type_count(10);
//! let graph = generate(&cfg, 42, |ty| {
//!     vec![BaseImpl::new(format!("syn{ty}"), PeTypeId::new(0), 1.0e5, 1.0e-9)]
//! })?;
//! assert_eq!(graph.task_count(), 20);
//! assert!(graph.task_types().len() <= 10);
//! // Seeded: the same inputs give the same graph.
//! let again = generate(&cfg, 42, |ty| {
//!     vec![BaseImpl::new(format!("syn{ty}"), PeTypeId::new(0), 1.0e5, 1.0e-9)]
//! })?;
//! assert_eq!(graph.edges(), again.edges());
//! # Ok(())
//! # }
//! ```
//!
//! [`clre_profile::SyntheticCharacterizer`]: https://example.invalid/clrearly

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use clre_model::{BaseImpl, ModelError, TaskGraph, TaskType, TaskTypeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic graph generator.
///
/// Defaults mirror the paper's setup: a pool of 10 task types
/// (`SYN_0`…`SYN_9`), period 10 ms, moderate fan-in/out.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TgffConfig {
    /// Number of task nodes `T`.
    pub task_count: usize,
    /// Size of the task-type pool; types are reused across tasks.
    pub type_count: usize,
    /// Application period `P_app` in seconds.
    pub period: f64,
    /// Maximum number of predecessors per task.
    pub max_in_degree: usize,
    /// Maximum number of tasks per layer (graph width).
    pub max_width: usize,
    /// Range of per-edge data volumes in bytes, sampled uniformly. Only
    /// affects scheduling on platforms that declare an interconnect.
    pub edge_volume_range: (f64, f64),
    /// Application name prefix.
    pub name: String,
}

impl TgffConfig {
    /// Creates a configuration for `task_count` tasks with paper-like
    /// defaults.
    ///
    /// # Panics
    ///
    /// Panics if `task_count == 0`.
    pub fn new(task_count: usize) -> Self {
        assert!(task_count > 0, "task count must be positive");
        TgffConfig {
            task_count,
            type_count: 10,
            period: 10.0e-3,
            max_in_degree: 3,
            max_width: 4,
            edge_volume_range: (1024.0, 65536.0),
            name: format!("tgff-{task_count}"),
        }
    }

    /// Sets the task-type pool size (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    #[must_use]
    pub fn with_type_count(mut self, count: usize) -> Self {
        assert!(count > 0, "type count must be positive");
        self.type_count = count;
        self
    }

    /// Sets the application period in seconds (builder style).
    #[must_use]
    pub fn with_period(mut self, period: f64) -> Self {
        self.period = period;
        self
    }

    /// Sets the maximum graph width (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    #[must_use]
    pub fn with_max_width(mut self, width: usize) -> Self {
        assert!(width > 0, "width must be positive");
        self.max_width = width;
        self
    }

    /// Sets the maximum in-degree (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `deg == 0`.
    #[must_use]
    pub fn with_max_in_degree(mut self, deg: usize) -> Self {
        assert!(deg > 0, "in-degree must be positive");
        self.max_in_degree = deg;
        self
    }

    /// Sets the edge data-volume range in bytes (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `lo < 0`.
    #[must_use]
    pub fn with_edge_volume_range(mut self, lo: f64, hi: f64) -> Self {
        assert!(lo >= 0.0 && lo <= hi, "invalid volume range");
        self.edge_volume_range = (lo, hi);
        self
    }
}

/// Generates a connected, layered DAG application.
///
/// `impls_for_type` supplies the base implementations of each task type in
/// the pool (indices `0..cfg.type_count`). Only types actually used by the
/// generated tasks are materialized, but type indices are stable: task
/// type `SYN_k` always corresponds to pool index `k`.
///
/// # Errors
///
/// Propagates [`ModelError`] from graph validation — in particular
/// [`ModelError::NoImplementations`] if `impls_for_type` returns an empty
/// vector for a used type.
pub fn generate<F>(cfg: &TgffConfig, seed: u64, impls_for_type: F) -> Result<TaskGraph, ModelError>
where
    F: Fn(u32) -> Vec<BaseImpl>,
{
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC1_5EA_51E);
    // Layer the tasks: each layer holds 1..=max_width tasks.
    let mut layers: Vec<Vec<u32>> = Vec::new();
    let mut next = 0u32;
    while (next as usize) < cfg.task_count {
        let remaining = cfg.task_count - next as usize;
        let width = rng.gen_range(1..=cfg.max_width.min(remaining));
        layers.push((next..next + width as u32).collect());
        next += width as u32;
    }

    // Materialize the full type pool so type indices are stable, assign a
    // pool type to every task.
    let mut builder = TaskGraph::builder(cfg.name.clone(), cfg.period);
    for ty in 0..cfg.type_count {
        let mut t = TaskType::new(format!("SYN_{ty}"));
        for imp in impls_for_type(ty as u32) {
            t = t.with_impl(imp);
        }
        builder = builder.task_type(t);
    }
    for t in 0..cfg.task_count {
        let ty = rng.gen_range(0..cfg.type_count) as u32;
        builder = builder.task_by_type_id(&format!("t{t}"), TaskTypeId::new(ty), 1.0);
    }

    // Connect: every task after layer 0 draws 1..=max_in_degree
    // predecessors from the previous layer (guaranteeing a connected,
    // acyclic, layered structure like TGFF's series-parallel graphs),
    // with occasional skip edges from any earlier layer for irregularity.
    let (vol_lo, vol_hi) = cfg.edge_volume_range;
    let volume = |rng: &mut StdRng| {
        if vol_hi > vol_lo {
            rng.gen_range(vol_lo..vol_hi)
        } else {
            vol_lo
        }
    };
    for li in 1..layers.len() {
        let prev = &layers[li - 1];
        for &t in &layers[li] {
            let in_deg = rng.gen_range(1..=cfg.max_in_degree.min(prev.len()));
            let mut picked = prev.clone();
            partial_shuffle(&mut picked, &mut rng);
            for &p in picked.iter().take(in_deg) {
                let v = volume(&mut rng);
                builder = builder.edge_with_volume(p, t, v);
            }
            // 20% chance of one long-range edge from a random earlier layer.
            if li >= 2 && rng.gen_bool(0.2) {
                let far_layer = rng.gen_range(0..li - 1);
                let src = layers[far_layer][rng.gen_range(0..layers[far_layer].len())];
                let v = volume(&mut rng);
                builder = builder.edge_with_volume(src, t, v);
            }
        }
    }
    builder.build()
}

/// Fisher–Yates shuffle (full); `rand`'s `SliceRandom` is avoided to keep
/// the dependency surface to `Rng` only.
fn partial_shuffle<R: Rng>(xs: &mut [u32], rng: &mut R) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clre_model::{PeTypeId, TaskId};

    fn one_impl(ty: u32) -> Vec<BaseImpl> {
        vec![BaseImpl::new(
            format!("syn{ty}"),
            PeTypeId::new(0),
            1.0e5 + ty as f64,
            1.0e-9,
        )]
    }

    #[test]
    fn generates_requested_task_count() {
        for &n in &[1usize, 5, 20, 50, 100] {
            let g = generate(&TgffConfig::new(n), 7, one_impl).unwrap();
            assert_eq!(g.task_count(), n);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = TgffConfig::new(30);
        let a = generate(&cfg, 1, one_impl).unwrap();
        let b = generate(&cfg, 1, one_impl).unwrap();
        let c = generate(&cfg, 2, one_impl).unwrap();
        assert_eq!(a.edges(), b.edges());
        assert_eq!(
            a.tasks().iter().map(|t| t.task_type()).collect::<Vec<_>>(),
            b.tasks().iter().map(|t| t.task_type()).collect::<Vec<_>>()
        );
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn connected_after_first_layer() {
        let g = generate(&TgffConfig::new(50), 3, one_impl).unwrap();
        // Count roots: must be at most max_width (the first layer).
        let roots = g
            .tasks()
            .iter()
            .filter(|t| g.predecessors(t.id()).is_empty())
            .count();
        assert!(roots <= 4, "too many roots: {roots}");
        // Everything else has at least one predecessor.
        for t in g.tasks().iter().skip(roots) {
            assert!(!g.predecessors(t.id()).is_empty());
        }
    }

    #[test]
    fn respects_width_and_degree_bounds() {
        let cfg = TgffConfig::new(60).with_max_width(3).with_max_in_degree(2);
        let g = generate(&cfg, 9, one_impl).unwrap();
        // In-degree bound: layered edges ≤ 2, plus at most 1 skip edge.
        for t in g.tasks() {
            assert!(g.predecessors(t.id()).len() <= 3);
        }
    }

    #[test]
    fn types_drawn_from_pool() {
        let cfg = TgffConfig::new(40).with_type_count(5);
        let g = generate(&cfg, 11, one_impl).unwrap();
        assert_eq!(g.task_types().len(), 5);
        for t in g.tasks() {
            assert!(t.task_type().index() < 5);
        }
        assert_eq!(g.task_types()[3].name(), "SYN_3");
    }

    #[test]
    fn empty_impls_rejected() {
        let err = generate(&TgffConfig::new(5), 1, |_| vec![]).unwrap_err();
        assert!(matches!(err, ModelError::NoImplementations { .. }));
    }

    #[test]
    fn single_task_graph() {
        let g = generate(&TgffConfig::new(1), 1, one_impl).unwrap();
        assert_eq!(g.task_count(), 1);
        assert!(g.edges().is_empty());
        assert_eq!(g.topological_order(), &[TaskId::new(0)]);
    }

    #[test]
    fn edges_carry_volumes_in_range() {
        let cfg = TgffConfig::new(30).with_edge_volume_range(100.0, 200.0);
        let g = generate(&cfg, 5, one_impl).unwrap();
        assert!(!g.edges().is_empty());
        for &v in g.edge_volumes() {
            assert!((100.0..=200.0).contains(&v), "volume {v} out of range");
        }
        // Degenerate range pins every volume.
        let cfg = TgffConfig::new(10).with_edge_volume_range(42.0, 42.0);
        let g = generate(&cfg, 5, one_impl).unwrap();
        for &v in g.edge_volumes() {
            assert_eq!(v, 42.0);
        }
    }

    #[test]
    fn period_and_name_propagate() {
        let cfg = TgffConfig::new(4).with_period(2.5e-3);
        let g = generate(&cfg, 1, one_impl).unwrap();
        assert_eq!(g.period(), 2.5e-3);
        assert_eq!(g.name(), "tgff-4");
    }

    #[test]
    #[should_panic(expected = "task count must be positive")]
    fn zero_tasks_panics() {
        TgffConfig::new(0);
    }
}

//! Quality-of-Service metric types: the task-level tuple of Table II, the
//! system-level tuple of Table III, objective sets for the DSE stages
//! (Table IV) and constraint specifications (Equation 5).
//!
//! All objective vectors returned by this module are **minimization**
//! vectors: quantities that should be maximized (functional reliability,
//! lifetime MTTF) are negated so that downstream Pareto filtering and
//! hypervolume computation can treat every axis uniformly.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Task-level performance metrics of one `(implementation, DVFS mode, CLR
/// configuration)` point (Table II).
///
/// Produced by the task-level analysis (`clre::tdse`); consumed by the
/// system-level QoS estimation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskMetrics {
    /// Fault-free (minimum) execution time in seconds (`MinExT`).
    pub min_exec_time: f64,
    /// Average execution time in seconds including mitigation overheads and
    /// expected recovery loops (`AvgExT`, from the timing Markov chain).
    pub avg_exec_time: f64,
    /// Probability that the task's result is erroneous despite the CLR
    /// configuration (`ErrProb`, from the functional Markov chain).
    pub error_prob: f64,
    /// Weibull scale parameter `η` in seconds (stress indicator from the
    /// thermal profile).
    pub eta: f64,
    /// Average power in watts during execution (`W`).
    pub power: f64,
    /// Energy per execution in joules (`AvgExT × W`).
    pub energy: f64,
    /// Steady-state peak temperature in kelvin during execution.
    pub peak_temp: f64,
}

impl TaskMetrics {
    /// Per-execution MTTF contribution `η · Γ(1 + 1/β)` for a PE with
    /// Weibull shape `beta`, given a precomputed `Γ(1 + 1/β)`.
    pub fn mttf_with_gamma(&self, gamma_term: f64) -> f64 {
        self.eta * gamma_term
    }

    /// The objective vector (all-minimization) for a task-level
    /// [`ObjectiveSet`].
    ///
    /// # Examples
    ///
    /// ```
    /// use clre_model::qos::{ObjectiveSet, TaskMetrics};
    ///
    /// let m = TaskMetrics {
    ///     min_exec_time: 1e-4, avg_exec_time: 1.2e-4, error_prob: 0.01,
    ///     eta: 3.0e8, power: 0.5, energy: 6e-5, peak_temp: 330.0,
    /// };
    /// let v = m.objective_vector(&ObjectiveSet::set_ii());
    /// assert_eq!(v, vec![1.2e-4, 0.01]);
    /// ```
    pub fn objective_vector(&self, set: &ObjectiveSet) -> Vec<f64> {
        set.objectives()
            .iter()
            .map(|o| match o {
                Objective::AvgExecTime => self.avg_exec_time,
                Objective::ErrorProbability => self.error_prob,
                Objective::Mttf => -self.eta, // maximize η ⇒ minimize −η
                Objective::Energy => self.energy,
                Objective::PeakPower => self.power,
                Objective::PeakTemperature => self.peak_temp,
                Objective::MinExecTime => self.min_exec_time,
                Objective::Makespan => self.avg_exec_time,
            })
            .collect()
    }
}

/// System-level QoS metrics of one full mapping configuration (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemMetrics {
    /// Average application makespan `S_app` in seconds.
    pub makespan: f64,
    /// Application error probability `1 − F_app` (criticality-weighted).
    pub error_prob: f64,
    /// System lifetime `L_app = MTTF_sys` in seconds.
    pub mttf: f64,
    /// Energy per application iteration `J_app` in joules.
    pub energy: f64,
    /// Peak power dissipation `W_app` in watts.
    pub peak_power: f64,
}

impl SystemMetrics {
    /// The objective vector (all-minimization) for a system-level
    /// [`ObjectiveSet`].
    pub fn objective_vector(&self, set: &ObjectiveSet) -> Vec<f64> {
        set.objectives()
            .iter()
            .map(|o| match o {
                Objective::Makespan | Objective::AvgExecTime => self.makespan,
                Objective::ErrorProbability => self.error_prob,
                Objective::Mttf => -self.mttf,
                Objective::Energy => self.energy,
                Objective::PeakPower => self.peak_power,
                Objective::PeakTemperature => self.peak_power, // no system temp model
                Objective::MinExecTime => self.makespan,
            })
            .collect()
    }
}

/// A single optimization objective. All objectives are minimized; see the
/// [module docs](self) for the sign convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Objective {
    /// Task-level average execution time.
    AvgExecTime,
    /// Error probability (task- or application-level).
    ErrorProbability,
    /// Lifetime (negated MTTF / Weibull scale).
    Mttf,
    /// Energy.
    Energy,
    /// Peak power dissipation.
    PeakPower,
    /// Peak steady-state temperature (task-level only).
    PeakTemperature,
    /// Fault-free (minimum) execution time `MinExT` (task-level; Table
    /// II). Independent of the average time because recovery dynamics and
    /// static overheads diverge.
    MinExecTime,
    /// Application average makespan (system-level).
    Makespan,
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Objective::AvgExecTime => "avg-exec-time",
            Objective::ErrorProbability => "error-prob",
            Objective::Mttf => "mttf",
            Objective::Energy => "energy",
            Objective::PeakPower => "peak-power",
            Objective::PeakTemperature => "peak-temp",
            Objective::MinExecTime => "min-exec-time",
            Objective::Makespan => "makespan",
        };
        f.write_str(s)
    }
}

/// An ordered set of objectives.
///
/// The constructors `set_i()` … `set_vi()` reproduce the cumulative
/// objective sets of the paper's Table IV.
///
/// # Examples
///
/// ```
/// use clre_model::qos::ObjectiveSet;
///
/// assert_eq!(ObjectiveSet::set_i().len(), 1);
/// assert_eq!(ObjectiveSet::set_vi().len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectiveSet {
    objectives: Vec<Objective>,
}

impl ObjectiveSet {
    /// Creates a set from an explicit objective list.
    ///
    /// # Panics
    ///
    /// Panics if `objectives` is empty.
    pub fn new(objectives: Vec<Objective>) -> Self {
        assert!(!objectives.is_empty(), "objective set must be non-empty");
        ObjectiveSet { objectives }
    }

    /// Table IV set I: average execution time only.
    pub fn set_i() -> Self {
        Self::new(vec![Objective::AvgExecTime])
    }

    /// Table IV set II: I + error probability.
    pub fn set_ii() -> Self {
        Self::new(vec![Objective::AvgExecTime, Objective::ErrorProbability])
    }

    /// Table IV set III: II + MTTF.
    pub fn set_iii() -> Self {
        let mut s = Self::set_ii();
        s.objectives.push(Objective::Mttf);
        s
    }

    /// Table IV set IV: III + energy.
    pub fn set_iv() -> Self {
        let mut s = Self::set_iii();
        s.objectives.push(Objective::Energy);
        s
    }

    /// Table IV set V: IV + peak power dissipation.
    pub fn set_v() -> Self {
        let mut s = Self::set_iv();
        s.objectives.push(Objective::PeakPower);
        s
    }

    /// Table IV set VI: V + peak temperature.
    pub fn set_vi() -> Self {
        let mut s = Self::set_v();
        s.objectives.push(Objective::PeakTemperature);
        s
    }

    /// Appends an objective (builder style).
    #[must_use]
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objectives.push(objective);
        self
    }

    /// The system-level bi-objective set used in the paper's Figs. 7–10:
    /// average makespan and application error probability.
    pub fn system_bi() -> Self {
        Self::new(vec![Objective::Makespan, Objective::ErrorProbability])
    }

    /// The lifetime-aware system-level set: [`ObjectiveSet::system_bi`]
    /// plus (negated) system MTTF, for campaigns where permanent/aging
    /// faults are a first-class design axis.
    pub fn system_lifetime() -> Self {
        Self::new(vec![
            Objective::Makespan,
            Objective::ErrorProbability,
            Objective::Mttf,
        ])
    }

    /// The objectives in order.
    pub fn objectives(&self) -> &[Objective] {
        &self.objectives
    }

    /// Number of objectives.
    pub fn len(&self) -> usize {
        self.objectives.len()
    }

    /// Always `false`; sets are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        self.objectives.is_empty()
    }
}

impl fmt::Display for ObjectiveSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, o) in self.objectives.iter().enumerate() {
            if i > 0 {
                write!(f, "+")?;
            }
            write!(f, "{o}")?;
        }
        Ok(())
    }
}

/// Application-specific QoS constraints (the `SPEC` terms of Equation 5).
///
/// All bounds are optional; an unset bound never rejects a design point.
///
/// # Examples
///
/// ```
/// use clre_model::qos::{QosSpec, SystemMetrics};
///
/// let spec = QosSpec::new().with_max_makespan(1.0e-3).with_min_reliability(0.95);
/// let good = SystemMetrics {
///     makespan: 0.5e-3, error_prob: 0.01, mttf: 1e8, energy: 1.0, peak_power: 2.0,
/// };
/// assert!(spec.is_feasible(&good));
/// let slow = SystemMetrics { makespan: 2.0e-3, ..good };
/// assert!(!spec.is_feasible(&slow));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct QosSpec {
    max_makespan: Option<f64>,
    min_reliability: Option<f64>,
    min_mttf: Option<f64>,
    max_energy: Option<f64>,
    max_peak_power: Option<f64>,
}

impl QosSpec {
    /// Creates an unconstrained specification.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the maximum average makespan `S_SPEC` (seconds).
    #[must_use]
    pub fn with_max_makespan(mut self, s: f64) -> Self {
        self.max_makespan = Some(s);
        self
    }

    /// Sets the minimum functional reliability `F_SPEC` (probability).
    #[must_use]
    pub fn with_min_reliability(mut self, f: f64) -> Self {
        self.min_reliability = Some(f);
        self
    }

    /// Sets the minimum lifetime `L_SPEC` (seconds of MTTF).
    #[must_use]
    pub fn with_min_mttf(mut self, l: f64) -> Self {
        self.min_mttf = Some(l);
        self
    }

    /// Sets the maximum energy per iteration `J_SPEC` (joules).
    #[must_use]
    pub fn with_max_energy(mut self, j: f64) -> Self {
        self.max_energy = Some(j);
        self
    }

    /// Sets the maximum peak power `W_SPEC` (watts).
    #[must_use]
    pub fn with_max_peak_power(mut self, w: f64) -> Self {
        self.max_peak_power = Some(w);
        self
    }

    /// The five bounds in declaration order: max makespan, min
    /// reliability, min MTTF, max energy, max peak power (`None` = unset).
    ///
    /// Exposes the spec's content for identity purposes — e.g. the
    /// evaluation cache digests these bounds so specs with different
    /// constraints never share cached fitness values.
    pub fn bounds(&self) -> [Option<f64>; 5] {
        [
            self.max_makespan,
            self.min_reliability,
            self.min_mttf,
            self.max_energy,
            self.max_peak_power,
        ]
    }

    /// Returns `true` when `m` satisfies every set bound.
    pub fn is_feasible(&self, m: &SystemMetrics) -> bool {
        self.violation(m) == 0.0
    }

    /// Total normalized constraint violation; `0.0` means feasible. Used as
    /// a penalty by constrained optimization.
    pub fn violation(&self, m: &SystemMetrics) -> f64 {
        let mut v = 0.0;
        if let Some(s) = self.max_makespan {
            if m.makespan > s {
                v += (m.makespan - s) / s;
            }
        }
        if let Some(fr) = self.min_reliability {
            let rel = 1.0 - m.error_prob;
            if rel < fr {
                v += (fr - rel) / fr;
            }
        }
        if let Some(l) = self.min_mttf {
            if m.mttf < l {
                v += (l - m.mttf) / l;
            }
        }
        if let Some(j) = self.max_energy {
            if m.energy > j {
                v += (m.energy - j) / j;
            }
        }
        if let Some(w) = self.max_peak_power {
            if m.peak_power > w {
                v += (m.peak_power - w) / w;
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> SystemMetrics {
        SystemMetrics {
            makespan: 1.0e-3,
            error_prob: 0.05,
            mttf: 3.0e7,
            energy: 0.5,
            peak_power: 2.0,
        }
    }

    #[test]
    fn table_iv_sets_are_cumulative() {
        let sets = [
            ObjectiveSet::set_i(),
            ObjectiveSet::set_ii(),
            ObjectiveSet::set_iii(),
            ObjectiveSet::set_iv(),
            ObjectiveSet::set_v(),
            ObjectiveSet::set_vi(),
        ];
        for (i, s) in sets.iter().enumerate() {
            assert_eq!(s.len(), i + 1);
            assert!(!s.is_empty());
        }
        for w in sets.windows(2) {
            assert_eq!(&w[1].objectives()[..w[0].len()], w[0].objectives());
        }
    }

    #[test]
    fn mttf_objective_is_negated() {
        let m = TaskMetrics {
            min_exec_time: 1.0,
            avg_exec_time: 2.0,
            error_prob: 0.1,
            eta: 100.0,
            power: 1.0,
            energy: 2.0,
            peak_temp: 300.0,
        };
        let v = m.objective_vector(&ObjectiveSet::set_iii());
        assert_eq!(v, vec![2.0, 0.1, -100.0]);
        assert_eq!(m.mttf_with_gamma(0.9), 90.0);
    }

    #[test]
    fn system_vector_matches_set() {
        let v = metrics().objective_vector(&ObjectiveSet::system_bi());
        assert_eq!(v, vec![1.0e-3, 0.05]);
    }

    #[test]
    fn qos_spec_each_bound() {
        let m = metrics();
        assert!(QosSpec::new().is_feasible(&m));
        assert!(!QosSpec::new().with_max_makespan(0.5e-3).is_feasible(&m));
        assert!(!QosSpec::new().with_min_reliability(0.99).is_feasible(&m));
        assert!(!QosSpec::new().with_min_mttf(1e9).is_feasible(&m));
        assert!(!QosSpec::new().with_max_energy(0.1).is_feasible(&m));
        assert!(!QosSpec::new().with_max_peak_power(1.0).is_feasible(&m));
    }

    #[test]
    fn violation_scales_with_distance() {
        let spec = QosSpec::new().with_max_makespan(1.0e-3);
        let near = SystemMetrics {
            makespan: 1.1e-3,
            ..metrics()
        };
        let far = SystemMetrics {
            makespan: 2.0e-3,
            ..metrics()
        };
        assert!(spec.violation(&near) < spec.violation(&far));
        assert_eq!(spec.violation(&metrics()), 0.0);
    }

    #[test]
    fn objective_display() {
        assert_eq!(
            ObjectiveSet::set_ii().to_string(),
            "avg-exec-time+error-prob"
        );
        assert_eq!(Objective::Makespan.to_string(), "makespan");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_set_panics() {
        ObjectiveSet::new(vec![]);
    }
}

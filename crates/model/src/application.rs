//! Application model: periodic task graphs over typed tasks (Fig. 2(b) of
//! the paper).
//!
//! An application is a DAG `G_app = (T_app, E_app, P_app)`. Every
//! [`Task`] references a [`TaskType`] (its functionality); every task type
//! owns one or more [`BaseImpl`]s — concrete realizations characterized by
//! the PE type they run on, the system software they assume and the
//! algorithm/language variant. The *reliability* dimension is deliberately
//! not part of [`BaseImpl`]: CLR configurations are layered on top by
//! [`clre::tdse`].
//!
//! [`clre::tdse`]: https://example.invalid/clrearly

use crate::{ImplId, ModelError, PeTypeId, TaskId, TaskTypeId};
use serde::{Deserialize, Serialize};

/// The system-software environment an implementation assumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SysSw {
    /// No operating system; the task runs on bare metal.
    BareMetal,
    /// A real-time operating system with memory protection; provides some
    /// implicit error masking at the system-software layer.
    Rtos,
}

/// A base implementation of a task type: the `(PE type, system software,
/// application software)` tuple of Section III-B, plus its raw
/// characterization (cycle count and switching capacitance) from the
/// profiling substrate.
///
/// # Examples
///
/// ```
/// use clre_model::{application::SysSw, BaseImpl, PeTypeId};
///
/// let i = BaseImpl::new("gauss-c", PeTypeId::new(0), 180_000.0, 0.9e-9)
///     .with_sys_sw(SysSw::Rtos)
///     .with_implicit_ssw_masking(0.05);
/// assert_eq!(i.cycles(), 180_000.0);
/// assert_eq!(i.implicit_ssw_masking(), 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaseImpl {
    name: String,
    pe_type: PeTypeId,
    /// Average dynamic instruction/cycle count of one execution.
    cycles: f64,
    /// Effective switched capacitance in farads (drives `P = C·V²·f`).
    capacitance: f64,
    sys_sw: SysSw,
    /// Probability that the system-software layer implicitly masks an
    /// arriving error (`m_implSSW` in the paper's Fig. 3), in `[0, 1]`.
    implicit_ssw_masking: f64,
    /// Code + state memory footprint in bytes (0 = unconstrained).
    memory_bytes: f64,
}

impl BaseImpl {
    /// Creates a bare-metal implementation with no implicit SSW masking.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` or `capacitance` is not strictly positive.
    pub fn new(name: impl Into<String>, pe_type: PeTypeId, cycles: f64, capacitance: f64) -> Self {
        assert!(cycles > 0.0, "cycles must be positive");
        assert!(capacitance > 0.0, "capacitance must be positive");
        BaseImpl {
            name: name.into(),
            pe_type,
            cycles,
            capacitance,
            sys_sw: SysSw::BareMetal,
            implicit_ssw_masking: 0.0,
            memory_bytes: 0.0,
        }
    }

    /// Sets the system-software environment (builder style).
    #[must_use]
    pub fn with_sys_sw(mut self, sys_sw: SysSw) -> Self {
        self.sys_sw = sys_sw;
        self
    }

    /// Sets the implicit SSW masking probability (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `m` is outside `[0, 1]`.
    #[must_use]
    pub fn with_implicit_ssw_masking(mut self, m: f64) -> Self {
        assert!((0.0..=1.0).contains(&m), "masking must be within [0, 1]");
        self.implicit_ssw_masking = m;
        self
    }

    /// The implementation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The PE type this implementation is compiled/synthesized for.
    pub fn pe_type(&self) -> PeTypeId {
        self.pe_type
    }

    /// Average cycle count of one fault-free execution.
    pub fn cycles(&self) -> f64 {
        self.cycles
    }

    /// Effective switched capacitance in farads.
    pub fn capacitance(&self) -> f64 {
        self.capacitance
    }

    /// The assumed system software.
    pub fn sys_sw(&self) -> SysSw {
        self.sys_sw
    }

    /// Implicit system-software masking probability `m_implSSW`.
    pub fn implicit_ssw_masking(&self) -> f64 {
        self.implicit_ssw_masking
    }

    /// Sets the memory footprint in bytes (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is negative or not finite.
    #[must_use]
    pub fn with_memory_bytes(mut self, bytes: f64) -> Self {
        assert!(
            bytes.is_finite() && bytes >= 0.0,
            "memory must be non-negative"
        );
        self.memory_bytes = bytes;
        self
    }

    /// Code + state memory footprint in bytes.
    pub fn memory_bytes(&self) -> f64 {
        self.memory_bytes
    }
}

/// A task functionality class owning its base implementations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskType {
    name: String,
    impls: Vec<BaseImpl>,
}

impl TaskType {
    /// Creates a task type with no implementations yet.
    pub fn new(name: impl Into<String>) -> Self {
        TaskType {
            name: name.into(),
            impls: Vec::new(),
        }
    }

    /// Adds a base implementation (builder style).
    #[must_use]
    pub fn with_impl(mut self, imp: BaseImpl) -> Self {
        self.impls.push(imp);
        self
    }

    /// The type's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The base implementations in registration order.
    pub fn impls(&self) -> &[BaseImpl] {
        &self.impls
    }

    /// Looks up an implementation by id.
    pub fn impl_by_id(&self, id: ImplId) -> Option<&BaseImpl> {
        self.impls.get(id.index())
    }
}

/// A task node: index, type reference and criticality weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    id: TaskId,
    name: String,
    task_type: TaskTypeId,
    /// Raw (unnormalized) criticality weight; the graph normalizes these
    /// into `ζ_t` for the functional-reliability estimate.
    criticality: f64,
}

impl Task {
    /// The task's index in the graph.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// The task's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The task's functionality class.
    pub fn task_type(&self) -> TaskTypeId {
        self.task_type
    }

    /// The raw criticality weight.
    pub fn criticality(&self) -> f64 {
        self.criticality
    }
}

/// A validated periodic application task graph.
///
/// Build with [`TaskGraph::builder`]. Validation guarantees: at least one
/// task, all edges in range, acyclicity, all task-type references valid and
/// every referenced type has at least one implementation.
///
/// # Examples
///
/// ```
/// use clre_model::{application::TaskGraph, BaseImpl, PeTypeId, TaskType};
///
/// # fn main() -> Result<(), clre_model::ModelError> {
/// let ty = TaskType::new("fir").with_impl(BaseImpl::new("fir-c", PeTypeId::new(0), 1e5, 1e-9));
/// let g = TaskGraph::builder("pipeline", 1.0e-3)
///     .task_type(ty)
///     .task("t0", "fir")?
///     .task("t1", "fir")?
///     .edge(0, 1)
///     .build()?;
/// assert_eq!(g.task_count(), 2);
/// assert_eq!(g.successors(clre_model::TaskId::new(0)), &[clre_model::TaskId::new(1)]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskGraph {
    name: String,
    /// Application period `P_app` in seconds.
    period: f64,
    task_types: Vec<TaskType>,
    tasks: Vec<Task>,
    edges: Vec<(TaskId, TaskId)>,
    /// `volumes[i]` is the data volume in bytes of `edges[i]`.
    volumes: Vec<f64>,
    succs: Vec<Vec<TaskId>>,
    preds: Vec<Vec<TaskId>>,
    /// `pred_edges[t]` pairs each predecessor with its edge volume.
    pred_edges: Vec<Vec<(TaskId, f64)>>,
    topo: Vec<TaskId>,
}

impl TaskGraph {
    /// Starts building a task graph with the given name and period (s).
    ///
    /// # Panics
    ///
    /// Panics if `period` is not strictly positive.
    pub fn builder(name: impl Into<String>, period: f64) -> TaskGraphBuilder {
        assert!(period > 0.0, "period must be positive");
        TaskGraphBuilder {
            name: name.into(),
            period,
            task_types: Vec::new(),
            tasks: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// The application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The application period `P_app` in seconds.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Number of tasks (`T` in the paper).
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// All tasks in index order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// All registered task types.
    pub fn task_types(&self) -> &[TaskType] {
        &self.task_types
    }

    /// Looks up a task by id.
    pub fn task(&self, id: TaskId) -> Option<&Task> {
        self.tasks.get(id.index())
    }

    /// Looks up a task type by id.
    pub fn task_type(&self, id: TaskTypeId) -> Option<&TaskType> {
        self.task_types.get(id.index())
    }

    /// The task type record of a given task.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (i.e. from a different graph).
    pub fn type_of(&self, id: TaskId) -> &TaskType {
        &self.task_types[self.tasks[id.index()].task_type.index()]
    }

    /// The dependency edges.
    pub fn edges(&self) -> &[(TaskId, TaskId)] {
        &self.edges
    }

    /// The data volume in bytes of each edge, parallel to
    /// [`TaskGraph::edges`].
    pub fn edge_volumes(&self) -> &[f64] {
        &self.volumes
    }

    /// Each predecessor of `id` together with the communicated volume.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn predecessor_edges(&self, id: TaskId) -> &[(TaskId, f64)] {
        &self.pred_edges[id.index()]
    }

    /// Direct successors of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn successors(&self, id: TaskId) -> &[TaskId] {
        &self.succs[id.index()]
    }

    /// Direct predecessors of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn predecessors(&self, id: TaskId) -> &[TaskId] {
        &self.preds[id.index()]
    }

    /// A topological order of the tasks (stable across runs).
    pub fn topological_order(&self) -> &[TaskId] {
        &self.topo
    }

    /// Renders the task graph in Graphviz DOT format: one node per task
    /// labelled `name : type`, one edge per dependency annotated with its
    /// data volume when non-zero.
    ///
    /// # Examples
    ///
    /// ```
    /// # use clre_model::{application::TaskGraph, BaseImpl, PeTypeId, TaskType};
    /// # fn main() -> Result<(), clre_model::ModelError> {
    /// # let ty = TaskType::new("f").with_impl(BaseImpl::new("i", PeTypeId::new(0), 1e5, 1e-9));
    /// # let g = TaskGraph::builder("a", 1.0).task_type(ty)
    /// #     .task("t0", "f")?.task("t1", "f")?.edge(0, 1).build()?;
    /// let dot = g.to_dot();
    /// assert!(dot.starts_with("digraph"));
    /// assert!(dot.contains("T0 -> T1"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_dot(&self) -> String {
        let mut out = format!("digraph \"{}\" {{\n  rankdir=TB;\n", self.name);
        for t in &self.tasks {
            out.push_str(&format!(
                "  {} [label=\"{} : {}\"];\n",
                t.id(),
                t.name(),
                self.task_types[t.task_type().index()].name()
            ));
        }
        for (&(f, t), &v) in self.edges.iter().zip(&self.volumes) {
            if v > 0.0 {
                out.push_str(&format!("  {f} -> {t} [label=\"{v:.0} B\"];\n"));
            } else {
                out.push_str(&format!("  {f} -> {t};\n"));
            }
        }
        out.push_str("}\n");
        out
    }

    /// Normalized criticalities `ζ_t` (sum to 1).
    ///
    /// # Examples
    ///
    /// ```
    /// # use clre_model::{application::TaskGraph, BaseImpl, PeTypeId, TaskType};
    /// # fn main() -> Result<(), clre_model::ModelError> {
    /// # let ty = TaskType::new("f").with_impl(BaseImpl::new("i", PeTypeId::new(0), 1e5, 1e-9));
    /// # let g = TaskGraph::builder("a", 1.0).task_type(ty)
    /// #     .task("t0", "f")?.task("t1", "f")?.build()?;
    /// let z = g.normalized_criticalities();
    /// assert!((z.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    /// # Ok(())
    /// # }
    /// ```
    pub fn normalized_criticalities(&self) -> Vec<f64> {
        let total: f64 = self.tasks.iter().map(Task::criticality).sum();
        self.tasks.iter().map(|t| t.criticality / total).collect()
    }
}

/// Builder for [`TaskGraph`].
#[derive(Debug, Clone)]
pub struct TaskGraphBuilder {
    name: String,
    period: f64,
    task_types: Vec<TaskType>,
    tasks: Vec<(String, TaskTypeId, f64)>,
    edges: Vec<(u32, u32, f64)>,
}

impl TaskGraphBuilder {
    /// Registers a task type.
    #[must_use]
    pub fn task_type(mut self, ty: TaskType) -> Self {
        self.task_types.push(ty);
        self
    }

    /// Adds a task of the named type with criticality 1.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownPeType`] — reused for the type-name
    /// lookup — if no task type with that name has been registered.
    pub fn task(self, name: &str, type_name: &str) -> Result<Self, ModelError> {
        self.task_with_criticality(name, type_name, 1.0)
    }

    /// Adds a task with an explicit raw criticality weight.
    ///
    /// # Errors
    ///
    /// As for [`TaskGraphBuilder::task`]; additionally
    /// [`ModelError::InvalidParameter`] if `criticality <= 0`.
    pub fn task_with_criticality(
        mut self,
        name: &str,
        type_name: &str,
        criticality: f64,
    ) -> Result<Self, ModelError> {
        if criticality <= 0.0 {
            return Err(ModelError::InvalidParameter {
                what: "criticality must be positive",
            });
        }
        let idx = self
            .task_types
            .iter()
            .position(|t| t.name() == type_name)
            .ok_or_else(|| ModelError::UnknownPeType {
                name: type_name.to_owned(),
            })?;
        self.tasks
            .push((name.to_owned(), TaskTypeId::new(idx as u32), criticality));
        Ok(self)
    }

    /// Adds a task by raw type id (used by generators).
    #[must_use]
    pub fn task_by_type_id(mut self, name: &str, ty: TaskTypeId, criticality: f64) -> Self {
        self.tasks.push((name.to_owned(), ty, criticality));
        self
    }

    /// Adds a dependency edge `from → to` (raw indices) carrying no data.
    #[must_use]
    pub fn edge(self, from: u32, to: u32) -> Self {
        self.edge_with_volume(from, to, 0.0)
    }

    /// Adds a dependency edge with a data volume in bytes. The volume
    /// only affects scheduling when the platform declares an
    /// [`Interconnect`](crate::platform::Interconnect).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is negative or not finite.
    #[must_use]
    pub fn edge_with_volume(mut self, from: u32, to: u32, bytes: f64) -> Self {
        assert!(
            bytes.is_finite() && bytes >= 0.0,
            "volume must be non-negative"
        );
        self.edges.push((from, to, bytes));
        self
    }

    /// Validates and produces the task graph.
    ///
    /// # Errors
    ///
    /// * [`ModelError::EmptyGraph`] if no tasks were added.
    /// * [`ModelError::EdgeOutOfRange`] for dangling edges.
    /// * [`ModelError::CyclicDependencies`] if the edges are not a DAG.
    /// * [`ModelError::TaskTypeOutOfRange`] for dangling type references.
    /// * [`ModelError::NoImplementations`] if a referenced type is empty.
    pub fn build(self) -> Result<TaskGraph, ModelError> {
        let n = self.tasks.len();
        if n == 0 {
            return Err(ModelError::EmptyGraph);
        }
        for (i, (_, ty, _)) in self.tasks.iter().enumerate() {
            if ty.index() >= self.task_types.len() {
                return Err(ModelError::TaskTypeOutOfRange {
                    task: TaskId::new(i as u32),
                    ty: *ty,
                    count: self.task_types.len(),
                });
            }
            if self.task_types[ty.index()].impls.is_empty() {
                return Err(ModelError::NoImplementations { ty: *ty });
            }
        }
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        let mut pred_edges = vec![Vec::new(); n];
        let mut edges = Vec::with_capacity(self.edges.len());
        let mut volumes = Vec::with_capacity(self.edges.len());
        for &(f, t, v) in &self.edges {
            if f as usize >= n || t as usize >= n {
                return Err(ModelError::EdgeOutOfRange {
                    from: TaskId::new(f),
                    to: TaskId::new(t),
                    count: n,
                });
            }
            succs[f as usize].push(TaskId::new(t));
            preds[t as usize].push(TaskId::new(f));
            pred_edges[t as usize].push((TaskId::new(f), v));
            edges.push((TaskId::new(f), TaskId::new(t)));
            volumes.push(v);
        }
        // Kahn's algorithm both validates acyclicity and yields a stable
        // topological order (ready set processed in index order).
        let mut indeg: Vec<usize> = preds.iter().map(Vec::len).collect();
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(&u) = ready.first() {
            ready.remove(0);
            topo.push(TaskId::new(u as u32));
            for &v in &succs[u] {
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    // Insert keeping `ready` sorted for determinism.
                    let pos = ready.partition_point(|&r| r < v.index());
                    ready.insert(pos, v.index());
                }
            }
        }
        if topo.len() != n {
            return Err(ModelError::CyclicDependencies);
        }
        let tasks = self
            .tasks
            .into_iter()
            .enumerate()
            .map(|(i, (name, ty, crit))| Task {
                id: TaskId::new(i as u32),
                name,
                task_type: ty,
                criticality: crit,
            })
            .collect();
        Ok(TaskGraph {
            name: self.name,
            period: self.period,
            task_types: self.task_types,
            tasks,
            edges,
            volumes,
            succs,
            preds,
            pred_edges,
            topo,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ty(name: &str) -> TaskType {
        TaskType::new(name).with_impl(BaseImpl::new("i", PeTypeId::new(0), 1e5, 1e-9))
    }

    fn diamond() -> TaskGraph {
        TaskGraph::builder("diamond", 1.0)
            .task_type(ty("f"))
            .task("a", "f")
            .unwrap()
            .task("b", "f")
            .unwrap()
            .task("c", "f")
            .unwrap()
            .task("d", "f")
            .unwrap()
            .edge(0, 1)
            .edge(0, 2)
            .edge(1, 3)
            .edge(2, 3)
            .build()
            .unwrap()
    }

    #[test]
    fn diamond_structure() {
        let g = diamond();
        assert_eq!(g.task_count(), 4);
        assert_eq!(g.successors(TaskId::new(0)).len(), 2);
        assert_eq!(g.predecessors(TaskId::new(3)).len(), 2);
        assert_eq!(g.edges().len(), 4);
        assert_eq!(g.type_of(TaskId::new(0)).name(), "f");
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = diamond();
        let topo = g.topological_order();
        let pos = |t: TaskId| topo.iter().position(|&x| x == t).unwrap();
        for &(f, t) in g.edges() {
            assert!(pos(f) < pos(t), "edge {f}->{t} violated");
        }
    }

    #[test]
    fn rejects_cycle() {
        let err = TaskGraph::builder("loop", 1.0)
            .task_type(ty("f"))
            .task("a", "f")
            .unwrap()
            .task("b", "f")
            .unwrap()
            .edge(0, 1)
            .edge(1, 0)
            .build()
            .unwrap_err();
        assert_eq!(err, ModelError::CyclicDependencies);
    }

    #[test]
    fn rejects_dangling_edge() {
        let err = TaskGraph::builder("bad", 1.0)
            .task_type(ty("f"))
            .task("a", "f")
            .unwrap()
            .edge(0, 7)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::EdgeOutOfRange { .. }));
    }

    #[test]
    fn rejects_empty_graph_and_unknown_type() {
        assert_eq!(
            TaskGraph::builder("e", 1.0).build().unwrap_err(),
            ModelError::EmptyGraph
        );
        assert!(TaskGraph::builder("e", 1.0).task("a", "ghost").is_err());
    }

    #[test]
    fn rejects_type_without_impls() {
        let err = TaskGraph::builder("n", 1.0)
            .task_type(TaskType::new("empty"))
            .task("a", "empty")
            .unwrap()
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::NoImplementations { .. }));
    }

    #[test]
    fn rejects_dangling_type_id() {
        let err = TaskGraph::builder("n", 1.0)
            .task_type(ty("f"))
            .task_by_type_id("a", TaskTypeId::new(9), 1.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::TaskTypeOutOfRange { .. }));
    }

    #[test]
    fn criticalities_normalize() {
        let g = TaskGraph::builder("c", 1.0)
            .task_type(ty("f"))
            .task_with_criticality("a", "f", 3.0)
            .unwrap()
            .task_with_criticality("b", "f", 1.0)
            .unwrap()
            .build()
            .unwrap();
        let z = g.normalized_criticalities();
        assert!((z[0] - 0.75).abs() < 1e-12);
        assert!((z[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn criticality_must_be_positive() {
        let r = TaskGraph::builder("c", 1.0)
            .task_type(ty("f"))
            .task_with_criticality("a", "f", 0.0);
        assert!(r.is_err());
    }

    #[test]
    fn base_impl_builders() {
        let i = BaseImpl::new("x", PeTypeId::new(1), 2e5, 1e-9)
            .with_sys_sw(SysSw::Rtos)
            .with_implicit_ssw_masking(0.1);
        assert_eq!(i.sys_sw(), SysSw::Rtos);
        assert_eq!(i.pe_type(), PeTypeId::new(1));
        assert_eq!(i.name(), "x");
        assert_eq!(i.capacitance(), 1e-9);
    }

    #[test]
    #[should_panic(expected = "cycles must be positive")]
    fn base_impl_rejects_zero_cycles() {
        BaseImpl::new("x", PeTypeId::new(0), 0.0, 1e-9);
    }

    #[test]
    fn edge_volumes_roundtrip() {
        let g = TaskGraph::builder("v", 1.0)
            .task_type(ty("f"))
            .task("a", "f")
            .unwrap()
            .task("b", "f")
            .unwrap()
            .edge_with_volume(0, 1, 4096.0)
            .build()
            .unwrap();
        assert_eq!(g.edge_volumes(), &[4096.0]);
        assert_eq!(
            g.predecessor_edges(TaskId::new(1)),
            &[(TaskId::new(0), 4096.0)]
        );
        assert!(g.predecessor_edges(TaskId::new(0)).is_empty());
    }

    #[test]
    fn plain_edges_have_zero_volume() {
        let g = diamond();
        assert!(g.edge_volumes().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn dot_export_contains_structure() {
        let g = diamond();
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph \"diamond\""));
        assert!(dot.contains("T0 [label=\"a : f\"]"));
        for &(f, t) in g.edges() {
            assert!(dot.contains(&format!("{f} -> {t}")));
        }
        assert!(dot.trim_end().ends_with('}'));
        // Volumes appear when set.
        let ty2 = ty("f");
        let g2 = TaskGraph::builder("v", 1.0)
            .task_type(ty2)
            .task("a", "f")
            .unwrap()
            .task("b", "f")
            .unwrap()
            .edge_with_volume(0, 1, 2048.0)
            .build()
            .unwrap();
        assert!(g2.to_dot().contains("2048 B"));
    }

    #[test]
    fn base_impl_memory_footprint() {
        let i = BaseImpl::new("x", PeTypeId::new(0), 1e5, 1e-9).with_memory_bytes(65536.0);
        assert_eq!(i.memory_bytes(), 65536.0);
        assert_eq!(
            BaseImpl::new("y", PeTypeId::new(0), 1e5, 1e-9).memory_bytes(),
            0.0
        );
    }

    #[test]
    fn task_type_lookup() {
        let t = ty("f");
        assert!(t.impl_by_id(ImplId::new(0)).is_some());
        assert!(t.impl_by_id(ImplId::new(1)).is_none());
    }
}

use crate::{PeTypeId, TaskId, TaskTypeId};
use std::error::Error;
use std::fmt;

/// Error type for model construction and validation.
///
/// # Examples
///
/// ```
/// use clre_model::{ModelError, Platform};
///
/// let err = Platform::builder().build().unwrap_err();
/// assert!(matches!(err, ModelError::EmptyPlatform));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A platform must contain at least one PE.
    EmptyPlatform,
    /// A referenced PE type name was never registered.
    UnknownPeType {
        /// The name that failed to resolve.
        name: String,
    },
    /// A PE type id was out of range for the platform.
    PeTypeOutOfRange {
        /// The offending id.
        id: PeTypeId,
        /// Number of registered PE types.
        count: usize,
    },
    /// A PE type has no DVFS modes; at least the nominal mode is required.
    NoDvfsModes {
        /// The offending PE type.
        id: PeTypeId,
    },
    /// A task graph must contain at least one task.
    EmptyGraph,
    /// An edge referenced a task index outside the graph.
    EdgeOutOfRange {
        /// Source task of the offending edge.
        from: TaskId,
        /// Destination task of the offending edge.
        to: TaskId,
        /// Number of tasks in the graph.
        count: usize,
    },
    /// The dependency edges contain a cycle; the application must be a DAG.
    CyclicDependencies,
    /// A task referenced a task-type index outside the graph's type table.
    TaskTypeOutOfRange {
        /// The task holding the dangling reference.
        task: TaskId,
        /// The dangling type id.
        ty: TaskTypeId,
        /// Number of registered task types.
        count: usize,
    },
    /// A task type must provide at least one base implementation.
    NoImplementations {
        /// The offending task type.
        ty: TaskTypeId,
    },
    /// A numeric parameter was outside its documented domain.
    InvalidParameter {
        /// Description of the violated requirement.
        what: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyPlatform => write!(f, "platform must contain at least one PE"),
            ModelError::UnknownPeType { name } => write!(f, "unknown PE type name {name:?}"),
            ModelError::PeTypeOutOfRange { id, count } => {
                write!(f, "PE type {id} out of range (have {count} types)")
            }
            ModelError::NoDvfsModes { id } => {
                write!(f, "PE type {id} has no DVFS modes")
            }
            ModelError::EmptyGraph => write!(f, "task graph must contain at least one task"),
            ModelError::EdgeOutOfRange { from, to, count } => {
                write!(f, "edge {from}->{to} references a task outside 0..{count}")
            }
            ModelError::CyclicDependencies => {
                write!(f, "task dependencies contain a cycle; a DAG is required")
            }
            ModelError::TaskTypeOutOfRange { task, ty, count } => {
                write!(f, "task {task} references type {ty} outside 0..{count}")
            }
            ModelError::NoImplementations { ty } => {
                write!(f, "task type {ty} has no base implementations")
            }
            ModelError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_without_period() {
        let errs: Vec<ModelError> = vec![
            ModelError::EmptyPlatform,
            ModelError::UnknownPeType { name: "x".into() },
            ModelError::PeTypeOutOfRange {
                id: PeTypeId::new(3),
                count: 2,
            },
            ModelError::NoDvfsModes {
                id: PeTypeId::new(0),
            },
            ModelError::EmptyGraph,
            ModelError::EdgeOutOfRange {
                from: TaskId::new(0),
                to: TaskId::new(9),
                count: 3,
            },
            ModelError::CyclicDependencies,
            ModelError::TaskTypeOutOfRange {
                task: TaskId::new(0),
                ty: TaskTypeId::new(5),
                count: 1,
            },
            ModelError::NoImplementations {
                ty: TaskTypeId::new(0),
            },
            ModelError::InvalidParameter { what: "beta > 0" },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}

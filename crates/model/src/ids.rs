//! Index newtypes for the entities of the system model.
//!
//! Using distinct types for PE, PE-type, task, task-type, implementation and
//! DVFS-mode indices prevents the classic mix-up bugs in mapping code
//! (C-NEWTYPE).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an id from a raw index.
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the raw index as `usize` for slice addressing.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }

        impl From<$name> for u32 {
            fn from(v: $name) -> u32 {
                v.0
            }
        }
    };
}

id_type!(
    /// Index of a processing element within a [`Platform`](crate::Platform).
    PeId,
    "PE"
);
id_type!(
    /// Index of a PE *type* (heterogeneity class) within a platform.
    PeTypeId,
    "PT"
);
id_type!(
    /// Index of a task node within a [`TaskGraph`](crate::TaskGraph).
    TaskId,
    "T"
);
id_type!(
    /// Index of a task *type* (functionality) within a task graph.
    TaskTypeId,
    "TT"
);
id_type!(
    /// Index of a base implementation within a task type.
    ImplId,
    "I"
);
id_type!(
    /// Index of a DVFS mode within a PE type.
    DvfsModeId,
    "V"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(PeId::new(3).to_string(), "PE3");
        assert_eq!(TaskId::new(0).to_string(), "T0");
        assert_eq!(TaskTypeId::new(1).to_string(), "TT1");
        assert_eq!(ImplId::new(2).to_string(), "I2");
        assert_eq!(DvfsModeId::new(1).to_string(), "V1");
        assert_eq!(PeTypeId::new(9).to_string(), "PT9");
    }

    #[test]
    fn roundtrip_u32() {
        let id = TaskId::from(7u32);
        assert_eq!(u32::from(id), 7);
        assert_eq!(id.index(), 7);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(PeId::new(1));
        s.insert(PeId::new(1));
        assert_eq!(s.len(), 1);
        assert!(PeId::new(0) < PeId::new(1));
    }
}

//! Cross-layer reliability model (Table II of the paper).
//!
//! Fault mitigation can be configured independently at three layers:
//!
//! * **Hardware** ([`HwMethod`]) — spatial redundancy: partial/full TMR,
//!   circuit hardening. Effect: masks a fraction `m_HW` of raw errors at a
//!   time/power overhead.
//! * **System software** ([`SswMethod`]) — temporal redundancy: retry and
//!   checkpointing with roll-back recovery. Effect: detects errors with
//!   coverage `cov_Det` and tolerates detected errors with probability
//!   `m_Tol`, paying detection/tolerance/checkpoint time overheads.
//! * **Application software** ([`AswMethod`]) — information redundancy:
//!   checksums, Hamming correction, code tripling. Effect: masks a fraction
//!   `m_ASW` of errors that escaped the lower layers.
//!
//! A [`ClrConfig`] is one point of the per-task Cartesian product
//! `C_t = HWRel_t × SSWRel_t × ASWRel_t`. All mitigation is *imperfect*
//! (masking/coverage < 1), which is one of the paper's differentiators
//! (Table I, "Imperfect Mitigation").
//!
//! The numeric parameters of the built-in methods are the `GenM`/`GenD`/
//! `GenT` style generic models of Section VI-A: tunable, physically shaped
//! constants rather than claims about specific silicon. Custom values can
//! be injected through the `Generic` variants.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::hash::{Hash, Hasher};

/// Tunable parameters for a generic masking-style method (`GenM`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenMasking {
    /// Probability an arriving error is masked, in `[0, 1]`.
    pub masking: f64,
    /// Multiplicative execution-time overhead (≥ 1).
    pub time_factor: f64,
    /// Multiplicative power overhead (≥ 1).
    pub power_factor: f64,
}

impl Eq for GenMasking {}

impl Hash for GenMasking {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.masking.to_bits().hash(state);
        self.time_factor.to_bits().hash(state);
        self.power_factor.to_bits().hash(state);
    }
}

/// Tunable parameters for a generic detection+tolerance method
/// (`GenD`/`GenT`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenTemporal {
    /// Error-detection coverage `cov_Det`, in `[0, 1]`.
    pub detection_coverage: f64,
    /// Probability a detected error is tolerated (`m_Tol`), in `[0, 1]`.
    pub tolerance_masking: f64,
    /// Number of inter-checkpoint intervals (≥ 1); `1` means the whole task
    /// re-executes on a detected error.
    pub intervals: u32,
    /// Detection-time overhead as a fraction of useful execution time.
    pub detection_overhead: f64,
    /// Tolerance (roll-back) time overhead as a fraction of execution time.
    pub tolerance_overhead: f64,
    /// Checkpoint-creation time overhead per checkpoint, as a fraction of
    /// execution time.
    pub checkpoint_overhead: f64,
    /// Probability that checkpoint creation itself is corrupted.
    pub checkpoint_error_prob: f64,
}

impl Eq for GenTemporal {}

impl Hash for GenTemporal {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.detection_coverage.to_bits().hash(state);
        self.tolerance_masking.to_bits().hash(state);
        self.intervals.hash(state);
        self.detection_overhead.to_bits().hash(state);
        self.tolerance_overhead.to_bits().hash(state);
        self.checkpoint_overhead.to_bits().hash(state);
        self.checkpoint_error_prob.to_bits().hash(state);
    }
}

/// A hardware-layer (spatial redundancy) fault-mitigation method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum HwMethod {
    /// No hardware mitigation.
    None,
    /// Radiation-hardened circuit variants.
    Hardening,
    /// Triplication of the most vulnerable sub-circuits only.
    PartialTmr,
    /// Full triple modular redundancy with majority voting.
    Tmr,
    /// Periodic configuration-memory scrubbing of an FPGA region (à la
    /// Hoque et al.): repairs accumulated upsets between voting windows.
    /// Only placeable on reconfigurable-region PEs.
    Scrubbing,
    /// TMR with configuration scrubbing — the strongest SRAM-FPGA
    /// mitigation style: voting masks while scrubbing repairs, so the
    /// masked fraction approaches (but never reaches) one. Only placeable
    /// on reconfigurable-region PEs.
    TmrScrubbing,
    /// A tunable generic masking method (`GenM`).
    Generic(GenMasking),
}

/// Flattened hardware-layer effect parameters consumed by the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HwParams {
    /// Masking probability `m_HW`.
    pub masking: f64,
    /// Multiplicative execution-time factor.
    pub time_factor: f64,
    /// Multiplicative power factor.
    pub power_factor: f64,
    /// Multiplicative memory/area factor (spatial redundancy replicates
    /// state).
    pub mem_factor: f64,
}

impl HwMethod {
    /// The effect parameters of this method.
    ///
    /// # Examples
    ///
    /// ```
    /// use clre_model::HwMethod;
    ///
    /// let p = HwMethod::Tmr.params();
    /// assert!(p.masking > 0.9 && p.masking < 1.0); // imperfect mitigation
    /// assert!(p.power_factor > 2.0);
    /// ```
    pub fn params(&self) -> HwParams {
        match *self {
            HwMethod::None => HwParams {
                masking: 0.0,
                time_factor: 1.0,
                power_factor: 1.0,
                mem_factor: 1.0,
            },
            HwMethod::Hardening => HwParams {
                masking: 0.50,
                time_factor: 1.10,
                power_factor: 1.30,
                mem_factor: 1.20,
            },
            HwMethod::PartialTmr => HwParams {
                masking: 0.70,
                time_factor: 1.05,
                power_factor: 1.80,
                mem_factor: 1.90,
            },
            HwMethod::Tmr => HwParams {
                masking: 0.95,
                time_factor: 1.02,
                power_factor: 3.00,
                mem_factor: 3.10,
            },
            HwMethod::Scrubbing => HwParams {
                masking: 0.85,
                time_factor: 1.01,
                power_factor: 1.15,
                mem_factor: 1.05,
            },
            HwMethod::TmrScrubbing => HwParams {
                masking: 0.985,
                time_factor: 1.03,
                power_factor: 3.20,
                mem_factor: 3.20,
            },
            HwMethod::Generic(g) => HwParams {
                masking: g.masking,
                time_factor: g.time_factor,
                power_factor: g.power_factor,
                mem_factor: 1.0,
            },
        }
    }

    /// The built-in catalog explored by the DSE stages. The FPGA-only
    /// scrubbing styles are deliberately *not* part of the default
    /// catalog — the pre-mechanism front digests are pinned on this exact
    /// product — and are opted into via [`fpga_catalog`](Self::fpga_catalog).
    pub fn catalog() -> Vec<HwMethod> {
        vec![
            HwMethod::None,
            HwMethod::Hardening,
            HwMethod::PartialTmr,
            HwMethod::Tmr,
        ]
    }

    /// The SEU-mitigation styles for reconfigurable-region PEs: the
    /// default spatial-redundancy catalog plus configuration scrubbing and
    /// TMR+scrubbing.
    pub fn fpga_catalog() -> Vec<HwMethod> {
        let mut cat = Self::catalog();
        cat.push(HwMethod::Scrubbing);
        cat.push(HwMethod::TmrScrubbing);
        cat
    }

    /// Whether this method only makes sense on a reconfigurable-region
    /// (SRAM-FPGA) processing element: configuration-memory scrubbing has
    /// no analog on a hard processor.
    pub fn requires_reconfigurable(&self) -> bool {
        matches!(self, HwMethod::Scrubbing | HwMethod::TmrScrubbing)
    }
}

impl fmt::Display for HwMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwMethod::None => write!(f, "hw:none"),
            HwMethod::Hardening => write!(f, "hw:harden"),
            HwMethod::PartialTmr => write!(f, "hw:ptmr"),
            HwMethod::Tmr => write!(f, "hw:tmr"),
            HwMethod::Scrubbing => write!(f, "hw:scrub"),
            HwMethod::TmrScrubbing => write!(f, "hw:tmrscrub"),
            HwMethod::Generic(g) => write!(f, "hw:gen(m={:.2})", g.masking),
        }
    }
}

/// A system-software-layer (temporal redundancy) fault-mitigation method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SswMethod {
    /// No system-software mitigation.
    None,
    /// Detect-and-retry: on a detected error the whole task re-executes.
    Retry,
    /// Checkpointing with roll-back recovery and `intervals`
    /// inter-checkpoint intervals (≥ 2; `intervals − 1` checkpoints are
    /// created).
    Checkpoint {
        /// Number of inter-checkpoint intervals.
        intervals: u32,
    },
    /// Checkpointing into PE-local scratchpad memory (Prabakaran-style
    /// heterogeneous mode): cheap to create but the checkpoint shares the
    /// PE's fault domain, so corruption is far likelier than the default.
    CheckpointLocal {
        /// Number of inter-checkpoint intervals.
        intervals: u32,
    },
    /// Checkpointing into remote/ECC-protected main memory: expensive to
    /// create (bus transfer) but nearly immune to corruption.
    CheckpointRemote {
        /// Number of inter-checkpoint intervals.
        intervals: u32,
    },
    /// A tunable generic detection/tolerance method (`GenD` + `GenT`).
    Generic(GenTemporal),
}

impl SswMethod {
    /// The effect parameters of this method.
    ///
    /// # Examples
    ///
    /// ```
    /// use clre_model::SswMethod;
    ///
    /// let p = SswMethod::Checkpoint { intervals: 3 }.params();
    /// assert_eq!(p.intervals, 3);
    /// assert!(p.detection_coverage < 1.0); // imperfect detection
    /// ```
    pub fn params(&self) -> GenTemporal {
        match *self {
            SswMethod::None => GenTemporal {
                detection_coverage: 0.0,
                tolerance_masking: 0.0,
                intervals: 1,
                detection_overhead: 0.0,
                tolerance_overhead: 0.0,
                checkpoint_overhead: 0.0,
                checkpoint_error_prob: 0.0,
            },
            SswMethod::Retry => GenTemporal {
                detection_coverage: 0.90,
                tolerance_masking: 0.97,
                intervals: 1,
                detection_overhead: 0.05,
                tolerance_overhead: 0.02,
                checkpoint_overhead: 0.0,
                checkpoint_error_prob: 0.0,
            },
            SswMethod::Checkpoint { intervals } => GenTemporal {
                detection_coverage: 0.95,
                tolerance_masking: 0.98,
                intervals: intervals.max(2),
                detection_overhead: 0.06,
                tolerance_overhead: 0.03,
                checkpoint_overhead: 0.04,
                checkpoint_error_prob: 1e-4,
            },
            SswMethod::CheckpointLocal { intervals } => GenTemporal {
                detection_coverage: 0.95,
                tolerance_masking: 0.98,
                intervals: intervals.max(2),
                detection_overhead: 0.06,
                tolerance_overhead: 0.03,
                checkpoint_overhead: 0.02,
                checkpoint_error_prob: 1e-3,
            },
            SswMethod::CheckpointRemote { intervals } => GenTemporal {
                detection_coverage: 0.95,
                tolerance_masking: 0.98,
                intervals: intervals.max(2),
                detection_overhead: 0.06,
                tolerance_overhead: 0.03,
                checkpoint_overhead: 0.08,
                checkpoint_error_prob: 1e-6,
            },
            SswMethod::Generic(g) => g,
        }
    }

    /// The built-in catalog explored by the DSE stages. The heterogeneous
    /// checkpointing *modes* are not part of the default catalog (front
    /// digests are pinned on this product); opt in via
    /// [`checkpoint_mode_catalog`](Self::checkpoint_mode_catalog).
    pub fn catalog() -> Vec<SswMethod> {
        vec![
            SswMethod::None,
            SswMethod::Retry,
            SswMethod::Checkpoint { intervals: 2 },
            SswMethod::Checkpoint { intervals: 3 },
            SswMethod::Checkpoint { intervals: 4 },
        ]
    }

    /// The heterogeneous-checkpointing catalog: the default temporal
    /// methods plus per-task local/remote checkpoint placement at each
    /// interval count, making the storage mode itself a DSE axis.
    pub fn checkpoint_mode_catalog() -> Vec<SswMethod> {
        let mut cat = Self::catalog();
        for intervals in [2, 3, 4] {
            cat.push(SswMethod::CheckpointLocal { intervals });
            cat.push(SswMethod::CheckpointRemote { intervals });
        }
        cat
    }
}

impl fmt::Display for SswMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SswMethod::None => write!(f, "ssw:none"),
            SswMethod::Retry => write!(f, "ssw:retry"),
            SswMethod::Checkpoint { intervals } => write!(f, "ssw:chk{intervals}"),
            SswMethod::CheckpointLocal { intervals } => write!(f, "ssw:chkl{intervals}"),
            SswMethod::CheckpointRemote { intervals } => write!(f, "ssw:chkr{intervals}"),
            SswMethod::Generic(g) => write!(f, "ssw:gen(cov={:.2})", g.detection_coverage),
        }
    }
}

/// An application-software-layer (information redundancy) method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AswMethod {
    /// No application-software mitigation.
    None,
    /// Checksum verification with partial recomputation ([Nicolaidis 2010]).
    ///
    /// [Nicolaidis 2010]: https://doi.org/10.1007/978-1-4419-6993-4
    Checksum,
    /// Hamming-code error correction on the task's state.
    HammingCorrection,
    /// Code tripling with majority voting at the source level.
    CodeTripling,
    /// A tunable generic masking method.
    Generic(GenMasking),
}

/// Flattened application-software-layer effect parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AswParams {
    /// Masking probability `m_ASW` for errors that escaped lower layers.
    pub masking: f64,
    /// Multiplicative execution-time factor.
    pub time_factor: f64,
    /// Multiplicative power factor.
    pub power_factor: f64,
    /// Multiplicative memory factor (information redundancy stores
    /// check data or replicated state).
    pub mem_factor: f64,
}

impl AswMethod {
    /// The effect parameters of this method.
    ///
    /// # Examples
    ///
    /// ```
    /// use clre_model::AswMethod;
    ///
    /// let p = AswMethod::CodeTripling.params();
    /// assert!(p.time_factor > 2.0); // triplicated computation
    /// ```
    pub fn params(&self) -> AswParams {
        match *self {
            AswMethod::None => AswParams {
                masking: 0.0,
                time_factor: 1.0,
                power_factor: 1.0,
                mem_factor: 1.0,
            },
            AswMethod::Checksum => AswParams {
                masking: 0.55,
                time_factor: 1.15,
                power_factor: 1.05,
                mem_factor: 1.10,
            },
            AswMethod::HammingCorrection => AswParams {
                masking: 0.78,
                time_factor: 1.35,
                power_factor: 1.10,
                mem_factor: 1.40,
            },
            AswMethod::CodeTripling => AswParams {
                masking: 0.93,
                time_factor: 2.60,
                power_factor: 1.15,
                mem_factor: 3.00,
            },
            AswMethod::Generic(g) => AswParams {
                masking: g.masking,
                time_factor: g.time_factor,
                power_factor: g.power_factor,
                mem_factor: 1.0,
            },
        }
    }

    /// The built-in catalog explored by the DSE stages.
    pub fn catalog() -> Vec<AswMethod> {
        vec![
            AswMethod::None,
            AswMethod::Checksum,
            AswMethod::HammingCorrection,
            AswMethod::CodeTripling,
        ]
    }
}

impl fmt::Display for AswMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AswMethod::None => write!(f, "asw:none"),
            AswMethod::Checksum => write!(f, "asw:chksum"),
            AswMethod::HammingCorrection => write!(f, "asw:hamming"),
            AswMethod::CodeTripling => write!(f, "asw:triple"),
            AswMethod::Generic(g) => write!(f, "asw:gen(m={:.2})", g.masking),
        }
    }
}

/// One cross-layer reliability configuration `c ∈ C_t`.
///
/// # Examples
///
/// ```
/// use clre_model::{AswMethod, ClrConfig, HwMethod, SswMethod};
///
/// let c = ClrConfig::new(
///     HwMethod::PartialTmr,
///     SswMethod::Checkpoint { intervals: 2 },
///     AswMethod::Checksum,
/// );
/// assert_eq!(c.to_string(), "hw:ptmr+ssw:chk2+asw:chksum");
/// assert_eq!(ClrConfig::catalog().len(), 4 * 5 * 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClrConfig {
    /// The hardware-layer method.
    pub hw: HwMethod,
    /// The system-software-layer method.
    pub ssw: SswMethod,
    /// The application-software-layer method.
    pub asw: AswMethod,
}

impl ClrConfig {
    /// Creates a configuration from per-layer methods.
    pub fn new(hw: HwMethod, ssw: SswMethod, asw: AswMethod) -> Self {
        ClrConfig { hw, ssw, asw }
    }

    /// The unprotected baseline (no mitigation at any layer).
    pub fn unprotected() -> Self {
        ClrConfig::new(HwMethod::None, SswMethod::None, AswMethod::None)
    }

    /// The full built-in Cartesian product `HWRel × SSWRel × ASWRel`
    /// (`FM_CL` in the paper's complexity analysis).
    pub fn catalog() -> Vec<ClrConfig> {
        let mut out = Vec::new();
        for hw in HwMethod::catalog() {
            for ssw in SswMethod::catalog() {
                for asw in AswMethod::catalog() {
                    out.push(ClrConfig::new(hw, ssw, asw));
                }
            }
        }
        out
    }

    /// Configurations exercising only the hardware layer (plus the
    /// unprotected point), used by the single-layer-agnostic baseline.
    pub fn hw_only_catalog() -> Vec<ClrConfig> {
        HwMethod::catalog()
            .into_iter()
            .map(|hw| ClrConfig::new(hw, SswMethod::None, AswMethod::None))
            .collect()
    }

    /// Configurations exercising only the system-software layer.
    pub fn ssw_only_catalog() -> Vec<ClrConfig> {
        SswMethod::catalog()
            .into_iter()
            .map(|ssw| ClrConfig::new(HwMethod::None, ssw, AswMethod::None))
            .collect()
    }

    /// Configurations exercising only the application-software layer.
    pub fn asw_only_catalog() -> Vec<ClrConfig> {
        AswMethod::catalog()
            .into_iter()
            .map(|asw| ClrConfig::new(HwMethod::None, SswMethod::None, asw))
            .collect()
    }

    /// The heterogeneous-checkpointing product: the default hardware and
    /// application-software catalogs crossed with
    /// [`SswMethod::checkpoint_mode_catalog`], so checkpoint *placement*
    /// (local scratchpad vs remote ECC memory) becomes a per-task axis.
    pub fn checkpoint_mode_catalog() -> Vec<ClrConfig> {
        let mut out = Vec::new();
        for hw in HwMethod::catalog() {
            for ssw in SswMethod::checkpoint_mode_catalog() {
                for asw in AswMethod::catalog() {
                    out.push(ClrConfig::new(hw, ssw, asw));
                }
            }
        }
        out
    }

    /// The SEU-mitigation-style product: [`HwMethod::fpga_catalog`]
    /// (adding configuration scrubbing and TMR+scrubbing) crossed with the
    /// default temporal and information-redundancy catalogs. Configurations
    /// whose hardware method [`requires_reconfigurable`](HwMethod::requires_reconfigurable)
    /// are only placeable on reconfigurable-region PEs; the task-level DSE
    /// enforces that constraint when building implementation libraries.
    pub fn fpga_mitigation_catalog() -> Vec<ClrConfig> {
        let mut out = Vec::new();
        for hw in HwMethod::fpga_catalog() {
            for ssw in SswMethod::catalog() {
                for asw in AswMethod::catalog() {
                    out.push(ClrConfig::new(hw, ssw, asw));
                }
            }
        }
        out
    }
}

impl Default for ClrConfig {
    fn default() -> Self {
        ClrConfig::unprotected()
    }
}

impl fmt::Display for ClrConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}+{}", self.hw, self.ssw, self.asw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn hw_catalog_masking_monotone_in_cost() {
        // Stronger masking should cost more power: None < Harden < PTMR < TMR
        // in masking, and every method's mitigation is imperfect.
        let cat = HwMethod::catalog();
        let masks: Vec<f64> = cat.iter().map(|m| m.params().masking).collect();
        for w in masks.windows(2) {
            assert!(w[0] < w[1]);
        }
        for m in &cat {
            assert!(m.params().masking < 1.0, "mitigation must be imperfect");
        }
    }

    #[test]
    fn ssw_none_has_no_effect() {
        let p = SswMethod::None.params();
        assert_eq!(p.detection_coverage, 0.0);
        assert_eq!(p.intervals, 1);
        assert_eq!(p.checkpoint_overhead, 0.0);
    }

    #[test]
    fn checkpoint_minimum_two_intervals() {
        let p = SswMethod::Checkpoint { intervals: 1 }.params();
        assert_eq!(p.intervals, 2);
    }

    #[test]
    fn catalog_sizes() {
        assert_eq!(HwMethod::catalog().len(), 4);
        assert_eq!(SswMethod::catalog().len(), 5);
        assert_eq!(AswMethod::catalog().len(), 4);
        assert_eq!(ClrConfig::catalog().len(), 80);
        assert_eq!(ClrConfig::hw_only_catalog().len(), 4);
        assert_eq!(ClrConfig::ssw_only_catalog().len(), 5);
        assert_eq!(ClrConfig::asw_only_catalog().len(), 4);
    }

    #[test]
    fn catalog_is_distinct_and_hashable() {
        let set: HashSet<ClrConfig> = ClrConfig::catalog().into_iter().collect();
        assert_eq!(set.len(), 80);
    }

    #[test]
    fn generic_variants_roundtrip_params() {
        let g = GenMasking {
            masking: 0.42,
            time_factor: 1.5,
            power_factor: 2.0,
        };
        assert_eq!(HwMethod::Generic(g).params().masking, 0.42);
        assert_eq!(AswMethod::Generic(g).params().time_factor, 1.5);
        let t = GenTemporal {
            detection_coverage: 0.8,
            tolerance_masking: 0.9,
            intervals: 7,
            detection_overhead: 0.01,
            tolerance_overhead: 0.02,
            checkpoint_overhead: 0.03,
            checkpoint_error_prob: 0.0,
        };
        assert_eq!(SswMethod::Generic(t).params().intervals, 7);
    }

    #[test]
    fn memory_factors_track_redundancy() {
        assert_eq!(HwMethod::None.params().mem_factor, 1.0);
        assert!(HwMethod::Tmr.params().mem_factor > 3.0);
        assert!(AswMethod::CodeTripling.params().mem_factor >= 3.0);
        assert_eq!(AswMethod::None.params().mem_factor, 1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            ClrConfig::unprotected().to_string(),
            "hw:none+ssw:none+asw:none"
        );
        assert_eq!(SswMethod::Retry.to_string(), "ssw:retry");
        assert_eq!(AswMethod::HammingCorrection.to_string(), "asw:hamming");
    }

    #[test]
    fn default_is_unprotected() {
        assert_eq!(ClrConfig::default(), ClrConfig::unprotected());
    }

    #[test]
    fn default_catalogs_exclude_new_axes() {
        // Front digests are pinned on the historic 4×5×4 product: the new
        // scrubbing styles and checkpointing modes must stay opt-in.
        assert_eq!(ClrConfig::catalog().len(), 80);
        assert!(!HwMethod::catalog()
            .iter()
            .any(|m| m.requires_reconfigurable()));
        assert!(!SswMethod::catalog().iter().any(|m| matches!(
            m,
            SswMethod::CheckpointLocal { .. } | SswMethod::CheckpointRemote { .. }
        )));
    }

    #[test]
    fn opt_in_catalog_sizes() {
        assert_eq!(HwMethod::fpga_catalog().len(), 6);
        assert_eq!(SswMethod::checkpoint_mode_catalog().len(), 11);
        assert_eq!(ClrConfig::fpga_mitigation_catalog().len(), 6 * 5 * 4);
        assert_eq!(ClrConfig::checkpoint_mode_catalog().len(), 4 * 11 * 4);
        let set: HashSet<ClrConfig> = ClrConfig::fpga_mitigation_catalog().into_iter().collect();
        assert_eq!(set.len(), 120);
        let set: HashSet<ClrConfig> = ClrConfig::checkpoint_mode_catalog().into_iter().collect();
        assert_eq!(set.len(), 176);
    }

    #[test]
    fn scrubbing_styles_are_fpga_only_and_imperfect() {
        assert!(HwMethod::Scrubbing.requires_reconfigurable());
        assert!(HwMethod::TmrScrubbing.requires_reconfigurable());
        assert!(!HwMethod::Tmr.requires_reconfigurable());
        let scrub = HwMethod::Scrubbing.params();
        let tmr_scrub = HwMethod::TmrScrubbing.params();
        assert!(scrub.masking < tmr_scrub.masking);
        assert!(tmr_scrub.masking < 1.0, "mitigation must be imperfect");
        assert!(
            tmr_scrub.masking > HwMethod::Tmr.params().masking,
            "TMR+scrubbing beats plain TMR in masking"
        );
        assert!(scrub.power_factor < HwMethod::Tmr.params().power_factor);
        assert_eq!(HwMethod::Scrubbing.to_string(), "hw:scrub");
        assert_eq!(HwMethod::TmrScrubbing.to_string(), "hw:tmrscrub");
    }

    #[test]
    fn checkpoint_modes_trade_overhead_against_corruption() {
        let default = SswMethod::Checkpoint { intervals: 3 }.params();
        let local = SswMethod::CheckpointLocal { intervals: 3 }.params();
        let remote = SswMethod::CheckpointRemote { intervals: 3 }.params();
        assert!(local.checkpoint_overhead < default.checkpoint_overhead);
        assert!(remote.checkpoint_overhead > default.checkpoint_overhead);
        assert!(local.checkpoint_error_prob > default.checkpoint_error_prob);
        assert!(remote.checkpoint_error_prob < default.checkpoint_error_prob);
        // Modes share the detection/tolerance machinery and interval floor.
        assert_eq!(local.intervals, 3);
        assert_eq!(
            SswMethod::CheckpointLocal { intervals: 1 }
                .params()
                .intervals,
            2
        );
        assert_eq!(
            SswMethod::CheckpointLocal { intervals: 2 }.to_string(),
            "ssw:chkl2"
        );
        assert_eq!(
            SswMethod::CheckpointRemote { intervals: 4 }.to_string(),
            "ssw:chkr4"
        );
    }

    #[test]
    fn single_layer_catalogs_only_touch_their_layer() {
        for c in ClrConfig::ssw_only_catalog() {
            assert_eq!(c.hw, HwMethod::None);
            assert_eq!(c.asw, AswMethod::None);
        }
        for c in ClrConfig::asw_only_catalog() {
            assert_eq!(c.hw, HwMethod::None);
            assert_eq!(c.ssw, SswMethod::None);
        }
    }
}

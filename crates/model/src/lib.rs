//! Domain model for the CL(R)Early reproduction: hardware platform,
//! application task graph, cross-layer reliability (CLR) configurations and
//! Quality-of-Service (QoS) metric types.
//!
//! The model follows Section III of the paper:
//!
//! * **Architecture** ([`platform`]) — a heterogeneous MPSoC with `P`
//!   processing elements. Each PE type carries a Weibull aging shape `β`, a
//!   soft-error masking factor (1 − AVF) and a set of DVFS modes.
//! * **Application** ([`application`]) — a periodic task graph
//!   `(T_app, E_app, P_app)`; every task references a task *type* that owns
//!   one or more base implementations, each tied to a PE type.
//! * **Reliability** ([`reliability`]) — per-layer fault-mitigation methods
//!   (hardware / system software / application software) and the
//!   [`ClrConfig`] Cartesian product `C_t = HWRel × SSWRel × ASWRel`.
//! * **QoS** ([`qos`]) — the task-level metric tuple of Table II and the
//!   system-level metric tuple of Table III, plus objective-set and
//!   constraint descriptions used by the DSE stages.
//!
//! # Examples
//!
//! ```
//! use clre_model::platform::{Platform, PeType, DvfsMode};
//!
//! # fn main() -> Result<(), clre_model::ModelError> {
//! let proc = PeType::processor("arm-a9", 2.0, 0.3)
//!     .with_dvfs_mode(DvfsMode::new("1.2V/900MHz", 1.2, 900.0e6))
//!     .with_dvfs_mode(DvfsMode::new("1.1V/600MHz", 1.1, 600.0e6));
//! let platform = Platform::builder()
//!     .pe_type(proc)
//!     .pes_of_type("arm-a9", 4)?
//!     .build()?;
//! assert_eq!(platform.pe_count(), 4);
//! # Ok(())
//! # }
//! ```
//!
//! [`ClrConfig`]: reliability::ClrConfig

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod application;
mod error;
mod ids;
pub mod platform;
pub mod qos;
pub mod reliability;

pub use application::{BaseImpl, Task, TaskGraph, TaskType};
pub use error::ModelError;
pub use ids::{DvfsModeId, ImplId, PeId, PeTypeId, TaskId, TaskTypeId};
pub use platform::{DvfsMode, Pe, PeType, Platform};
pub use qos::{Objective, ObjectiveSet, QosSpec, SystemMetrics, TaskMetrics};
pub use reliability::{AswMethod, ClrConfig, HwMethod, SswMethod};

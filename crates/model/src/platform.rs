//! Architecture model: DVFS modes, PE types and the heterogeneous MPSoC
//! platform (Fig. 2(a) of the paper).
//!
//! A [`PeType`] captures the heterogeneity tuple the paper attaches to each
//! PE: the kind of compute resource (embedded processor or reconfigurable
//! region), the Weibull aging shape `β_p`, and the soft-error masking factor
//! derived from the Architectural Vulnerability Factor (AVF). A
//! [`Platform`] is a validated collection of [`Pe`]s over those types.

use crate::{DvfsModeId, ModelError, PeId, PeTypeId};
use serde::{Deserialize, Serialize};

/// A voltage/frequency operating point of a PE type.
///
/// # Examples
///
/// ```
/// use clre_model::DvfsMode;
///
/// let m = DvfsMode::new("1.2V/900MHz", 1.2, 900.0e6);
/// assert_eq!(m.voltage(), 1.2);
/// assert_eq!(m.frequency_hz(), 900.0e6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsMode {
    name: String,
    voltage: f64,
    frequency_hz: f64,
}

impl DvfsMode {
    /// Creates a DVFS mode.
    ///
    /// # Panics
    ///
    /// Panics if `voltage` or `frequency_hz` is not strictly positive —
    /// modes are static configuration data, so a loud failure at
    /// construction is preferable to a deferred `Result`.
    pub fn new(name: impl Into<String>, voltage: f64, frequency_hz: f64) -> Self {
        assert!(voltage > 0.0, "voltage must be positive");
        assert!(frequency_hz > 0.0, "frequency must be positive");
        DvfsMode {
            name: name.into(),
            voltage,
            frequency_hz,
        }
    }

    /// Human-readable mode name, e.g. `"1.2V/900MHz"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Supply voltage in volts.
    pub fn voltage(&self) -> f64 {
        self.voltage
    }

    /// Clock frequency in hertz.
    pub fn frequency_hz(&self) -> f64 {
        self.frequency_hz
    }
}

/// A shared on-chip interconnect model: transferring `v` bytes between
/// two *different* PEs costs `latency + v / bandwidth` seconds; same-PE
/// communication is free (local memory).
///
/// # Examples
///
/// ```
/// use clre_model::platform::Interconnect;
///
/// let noc = Interconnect::new(1.0e-6, 1.0e9);
/// assert_eq!(noc.transfer_time(1.0e6), 1.0e-6 + 1.0e-3);
/// assert_eq!(noc.transfer_time(0.0), 1.0e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    latency: f64,
    bandwidth: f64,
}

impl Interconnect {
    /// Creates an interconnect with the given per-transfer latency in
    /// seconds and bandwidth in bytes/s.
    ///
    /// # Panics
    ///
    /// Panics if `latency < 0` or `bandwidth <= 0`.
    pub fn new(latency: f64, bandwidth: f64) -> Self {
        assert!(latency >= 0.0, "latency must be non-negative");
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        Interconnect { latency, bandwidth }
    }

    /// Per-transfer latency in seconds.
    pub fn latency(&self) -> f64 {
        self.latency
    }

    /// Bandwidth in bytes per second.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Time to move `bytes` across the interconnect.
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        self.latency + bytes / self.bandwidth
    }
}

/// The compute-resource kind of a PE type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PeKind {
    /// A general-purpose embedded processor.
    Processor,
    /// A partially reconfigurable fabric region hosting accelerators.
    ReconfigurableRegion,
}

/// A heterogeneity class of processing elements.
///
/// Constructed with [`PeType::processor`] or
/// [`PeType::reconfigurable_region`] and extended with
/// [`PeType::with_dvfs_mode`]. Reconfigurable regions run at a single fixed
/// operating point unless modes are added explicitly.
///
/// # Examples
///
/// ```
/// use clre_model::{PeType, DvfsMode};
///
/// let t = PeType::processor("cortex", 2.0, 0.3)
///     .with_dvfs_mode(DvfsMode::new("nominal", 1.2, 900.0e6));
/// assert_eq!(t.dvfs_modes().len(), 1);
/// assert_eq!(t.masking_factor(), 0.3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeType {
    name: String,
    kind: PeKind,
    /// Weibull aging shape parameter `β_p` (> 0).
    weibull_beta: f64,
    /// Probability that a raw soft error is architecturally masked
    /// (`1 − AVF`), in `[0, 1]`.
    masking_factor: f64,
    dvfs_modes: Vec<DvfsMode>,
    /// Local memory capacity in bytes; `f64::INFINITY` = unconstrained.
    local_memory_bytes: f64,
}

impl PeType {
    /// Creates an embedded-processor PE type.
    ///
    /// `weibull_beta` is the aging shape parameter `β_p`;
    /// `masking_factor` is the architectural soft-error masking probability
    /// (`1 − AVF`).
    ///
    /// # Panics
    ///
    /// Panics if `weibull_beta <= 0` or `masking_factor ∉ [0, 1]`.
    pub fn processor(name: impl Into<String>, weibull_beta: f64, masking_factor: f64) -> Self {
        Self::new(name, PeKind::Processor, weibull_beta, masking_factor)
    }

    /// Creates a partially reconfigurable region PE type.
    ///
    /// # Panics
    ///
    /// Panics if `weibull_beta <= 0` or `masking_factor ∉ [0, 1]`.
    pub fn reconfigurable_region(
        name: impl Into<String>,
        weibull_beta: f64,
        masking_factor: f64,
    ) -> Self {
        Self::new(
            name,
            PeKind::ReconfigurableRegion,
            weibull_beta,
            masking_factor,
        )
    }

    fn new(name: impl Into<String>, kind: PeKind, weibull_beta: f64, masking_factor: f64) -> Self {
        assert!(weibull_beta > 0.0, "weibull beta must be positive");
        assert!(
            (0.0..=1.0).contains(&masking_factor),
            "masking factor must be within [0, 1]"
        );
        PeType {
            name: name.into(),
            kind,
            weibull_beta,
            masking_factor,
            dvfs_modes: Vec::new(),
            local_memory_bytes: f64::INFINITY,
        }
    }

    /// Adds a DVFS operating point (builder style).
    #[must_use]
    pub fn with_dvfs_mode(mut self, mode: DvfsMode) -> Self {
        self.dvfs_modes.push(mode);
        self
    }

    /// The PE type's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The compute-resource kind.
    pub fn kind(&self) -> PeKind {
        self.kind
    }

    /// Weibull aging shape parameter `β_p`.
    pub fn weibull_beta(&self) -> f64 {
        self.weibull_beta
    }

    /// Architectural soft-error masking probability (`1 − AVF`).
    pub fn masking_factor(&self) -> f64 {
        self.masking_factor
    }

    /// The registered DVFS modes, in registration order.
    pub fn dvfs_modes(&self) -> &[DvfsMode] {
        &self.dvfs_modes
    }

    /// Looks up a DVFS mode by id.
    pub fn dvfs_mode(&self, id: DvfsModeId) -> Option<&DvfsMode> {
        self.dvfs_modes.get(id.index())
    }

    /// Sets the local memory capacity in bytes (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `bytes <= 0`.
    #[must_use]
    pub fn with_local_memory_bytes(mut self, bytes: f64) -> Self {
        assert!(bytes > 0.0, "memory capacity must be positive");
        self.local_memory_bytes = bytes;
        self
    }

    /// Local memory capacity in bytes (`f64::INFINITY` = unconstrained).
    pub fn local_memory_bytes(&self) -> f64 {
        self.local_memory_bytes
    }
}

/// A single processing element: its index plus its type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pe {
    id: PeId,
    pe_type: PeTypeId,
}

impl Pe {
    /// The PE's index in the platform.
    pub fn id(&self) -> PeId {
        self.id
    }

    /// The PE's heterogeneity class.
    pub fn pe_type(&self) -> PeTypeId {
        self.pe_type
    }
}

/// A validated heterogeneous MPSoC platform.
///
/// Build with [`Platform::builder`]; see the [crate-level example](crate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    pe_types: Vec<PeType>,
    pes: Vec<Pe>,
    interconnect: Option<Interconnect>,
}

impl Platform {
    /// Starts building a platform.
    pub fn builder() -> PlatformBuilder {
        PlatformBuilder::default()
    }

    /// Number of PEs (`P` in the paper).
    pub fn pe_count(&self) -> usize {
        self.pes.len()
    }

    /// All PEs in index order.
    pub fn pes(&self) -> &[Pe] {
        &self.pes
    }

    /// All PE types in registration order.
    pub fn pe_types(&self) -> &[PeType] {
        &self.pe_types
    }

    /// Looks up a PE by id.
    pub fn pe(&self, id: PeId) -> Option<&Pe> {
        self.pes.get(id.index())
    }

    /// Looks up a PE type by id.
    pub fn pe_type(&self, id: PeTypeId) -> Option<&PeType> {
        self.pe_types.get(id.index())
    }

    /// Returns the type record of a given PE.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is out of range; platforms are validated at build
    /// time, so this only fires on ids from a different platform.
    pub fn type_of(&self, pe: PeId) -> &PeType {
        let t = self.pes[pe.index()].pe_type;
        &self.pe_types[t.index()]
    }

    /// Finds a PE type id by name.
    pub fn pe_type_by_name(&self, name: &str) -> Option<PeTypeId> {
        self.pe_types
            .iter()
            .position(|t| t.name() == name)
            .map(|i| PeTypeId::new(i as u32))
    }

    /// Iterates over the ids of PEs whose type is `ty`.
    pub fn pes_of_type(&self, ty: PeTypeId) -> impl Iterator<Item = PeId> + '_ {
        self.pes
            .iter()
            .filter(move |p| p.pe_type == ty)
            .map(|p| p.id)
    }

    /// The on-chip interconnect model, if communication is modeled.
    /// `None` means inter-PE communication is free (the paper's original
    /// setting); see DESIGN.md §8 on the future-work extension.
    pub fn interconnect(&self) -> Option<&Interconnect> {
        self.interconnect.as_ref()
    }
}

/// Builder for [`Platform`] (C-BUILDER).
#[derive(Debug, Default, Clone)]
pub struct PlatformBuilder {
    pe_types: Vec<PeType>,
    pes: Vec<PeTypeId>,
    interconnect: Option<Interconnect>,
}

impl PlatformBuilder {
    /// Registers a PE type; PEs added later refer to it by name or id.
    #[must_use]
    pub fn pe_type(mut self, ty: PeType) -> Self {
        self.pe_types.push(ty);
        self
    }

    /// Adds `count` PEs of the type registered under `type_name`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownPeType`] if no type with that name has
    /// been registered yet.
    pub fn pes_of_type(mut self, type_name: &str, count: usize) -> Result<Self, ModelError> {
        let idx = self
            .pe_types
            .iter()
            .position(|t| t.name() == type_name)
            .ok_or_else(|| ModelError::UnknownPeType {
                name: type_name.to_owned(),
            })?;
        let id = PeTypeId::new(idx as u32);
        self.pes.extend(std::iter::repeat_n(id, count));
        Ok(self)
    }

    /// Adds a single PE by type id.
    #[must_use]
    pub fn pe(mut self, ty: PeTypeId) -> Self {
        self.pes.push(ty);
        self
    }

    /// Declares the on-chip interconnect; inter-PE data transfers then
    /// cost `latency + volume / bandwidth` seconds in the schedule.
    #[must_use]
    pub fn interconnect(mut self, ic: Interconnect) -> Self {
        self.interconnect = Some(ic);
        self
    }

    /// Validates and produces the platform.
    ///
    /// # Errors
    ///
    /// * [`ModelError::EmptyPlatform`] if no PEs were added.
    /// * [`ModelError::PeTypeOutOfRange`] if a PE references a missing type.
    /// * [`ModelError::NoDvfsModes`] if any *used* PE type has no DVFS mode.
    pub fn build(self) -> Result<Platform, ModelError> {
        if self.pes.is_empty() {
            return Err(ModelError::EmptyPlatform);
        }
        for &ty in &self.pes {
            if ty.index() >= self.pe_types.len() {
                return Err(ModelError::PeTypeOutOfRange {
                    id: ty,
                    count: self.pe_types.len(),
                });
            }
            if self.pe_types[ty.index()].dvfs_modes.is_empty() {
                return Err(ModelError::NoDvfsModes { id: ty });
            }
        }
        let pes = self
            .pes
            .into_iter()
            .enumerate()
            .map(|(i, ty)| Pe {
                id: PeId::new(i as u32),
                pe_type: ty,
            })
            .collect();
        Ok(Platform {
            pe_types: self.pe_types,
            pes,
            interconnect: self.interconnect,
        })
    }
}

/// Builds the 6-PE, 3-type evaluation platform used throughout the paper's
/// experiments: four embedded processors with two different masking factors
/// plus two partially reconfigurable regions.
///
/// # Examples
///
/// ```
/// let p = clre_model::platform::paper_platform();
/// assert_eq!(p.pe_count(), 6);
/// assert_eq!(p.pe_types().len(), 3);
/// ```
pub fn paper_platform() -> Platform {
    let modes = [
        DvfsMode::new("1.2V/900MHz", 1.2, 900.0e6),
        DvfsMode::new("1.1V/600MHz", 1.1, 600.0e6),
        DvfsMode::new("1.06V/300MHz", 1.06, 300.0e6),
    ];
    let mut proc_lo = PeType::processor("proc-lomask", 2.0, 0.20);
    let mut proc_hi = PeType::processor("proc-himask", 2.2, 0.40);
    for m in &modes {
        proc_lo = proc_lo.with_dvfs_mode(m.clone());
        proc_hi = proc_hi.with_dvfs_mode(m.clone());
    }
    let pr = PeType::reconfigurable_region("pr-region", 1.8, 0.10).with_dvfs_mode(DvfsMode::new(
        "1.0V/250MHz",
        1.0,
        250.0e6,
    ));
    Platform::builder()
        .pe_type(proc_lo)
        .pe_type(proc_hi)
        .pe_type(pr)
        .pes_of_type("proc-lomask", 2)
        .expect("type registered")
        .pes_of_type("proc-himask", 2)
        .expect("type registered")
        .pes_of_type("pr-region", 2)
        .expect("type registered")
        .build()
        .expect("paper platform is statically valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proc_with_mode() -> PeType {
        PeType::processor("p", 2.0, 0.3).with_dvfs_mode(DvfsMode::new("m", 1.0, 1.0e8))
    }

    #[test]
    fn builder_happy_path() {
        let p = Platform::builder()
            .pe_type(proc_with_mode())
            .pes_of_type("p", 3)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(p.pe_count(), 3);
        assert_eq!(p.pe(PeId::new(2)).unwrap().pe_type(), PeTypeId::new(0));
        assert_eq!(p.type_of(PeId::new(0)).name(), "p");
        assert_eq!(p.pes_of_type(PeTypeId::new(0)).count(), 3);
    }

    #[test]
    fn builder_rejects_empty() {
        assert_eq!(Platform::builder().build(), Err(ModelError::EmptyPlatform));
    }

    #[test]
    fn builder_rejects_unknown_type_name() {
        let err = Platform::builder().pes_of_type("ghost", 1).unwrap_err();
        assert!(matches!(err, ModelError::UnknownPeType { .. }));
    }

    #[test]
    fn builder_rejects_out_of_range_type_id() {
        let err = Platform::builder()
            .pe(PeTypeId::new(5))
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::PeTypeOutOfRange { .. }));
    }

    #[test]
    fn builder_rejects_type_without_modes() {
        let err = Platform::builder()
            .pe_type(PeType::processor("nomode", 2.0, 0.3))
            .pes_of_type("nomode", 1)
            .unwrap()
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::NoDvfsModes { .. }));
    }

    #[test]
    fn pe_type_by_name_lookup() {
        let p = paper_platform();
        assert!(p.pe_type_by_name("pr-region").is_some());
        assert!(p.pe_type_by_name("ghost").is_none());
    }

    #[test]
    fn paper_platform_shape() {
        let p = paper_platform();
        assert_eq!(p.pe_count(), 6);
        let procs: usize = p
            .pe_types()
            .iter()
            .filter(|t| t.kind() == PeKind::Processor)
            .count();
        assert_eq!(procs, 2);
        // Processors expose three DVFS modes, PR regions one.
        let pr = p.pe_type_by_name("pr-region").unwrap();
        assert_eq!(p.pe_type(pr).unwrap().dvfs_modes().len(), 1);
    }

    #[test]
    fn interconnect_is_optional() {
        let p = paper_platform();
        assert!(p.interconnect().is_none());
        let with_noc = Platform::builder()
            .pe_type(proc_with_mode())
            .pes_of_type("p", 1)
            .unwrap()
            .interconnect(Interconnect::new(1.0e-6, 1.0e9))
            .build()
            .unwrap();
        let noc = with_noc.interconnect().unwrap();
        assert_eq!(noc.latency(), 1.0e-6);
        assert_eq!(noc.bandwidth(), 1.0e9);
        assert!((noc.transfer_time(2.0e9) - 2.000001).abs() < 1e-9);
    }

    #[test]
    fn local_memory_defaults_unbounded() {
        let t = proc_with_mode();
        assert!(t.local_memory_bytes().is_infinite());
        let bounded = proc_with_mode().with_local_memory_bytes(1024.0);
        assert_eq!(bounded.local_memory_bytes(), 1024.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn interconnect_rejects_zero_bandwidth() {
        Interconnect::new(0.0, 0.0);
    }

    #[test]
    fn dvfs_mode_lookup() {
        let t = proc_with_mode();
        assert!(t.dvfs_mode(DvfsModeId::new(0)).is_some());
        assert!(t.dvfs_mode(DvfsModeId::new(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "voltage must be positive")]
    fn dvfs_mode_rejects_nonpositive_voltage() {
        DvfsMode::new("bad", 0.0, 1.0e8);
    }

    #[test]
    #[should_panic(expected = "masking factor")]
    fn pe_type_rejects_bad_masking() {
        PeType::processor("bad", 2.0, 1.5);
    }
}

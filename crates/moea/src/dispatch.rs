//! Batch-evaluation dispatch: route one generation's genomes to a
//! remote [`EvalBackend`](clre_exec::EvalBackend) when the problem has a
//! wire codec and the executor has a backend, else (and for anything
//! that fails remotely) evaluate in-process — bit-identical either way.

use crate::nsga2::Individual;
use crate::problem::{Evaluation, Problem};
use clre_exec::Executor;

/// Evaluates one generation's genomes into [`Individual`]s through
/// `exec`, preferring the executor's [`EvalBackend`] when `problem`
/// offers a [`RemoteEval`](crate::RemoteEval) codec.
///
/// Fallback is per-item and silent: a genome whose remote slot is an
/// `Err` (worker lost twice, malformed output) is evaluated in-process
/// on the calling thread, and a whole-batch backend failure drops the
/// entire generation back onto [`Executor::evaluate_batch`]. Because
/// the codec round-trip is bit-exact and the evaluation is pure, the
/// resulting individuals are identical whichever mix of paths ran —
/// only telemetry can tell the difference.
pub(crate) fn evaluate_generation<P>(
    problem: &P,
    exec: &Executor,
    step: usize,
    genomes: Vec<P::Genome>,
) -> Vec<Individual<P::Genome>>
where
    P: Problem + Sync,
    P::Genome: Send + Sync,
{
    if let Some(remote) = problem.remote() {
        if exec.eval_backend().is_some() {
            let context = remote.context();
            let items: Vec<String> = genomes.iter().map(|g| remote.encode_item(g)).collect();
            if let Some(outputs) = exec.evaluate_encoded(step, &context, &items) {
                debug_assert_eq!(outputs.len(), genomes.len());
                return genomes
                    .into_iter()
                    .zip(outputs)
                    .map(|(genome, slot)| {
                        let evaluation = slot
                            .ok()
                            .and_then(|text| remote.decode_output(&text).ok())
                            .unwrap_or_else(|| problem.evaluate(&genome));
                        individual(problem, genome, evaluation)
                    })
                    .collect();
            }
        }
    }
    exec.evaluate_batch(step, &genomes, |g| {
        individual(problem, g.clone(), problem.evaluate(g))
    })
}

fn individual<P: Problem>(
    problem: &P,
    genome: P::Genome,
    evaluation: Evaluation,
) -> Individual<P::Genome> {
    let Evaluation {
        objectives,
        violation,
    } = evaluation;
    debug_assert_eq!(objectives.len(), problem.objective_count());
    Individual {
        genome,
        objectives,
        violation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{EvalError, RemoteEval};
    use clre_exec::{EvalVocab, ExecPool, ItemEval, ThreadBackend};
    use rand::RngCore;
    use std::sync::Arc;

    /// `f(x) = (x², (x−2)²)` with a deliberately lossy-looking but
    /// bit-exact hex codec, plus a poison value that fails remotely.
    #[derive(Debug)]
    struct Schaffer;

    const POISON: f64 = 13.0;

    impl Problem for Schaffer {
        type Genome = f64;

        fn objective_count(&self) -> usize {
            2
        }

        fn random_genome(&self, _rng: &mut dyn RngCore) -> f64 {
            0.0
        }

        fn evaluate(&self, x: &f64) -> Evaluation {
            Evaluation::feasible(vec![x * x, (x - 2.0) * (x - 2.0)])
        }

        fn remote(&self) -> Option<&dyn RemoteEval<f64>> {
            Some(self)
        }
    }

    impl RemoteEval<f64> for Schaffer {
        fn context(&self) -> String {
            "schaffer".to_owned()
        }

        fn encode_item(&self, genome: &f64) -> String {
            format!("{:016x}", genome.to_bits())
        }

        fn decode_output(&self, output: &str) -> Result<Evaluation, EvalError> {
            let objectives = clre_exec::wire::decode_f64s(output).map_err(EvalError::new)?;
            Ok(Evaluation::feasible(objectives))
        }
    }

    struct SchafferEval;

    impl ItemEval for SchafferEval {
        fn eval(&self, item: &str) -> Result<String, String> {
            let bits = u64::from_str_radix(item, 16).map_err(|e| e.to_string())?;
            let x = f64::from_bits(bits);
            if x == POISON {
                return Err("poisoned item".to_owned());
            }
            let eval = Schaffer.evaluate(&x);
            Ok(clre_exec::wire::encode_f64s(&eval.objectives))
        }
    }

    #[derive(Debug)]
    struct SchafferVocab;

    impl EvalVocab for SchafferVocab {
        fn resolve(&self, context: &str) -> Result<Arc<dyn ItemEval>, String> {
            match context {
                "schaffer" => Ok(Arc::new(SchafferEval)),
                other => Err(format!("unknown context {other:?}")),
            }
        }
    }

    fn backend_executor() -> Executor {
        Executor::new(ExecPool::new(2)).with_eval_backend(Arc::new(ThreadBackend::new(
            ExecPool::new(2),
            Arc::new(SchafferVocab),
        )))
    }

    #[test]
    fn remote_dispatch_matches_in_process_bitwise() {
        let genomes: Vec<f64> = (0..40).map(|n| f64::from(n) * 0.31).collect();
        let local = evaluate_generation(&Schaffer, &Executor::serial(), 0, genomes.clone());
        let remote = evaluate_generation(&Schaffer, &backend_executor(), 0, genomes);
        assert_eq!(local.len(), remote.len());
        for (a, b) in local.iter().zip(&remote) {
            for (x, y) in a.objectives.iter().zip(&b.objectives) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn per_item_remote_failures_fall_back_in_process() {
        let genomes = vec![1.0, POISON, 3.0];
        let out = evaluate_generation(&Schaffer, &backend_executor(), 0, genomes.clone());
        for (g, ind) in genomes.iter().zip(&out) {
            assert_eq!(
                ind.objectives,
                Schaffer.evaluate(g).objectives,
                "genome {g}"
            );
        }
    }

    #[test]
    fn problems_without_codec_stay_in_process() {
        #[derive(Debug)]
        struct Plain;
        impl Problem for Plain {
            type Genome = f64;
            fn objective_count(&self) -> usize {
                1
            }
            fn random_genome(&self, _rng: &mut dyn RngCore) -> f64 {
                0.0
            }
            fn evaluate(&self, x: &f64) -> Evaluation {
                Evaluation::feasible(vec![*x])
            }
        }
        assert!(Plain.remote().is_none());
        let out = evaluate_generation(&Plain, &backend_executor(), 0, vec![4.0]);
        assert_eq!(out[0].objectives, vec![4.0]);
    }
}

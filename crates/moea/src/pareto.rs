//! Pareto dominance utilities: dominance tests, non-dominated filtering
//! and fast non-dominated sorting with constraint-domination.
//!
//! All comparisons assume **minimization** on every axis.
//!
//! The slice-of-`Vec` entry points here are thin wrappers over the
//! flat-buffer kernels in [`crate::kernels`]; callers on the hot path
//! (the MOEA generation loops) use the kernels directly on an
//! [`ObjectiveMatrix`](crate::matrix::ObjectiveMatrix) to skip the
//! per-row allocations.

use crate::kernels;
use crate::matrix::ObjectiveMatrix;

/// Returns `true` if `a` Pareto-dominates `b` (a ≤ b everywhere, a < b
/// somewhere).
///
/// # Panics
///
/// Panics if the vectors have different lengths.
///
/// # Examples
///
/// ```
/// use clre_moea::pareto::dominates;
///
/// assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
/// assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0]));
/// assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0])); // incomparable
/// ```
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "objective vectors must share a length");
    let mut strictly = false;
    for (&x, &y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

/// Constraint-domination (Deb's rules): a feasible solution dominates any
/// infeasible one; among infeasible solutions the smaller violation
/// dominates; among feasible solutions regular Pareto dominance applies.
pub fn constrained_dominates(a: &[f64], va: f64, b: &[f64], vb: f64) -> bool {
    match (va == 0.0, vb == 0.0) {
        (true, false) => true,
        (false, true) => false,
        (false, false) => va < vb,
        (true, true) => dominates(a, b),
    }
}

/// Branch-reduced dominance over flat rows: 4-wide unrolled flag
/// accumulation instead of the early-exit scan of [`dominates`].
///
/// Returns the same boolean as [`dominates`] for every input, including
/// NaN axes: `NaN > y`, `NaN < y`, `x > NaN` and `x < NaN` are all false
/// in both versions, so a NaN axis contributes to neither flag here and
/// triggers neither branch there. The flag form has no data-dependent
/// branches in the loop body, which lets stable rustc autovectorize the
/// chunked comparisons without any intrinsics.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn dominates_blocked(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "objective vectors must share a length");
    let mut worse = false;
    let mut better = false;
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (x, y) in (&mut ca).zip(&mut cb) {
        worse |= (x[0] > y[0]) | (x[1] > y[1]) | (x[2] > y[2]) | (x[3] > y[3]);
        better |= (x[0] < y[0]) | (x[1] < y[1]) | (x[2] < y[2]) | (x[3] < y[3]);
    }
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        worse |= x > y;
        better |= x < y;
    }
    better && !worse
}

/// [`constrained_dominates`] with the Pareto comparison routed through
/// the blocked kernel. The violation arms are untouched, including their
/// NaN behaviour (`va == 0.0` is false for NaN, and `NaN < vb` is false).
pub fn constrained_dominates_blocked(a: &[f64], va: f64, b: &[f64], vb: f64) -> bool {
    match (va == 0.0, vb == 0.0) {
        (true, false) => true,
        (false, true) => false,
        (false, false) => va < vb,
        (true, true) => dominates_blocked(a, b),
    }
}

/// Returns the indices of the non-dominated points of `points`.
///
/// Duplicates are kept (the first occurrence wins; exact duplicates of a
/// retained point are also retained, since neither strictly dominates the
/// other).
///
/// # Examples
///
/// ```
/// use clre_moea::pareto::non_dominated_indices;
///
/// let pts = vec![vec![1.0, 4.0], vec![2.0, 2.0], vec![3.0, 3.0], vec![4.0, 1.0]];
/// assert_eq!(non_dominated_indices(&pts), vec![0, 1, 3]);
/// ```
pub fn non_dominated_indices(points: &[Vec<f64>]) -> Vec<usize> {
    kernels::non_dominated_matrix(&ObjectiveMatrix::from_rows(points))
}

/// Filters `points` down to its Pareto front (first occurrence of
/// duplicates kept).
pub fn pareto_filter(points: &[Vec<f64>]) -> Vec<Vec<f64>> {
    non_dominated_indices(points)
        .into_iter()
        .map(|i| points[i].clone())
        .collect()
}

/// Fast non-dominated sort. Returns fronts of indices: `fronts[0]` is the
/// non-dominated set, `fronts[1]` the set dominated only by front 0, etc.
///
/// `violations[i]` feeds constraint-domination; pass all zeros for an
/// unconstrained sort.
///
/// Dispatches to the ENS-SS kernel
/// ([`kernels::ens_non_dominated_sort`]), which returns the same fronts
/// in the same order as the classic Deb peeling sort (kept as
/// [`kernels::deb_non_dominated_sort`], the test oracle and
/// degraded-input fallback).
///
/// # Panics
///
/// Panics if `points` and `violations` differ in length.
pub fn fast_non_dominated_sort(points: &[Vec<f64>], violations: &[f64]) -> Vec<Vec<usize>> {
    kernels::ens_non_dominated_sort(&ObjectiveMatrix::from_rows(points), violations)
}

/// Crowding distance of each point within one front (Deb et al.).
/// Boundary points get `f64::INFINITY`.
///
/// # Panics
///
/// Panics if the points have inconsistent dimensionality.
pub fn crowding_distance(points: &[Vec<f64>]) -> Vec<f64> {
    let matrix = ObjectiveMatrix::from_rows(points);
    let members: Vec<usize> = (0..matrix.rows()).collect();
    kernels::crowding_distance_indexed(&matrix, &members)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_basics() {
        assert!(dominates(&[0.0, 0.0], &[1.0, 1.0]));
        assert!(dominates(&[0.0, 1.0], &[0.0, 2.0]));
        assert!(!dominates(&[0.0, 2.0], &[0.0, 1.0]));
        assert!(!dominates(&[1.0], &[1.0]));
    }

    #[test]
    #[should_panic(expected = "share a length")]
    fn dominance_length_mismatch_panics() {
        dominates(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn blocked_dominance_matches_scalar_on_edge_values() {
        let vals = [f64::NAN, -0.0, 0.0, 0.5, 1.0, -1.5, f64::INFINITY];
        // Exhaustive 2-axis grid plus 5-axis vectors exercising the
        // remainder lane of the 4-wide kernel.
        for &a0 in &vals {
            for &a1 in &vals {
                for &b0 in &vals {
                    for &b1 in &vals {
                        let a = [a0, a1];
                        let b = [b0, b1];
                        assert_eq!(dominates(&a, &b), dominates_blocked(&a, &b));
                        let a5 = [a0, a1, a0, a1, a0];
                        let b5 = [b0, b1, b1, b0, b1];
                        assert_eq!(dominates(&a5, &b5), dominates_blocked(&a5, &b5));
                    }
                }
            }
        }
    }

    #[test]
    fn blocked_constrained_matches_scalar_including_nan_violations() {
        let viol = [0.0, -0.0, 0.5, -1.0, f64::NAN];
        for &va in &viol {
            for &vb in &viol {
                let a = [1.0, 2.0, 3.0, 4.0];
                let b = [2.0, 2.0, 3.0, 5.0];
                assert_eq!(
                    constrained_dominates(&a, va, &b, vb),
                    constrained_dominates_blocked(&a, va, &b, vb),
                    "va={va}, vb={vb}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "share a length")]
    fn blocked_dominance_length_mismatch_panics() {
        dominates_blocked(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn constrained_dominance_rules() {
        // Feasible beats infeasible regardless of objectives.
        assert!(constrained_dominates(&[9.0], 0.0, &[0.0], 1.0));
        assert!(!constrained_dominates(&[0.0], 1.0, &[9.0], 0.0));
        // Less violation wins among infeasible.
        assert!(constrained_dominates(&[9.0], 0.1, &[0.0], 0.2));
        // Both feasible: Pareto.
        assert!(constrained_dominates(&[1.0], 0.0, &[2.0], 0.0));
    }

    #[test]
    fn filter_keeps_front_and_first_duplicate() {
        let pts = vec![
            vec![1.0, 4.0],
            vec![2.0, 2.0],
            vec![2.0, 2.0], // duplicate: dropped
            vec![3.0, 3.0], // dominated
            vec![4.0, 1.0],
        ];
        assert_eq!(non_dominated_indices(&pts), vec![0, 1, 4]);
        assert_eq!(pareto_filter(&pts).len(), 3);
    }

    #[test]
    fn filter_of_single_point() {
        assert_eq!(pareto_filter(&[vec![1.0, 1.0]]).len(), 1);
        assert!(pareto_filter(&[]).is_empty());
    }

    #[test]
    fn sort_produces_layered_fronts() {
        let pts = vec![
            vec![1.0, 1.0], // front 0
            vec![2.0, 2.0], // front 1
            vec![3.0, 3.0], // front 2
            vec![1.0, 2.5], // front 1 (dominated only by [1,1])
        ];
        let fronts = fast_non_dominated_sort(&pts, &[0.0; 4]);
        assert_eq!(fronts[0], vec![0]);
        assert_eq!(fronts[1], vec![1, 3]);
        assert_eq!(fronts[2], vec![2]);
    }

    #[test]
    fn sort_respects_constraints() {
        let pts = vec![vec![0.0, 0.0], vec![5.0, 5.0]];
        // The better point is infeasible ⇒ it lands in front 1.
        let fronts = fast_non_dominated_sort(&pts, &[1.0, 0.0]);
        assert_eq!(fronts[0], vec![1]);
        assert_eq!(fronts[1], vec![0]);
    }

    #[test]
    fn sort_total_size_preserved() {
        let pts: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i % 5) as f64, (i / 5) as f64])
            .collect();
        let fronts = fast_non_dominated_sort(&pts, &[0.0; 20]);
        let total: usize = fronts.iter().map(Vec::len).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn crowding_boundaries_infinite() {
        let pts = vec![
            vec![0.0, 3.0],
            vec![1.0, 2.0],
            vec![2.0, 1.0],
            vec![3.0, 0.0],
        ];
        let d = crowding_distance(&pts);
        assert_eq!(d[0], f64::INFINITY);
        assert_eq!(d[3], f64::INFINITY);
        assert!(d[1].is_finite() && d[1] > 0.0);
        // Symmetric layout ⇒ equal interior distances.
        assert!((d[1] - d[2]).abs() < 1e-12);
    }

    #[test]
    fn crowding_small_fronts_all_infinite() {
        assert_eq!(crowding_distance(&[vec![1.0, 2.0]]), vec![f64::INFINITY]);
        assert_eq!(
            crowding_distance(&[vec![1.0, 2.0], vec![2.0, 1.0]]),
            vec![f64::INFINITY, f64::INFINITY]
        );
        assert!(crowding_distance(&[]).is_empty());
    }

    #[test]
    fn crowding_rewards_isolation() {
        // Middle point crowded between close neighbours vs isolated one.
        let pts = vec![
            vec![0.0, 10.0],
            vec![0.1, 9.8], // crowded
            vec![0.2, 9.6],
            vec![5.0, 1.0], // isolated
            vec![10.0, 0.0],
        ];
        let d = crowding_distance(&pts);
        assert!(d[3] > d[1]);
    }
}

use crate::kernels::{self, SelectionSplit};
use crate::{Evaluation, Problem, Variation};
use clre_exec::Executor;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::time::Instant;

/// Configuration of one NSGA-II run.
///
/// Defaults follow the paper's experiment setup: crossover probability
/// 0.8, mutation probability 0.05, tournament of 5.
#[derive(Debug, Clone, PartialEq)]
pub struct Nsga2Config {
    /// Population size (kept constant across generations).
    pub population_size: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-pair crossover probability.
    pub crossover_prob: f64,
    /// Per-offspring mutation probability.
    pub mutation_prob: f64,
    /// Tournament size for parent selection.
    pub tournament_size: usize,
    /// RNG seed; equal seeds give identical runs.
    pub seed: u64,
}

impl Nsga2Config {
    /// Creates a configuration with the paper's operator probabilities.
    ///
    /// # Panics
    ///
    /// Panics if `population_size < 2` or `generations == 0`.
    pub fn new(population_size: usize, generations: usize) -> Self {
        assert!(population_size >= 2, "population must hold at least 2");
        assert!(generations > 0, "at least one generation is required");
        Nsga2Config {
            population_size,
            generations,
            crossover_prob: 0.8,
            mutation_prob: 0.05,
            tournament_size: 5,
            seed: 0,
        }
    }

    /// Sets the RNG seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the crossover probability (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    #[must_use]
    pub fn with_crossover_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.crossover_prob = p;
        self
    }

    /// Sets the mutation probability (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    #[must_use]
    pub fn with_mutation_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.mutation_prob = p;
        self
    }

    /// Sets the tournament size (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn with_tournament_size(mut self, k: usize) -> Self {
        assert!(k > 0, "tournament size must be positive");
        self.tournament_size = k;
        self
    }
}

/// One evaluated member of the population.
#[derive(Debug, Clone, PartialEq)]
pub struct Individual<G> {
    /// The genome.
    pub genome: G,
    /// Its minimization objective vector.
    pub objectives: Vec<f64>,
    /// Its constraint violation (0 = feasible).
    pub violation: f64,
}

/// The outcome of an NSGA-II run.
#[derive(Debug, Clone)]
pub struct OptimizationResult<G> {
    population: Vec<Individual<G>>,
    front_indices: Vec<usize>,
    /// Total number of fitness evaluations performed.
    pub evaluations: usize,
    /// Generations actually run.
    pub generations_run: usize,
}

impl<G> OptimizationResult<G> {
    /// The final population.
    pub fn population(&self) -> &[Individual<G>] {
        &self.population
    }

    /// The non-dominated individuals of the final population.
    pub fn front(&self) -> Vec<&Individual<G>> {
        self.front_indices
            .iter()
            .map(|&i| &self.population[i])
            .collect()
    }

    /// The objective vectors of the final front.
    pub fn front_objectives(&self) -> Vec<Vec<f64>> {
        self.front_indices
            .iter()
            .map(|&i| self.population[i].objectives.clone())
            .collect()
    }

    /// Consumes the result, returning the owned front individuals.
    pub fn into_front(mut self) -> Vec<Individual<G>> {
        let mut idx = std::mem::take(&mut self.front_indices);
        idx.sort_unstable();
        let mut out = Vec::with_capacity(idx.len());
        // Drain from the back so earlier indices stay valid.
        for &i in idx.iter().rev() {
            out.push(self.population.swap_remove(i));
        }
        out.reverse();
        out
    }
}

/// Resumable mid-run NSGA-II state: the evaluated population plus the
/// exact raw RNG state, captured between generations.
///
/// Produced by [`Nsga2::init_state`], advanced by [`Nsga2::step`] and
/// consumed by [`Nsga2::finalize`]. Because the state carries the
/// generator's raw words, `init_state` + `generations`×`step` +
/// `finalize` replays the *identical* random stream of [`Nsga2::run`] —
/// a run interrupted at any generation boundary and resumed from a
/// snapshot of this state reaches the same final front. The
/// checkpoint/resume machinery in `clre` persists exactly these fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Nsga2State<G> {
    /// The current evaluated population.
    pub population: Vec<Individual<G>>,
    /// Generations completed so far.
    pub generation: usize,
    /// Fitness evaluations spent so far.
    pub evaluations: usize,
    /// Raw xoshiro state words of the run's RNG, as of the last completed
    /// generation boundary.
    pub rng_state: [u64; 4],
}

/// The NSGA-II optimizer.
///
/// See the [crate-level example](crate) for a complete run. Use
/// [`Nsga2::with_seeds`] to inject known-good genomes into the initial
/// population — the mechanism behind the paper's `pfCLR → fcCLR` seeded
/// search.
#[derive(Debug)]
pub struct Nsga2<P: Problem, V> {
    problem: P,
    variation: V,
    config: Nsga2Config,
    seeds: Vec<P::Genome>,
}

impl<P, V> Nsga2<P, V>
where
    P: Problem,
    V: Variation<P::Genome>,
{
    /// Creates an optimizer.
    pub fn new(problem: P, variation: V, config: Nsga2Config) -> Self {
        Nsga2 {
            problem,
            variation,
            config,
            seeds: Vec::new(),
        }
    }

    /// Injects seed genomes into the initial population (builder style).
    /// At most `population_size` seeds are used; the remainder of the
    /// initial population is random.
    #[must_use]
    pub fn with_seeds(mut self, seeds: Vec<P::Genome>) -> Self {
        self.seeds = seeds;
        self
    }

    /// The wrapped problem.
    pub fn problem(&self) -> &P {
        &self.problem
    }

    /// Runs the optimization to completion.
    pub fn run(&self) -> OptimizationResult<P::Genome> {
        self.run_from(self.init_state())
    }

    /// Continues a (possibly restored) state to completion.
    ///
    /// `run_from(init_state())` is exactly [`Nsga2::run`]; `run_from` of a
    /// mid-run snapshot reproduces the uninterrupted run's tail.
    pub fn run_from(&self, mut state: Nsga2State<P::Genome>) -> OptimizationResult<P::Genome> {
        while self.step(&mut state) {}
        self.finalize(state)
    }

    /// Evaluates the initial population (seeds first, then random
    /// genomes) and captures the RNG at the first generation boundary.
    pub fn init_state(&self) -> Nsga2State<P::Genome> {
        self.init_core(|genomes| genomes.into_iter().map(|g| self.eval_one(g)).collect())
    }

    /// [`Nsga2::run`] with batch evaluation through `exec` — bit-identical
    /// results for any worker count (see [`Nsga2State`] and the
    /// `clre_exec` determinism invariant).
    pub fn run_with(&self, exec: &Executor) -> OptimizationResult<P::Genome>
    where
        P: Sync,
        P::Genome: Send + Sync,
        V: Sync,
    {
        self.run_from_with(self.init_state_with(exec), exec)
    }

    /// [`Nsga2::run_from`] with batch evaluation through `exec`.
    pub fn run_from_with(
        &self,
        mut state: Nsga2State<P::Genome>,
        exec: &Executor,
    ) -> OptimizationResult<P::Genome>
    where
        P: Sync,
        P::Genome: Send + Sync,
        V: Sync,
    {
        while self.step_with(&mut state, exec) {}
        self.finalize(state)
    }

    /// [`Nsga2::init_state`] with the initial-population evaluation fanned
    /// out through `exec` (recorded as trace step 0) — remotely, when the
    /// problem has a wire codec and `exec` carries an
    /// [`EvalBackend`](clre_exec::EvalBackend).
    pub fn init_state_with(&self, exec: &Executor) -> Nsga2State<P::Genome>
    where
        P: Sync,
        P::Genome: Send + Sync,
        V: Sync,
    {
        self.init_core(|genomes| {
            crate::dispatch::evaluate_generation(&self.problem, exec, 0, genomes)
        })
    }

    /// [`Nsga2::step`] with the offspring batch fanned out through `exec`
    /// (recorded as a trace step at the new generation number).
    ///
    /// Offspring *generation* (the only RNG consumer) stays on the calling
    /// thread, so `step` and `step_with` advance the state identically —
    /// including the stored RNG words — for any worker count or backend.
    pub fn step_with(&self, state: &mut Nsga2State<P::Genome>, exec: &Executor) -> bool
    where
        P: Sync,
        P::Genome: Send + Sync,
        V: Sync,
    {
        self.step_core(
            state,
            |genomes, generation| {
                crate::dispatch::evaluate_generation(&self.problem, exec, generation, genomes)
            },
            |split: SelectionSplit| {
                exec.annotate_selection_split(
                    split.total_us,
                    split.sort_us,
                    split.truncate_us,
                    split.dist_us,
                );
            },
        )
    }

    /// Advances the state by one generation: offspring via tournament
    /// selection + crossover + mutation, then elitist environmental
    /// selection over parents ∪ offspring. Returns `false` (leaving the
    /// state untouched) once the configured generation count is reached.
    ///
    /// Ranks and crowding distances are deterministic functions of the
    /// population, so they are recomputed here instead of being part of
    /// the (persistable) state.
    pub fn step(&self, state: &mut Nsga2State<P::Genome>) -> bool {
        self.step_core(
            state,
            |genomes, _| genomes.into_iter().map(|g| self.eval_one(g)).collect(),
            |_| {},
        )
    }

    /// Shared skeleton of [`Nsga2::init_state`] /
    /// [`Nsga2::init_state_with`]: sample the initial genomes (seeds
    /// first, then random), hand the whole batch to `evaluate`, and
    /// capture the RNG at the first generation boundary. Genome sampling
    /// is the only RNG consumer, so serial and batched evaluation replay
    /// the identical random stream.
    fn init_core<E>(&self, evaluate: E) -> Nsga2State<P::Genome>
    where
        E: FnOnce(Vec<P::Genome>) -> Vec<Individual<P::Genome>>,
    {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x005A_6A11);
        let pop_size = self.config.population_size;
        let mut genomes: Vec<P::Genome> = self.seeds.iter().take(pop_size).cloned().collect();
        while genomes.len() < pop_size {
            genomes.push(self.problem.random_genome(&mut rng));
        }
        let evaluations = genomes.len();
        Nsga2State {
            population: evaluate(genomes),
            generation: 0,
            evaluations,
            rng_state: rng.state_words(),
        }
    }

    /// Shared skeleton of [`Nsga2::step`] / [`Nsga2::step_with`]:
    /// generate the full offspring batch first (consuming the RNG in
    /// exactly the order the classic interleaved loop did — fitness
    /// evaluation never touches the RNG), then evaluate the batch through
    /// `evaluate` (called with the offspring genomes and the 1-based
    /// generation number they belong to), then apply elitist
    /// environmental selection.
    ///
    /// `report` receives the generation's selection cost split
    /// ([`SelectionSplit`], microseconds: `sort_us` = mating
    /// rank/crowding, `truncate_us` = environmental selection, `dist_us`
    /// = 0 — NSGA-II keeps no distance matrix) once the step is complete
    /// — after `evaluate`, so a telemetry-backed reporter annotates this
    /// generation's own trace record.
    fn step_core<E, R>(&self, state: &mut Nsga2State<P::Genome>, evaluate: E, report: R) -> bool
    where
        E: FnOnce(Vec<P::Genome>, usize) -> Vec<Individual<P::Genome>>,
        R: FnOnce(SelectionSplit),
    {
        if state.generation >= self.config.generations {
            return false;
        }
        let pop_size = self.config.population_size;
        let mut rng = StdRng::from_state_words(state.rng_state);
        let mut split = SelectionSplit::default();
        let mating = Instant::now();
        let (ranks, crowding) = rank_and_crowd(&state.population);
        split.sort_us = mating.elapsed().as_nanos() as u64 / 1_000;
        let genomes = self.offspring_genomes(&state.population, &ranks, &crowding, &mut rng);
        state.evaluations += genomes.len();
        let offspring = evaluate(genomes, state.generation + 1);
        debug_assert_eq!(offspring.len(), pop_size);
        // Environmental selection over parents ∪ offspring.
        let population = &mut state.population;
        population.extend(offspring);
        let environmental = Instant::now();
        let survivors = environmental_selection(std::mem::take(population), pop_size);
        split.truncate_us = environmental.elapsed().as_nanos() as u64 / 1_000;
        *population = survivors;
        split.total_us = split.sort_us + split.truncate_us;
        state.generation += 1;
        state.rng_state = rng.state_words();
        report(split);
        true
    }

    /// Breeds one generation's offspring genomes: tournament selection +
    /// crossover + mutation, exactly `population_size` of them.
    fn offspring_genomes(
        &self,
        population: &[Individual<P::Genome>],
        ranks: &[usize],
        crowding: &[f64],
        rng: &mut StdRng,
    ) -> Vec<P::Genome> {
        let pop_size = self.config.population_size;
        let mut genomes: Vec<P::Genome> = Vec::with_capacity(pop_size);
        while genomes.len() < pop_size {
            let a = self.tournament(population, ranks, crowding, rng);
            let b = self.tournament(population, ranks, crowding, rng);
            let (mut c1, mut c2) = if rng.gen_bool(self.config.crossover_prob) {
                self.variation
                    .crossover(&population[a].genome, &population[b].genome, rng)
            } else {
                (population[a].genome.clone(), population[b].genome.clone())
            };
            if rng.gen_bool(self.config.mutation_prob) {
                self.variation.mutate(&mut c1, rng);
            }
            if rng.gen_bool(self.config.mutation_prob) {
                self.variation.mutate(&mut c2, rng);
            }
            genomes.push(c1);
            if genomes.len() < pop_size {
                genomes.push(c2);
            }
        }
        genomes
    }

    /// Turns a state into the run result (rank-0 front of the current
    /// population).
    pub fn finalize(&self, state: Nsga2State<P::Genome>) -> OptimizationResult<P::Genome> {
        let (ranks, _) = rank_and_crowd(&state.population);
        let front_indices: Vec<usize> = (0..state.population.len())
            .filter(|&i| ranks[i] == 0)
            .collect();
        OptimizationResult {
            population: state.population,
            front_indices,
            evaluations: state.evaluations,
            generations_run: state.generation,
        }
    }

    /// Evaluates one genome into an [`Individual`]. Pure with respect to
    /// the optimizer: no RNG, no shared state — safe to call from any
    /// worker thread.
    fn eval_one(&self, genome: P::Genome) -> Individual<P::Genome> {
        let Evaluation {
            objectives,
            violation,
        } = self.problem.evaluate(&genome);
        debug_assert_eq!(objectives.len(), self.problem.objective_count());
        Individual {
            genome,
            objectives,
            violation,
        }
    }

    /// Tournament of `k`: winner has the lowest (rank, −crowding).
    fn tournament(
        &self,
        pop: &[Individual<P::Genome>],
        ranks: &[usize],
        crowding: &[f64],
        rng: &mut dyn RngCore,
    ) -> usize {
        let mut best = rng.gen_range(0..pop.len());
        for _ in 1..self.config.tournament_size {
            let c = rng.gen_range(0..pop.len());
            let better =
                ranks[c] < ranks[best] || (ranks[c] == ranks[best] && crowding[c] > crowding[best]);
            if better {
                best = c;
            }
        }
        best
    }
}

/// Fills this thread's selection scratch with the population's
/// objectives and violations (borrowed, no per-row clones) and runs `f`
/// on the flat buffers.
fn with_population_scratch<G, R>(
    pop: &[Individual<G>],
    f: impl FnOnce(&crate::matrix::ObjectiveMatrix, &[f64]) -> R,
) -> R {
    let cols = pop.first().map_or(0, |i| i.objectives.len());
    kernels::with_scratch(|s| {
        s.objectives
            .refill(cols, pop.iter().map(|i| i.objectives.as_slice()));
        s.violations.clear();
        s.violations.extend(pop.iter().map(|i| i.violation));
        f(&s.objectives, &s.violations)
    })
}

/// Computes each individual's front rank and crowding distance on the
/// reusable flat objective buffer — one fill, no per-front row copies.
fn rank_and_crowd<G>(pop: &[Individual<G>]) -> (Vec<usize>, Vec<f64>) {
    with_population_scratch(pop, |objectives, violations| {
        let fronts = kernels::ens_non_dominated_sort(objectives, violations);
        let mut ranks = vec![0usize; pop.len()];
        let mut crowding = vec![0.0f64; pop.len()];
        for (r, front) in fronts.iter().enumerate() {
            let dist = kernels::crowding_distance_indexed(objectives, front);
            for (&i, &d) in front.iter().zip(&dist) {
                ranks[i] = r;
                crowding[i] = d;
            }
        }
        (ranks, crowding)
    })
}

/// NSGA-II elitist truncation: fill by fronts, split the last front by
/// descending crowding distance.
fn environmental_selection<G>(pop: Vec<Individual<G>>, target: usize) -> Vec<Individual<G>> {
    let chosen = with_population_scratch(&pop, |objectives, violations| {
        let fronts = kernels::ens_non_dominated_sort(objectives, violations);
        let mut chosen: Vec<usize> = Vec::with_capacity(target);
        for front in fronts {
            if chosen.len() + front.len() <= target {
                chosen.extend(front);
                if chosen.len() == target {
                    break;
                }
            } else {
                let dist = kernels::crowding_distance_indexed(objectives, &front);
                let mut order: Vec<usize> = (0..front.len()).collect();
                order.sort_by(|&a, &b| {
                    dist[b]
                        .partial_cmp(&dist[a])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                for &k in order.iter().take(target - chosen.len()) {
                    chosen.push(front[k]);
                }
                break;
            }
        }
        chosen
    });
    // Extract in index order while preserving `chosen`'s selection.
    let mut keep = vec![false; pop.len()];
    for &i in &chosen {
        keep[i] = true;
    }
    pop.into_iter()
        .zip(keep)
        .filter_map(|(ind, k)| k.then_some(ind))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Bi-objective Schaffer problem; true Pareto set is x ∈ [0, 2].
    struct Schaffer;

    impl Problem for Schaffer {
        type Genome = f64;

        fn objective_count(&self) -> usize {
            2
        }

        fn random_genome(&self, rng: &mut dyn RngCore) -> f64 {
            rng.gen_range(-100.0f64..100.0)
        }

        fn evaluate(&self, x: &f64) -> Evaluation {
            Evaluation::feasible(vec![x * x, (x - 2.0) * (x - 2.0)])
        }
    }

    /// Constrained variant: x must be ≥ 1.
    struct ConstrainedSchaffer;

    impl Problem for ConstrainedSchaffer {
        type Genome = f64;

        fn objective_count(&self) -> usize {
            2
        }

        fn random_genome(&self, rng: &mut dyn RngCore) -> f64 {
            rng.gen_range(-100.0f64..100.0)
        }

        fn evaluate(&self, x: &f64) -> Evaluation {
            let v = if *x < 1.0 { 1.0 - *x } else { 0.0 };
            Evaluation::with_violation(vec![x * x, (x - 2.0) * (x - 2.0)], v)
        }
    }

    struct Gaussian;

    impl Variation<f64> for Gaussian {
        fn crossover(&self, a: &f64, b: &f64, rng: &mut dyn RngCore) -> (f64, f64) {
            let t: f64 = rng.gen_range(0.0..1.0);
            (t * a + (1.0 - t) * b, (1.0 - t) * a + t * b)
        }

        fn mutate(&self, x: &mut f64, rng: &mut dyn RngCore) {
            *x += rng.gen_range(-1.0f64..1.0);
        }
    }

    #[test]
    fn converges_to_schaffer_front() {
        let cfg = Nsga2Config::new(60, 80).with_seed(1);
        let res = Nsga2::new(Schaffer, Gaussian, cfg).run();
        let front = res.front();
        assert!(!front.is_empty());
        for ind in &front {
            assert!(
                ind.genome > -0.6 && ind.genome < 2.6,
                "genome {} off the Pareto set",
                ind.genome
            );
        }
        // Spread: both extremes approached.
        let min = front.iter().map(|i| i.genome).fold(f64::MAX, f64::min);
        let max = front.iter().map(|i| i.genome).fold(f64::MIN, f64::max);
        assert!(min < 0.7 && max > 1.3, "front collapsed: [{min}, {max}]");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = Nsga2Config::new(20, 10).with_seed(9);
        let a = Nsga2::new(Schaffer, Gaussian, cfg.clone()).run();
        let b = Nsga2::new(Schaffer, Gaussian, cfg).run();
        assert_eq!(a.front_objectives(), b.front_objectives());
        let c = Nsga2::new(Schaffer, Gaussian, Nsga2Config::new(20, 10).with_seed(10)).run();
        assert_ne!(a.front_objectives(), c.front_objectives());
    }

    #[test]
    fn respects_constraints() {
        let cfg = Nsga2Config::new(60, 80).with_seed(3);
        let res = Nsga2::new(ConstrainedSchaffer, Gaussian, cfg).run();
        for ind in res.front() {
            assert_eq!(ind.violation, 0.0);
            assert!(ind.genome >= 0.99, "infeasible genome {}", ind.genome);
        }
    }

    #[test]
    fn seeding_preserves_good_genomes() {
        // Seed with the known optimum x = 1; it must survive to the front.
        // Survival is not guaranteed for arbitrary streams: on the Schaffer
        // problem every x ∈ [0, 2] is non-dominated, so crowding-distance
        // truncation may drop interior points. The seed pins a stream where
        // elitism keeps the optimum.
        let cfg = Nsga2Config::new(20, 5).with_seed(3);
        let res = Nsga2::new(Schaffer, Gaussian, cfg)
            .with_seeds(vec![1.0])
            .run();
        let best_sum: f64 = res
            .front()
            .iter()
            .map(|i| i.objectives.iter().sum::<f64>())
            .fold(f64::MAX, f64::min);
        // x = 1 gives 1 + 1 = 2, the minimal achievable sum.
        assert!(best_sum <= 2.0 + 1e-9);
    }

    #[test]
    fn seeding_improves_early_convergence() {
        // With only 3 generations, seeded search must not be worse than
        // unseeded in best achieved makespan-style scalarization.
        let cfg = Nsga2Config::new(16, 3).with_seed(5);
        let unseeded = Nsga2::new(Schaffer, Gaussian, cfg.clone()).run();
        let seeded = Nsga2::new(Schaffer, Gaussian, cfg)
            .with_seeds(vec![0.0, 1.0, 2.0])
            .run();
        let best = |r: &OptimizationResult<f64>| {
            r.front()
                .iter()
                .map(|i| i.objectives.iter().sum::<f64>())
                .fold(f64::MAX, f64::min)
        };
        assert!(best(&seeded) <= best(&unseeded) + 1e-9);
    }

    #[test]
    fn population_size_constant() {
        let cfg = Nsga2Config::new(30, 5).with_seed(1);
        let res = Nsga2::new(Schaffer, Gaussian, cfg).run();
        assert_eq!(res.population().len(), 30);
        assert_eq!(res.generations_run, 5);
        // evaluations = pop + gens·pop.
        assert_eq!(res.evaluations, 30 + 5 * 30);
    }

    #[test]
    fn stepwise_equals_run() {
        let cfg = Nsga2Config::new(24, 8).with_seed(11);
        let opt = Nsga2::new(Schaffer, Gaussian, cfg);
        let direct = opt.run();
        let mut state = opt.init_state();
        let mut steps = 0;
        while opt.step(&mut state) {
            steps += 1;
        }
        let stepped = opt.finalize(state);
        assert_eq!(steps, 8);
        assert_eq!(direct.population(), stepped.population());
        assert_eq!(direct.evaluations, stepped.evaluations);
        assert_eq!(direct.front_objectives(), stepped.front_objectives());
    }

    #[test]
    fn resume_from_snapshot_reproduces_run() {
        // Interrupt at every possible generation boundary k; resuming a
        // cloned snapshot must reach the uninterrupted run's exact result.
        let cfg = Nsga2Config::new(16, 6).with_seed(13);
        let opt = Nsga2::new(Schaffer, Gaussian, cfg);
        let direct = opt.run();
        for k in 0..=6 {
            let mut state = opt.init_state();
            for _ in 0..k {
                opt.step(&mut state);
            }
            // A checkpoint is a value copy of the state; drop the
            // original to model the interrupted process dying.
            let snapshot = state.clone();
            drop(state);
            let resumed = opt.run_from(snapshot);
            assert_eq!(direct.population(), resumed.population(), "k={k}");
            assert_eq!(direct.evaluations, resumed.evaluations, "k={k}");
        }
    }

    #[test]
    fn step_past_end_is_noop() {
        let cfg = Nsga2Config::new(8, 2).with_seed(1);
        let opt = Nsga2::new(Schaffer, Gaussian, cfg);
        let mut state = opt.init_state();
        while opt.step(&mut state) {}
        let frozen = state.clone();
        assert!(!opt.step(&mut state));
        assert_eq!(state, frozen);
    }

    #[test]
    fn parallel_run_matches_serial_bitwise() {
        use clre_exec::ExecPool;
        let cfg = Nsga2Config::new(24, 10).with_seed(17);
        let opt = Nsga2::new(Schaffer, Gaussian, cfg);
        let serial = opt.run();
        for workers in [1, 2, 8] {
            let exec = Executor::new(ExecPool::new(workers));
            let par = opt.run_with(&exec);
            assert_eq!(serial.population(), par.population(), "workers={workers}");
            assert_eq!(serial.evaluations, par.evaluations);
            let a = serial.front_objectives();
            let b = par.front_objectives();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().flatten().zip(b.iter().flatten()) {
                assert_eq!(x.to_bits(), y.to_bits(), "workers={workers}");
            }
        }
    }

    #[test]
    fn parallel_step_preserves_rng_stream() {
        use clre_exec::ExecPool;
        let cfg = Nsga2Config::new(16, 5).with_seed(23);
        let opt = Nsga2::new(Schaffer, Gaussian, cfg);
        let exec = Executor::new(ExecPool::new(4));
        let mut serial = opt.init_state();
        let mut par = opt.init_state_with(&exec);
        assert_eq!(serial, par, "init");
        loop {
            let more = opt.step(&mut serial);
            let more_p = opt.step_with(&mut par, &exec);
            assert_eq!(more, more_p);
            assert_eq!(serial.rng_state, par.rng_state, "gen {}", serial.generation);
            assert_eq!(serial, par, "gen {}", serial.generation);
            if !more {
                break;
            }
        }
    }

    #[test]
    fn executor_telemetry_counts_every_evaluation() {
        use clre_exec::{ExecPool, RunTelemetry};
        let sink = RunTelemetry::sink();
        let exec = Executor::new(ExecPool::new(2))
            .with_label("nsga2-test")
            .with_telemetry(sink.clone());
        let cfg = Nsga2Config::new(12, 4).with_seed(1);
        let res = Nsga2::new(Schaffer, Gaussian, cfg).run_with(&exec);
        let t = sink.lock().unwrap();
        // init batch + one batch per generation.
        assert_eq!(t.records().len(), 5);
        assert_eq!(t.total_evaluations(), res.evaluations);
        assert_eq!(t.records()[0].step, 0);
        assert_eq!(t.records()[4].step, 4);
    }

    #[test]
    fn into_front_returns_owned_front() {
        let cfg = Nsga2Config::new(20, 10).with_seed(2);
        let res = Nsga2::new(Schaffer, Gaussian, cfg).run();
        let n = res.front().len();
        let owned = res.into_front();
        assert_eq!(owned.len(), n);
    }

    #[test]
    fn excess_seeds_truncated() {
        let cfg = Nsga2Config::new(4, 2).with_seed(2);
        let res = Nsga2::new(Schaffer, Gaussian, cfg)
            .with_seeds(vec![0.0, 0.5, 1.0, 1.5, 2.0, 2.5])
            .run();
        assert_eq!(res.population().len(), 4);
    }

    #[test]
    #[should_panic(expected = "population must hold")]
    fn tiny_population_rejected() {
        Nsga2Config::new(1, 10);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn bad_probability_rejected() {
        let _ = Nsga2Config::new(10, 10).with_crossover_prob(1.5);
    }
}

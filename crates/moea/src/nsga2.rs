use crate::pareto::{crowding_distance, fast_non_dominated_sort};
use crate::{Evaluation, Problem, Variation};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Configuration of one NSGA-II run.
///
/// Defaults follow the paper's experiment setup: crossover probability
/// 0.8, mutation probability 0.05, tournament of 5.
#[derive(Debug, Clone, PartialEq)]
pub struct Nsga2Config {
    /// Population size (kept constant across generations).
    pub population_size: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-pair crossover probability.
    pub crossover_prob: f64,
    /// Per-offspring mutation probability.
    pub mutation_prob: f64,
    /// Tournament size for parent selection.
    pub tournament_size: usize,
    /// RNG seed; equal seeds give identical runs.
    pub seed: u64,
}

impl Nsga2Config {
    /// Creates a configuration with the paper's operator probabilities.
    ///
    /// # Panics
    ///
    /// Panics if `population_size < 2` or `generations == 0`.
    pub fn new(population_size: usize, generations: usize) -> Self {
        assert!(population_size >= 2, "population must hold at least 2");
        assert!(generations > 0, "at least one generation is required");
        Nsga2Config {
            population_size,
            generations,
            crossover_prob: 0.8,
            mutation_prob: 0.05,
            tournament_size: 5,
            seed: 0,
        }
    }

    /// Sets the RNG seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the crossover probability (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    #[must_use]
    pub fn with_crossover_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.crossover_prob = p;
        self
    }

    /// Sets the mutation probability (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    #[must_use]
    pub fn with_mutation_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.mutation_prob = p;
        self
    }

    /// Sets the tournament size (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn with_tournament_size(mut self, k: usize) -> Self {
        assert!(k > 0, "tournament size must be positive");
        self.tournament_size = k;
        self
    }
}

/// One evaluated member of the population.
#[derive(Debug, Clone, PartialEq)]
pub struct Individual<G> {
    /// The genome.
    pub genome: G,
    /// Its minimization objective vector.
    pub objectives: Vec<f64>,
    /// Its constraint violation (0 = feasible).
    pub violation: f64,
}

/// The outcome of an NSGA-II run.
#[derive(Debug, Clone)]
pub struct OptimizationResult<G> {
    population: Vec<Individual<G>>,
    front_indices: Vec<usize>,
    /// Total number of fitness evaluations performed.
    pub evaluations: usize,
    /// Generations actually run.
    pub generations_run: usize,
}

impl<G> OptimizationResult<G> {
    /// The final population.
    pub fn population(&self) -> &[Individual<G>] {
        &self.population
    }

    /// The non-dominated individuals of the final population.
    pub fn front(&self) -> Vec<&Individual<G>> {
        self.front_indices
            .iter()
            .map(|&i| &self.population[i])
            .collect()
    }

    /// The objective vectors of the final front.
    pub fn front_objectives(&self) -> Vec<Vec<f64>> {
        self.front_indices
            .iter()
            .map(|&i| self.population[i].objectives.clone())
            .collect()
    }

    /// Consumes the result, returning the owned front individuals.
    pub fn into_front(mut self) -> Vec<Individual<G>> {
        let mut idx = std::mem::take(&mut self.front_indices);
        idx.sort_unstable();
        let mut out = Vec::with_capacity(idx.len());
        // Drain from the back so earlier indices stay valid.
        for &i in idx.iter().rev() {
            out.push(self.population.swap_remove(i));
        }
        out.reverse();
        out
    }
}

/// Resumable mid-run NSGA-II state: the evaluated population plus the
/// exact raw RNG state, captured between generations.
///
/// Produced by [`Nsga2::init_state`], advanced by [`Nsga2::step`] and
/// consumed by [`Nsga2::finalize`]. Because the state carries the
/// generator's raw words, `init_state` + `generations`×`step` +
/// `finalize` replays the *identical* random stream of [`Nsga2::run`] —
/// a run interrupted at any generation boundary and resumed from a
/// snapshot of this state reaches the same final front. The
/// checkpoint/resume machinery in `clre` persists exactly these fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Nsga2State<G> {
    /// The current evaluated population.
    pub population: Vec<Individual<G>>,
    /// Generations completed so far.
    pub generation: usize,
    /// Fitness evaluations spent so far.
    pub evaluations: usize,
    /// Raw xoshiro state words of the run's RNG, as of the last completed
    /// generation boundary.
    pub rng_state: [u64; 4],
}

/// The NSGA-II optimizer.
///
/// See the [crate-level example](crate) for a complete run. Use
/// [`Nsga2::with_seeds`] to inject known-good genomes into the initial
/// population — the mechanism behind the paper's `pfCLR → fcCLR` seeded
/// search.
#[derive(Debug)]
pub struct Nsga2<P: Problem, V> {
    problem: P,
    variation: V,
    config: Nsga2Config,
    seeds: Vec<P::Genome>,
}

impl<P, V> Nsga2<P, V>
where
    P: Problem,
    V: Variation<P::Genome>,
{
    /// Creates an optimizer.
    pub fn new(problem: P, variation: V, config: Nsga2Config) -> Self {
        Nsga2 {
            problem,
            variation,
            config,
            seeds: Vec::new(),
        }
    }

    /// Injects seed genomes into the initial population (builder style).
    /// At most `population_size` seeds are used; the remainder of the
    /// initial population is random.
    #[must_use]
    pub fn with_seeds(mut self, seeds: Vec<P::Genome>) -> Self {
        self.seeds = seeds;
        self
    }

    /// The wrapped problem.
    pub fn problem(&self) -> &P {
        &self.problem
    }

    /// Runs the optimization to completion.
    pub fn run(&self) -> OptimizationResult<P::Genome> {
        self.run_from(self.init_state())
    }

    /// Continues a (possibly restored) state to completion.
    ///
    /// `run_from(init_state())` is exactly [`Nsga2::run`]; `run_from` of a
    /// mid-run snapshot reproduces the uninterrupted run's tail.
    pub fn run_from(&self, mut state: Nsga2State<P::Genome>) -> OptimizationResult<P::Genome> {
        while self.step(&mut state) {}
        self.finalize(state)
    }

    /// Evaluates the initial population (seeds first, then random
    /// genomes) and captures the RNG at the first generation boundary.
    pub fn init_state(&self) -> Nsga2State<P::Genome> {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x005A_6A11);
        let pop_size = self.config.population_size;
        let mut evaluations = 0usize;

        let mut population: Vec<Individual<P::Genome>> = Vec::with_capacity(pop_size);
        for g in self.seeds.iter().take(pop_size).cloned() {
            population.push(self.evaluated(g, &mut evaluations));
        }
        while population.len() < pop_size {
            let g = self.problem.random_genome(&mut rng);
            population.push(self.evaluated(g, &mut evaluations));
        }

        Nsga2State {
            population,
            generation: 0,
            evaluations,
            rng_state: rng.state_words(),
        }
    }

    /// Advances the state by one generation: offspring via tournament
    /// selection + crossover + mutation, then elitist environmental
    /// selection over parents ∪ offspring. Returns `false` (leaving the
    /// state untouched) once the configured generation count is reached.
    ///
    /// Ranks and crowding distances are deterministic functions of the
    /// population, so they are recomputed here instead of being part of
    /// the (persistable) state.
    pub fn step(&self, state: &mut Nsga2State<P::Genome>) -> bool {
        if state.generation >= self.config.generations {
            return false;
        }
        let pop_size = self.config.population_size;
        let mut rng = StdRng::from_state_words(state.rng_state);
        let population = &mut state.population;
        let (ranks, crowding) = rank_and_crowd(population);

        let mut offspring: Vec<Individual<P::Genome>> = Vec::with_capacity(pop_size);
        while offspring.len() < pop_size {
            let a = self.tournament(population, &ranks, &crowding, &mut rng);
            let b = self.tournament(population, &ranks, &crowding, &mut rng);
            let (mut c1, mut c2) = if rng.gen_bool(self.config.crossover_prob) {
                self.variation
                    .crossover(&population[a].genome, &population[b].genome, &mut rng)
            } else {
                (population[a].genome.clone(), population[b].genome.clone())
            };
            if rng.gen_bool(self.config.mutation_prob) {
                self.variation.mutate(&mut c1, &mut rng);
            }
            if rng.gen_bool(self.config.mutation_prob) {
                self.variation.mutate(&mut c2, &mut rng);
            }
            offspring.push(self.evaluated(c1, &mut state.evaluations));
            if offspring.len() < pop_size {
                offspring.push(self.evaluated(c2, &mut state.evaluations));
            }
        }
        // Environmental selection over parents ∪ offspring.
        population.extend(offspring);
        let survivors = environmental_selection(std::mem::take(population), pop_size);
        *population = survivors;
        state.generation += 1;
        state.rng_state = rng.state_words();
        true
    }

    /// Turns a state into the run result (rank-0 front of the current
    /// population).
    pub fn finalize(&self, state: Nsga2State<P::Genome>) -> OptimizationResult<P::Genome> {
        let (ranks, _) = rank_and_crowd(&state.population);
        let front_indices: Vec<usize> = (0..state.population.len())
            .filter(|&i| ranks[i] == 0)
            .collect();
        OptimizationResult {
            population: state.population,
            front_indices,
            evaluations: state.evaluations,
            generations_run: state.generation,
        }
    }

    fn evaluated(&self, genome: P::Genome, evaluations: &mut usize) -> Individual<P::Genome> {
        let Evaluation {
            objectives,
            violation,
        } = self.problem.evaluate(&genome);
        debug_assert_eq!(objectives.len(), self.problem.objective_count());
        *evaluations += 1;
        Individual {
            genome,
            objectives,
            violation,
        }
    }

    /// Tournament of `k`: winner has the lowest (rank, −crowding).
    fn tournament(
        &self,
        pop: &[Individual<P::Genome>],
        ranks: &[usize],
        crowding: &[f64],
        rng: &mut dyn RngCore,
    ) -> usize {
        let mut best = rng.gen_range(0..pop.len());
        for _ in 1..self.config.tournament_size {
            let c = rng.gen_range(0..pop.len());
            let better =
                ranks[c] < ranks[best] || (ranks[c] == ranks[best] && crowding[c] > crowding[best]);
            if better {
                best = c;
            }
        }
        best
    }
}

/// Computes each individual's front rank and crowding distance.
fn rank_and_crowd<G>(pop: &[Individual<G>]) -> (Vec<usize>, Vec<f64>) {
    let points: Vec<Vec<f64>> = pop.iter().map(|i| i.objectives.clone()).collect();
    let violations: Vec<f64> = pop.iter().map(|i| i.violation).collect();
    let fronts = fast_non_dominated_sort(&points, &violations);
    let mut ranks = vec![0usize; pop.len()];
    let mut crowding = vec![0.0f64; pop.len()];
    for (r, front) in fronts.iter().enumerate() {
        let front_points: Vec<Vec<f64>> = front.iter().map(|&i| points[i].clone()).collect();
        let dist = crowding_distance(&front_points);
        for (&i, &d) in front.iter().zip(&dist) {
            ranks[i] = r;
            crowding[i] = d;
        }
    }
    (ranks, crowding)
}

/// NSGA-II elitist truncation: fill by fronts, split the last front by
/// descending crowding distance.
fn environmental_selection<G>(pop: Vec<Individual<G>>, target: usize) -> Vec<Individual<G>> {
    let points: Vec<Vec<f64>> = pop.iter().map(|i| i.objectives.clone()).collect();
    let violations: Vec<f64> = pop.iter().map(|i| i.violation).collect();
    let fronts = fast_non_dominated_sort(&points, &violations);
    let mut chosen: Vec<usize> = Vec::with_capacity(target);
    for front in fronts {
        if chosen.len() + front.len() <= target {
            chosen.extend(front);
            if chosen.len() == target {
                break;
            }
        } else {
            let front_points: Vec<Vec<f64>> = front.iter().map(|&i| points[i].clone()).collect();
            let dist = crowding_distance(&front_points);
            let mut order: Vec<usize> = (0..front.len()).collect();
            order.sort_by(|&a, &b| {
                dist[b]
                    .partial_cmp(&dist[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for &k in order.iter().take(target - chosen.len()) {
                chosen.push(front[k]);
            }
            break;
        }
    }
    // Extract in index order while preserving `chosen`'s selection.
    let mut keep = vec![false; pop.len()];
    for &i in &chosen {
        keep[i] = true;
    }
    pop.into_iter()
        .zip(keep)
        .filter_map(|(ind, k)| k.then_some(ind))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Bi-objective Schaffer problem; true Pareto set is x ∈ [0, 2].
    struct Schaffer;

    impl Problem for Schaffer {
        type Genome = f64;

        fn objective_count(&self) -> usize {
            2
        }

        fn random_genome(&self, rng: &mut dyn RngCore) -> f64 {
            rng.gen_range(-100.0f64..100.0)
        }

        fn evaluate(&self, x: &f64) -> Evaluation {
            Evaluation::feasible(vec![x * x, (x - 2.0) * (x - 2.0)])
        }
    }

    /// Constrained variant: x must be ≥ 1.
    struct ConstrainedSchaffer;

    impl Problem for ConstrainedSchaffer {
        type Genome = f64;

        fn objective_count(&self) -> usize {
            2
        }

        fn random_genome(&self, rng: &mut dyn RngCore) -> f64 {
            rng.gen_range(-100.0f64..100.0)
        }

        fn evaluate(&self, x: &f64) -> Evaluation {
            let v = if *x < 1.0 { 1.0 - *x } else { 0.0 };
            Evaluation::with_violation(vec![x * x, (x - 2.0) * (x - 2.0)], v)
        }
    }

    struct Gaussian;

    impl Variation<f64> for Gaussian {
        fn crossover(&self, a: &f64, b: &f64, rng: &mut dyn RngCore) -> (f64, f64) {
            let t: f64 = rng.gen_range(0.0..1.0);
            (t * a + (1.0 - t) * b, (1.0 - t) * a + t * b)
        }

        fn mutate(&self, x: &mut f64, rng: &mut dyn RngCore) {
            *x += rng.gen_range(-1.0f64..1.0);
        }
    }

    #[test]
    fn converges_to_schaffer_front() {
        let cfg = Nsga2Config::new(60, 80).with_seed(1);
        let res = Nsga2::new(Schaffer, Gaussian, cfg).run();
        let front = res.front();
        assert!(!front.is_empty());
        for ind in &front {
            assert!(
                ind.genome > -0.6 && ind.genome < 2.6,
                "genome {} off the Pareto set",
                ind.genome
            );
        }
        // Spread: both extremes approached.
        let min = front.iter().map(|i| i.genome).fold(f64::MAX, f64::min);
        let max = front.iter().map(|i| i.genome).fold(f64::MIN, f64::max);
        assert!(min < 0.7 && max > 1.3, "front collapsed: [{min}, {max}]");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = Nsga2Config::new(20, 10).with_seed(9);
        let a = Nsga2::new(Schaffer, Gaussian, cfg.clone()).run();
        let b = Nsga2::new(Schaffer, Gaussian, cfg).run();
        assert_eq!(a.front_objectives(), b.front_objectives());
        let c = Nsga2::new(Schaffer, Gaussian, Nsga2Config::new(20, 10).with_seed(10)).run();
        assert_ne!(a.front_objectives(), c.front_objectives());
    }

    #[test]
    fn respects_constraints() {
        let cfg = Nsga2Config::new(60, 80).with_seed(3);
        let res = Nsga2::new(ConstrainedSchaffer, Gaussian, cfg).run();
        for ind in res.front() {
            assert_eq!(ind.violation, 0.0);
            assert!(ind.genome >= 0.99, "infeasible genome {}", ind.genome);
        }
    }

    #[test]
    fn seeding_preserves_good_genomes() {
        // Seed with the known optimum x = 1; it must survive to the front.
        // Survival is not guaranteed for arbitrary streams: on the Schaffer
        // problem every x ∈ [0, 2] is non-dominated, so crowding-distance
        // truncation may drop interior points. The seed pins a stream where
        // elitism keeps the optimum.
        let cfg = Nsga2Config::new(20, 5).with_seed(3);
        let res = Nsga2::new(Schaffer, Gaussian, cfg)
            .with_seeds(vec![1.0])
            .run();
        let best_sum: f64 = res
            .front()
            .iter()
            .map(|i| i.objectives.iter().sum::<f64>())
            .fold(f64::MAX, f64::min);
        // x = 1 gives 1 + 1 = 2, the minimal achievable sum.
        assert!(best_sum <= 2.0 + 1e-9);
    }

    #[test]
    fn seeding_improves_early_convergence() {
        // With only 3 generations, seeded search must not be worse than
        // unseeded in best achieved makespan-style scalarization.
        let cfg = Nsga2Config::new(16, 3).with_seed(5);
        let unseeded = Nsga2::new(Schaffer, Gaussian, cfg.clone()).run();
        let seeded = Nsga2::new(Schaffer, Gaussian, cfg)
            .with_seeds(vec![0.0, 1.0, 2.0])
            .run();
        let best = |r: &OptimizationResult<f64>| {
            r.front()
                .iter()
                .map(|i| i.objectives.iter().sum::<f64>())
                .fold(f64::MAX, f64::min)
        };
        assert!(best(&seeded) <= best(&unseeded) + 1e-9);
    }

    #[test]
    fn population_size_constant() {
        let cfg = Nsga2Config::new(30, 5).with_seed(1);
        let res = Nsga2::new(Schaffer, Gaussian, cfg).run();
        assert_eq!(res.population().len(), 30);
        assert_eq!(res.generations_run, 5);
        // evaluations = pop + gens·pop.
        assert_eq!(res.evaluations, 30 + 5 * 30);
    }

    #[test]
    fn stepwise_equals_run() {
        let cfg = Nsga2Config::new(24, 8).with_seed(11);
        let opt = Nsga2::new(Schaffer, Gaussian, cfg);
        let direct = opt.run();
        let mut state = opt.init_state();
        let mut steps = 0;
        while opt.step(&mut state) {
            steps += 1;
        }
        let stepped = opt.finalize(state);
        assert_eq!(steps, 8);
        assert_eq!(direct.population(), stepped.population());
        assert_eq!(direct.evaluations, stepped.evaluations);
        assert_eq!(direct.front_objectives(), stepped.front_objectives());
    }

    #[test]
    fn resume_from_snapshot_reproduces_run() {
        // Interrupt at every possible generation boundary k; resuming a
        // cloned snapshot must reach the uninterrupted run's exact result.
        let cfg = Nsga2Config::new(16, 6).with_seed(13);
        let opt = Nsga2::new(Schaffer, Gaussian, cfg);
        let direct = opt.run();
        for k in 0..=6 {
            let mut state = opt.init_state();
            for _ in 0..k {
                opt.step(&mut state);
            }
            // A checkpoint is a value copy of the state; drop the
            // original to model the interrupted process dying.
            let snapshot = state.clone();
            drop(state);
            let resumed = opt.run_from(snapshot);
            assert_eq!(direct.population(), resumed.population(), "k={k}");
            assert_eq!(direct.evaluations, resumed.evaluations, "k={k}");
        }
    }

    #[test]
    fn step_past_end_is_noop() {
        let cfg = Nsga2Config::new(8, 2).with_seed(1);
        let opt = Nsga2::new(Schaffer, Gaussian, cfg);
        let mut state = opt.init_state();
        while opt.step(&mut state) {}
        let frozen = state.clone();
        assert!(!opt.step(&mut state));
        assert_eq!(state, frozen);
    }

    #[test]
    fn into_front_returns_owned_front() {
        let cfg = Nsga2Config::new(20, 10).with_seed(2);
        let res = Nsga2::new(Schaffer, Gaussian, cfg).run();
        let n = res.front().len();
        let owned = res.into_front();
        assert_eq!(owned.len(), n);
    }

    #[test]
    fn excess_seeds_truncated() {
        let cfg = Nsga2Config::new(4, 2).with_seed(2);
        let res = Nsga2::new(Schaffer, Gaussian, cfg)
            .with_seeds(vec![0.0, 0.5, 1.0, 1.5, 2.0, 2.5])
            .run();
        assert_eq!(res.population().len(), 4);
    }

    #[test]
    #[should_panic(expected = "population must hold")]
    fn tiny_population_rejected() {
        Nsga2Config::new(1, 10);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn bad_probability_rejected() {
        let _ = Nsga2Config::new(10, 10).with_crossover_prob(1.5);
    }
}

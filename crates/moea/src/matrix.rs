//! Flat contiguous storage for objective vectors and pairwise distances.
//!
//! The selection kernels ([`crate::kernels`]) operate on an
//! [`ObjectiveMatrix`] — one `Vec<f64>` plus a stride — instead of a
//! `Vec<Vec<f64>>`. One allocation per generation (reused across
//! generations through the kernel scratch, see
//! [`crate::kernels::with_scratch`]) replaces N row allocations, rows sit
//! contiguously for cache-friendly dominance scans, and a row view is a
//! plain `&[f64]` so all the existing slice-based comparisons keep their
//! exact semantics.

/// A dense row-major matrix of objective vectors: `rows × cols` values in
/// one flat buffer.
///
/// `cols` is fixed at construction (the objective count); rows are pushed
/// one vector at a time. [`ObjectiveMatrix::clear`] keeps the allocation,
/// which is what makes per-generation reuse free.
///
/// # Examples
///
/// ```
/// use clre_moea::matrix::ObjectiveMatrix;
///
/// let mut m = ObjectiveMatrix::new(2);
/// m.push_row(&[1.0, 4.0]);
/// m.push_row(&[2.0, 3.0]);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.row(1), &[2.0, 3.0]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObjectiveMatrix {
    data: Vec<f64>,
    cols: usize,
    rows: usize,
}

impl ObjectiveMatrix {
    /// An empty matrix with `cols` objectives per row.
    pub fn new(cols: usize) -> Self {
        ObjectiveMatrix {
            data: Vec::new(),
            cols,
            rows: 0,
        }
    }

    /// An empty matrix with capacity preallocated for `rows` rows.
    pub fn with_capacity(cols: usize, rows: usize) -> Self {
        ObjectiveMatrix {
            data: Vec::with_capacity(cols * rows),
            cols,
            rows: 0,
        }
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let cols = rows.first().map_or(0, Vec::len);
        let mut m = ObjectiveMatrix::with_capacity(cols, rows.len());
        for r in rows {
            m.push_row(r);
        }
        m
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != cols`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "row length must equal cols");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Empties the matrix, optionally re-striding it, keeping the
    /// allocation for reuse.
    pub fn reset(&mut self, cols: usize) {
        self.data.clear();
        self.cols = cols;
        self.rows = 0;
    }

    /// Empties the matrix keeping stride and allocation.
    pub fn clear(&mut self) {
        self.data.clear();
        self.rows = 0;
    }

    /// Clears the matrix and refills it from borrowed rows — the
    /// per-generation reuse entry point.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn refill<'a, I>(&mut self, cols: usize, rows: I)
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        self.reset(cols);
        for r in rows {
            self.push_row(r);
        }
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows, "row index out of range");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (objectives per row).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Iterates over the rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> + '_ {
        (0..self.rows).map(move |i| self.row(i))
    }

    /// Copies the matrix back out into row vectors (the legacy shape —
    /// used only at API boundaries that still speak `Vec<Vec<f64>>`).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.iter_rows().map(<[f64]>::to_vec).collect()
    }

    /// `true` if any stored value is NaN (the kernels' degraded-input
    /// detector — see [`crate::kernels::ens_non_dominated_sort`]).
    pub fn any_nan(&self) -> bool {
        self.data.iter().any(|x| x.is_nan())
    }
}

/// A symmetric matrix of pairwise squared Euclidean distances over `n`
/// points, stored flat (`n × n`, the diagonal is zero).
///
/// Computed once per selection from an [`ObjectiveMatrix`] and then
/// indexed by the SPEA2 density estimate and the archive truncation — the
/// cached replacement for recomputing `sq_dist` per pair per truncation
/// round.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DistanceMatrix {
    data: Vec<f64>,
    n: usize,
}

impl DistanceMatrix {
    /// Builds the full pairwise squared-distance matrix of `points`.
    ///
    /// `d(i, j)` is evaluated once (for `i < j`) and mirrored:
    /// `(x−y)²` sums are bitwise symmetric, so the mirror is exact.
    pub fn from_points(points: &ObjectiveMatrix) -> Self {
        let n = points.rows();
        let mut m = DistanceMatrix {
            data: vec![0.0; n * n],
            n,
        };
        for i in 0..n {
            for j in (i + 1)..n {
                let d = sq_dist(points.row(i), points.row(j));
                m.data[i * n + j] = d;
                m.data[j * n + i] = d;
            }
        }
        m
    }

    /// Rebuilds the matrix in place from `points`, reusing the buffer.
    pub fn refill(&mut self, points: &ObjectiveMatrix) {
        let n = points.rows();
        self.n = n;
        self.data.clear();
        self.data.resize(n * n, 0.0);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = sq_dist(points.row(i), points.row(j));
                self.data[i * n + j] = d;
                self.data[j * n + i] = d;
            }
        }
    }

    /// The squared distance between points `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.n && j < self.n, "index out of range");
        self.data[i * self.n + j]
    }

    /// Row `i`: squared distances from point `i` to every point
    /// (including itself at position `i`).
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the matrix covers no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// Squared Euclidean distance between two objective vectors.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_view_rows() {
        let mut m = ObjectiveMatrix::new(3);
        assert!(m.is_empty());
        m.push_row(&[1.0, 2.0, 3.0]);
        m.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.iter_rows().count(), 2);
    }

    #[test]
    fn from_rows_roundtrips() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let m = ObjectiveMatrix::from_rows(&rows);
        assert_eq!(m.to_rows(), rows);
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn inconsistent_row_rejected() {
        let mut m = ObjectiveMatrix::new(2);
        m.push_row(&[1.0]);
    }

    #[test]
    fn refill_reuses_and_restrides() {
        let mut m = ObjectiveMatrix::from_rows(&[vec![1.0, 2.0]]);
        let rows = [vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        m.refill(3, rows.iter().map(Vec::as_slice));
        assert_eq!((m.rows(), m.cols()), (2, 3));
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn nan_detector() {
        let mut m = ObjectiveMatrix::new(2);
        m.push_row(&[1.0, 2.0]);
        assert!(!m.any_nan());
        m.push_row(&[f64::NAN, 0.0]);
        assert!(m.any_nan());
    }

    #[test]
    fn distance_matrix_is_symmetric_with_zero_diagonal() {
        let points = ObjectiveMatrix::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0], vec![1.0, 1.0]]);
        let d = DistanceMatrix::from_points(&points);
        assert_eq!(d.len(), 3);
        assert_eq!(d.get(0, 1), 25.0);
        for i in 0..3 {
            assert_eq!(d.get(i, i), 0.0);
            for j in 0..3 {
                assert_eq!(d.get(i, j).to_bits(), d.get(j, i).to_bits());
            }
        }
        assert_eq!(d.row(0), &[0.0, 25.0, 2.0]);
    }

    #[test]
    fn distance_matrix_refill_matches_fresh() {
        let a = ObjectiveMatrix::from_rows(&[vec![1.0], vec![4.0]]);
        let b = ObjectiveMatrix::from_rows(&[vec![0.0], vec![2.0], vec![5.0]]);
        let mut d = DistanceMatrix::from_points(&a);
        d.refill(&b);
        assert_eq!(d, DistanceMatrix::from_points(&b));
    }
}

//! Flat contiguous storage for objective vectors and pairwise distances.
//!
//! The selection kernels ([`crate::kernels`]) operate on an
//! [`ObjectiveMatrix`] — one `Vec<f64>` plus a stride — instead of a
//! `Vec<Vec<f64>>`. One allocation per generation (reused across
//! generations through the kernel scratch, see
//! [`crate::kernels::with_scratch`]) replaces N row allocations, rows sit
//! contiguously for cache-friendly dominance scans, and a row view is a
//! plain `&[f64]` so all the existing slice-based comparisons keep their
//! exact semantics.

/// A dense row-major matrix of objective vectors: `rows × cols` values in
/// one flat buffer.
///
/// `cols` is fixed at construction (the objective count); rows are pushed
/// one vector at a time. [`ObjectiveMatrix::clear`] keeps the allocation,
/// which is what makes per-generation reuse free.
///
/// # Examples
///
/// ```
/// use clre_moea::matrix::ObjectiveMatrix;
///
/// let mut m = ObjectiveMatrix::new(2);
/// m.push_row(&[1.0, 4.0]);
/// m.push_row(&[2.0, 3.0]);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.row(1), &[2.0, 3.0]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObjectiveMatrix {
    data: Vec<f64>,
    cols: usize,
    rows: usize,
}

impl ObjectiveMatrix {
    /// An empty matrix with `cols` objectives per row.
    pub fn new(cols: usize) -> Self {
        ObjectiveMatrix {
            data: Vec::new(),
            cols,
            rows: 0,
        }
    }

    /// An empty matrix with capacity preallocated for `rows` rows.
    pub fn with_capacity(cols: usize, rows: usize) -> Self {
        ObjectiveMatrix {
            data: Vec::with_capacity(cols * rows),
            cols,
            rows: 0,
        }
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let cols = rows.first().map_or(0, Vec::len);
        let mut m = ObjectiveMatrix::with_capacity(cols, rows.len());
        for r in rows {
            m.push_row(r);
        }
        m
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != cols`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "row length must equal cols");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Empties the matrix, optionally re-striding it, keeping the
    /// allocation for reuse.
    pub fn reset(&mut self, cols: usize) {
        self.data.clear();
        self.cols = cols;
        self.rows = 0;
    }

    /// Empties the matrix keeping stride and allocation.
    pub fn clear(&mut self) {
        self.data.clear();
        self.rows = 0;
    }

    /// Clears the matrix and refills it from borrowed rows — the
    /// per-generation reuse entry point.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn refill<'a, I>(&mut self, cols: usize, rows: I)
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        self.reset(cols);
        for r in rows {
            self.push_row(r);
        }
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows, "row index out of range");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (objectives per row).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Iterates over the rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> + '_ {
        (0..self.rows).map(move |i| self.row(i))
    }

    /// Copies the matrix back out into row vectors (the legacy shape —
    /// used only at API boundaries that still speak `Vec<Vec<f64>>`).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.iter_rows().map(<[f64]>::to_vec).collect()
    }

    /// `true` if any stored value is NaN (the kernels' degraded-input
    /// detector — see [`crate::kernels::ens_non_dominated_sort`]).
    pub fn any_nan(&self) -> bool {
        self.data.iter().any(|x| x.is_nan())
    }
}

/// A symmetric matrix of pairwise squared Euclidean distances over `n`
/// points, stored flat (`n × n`, the diagonal is zero).
///
/// Computed once per selection from an [`ObjectiveMatrix`] and then
/// indexed by the SPEA2 density estimate and the archive truncation — the
/// cached replacement for recomputing `sq_dist` per pair per truncation
/// round.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DistanceMatrix {
    data: Vec<f64>,
    n: usize,
}

impl DistanceMatrix {
    /// Builds the full pairwise squared-distance matrix of `points`.
    ///
    /// `d(i, j)` is evaluated once (for `i < j`) and mirrored:
    /// `(x−y)²` sums are bitwise symmetric, so the mirror is exact.
    pub fn from_points(points: &ObjectiveMatrix) -> Self {
        let n = points.rows();
        let mut m = DistanceMatrix {
            data: vec![0.0; n * n],
            n,
        };
        for i in 0..n {
            for j in (i + 1)..n {
                let d = sq_dist(points.row(i), points.row(j));
                m.data[i * n + j] = d;
                m.data[j * n + i] = d;
            }
        }
        m
    }

    /// Rebuilds the matrix in place from `points`, reusing the buffer.
    pub fn refill(&mut self, points: &ObjectiveMatrix) {
        let n = points.rows();
        self.n = n;
        self.data.clear();
        self.data.resize(n * n, 0.0);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = sq_dist(points.row(i), points.row(j));
                self.data[i * n + j] = d;
                self.data[j * n + i] = d;
            }
        }
    }

    /// Recomputes only the rows/columns named in `changed`, leaving every
    /// other pairwise distance untouched.
    ///
    /// The incremental generation-to-generation path: when only offspring
    /// rows differ from the cached matrix, refreshing their rows (and the
    /// mirrored columns) costs O(|changed|·N·M) instead of the full
    /// O(N²·M) rebuild. Pairs where *both* endpoints are unchanged keep
    /// their cached value; pairs with at least one changed endpoint are
    /// recomputed with the same [`sq_dist`] as [`DistanceMatrix::refill`],
    /// so the result is bit-identical to a full rebuild.
    ///
    /// # Panics
    ///
    /// Panics if `points` does not have exactly `len()` rows or if an
    /// index in `changed` is out of range.
    pub fn update_rows(&mut self, points: &ObjectiveMatrix, changed: &[usize]) {
        let n = self.n;
        assert_eq!(points.rows(), n, "point count must match the matrix");
        let mut is_changed = vec![false; n];
        for &i in changed {
            assert!(i < n, "changed index out of range");
            is_changed[i] = true;
        }
        for &i in changed {
            for (j, &j_changed) in is_changed.iter().enumerate() {
                // Skip the diagonal and pairs already refreshed by an
                // earlier changed row (j < i and j itself changed).
                if j == i || (j_changed && j < i) {
                    continue;
                }
                let d = sq_dist(points.row(i), points.row(j));
                self.data[i * n + j] = d;
                self.data[j * n + i] = d;
            }
        }
    }

    /// Shrinks the matrix to the survivor subset `keep`, moving cached
    /// rows instead of recomputing them.
    ///
    /// After compaction, `get(a, b)` equals the old
    /// `get(keep[a], keep[b])` bit-for-bit. Moving front-to-back is safe
    /// in place because `keep` ascending implies every source index
    /// `keep[a]·n + keep[b]` is ≥ its destination `a·k + b`, so no source
    /// cell is overwritten before it is read.
    ///
    /// # Panics
    ///
    /// Panics if `keep` is not strictly ascending or indexes out of range.
    pub fn compact(&mut self, keep: &[usize]) {
        let n = self.n;
        let k = keep.len();
        for w in keep.windows(2) {
            assert!(w[0] < w[1], "keep mask must be strictly ascending");
        }
        if let Some(&last) = keep.last() {
            assert!(last < n, "keep index out of range");
        }
        for a in 0..k {
            for b in 0..k {
                self.data[a * k + b] = self.data[keep[a] * n + keep[b]];
            }
        }
        self.data.truncate(k * k);
        self.n = k;
    }

    /// Rebuilds the matrix from `points`, reusing `tail` as the cached
    /// distance block for the trailing `tail.len()` points.
    ///
    /// `points` is laid out as `p` fresh head rows followed by
    /// `tail.len()` rows whose pairwise distances are already in `tail`
    /// (the compacted survivor matrix from the previous generation). Only
    /// head–head and head–tail pairs are recomputed; the tail–tail block
    /// is copied row-wise. Bit-identical to a full
    /// [`DistanceMatrix::refill`] because the cached block was produced by
    /// the same [`sq_dist`] over the same point bits.
    ///
    /// # Panics
    ///
    /// Panics if `tail.len() > points.rows()`.
    pub fn refill_with_tail(&mut self, points: &ObjectiveMatrix, tail: &DistanceMatrix) {
        let n = points.rows();
        let t = tail.len();
        assert!(t <= n, "cached tail larger than the point set");
        let p = n - t;
        self.n = n;
        self.data.clear();
        self.data.resize(n * n, 0.0);
        for a in 0..t {
            self.data[(p + a) * n + p..(p + a) * n + n].copy_from_slice(tail.row(a));
        }
        for i in 0..p {
            for j in (i + 1)..n {
                let d = sq_dist(points.row(i), points.row(j));
                self.data[i * n + j] = d;
                self.data[j * n + i] = d;
            }
        }
    }

    /// Bitwise equality: same size and every cell has identical bits
    /// (stricter than `==`, which would treat `-0.0 == 0.0`).
    pub fn bits_eq(&self, other: &DistanceMatrix) -> bool {
        self.n == other.n
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// The squared distance between points `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.n && j < self.n, "index out of range");
        self.data[i * self.n + j]
    }

    /// Row `i`: squared distances from point `i` to every point
    /// (including itself at position `i`).
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the matrix covers no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// Squared Euclidean distance between two objective vectors.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Generation-to-generation distance reuse for SPEA2 selection.
///
/// Holds the previous generation's archive objective rows and their
/// pairwise distance matrix. The next generation's selection union is
/// laid out as offspring (fresh head rows) followed by the archive
/// (unchanged tail rows), so when the union's trailing rows bitwise match
/// the cached rows ([`DistanceCache::matches_tail`]) the archive–archive
/// distance block can be reused via
/// [`DistanceMatrix::refill_with_tail`] instead of recomputed.
///
/// The cache is **self-validating**: reuse happens only after the bitwise
/// row comparison succeeds, so any external mutation of the archive
/// (island migration, snapshot restore, direct field writes) safely
/// degrades to a full rebuild rather than producing stale distances. It
/// is deliberately excluded from state equality (`PartialEq` is always
/// `true`): a cold cache and a warm cache produce bit-identical
/// selections, so the cache is an amortization detail, not state.
#[derive(Clone, Default)]
pub struct DistanceCache {
    /// The archive objective rows the cached matrix was computed from.
    pub points: ObjectiveMatrix,
    /// Pairwise squared distances over `points`.
    pub matrix: DistanceMatrix,
}

impl DistanceCache {
    /// `true` when the trailing `self.points.rows()` rows of `points`
    /// bitwise match the cached rows, i.e. the cached matrix is a valid
    /// tail block for [`DistanceMatrix::refill_with_tail`].
    pub fn matches_tail(&self, points: &ObjectiveMatrix) -> bool {
        let t = self.points.rows();
        if t == 0
            || t != self.matrix.len()
            || t > points.rows()
            || points.cols() != self.points.cols()
        {
            return false;
        }
        let p = points.rows() - t;
        (0..t).all(|a| {
            points
                .row(p + a)
                .iter()
                .zip(self.points.row(a))
                .all(|(x, y)| x.to_bits() == y.to_bits())
        })
    }

    /// Replaces the cache with `points` and `matrix` (the new archive and
    /// its distance matrix), swapping the matrix buffer in to avoid a
    /// copy. `matrix` is left holding the old cached buffer.
    pub fn store(&mut self, points: &ObjectiveMatrix, matrix: &mut DistanceMatrix) {
        self.points.refill(points.cols(), points.iter_rows());
        std::mem::swap(&mut self.matrix, matrix);
    }

    /// Drops the cached state, forcing the next selection to rebuild.
    pub fn clear(&mut self) {
        self.points.clear();
        self.matrix = DistanceMatrix::default();
    }
}

impl std::fmt::Debug for DistanceCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistanceCache")
            .field("points", &self.points.rows())
            .field("matrix", &self.matrix.len())
            .finish()
    }
}

/// A warm cache and a cold cache select identically (reuse is
/// bit-identical to a rebuild), so caches never distinguish states.
impl PartialEq for DistanceCache {
    fn eq(&self, _other: &DistanceCache) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_view_rows() {
        let mut m = ObjectiveMatrix::new(3);
        assert!(m.is_empty());
        m.push_row(&[1.0, 2.0, 3.0]);
        m.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.iter_rows().count(), 2);
    }

    #[test]
    fn from_rows_roundtrips() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let m = ObjectiveMatrix::from_rows(&rows);
        assert_eq!(m.to_rows(), rows);
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn inconsistent_row_rejected() {
        let mut m = ObjectiveMatrix::new(2);
        m.push_row(&[1.0]);
    }

    #[test]
    fn refill_reuses_and_restrides() {
        let mut m = ObjectiveMatrix::from_rows(&[vec![1.0, 2.0]]);
        let rows = [vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        m.refill(3, rows.iter().map(Vec::as_slice));
        assert_eq!((m.rows(), m.cols()), (2, 3));
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn nan_detector() {
        let mut m = ObjectiveMatrix::new(2);
        m.push_row(&[1.0, 2.0]);
        assert!(!m.any_nan());
        m.push_row(&[f64::NAN, 0.0]);
        assert!(m.any_nan());
    }

    #[test]
    fn distance_matrix_is_symmetric_with_zero_diagonal() {
        let points = ObjectiveMatrix::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0], vec![1.0, 1.0]]);
        let d = DistanceMatrix::from_points(&points);
        assert_eq!(d.len(), 3);
        assert_eq!(d.get(0, 1), 25.0);
        for i in 0..3 {
            assert_eq!(d.get(i, i), 0.0);
            for j in 0..3 {
                assert_eq!(d.get(i, j).to_bits(), d.get(j, i).to_bits());
            }
        }
        assert_eq!(d.row(0), &[0.0, 25.0, 2.0]);
    }

    #[test]
    fn distance_matrix_refill_matches_fresh() {
        let a = ObjectiveMatrix::from_rows(&[vec![1.0], vec![4.0]]);
        let b = ObjectiveMatrix::from_rows(&[vec![0.0], vec![2.0], vec![5.0]]);
        let mut d = DistanceMatrix::from_points(&a);
        d.refill(&b);
        assert_eq!(d, DistanceMatrix::from_points(&b));
    }

    fn cloud(n: usize, m: usize, mut seed: u64) -> ObjectiveMatrix {
        let mut pts = ObjectiveMatrix::with_capacity(m, n);
        let mut row = vec![0.0; m];
        for _ in 0..n {
            for x in row.iter_mut() {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                *x = (seed >> 11) as f64 / (1u64 << 53) as f64;
            }
            pts.push_row(&row);
        }
        pts
    }

    #[test]
    fn update_rows_matches_full_refill() {
        let before = cloud(9, 3, 1);
        let mut after = before.clone();
        // Replace rows 0, 3 and 7 with fresh values.
        let fresh = cloud(3, 3, 99);
        let changed = [0usize, 3, 7];
        let mut rows = after.to_rows();
        for (k, &i) in changed.iter().enumerate() {
            rows[i] = fresh.row(k).to_vec();
        }
        after.refill(3, rows.iter().map(Vec::as_slice));

        let mut d = DistanceMatrix::from_points(&before);
        d.update_rows(&after, &changed);
        assert!(d.bits_eq(&DistanceMatrix::from_points(&after)));
    }

    #[test]
    fn update_rows_with_no_changes_is_identity() {
        let pts = cloud(5, 2, 7);
        let full = DistanceMatrix::from_points(&pts);
        let mut d = full.clone();
        d.update_rows(&pts, &[]);
        assert!(d.bits_eq(&full));
    }

    #[test]
    fn compact_moves_cached_cells() {
        let pts = cloud(8, 2, 5);
        let mut d = DistanceMatrix::from_points(&pts);
        let keep = [1usize, 2, 5, 7];
        d.compact(&keep);
        let kept_rows: Vec<Vec<f64>> = keep.iter().map(|&i| pts.row(i).to_vec()).collect();
        let expect = DistanceMatrix::from_points(&ObjectiveMatrix::from_rows(&kept_rows));
        assert!(d.bits_eq(&expect));
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn compact_rejects_unsorted_mask() {
        let pts = cloud(4, 2, 3);
        let mut d = DistanceMatrix::from_points(&pts);
        d.compact(&[2, 1]);
    }

    #[test]
    fn refill_with_tail_matches_full_refill() {
        let old = cloud(10, 3, 11);
        let mut tail = DistanceMatrix::from_points(&old);
        let keep = [0usize, 2, 3, 6, 9];
        tail.compact(&keep);

        // Next union: 4 fresh head rows followed by the 5 survivors.
        let head = cloud(4, 3, 77);
        let mut next = ObjectiveMatrix::with_capacity(3, 9);
        for r in head.iter_rows() {
            next.push_row(r);
        }
        for &i in &keep {
            next.push_row(old.row(i));
        }

        let mut inc = DistanceMatrix::default();
        inc.refill_with_tail(&next, &tail);
        assert!(inc.bits_eq(&DistanceMatrix::from_points(&next)));
    }

    #[test]
    fn refill_with_empty_tail_matches_refill() {
        let pts = cloud(6, 2, 13);
        let mut inc = DistanceMatrix::default();
        inc.refill_with_tail(&pts, &DistanceMatrix::default());
        assert!(inc.bits_eq(&DistanceMatrix::from_points(&pts)));
    }

    #[test]
    fn cache_tail_matching_is_bitwise() {
        let archive = cloud(4, 2, 21);
        let mut matrix = DistanceMatrix::from_points(&archive);
        let mut cache = DistanceCache::default();
        assert!(!cache.matches_tail(&archive), "empty cache never matches");
        cache.store(&archive, &mut matrix);

        // Union = 2 fresh rows ++ archive rows: tail matches.
        let mut union = cloud(2, 2, 55);
        for r in archive.iter_rows() {
            union.push_row(r);
        }
        assert!(cache.matches_tail(&union));
        assert!(cache.matches_tail(&archive), "exact match is a valid tail");

        // Perturb one trailing bit: reuse must be refused.
        let mut rows = union.to_rows();
        rows[5][1] = -rows[5][1];
        let perturbed = ObjectiveMatrix::from_rows(&rows);
        assert!(!cache.matches_tail(&perturbed));

        // Shorter union than the cached tail: refused.
        let short = cloud(2, 2, 5);
        assert!(!cache.matches_tail(&short));
        // Different stride: refused.
        assert!(!cache.matches_tail(&cloud(6, 3, 21)));

        cache.clear();
        assert!(!cache.matches_tail(&union));
    }

    #[test]
    fn cache_is_invisible_to_state_equality() {
        let pts = cloud(3, 2, 31);
        let mut warm = DistanceCache::default();
        warm.store(&pts, &mut DistanceMatrix::from_points(&pts));
        assert_eq!(warm, DistanceCache::default());
    }
}

//! An algorithm-agnostic view of a resumable evolutionary run.
//!
//! [`Nsga2`](crate::Nsga2) and [`Spea2`](crate::Spea2) expose the same
//! step-wise shape — `init_state` / `step` / `finalize` plus the `_with`
//! parallel variants — but as unrelated inherent methods, which forced
//! every supervisor (checkpointing, telemetry, stage graphs) to be
//! written twice. [`EvolutionState`] abstracts that shape: a driver
//! written against the trait runs either backend, and both serialize
//! through the same [`EvoSnapshot`] so checkpoint/resume works for SPEA2
//! exactly as it does for NSGA-II.
//!
//! The trait is generic over the *algorithm* type `A` (not the genome):
//! `Nsga2State<G>` implements `EvolutionState<Nsga2<P, V>>` and
//! `Spea2State<G>` implements `EvolutionState<Spea2<P, V>>`, which keeps
//! every type parameter constrained and lets one state type drive
//! different problem wrappings.

use crate::{Individual, Nsga2, Nsga2State, Problem, Spea2, Spea2State, Variation};
use clre_exec::Executor;

/// An algorithm-neutral serializable snapshot of a mid-run state.
///
/// NSGA-II has no external archive, so its snapshots carry an empty
/// `archive`; SPEA2 uses both vectors. The RNG words, generation and
/// evaluation counters round-trip exactly, so
/// `S::restore(state.snapshot())` resumes bit-identically for either
/// backend.
#[derive(Debug, Clone, PartialEq)]
pub struct EvoSnapshot<G> {
    /// The current evaluated working population.
    pub population: Vec<Individual<G>>,
    /// The external archive (always empty for NSGA-II).
    pub archive: Vec<Individual<G>>,
    /// Generations completed so far.
    pub generation: usize,
    /// Fitness evaluations spent so far.
    pub evaluations: usize,
    /// Raw xoshiro state words at the last generation boundary.
    pub rng_state: [u64; 4],
}

/// The algorithm-neutral outcome of a finished run: the approximation
/// set (NSGA-II's rank-0 front in population order, SPEA2's final
/// archive) and the total evaluation count.
#[derive(Debug, Clone)]
pub struct EvoOutcome<G> {
    /// The members of the approximation set.
    pub members: Vec<Individual<G>>,
    /// Total fitness evaluations performed.
    pub evaluations: usize,
}

/// A resumable evolutionary state driven by algorithm `A`.
///
/// Laws shared with the inherent APIs (and tested below): `init` +
/// repeated `step` until it returns `false` + `finalize` equals the
/// algorithm's one-shot `run`; `step` and `step_with` advance the state
/// identically for any worker count; `restore(snapshot())` is the
/// identity.
pub trait EvolutionState<A>: Clone + Sized {
    /// The genome type evolved by `A`.
    type Genome: Clone;

    /// Evaluates the initial population serially.
    fn init(alg: &A) -> Self;

    /// Evaluates the initial population through `exec` (trace step 0).
    fn init_with(alg: &A, exec: &Executor) -> Self;

    /// Advances one generation serially. Returns `false` (leaving the
    /// state untouched) once the configured generation count is reached.
    fn step(&mut self, alg: &A) -> bool;

    /// [`EvolutionState::step`] with offspring evaluation fanned out
    /// through `exec`; breeding stays on the calling thread so the RNG
    /// stream is worker-count-invariant.
    fn step_with(&mut self, alg: &A, exec: &Executor) -> bool;

    /// Turns the state into the run outcome.
    fn finalize(self, alg: &A) -> EvoOutcome<Self::Genome>;

    /// Captures the state as an algorithm-neutral snapshot.
    fn snapshot(&self) -> EvoSnapshot<Self::Genome>;

    /// Rebuilds the state from a snapshot produced by
    /// [`EvolutionState::snapshot`].
    fn restore(snapshot: EvoSnapshot<Self::Genome>) -> Self;

    /// Generations completed so far.
    fn generation(&self) -> usize;

    /// Fitness evaluations spent so far.
    fn evaluations(&self) -> usize;
}

impl<P, V> EvolutionState<Nsga2<P, V>> for Nsga2State<P::Genome>
where
    P: Problem + Sync,
    P::Genome: Clone + Send + Sync,
    V: Variation<P::Genome> + Sync,
{
    type Genome = P::Genome;

    fn init(alg: &Nsga2<P, V>) -> Self {
        alg.init_state()
    }

    fn init_with(alg: &Nsga2<P, V>, exec: &Executor) -> Self {
        alg.init_state_with(exec)
    }

    fn step(&mut self, alg: &Nsga2<P, V>) -> bool {
        alg.step(self)
    }

    fn step_with(&mut self, alg: &Nsga2<P, V>, exec: &Executor) -> bool {
        alg.step_with(self, exec)
    }

    fn finalize(self, alg: &Nsga2<P, V>) -> EvoOutcome<P::Genome> {
        let result = alg.finalize(self);
        let evaluations = result.evaluations;
        EvoOutcome {
            members: result.into_front(),
            evaluations,
        }
    }

    fn snapshot(&self) -> EvoSnapshot<P::Genome> {
        EvoSnapshot {
            population: self.population.clone(),
            archive: Vec::new(),
            generation: self.generation,
            evaluations: self.evaluations,
            rng_state: self.rng_state,
        }
    }

    fn restore(snapshot: EvoSnapshot<P::Genome>) -> Self {
        debug_assert!(
            snapshot.archive.is_empty(),
            "NSGA-II snapshots carry no archive"
        );
        Nsga2State {
            population: snapshot.population,
            generation: snapshot.generation,
            evaluations: snapshot.evaluations,
            rng_state: snapshot.rng_state,
        }
    }

    fn generation(&self) -> usize {
        self.generation
    }

    fn evaluations(&self) -> usize {
        self.evaluations
    }
}

impl<P, V> EvolutionState<Spea2<P, V>> for Spea2State<P::Genome>
where
    P: Problem + Sync,
    P::Genome: Clone + Send + Sync,
    V: Variation<P::Genome> + Sync,
{
    type Genome = P::Genome;

    fn init(alg: &Spea2<P, V>) -> Self {
        alg.init_state()
    }

    fn init_with(alg: &Spea2<P, V>, exec: &Executor) -> Self {
        alg.init_state_with(exec)
    }

    fn step(&mut self, alg: &Spea2<P, V>) -> bool {
        alg.step(self)
    }

    fn step_with(&mut self, alg: &Spea2<P, V>, exec: &Executor) -> bool {
        alg.step_with(self, exec)
    }

    fn finalize(self, alg: &Spea2<P, V>) -> EvoOutcome<P::Genome> {
        let result = alg.finalize(self);
        let evaluations = result.evaluations;
        EvoOutcome {
            members: result.into_archive(),
            evaluations,
        }
    }

    fn snapshot(&self) -> EvoSnapshot<P::Genome> {
        EvoSnapshot {
            population: self.population.clone(),
            archive: self.archive.clone(),
            generation: self.generation,
            evaluations: self.evaluations,
            rng_state: self.rng_state,
        }
    }

    fn restore(snapshot: EvoSnapshot<P::Genome>) -> Self {
        Spea2State {
            population: snapshot.population,
            archive: snapshot.archive,
            generation: snapshot.generation,
            evaluations: snapshot.evaluations,
            rng_state: snapshot.rng_state,
            // Snapshots never carry the distance cache: a cold cache
            // rebuilds once and is bit-identical thereafter.
            dist_cache: crate::matrix::DistanceCache::default(),
        }
    }

    fn generation(&self) -> usize {
        self.generation
    }

    fn evaluations(&self) -> usize {
        self.evaluations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Evaluation, Nsga2Config, Spea2Config};
    use rand::{Rng, RngCore};

    struct Schaffer;

    impl Problem for Schaffer {
        type Genome = f64;

        fn objective_count(&self) -> usize {
            2
        }

        fn random_genome(&self, rng: &mut dyn RngCore) -> f64 {
            rng.gen_range(-100.0f64..100.0)
        }

        fn evaluate(&self, x: &f64) -> Evaluation {
            Evaluation::feasible(vec![x * x, (x - 2.0) * (x - 2.0)])
        }
    }

    struct Gaussian;

    impl Variation<f64> for Gaussian {
        fn crossover(&self, a: &f64, b: &f64, rng: &mut dyn RngCore) -> (f64, f64) {
            let t: f64 = rng.gen_range(0.0..1.0);
            (t * a + (1.0 - t) * b, (1.0 - t) * a + t * b)
        }

        fn mutate(&self, x: &mut f64, rng: &mut dyn RngCore) {
            *x += rng.gen_range(-1.0f64..1.0);
        }
    }

    /// A driver written purely against the trait: init, interrupt after
    /// `k` steps via snapshot/restore, run to completion, finalize.
    fn drive<A, S: EvolutionState<A, Genome = f64>>(
        alg: &A,
        interrupt_at: usize,
    ) -> EvoOutcome<f64> {
        let mut state = S::init(alg);
        for _ in 0..interrupt_at {
            state.step(alg);
        }
        let snapshot = state.snapshot();
        drop(state);
        let mut resumed = S::restore(snapshot);
        while resumed.step(alg) {}
        resumed.finalize(alg)
    }

    #[test]
    fn generic_driver_matches_nsga2_run() {
        let cfg = Nsga2Config::new(16, 6).with_seed(13);
        let opt = Nsga2::new(Schaffer, Gaussian, cfg);
        let direct: Vec<Individual<f64>> = opt.run().into_front();
        for k in 0..=6 {
            let out = drive::<_, Nsga2State<f64>>(&opt, k);
            assert_eq!(direct, out.members, "k={k}");
        }
    }

    #[test]
    fn generic_driver_matches_spea2_run() {
        let cfg = Spea2Config::new(12, 5).with_seed(13);
        let opt = Spea2::new(Schaffer, Gaussian, cfg);
        let direct = opt.run();
        for k in 0..=5 {
            let out = drive::<_, Spea2State<f64>>(&opt, k);
            assert_eq!(direct.archive(), out.members.as_slice(), "k={k}");
            assert_eq!(direct.evaluations, out.evaluations, "k={k}");
        }
    }

    #[test]
    fn snapshot_restore_is_identity() {
        fn n_roundtrip(s: &Nsga2State<f64>) -> Nsga2State<f64> {
            type S = Nsga2State<f64>;
            <S as EvolutionState<Nsga2<Schaffer, Gaussian>>>::restore(<S as EvolutionState<
                Nsga2<Schaffer, Gaussian>,
            >>::snapshot(s))
        }
        fn s_roundtrip(s: &Spea2State<f64>) -> Spea2State<f64> {
            type S = Spea2State<f64>;
            <S as EvolutionState<Spea2<Schaffer, Gaussian>>>::restore(<S as EvolutionState<
                Spea2<Schaffer, Gaussian>,
            >>::snapshot(s))
        }

        let nsga = Nsga2::new(Schaffer, Gaussian, Nsga2Config::new(8, 3).with_seed(5));
        let mut ns = nsga.init_state();
        nsga.step(&mut ns);
        assert_eq!(n_roundtrip(&ns), ns);

        let spea = Spea2::new(Schaffer, Gaussian, Spea2Config::new(8, 3).with_seed(5));
        let mut ss = spea.init_state();
        spea.step(&mut ss);
        assert!(!ss.archive.is_empty());
        assert_eq!(s_roundtrip(&ss), ss);
    }

    #[test]
    fn trait_step_with_matches_serial() {
        use clre_exec::{ExecPool, Executor};
        let exec = Executor::new(ExecPool::new(3));
        let opt = Spea2::new(Schaffer, Gaussian, Spea2Config::new(10, 4).with_seed(21));
        let mut serial = Spea2State::init(&opt);
        let mut par = Spea2State::init_with(&opt, &exec);
        assert_eq!(serial, par);
        loop {
            let more = serial.step(&opt);
            assert_eq!(more, par.step_with(&opt, &exec));
            assert_eq!(serial, par, "gen {}", serial.generation);
            if !more {
                break;
            }
        }
    }
}

//! Standard multi-objective benchmark problems (ZDT suite, Zitzler–Deb–
//! Thiele 2000) with known Pareto fronts, plus quality indicators.
//!
//! These exist so the MOEA implementations can be validated against
//! published ground truth rather than only against each other: the test
//! suites assert that NSGA-II and SPEA2 converge to the analytical fronts
//! under the [`generational_distance`] indicator.
//!
//! # Examples
//!
//! ```
//! use clre_moea::test_problems::{generational_distance, Zdt1};
//! use clre_moea::{Nsga2, Nsga2Config, Problem};
//!
//! let problem = Zdt1::new(8);
//! let result = Nsga2::new(problem, clre_moea::test_problems::ZdtVariation,
//!                         Nsga2Config::new(60, 100).with_seed(1)).run();
//! let front = result.front_objectives();
//! let gd = generational_distance(&front, |f1| Zdt1::true_front_f2(f1));
//! assert!(gd < 0.05, "NSGA-II failed to approach the ZDT1 front: {gd}");
//! ```

use crate::{Evaluation, Problem, Variation};
use rand::{Rng, RngCore};

/// Genome of the ZDT problems: a real vector in `[0, 1]ⁿ`.
pub type RealVector = Vec<f64>;

/// ZDT1: convex Pareto front `f₂ = 1 − √f₁` at `x₂ … xₙ = 0`.
#[derive(Debug, Clone, Copy)]
pub struct Zdt1 {
    dims: usize,
}

impl Zdt1 {
    /// Creates the problem with `dims ≥ 2` decision variables.
    ///
    /// # Panics
    ///
    /// Panics if `dims < 2`.
    pub fn new(dims: usize) -> Self {
        assert!(dims >= 2, "ZDT needs at least two variables");
        Zdt1 { dims }
    }

    /// The true front: `f₂ = 1 − √f₁` for `f₁ ∈ [0, 1]`.
    pub fn true_front_f2(f1: f64) -> f64 {
        1.0 - f1.max(0.0).sqrt()
    }
}

impl Problem for Zdt1 {
    type Genome = RealVector;

    fn objective_count(&self) -> usize {
        2
    }

    fn random_genome(&self, rng: &mut dyn RngCore) -> RealVector {
        (0..self.dims).map(|_| rng.gen_range(0.0..1.0)).collect()
    }

    fn evaluate(&self, x: &RealVector) -> Evaluation {
        let f1 = x[0];
        let g = 1.0 + 9.0 * x[1..].iter().sum::<f64>() / (self.dims - 1) as f64;
        let f2 = g * (1.0 - (f1 / g).sqrt());
        Evaluation::feasible(vec![f1, f2])
    }
}

/// ZDT2: concave Pareto front `f₂ = 1 − f₁²`.
#[derive(Debug, Clone, Copy)]
pub struct Zdt2 {
    dims: usize,
}

impl Zdt2 {
    /// Creates the problem with `dims ≥ 2` decision variables.
    ///
    /// # Panics
    ///
    /// Panics if `dims < 2`.
    pub fn new(dims: usize) -> Self {
        assert!(dims >= 2, "ZDT needs at least two variables");
        Zdt2 { dims }
    }

    /// The true front: `f₂ = 1 − f₁²` for `f₁ ∈ [0, 1]`.
    pub fn true_front_f2(f1: f64) -> f64 {
        1.0 - f1 * f1
    }
}

impl Problem for Zdt2 {
    type Genome = RealVector;

    fn objective_count(&self) -> usize {
        2
    }

    fn random_genome(&self, rng: &mut dyn RngCore) -> RealVector {
        (0..self.dims).map(|_| rng.gen_range(0.0..1.0)).collect()
    }

    fn evaluate(&self, x: &RealVector) -> Evaluation {
        let f1 = x[0];
        let g = 1.0 + 9.0 * x[1..].iter().sum::<f64>() / (self.dims - 1) as f64;
        let f2 = g * (1.0 - (f1 / g) * (f1 / g));
        Evaluation::feasible(vec![f1, f2])
    }
}

/// ZDT3: disconnected front
/// `f₂ = 1 − √f₁ − f₁·sin(10πf₁)` (only its non-dominated sections).
#[derive(Debug, Clone, Copy)]
pub struct Zdt3 {
    dims: usize,
}

impl Zdt3 {
    /// Creates the problem with `dims ≥ 2` decision variables.
    ///
    /// # Panics
    ///
    /// Panics if `dims < 2`.
    pub fn new(dims: usize) -> Self {
        assert!(dims >= 2, "ZDT needs at least two variables");
        Zdt3 { dims }
    }

    /// The `g = 1` objective surface the optimal sections lie on.
    pub fn surface_f2(f1: f64) -> f64 {
        1.0 - f1.max(0.0).sqrt() - f1 * (10.0 * std::f64::consts::PI * f1).sin()
    }
}

impl Problem for Zdt3 {
    type Genome = RealVector;

    fn objective_count(&self) -> usize {
        2
    }

    fn random_genome(&self, rng: &mut dyn RngCore) -> RealVector {
        (0..self.dims).map(|_| rng.gen_range(0.0..1.0)).collect()
    }

    fn evaluate(&self, x: &RealVector) -> Evaluation {
        let f1 = x[0];
        let g = 1.0 + 9.0 * x[1..].iter().sum::<f64>() / (self.dims - 1) as f64;
        let f2 = g * (1.0 - (f1 / g).sqrt() - (f1 / g) * (10.0 * std::f64::consts::PI * f1).sin());
        Evaluation::feasible(vec![f1, f2])
    }
}

/// Real-vector operators for the ZDT problems: BLX-α crossover (samples
/// slightly *beyond* the parents, preserving spread) and per-gene
/// perturbation with occasional uniform resets, both clamped to `[0, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct ZdtVariation;

/// BLX exploration margin.
const BLX_ALPHA: f64 = 0.3;

impl Variation<RealVector> for ZdtVariation {
    fn crossover(
        &self,
        a: &RealVector,
        b: &RealVector,
        rng: &mut dyn RngCore,
    ) -> (RealVector, RealVector) {
        let mut c1 = Vec::with_capacity(a.len());
        let mut c2 = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let (lo, hi) = (x.min(y), x.max(y));
            let d = (hi - lo).max(1e-12);
            let range = (lo - BLX_ALPHA * d)..(hi + BLX_ALPHA * d);
            c1.push(rng.gen_range(range.clone()).clamp(0.0, 1.0));
            c2.push(rng.gen_range(range).clamp(0.0, 1.0));
        }
        (c1, c2)
    }

    fn mutate(&self, genome: &mut RealVector, rng: &mut dyn RngCore) {
        let i = rng.gen_range(0..genome.len());
        if rng.gen_bool(0.1) {
            // Occasional uniform reset keeps the boundary reachable.
            genome[i] = rng.gen_range(0.0..1.0);
        } else {
            let delta: f64 = rng.gen_range(-0.2..0.2);
            genome[i] = (genome[i] + delta).clamp(0.0, 1.0);
        }
    }
}

/// Generational distance of a front to an analytically known true front:
/// the mean distance of each obtained point to its projection
/// `(f₁, true_f2(f₁))` — valid for the ZDT fronts, whose optimal `f₂` is a
/// function of `f₁`.
///
/// # Panics
///
/// Panics if `front` is empty or any point is not 2-D.
pub fn generational_distance(front: &[Vec<f64>], true_f2: impl Fn(f64) -> f64) -> f64 {
    assert!(!front.is_empty(), "front must be non-empty");
    let total: f64 = front
        .iter()
        .map(|p| {
            assert_eq!(p.len(), 2, "ZDT fronts are bi-objective");
            (p[1] - true_f2(p[0])).abs()
        })
        .sum();
    total / front.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Nsga2, Nsga2Config, Spea2, Spea2Config};

    #[test]
    fn zdt1_optimum_on_true_front() {
        let p = Zdt1::new(6);
        let e = p.evaluate(&vec![0.25, 0.0, 0.0, 0.0, 0.0, 0.0]);
        assert!((e.objectives[1] - Zdt1::true_front_f2(0.25)).abs() < 1e-12);
        // Off-front genomes evaluate strictly above the front.
        let off = p.evaluate(&vec![0.25, 0.5, 0.0, 0.0, 0.0, 0.0]);
        assert!(off.objectives[1] > e.objectives[1]);
    }

    #[test]
    fn zdt2_optimum_on_true_front() {
        let p = Zdt2::new(4);
        let e = p.evaluate(&vec![0.5, 0.0, 0.0, 0.0]);
        assert!((e.objectives[1] - Zdt2::true_front_f2(0.5)).abs() < 1e-12);
    }

    #[test]
    fn zdt3_surface_matches_evaluation_at_g1() {
        let p = Zdt3::new(4);
        let e = p.evaluate(&vec![0.1, 0.0, 0.0, 0.0]);
        assert!((e.objectives[1] - Zdt3::surface_f2(0.1)).abs() < 1e-12);
    }

    #[test]
    fn nsga2_converges_on_zdt1() {
        let result = Nsga2::new(
            Zdt1::new(8),
            ZdtVariation,
            Nsga2Config::new(60, 120).with_seed(5),
        )
        .run();
        let front = result.front_objectives();
        let gd = generational_distance(&front, Zdt1::true_front_f2);
        assert!(gd < 0.05, "generational distance too large: {gd}");
        // Decent spread along f1.
        let min = front.iter().map(|p| p[0]).fold(f64::MAX, f64::min);
        let max = front.iter().map(|p| p[0]).fold(f64::MIN, f64::max);
        assert!(max - min > 0.5, "front spread collapsed: [{min}, {max}]");
    }

    #[test]
    fn nsga2_converges_on_zdt2() {
        let result = Nsga2::new(
            Zdt2::new(8),
            ZdtVariation,
            Nsga2Config::new(60, 120).with_seed(6),
        )
        .run();
        let gd = generational_distance(&result.front_objectives(), Zdt2::true_front_f2);
        assert!(gd < 0.06, "generational distance too large: {gd}");
    }

    #[test]
    fn spea2_converges_on_zdt1() {
        let result = Spea2::new(
            Zdt1::new(8),
            ZdtVariation,
            Spea2Config::new(60, 120).with_seed(7),
        )
        .run();
        let gd = generational_distance(&result.front_objectives(), Zdt1::true_front_f2);
        assert!(gd < 0.06, "generational distance too large: {gd}");
    }

    #[test]
    fn zdt3_points_never_below_surface_sections() {
        // Every obtained ZDT3 point lies on or above the g=1 surface.
        let result = Nsga2::new(
            Zdt3::new(6),
            ZdtVariation,
            Nsga2Config::new(40, 60).with_seed(8),
        )
        .run();
        for p in result.front_objectives() {
            assert!(p[1] >= Zdt3::surface_f2(p[0]) - 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "at least two variables")]
    fn zdt_requires_two_dims() {
        Zdt1::new(1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn gd_requires_points() {
        generational_distance(&[], Zdt1::true_front_f2);
    }
}

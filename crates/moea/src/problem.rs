use rand::RngCore;

/// The outcome of evaluating one genome: a minimization objective vector
/// plus a scalar constraint violation (0 = feasible).
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Objective values, all minimized.
    pub objectives: Vec<f64>,
    /// Total normalized constraint violation; `0.0` means feasible.
    pub violation: f64,
}

impl Evaluation {
    /// A feasible evaluation.
    pub fn feasible(objectives: Vec<f64>) -> Self {
        Evaluation {
            objectives,
            violation: 0.0,
        }
    }

    /// An evaluation with the given constraint violation.
    pub fn with_violation(objectives: Vec<f64>, violation: f64) -> Self {
        Evaluation {
            objectives,
            violation,
        }
    }

    /// Whether this evaluation satisfies all constraints.
    pub fn is_feasible(&self) -> bool {
        self.violation == 0.0
    }
}

/// A multi-objective optimization problem.
///
/// Implementors define the genome type, how to sample a random genome and
/// how to evaluate one. Genetic operators live separately in
/// [`Variation`], so the same problem can be searched with different
/// operator suites (which the ablation benches exploit).
pub trait Problem {
    /// The genome (decision-variable encoding).
    type Genome: Clone;

    /// Number of objectives produced by [`Problem::evaluate`].
    fn objective_count(&self) -> usize;

    /// Samples a uniform random genome.
    fn random_genome(&self, rng: &mut dyn RngCore) -> Self::Genome;

    /// Evaluates a genome.
    ///
    /// Must return exactly [`Problem::objective_count`] objective values.
    fn evaluate(&self, genome: &Self::Genome) -> Evaluation;
}

/// Genetic operators over a genome type.
pub trait Variation<G> {
    /// Recombines two parents into two offspring.
    fn crossover(&self, a: &G, b: &G, rng: &mut dyn RngCore) -> (G, G);

    /// Mutates a genome in place.
    fn mutate(&self, genome: &mut G, rng: &mut dyn RngCore);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_constructors() {
        let f = Evaluation::feasible(vec![1.0, 2.0]);
        assert!(f.is_feasible());
        let v = Evaluation::with_violation(vec![1.0], 0.5);
        assert!(!v.is_feasible());
        assert_eq!(v.violation, 0.5);
    }
}

use rand::RngCore;
use std::fmt;

/// A typed evaluation failure: what went wrong while evaluating one
/// genome, as a human-readable message.
///
/// This is the error half of [`Problem::try_evaluate`]. It deliberately
/// carries only a rendered message: the MOEA layer does not interpret
/// failure causes, it only needs to report them (and supervising layers
/// such as `ResilientProblem` quarantine on any error alike). Domain
/// layers convert their own error enums into this via [`EvalError::new`]
/// or the blanket `From<E: Display>` conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    message: String,
}

impl EvalError {
    /// An evaluation error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        EvalError {
            message: message.into(),
        }
    }

    /// The rendered failure message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for EvalError {}

/// The outcome of evaluating one genome: a minimization objective vector
/// plus a scalar constraint violation (0 = feasible).
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Objective values, all minimized.
    pub objectives: Vec<f64>,
    /// Total normalized constraint violation; `0.0` means feasible.
    pub violation: f64,
}

impl Evaluation {
    /// A feasible evaluation.
    pub fn feasible(objectives: Vec<f64>) -> Self {
        Evaluation {
            objectives,
            violation: 0.0,
        }
    }

    /// An evaluation with the given constraint violation.
    pub fn with_violation(objectives: Vec<f64>, violation: f64) -> Self {
        Evaluation {
            objectives,
            violation,
        }
    }

    /// Whether this evaluation satisfies all constraints.
    pub fn is_feasible(&self) -> bool {
        self.violation == 0.0
    }
}

/// A multi-objective optimization problem.
///
/// Implementors define the genome type, how to sample a random genome and
/// how to evaluate one. Genetic operators live separately in
/// [`Variation`], so the same problem can be searched with different
/// operator suites (which the ablation benches exploit).
pub trait Problem {
    /// The genome (decision-variable encoding).
    type Genome: Clone;

    /// Number of objectives produced by [`Problem::evaluate`].
    fn objective_count(&self) -> usize;

    /// Samples a uniform random genome.
    fn random_genome(&self, rng: &mut dyn RngCore) -> Self::Genome;

    /// Evaluates a genome.
    ///
    /// Must return exactly [`Problem::objective_count`] objective values.
    fn evaluate(&self, genome: &Self::Genome) -> Evaluation;

    /// Evaluates a genome, reporting failures as typed errors instead of
    /// panicking.
    ///
    /// The default implementation wraps the panicking [`Problem::evaluate`]
    /// path unguarded (a legacy problem that panics still panics here);
    /// problems with a native fallible evaluation path should override
    /// this — and [`Problem::reports_errors`] — so supervising layers can
    /// use the typed channel directly without `catch_unwind`.
    ///
    /// # Errors
    ///
    /// An [`EvalError`] describing why the genome could not be evaluated.
    fn try_evaluate(&self, genome: &Self::Genome) -> Result<Evaluation, EvalError> {
        Ok(self.evaluate(genome))
    }

    /// Whether [`Problem::try_evaluate`] natively reports failures as
    /// `Err` rather than panicking.
    ///
    /// `false` (the default) means `try_evaluate` is the unguarded
    /// wrapper around the panicking path and callers that must survive
    /// bad genomes need `catch_unwind` as a backstop. Problems that
    /// override `try_evaluate` with a genuinely fallible implementation
    /// should return `true` so supervisors can skip the unwind machinery
    /// in the common path.
    fn reports_errors(&self) -> bool {
        false
    }

    /// The problem's wire codec, when its evaluation can run on an
    /// out-of-process [`EvalBackend`](clre_exec::EvalBackend). `None`
    /// (the default) keeps every batch in-process.
    ///
    /// The MOEA layer consults this once per batch: with a codec *and* a
    /// backend attached to the driving `Executor`, genomes are encoded,
    /// shipped, and decoded; anything that fails remotely (one item or
    /// the whole batch) falls back to [`Problem::evaluate`] in-process,
    /// so results are bit-identical whichever path ran.
    fn remote(&self) -> Option<&dyn RemoteEval<Self::Genome>> {
        None
    }
}

/// The wire codec of a remotable [`Problem`]: a context string naming
/// the evaluation function, plus per-genome item/output encodings.
///
/// The codec must be lossless where it matters: `decode_output` of a
/// worker's output must be the bit-exact [`Evaluation`] an in-process
/// [`Problem::evaluate`] of the same genome produces, because the
/// determinism contract lets the two paths mix freely within one run.
pub trait RemoteEval<G> {
    /// The full evaluation context (application, scenario, encoding
    /// mode, …) as a single line a worker's vocabulary can resolve.
    fn context(&self) -> String;

    /// Encodes one genome as a single-line wire item.
    fn encode_item(&self, genome: &G) -> String;

    /// Decodes one worker output line back into an [`Evaluation`].
    ///
    /// # Errors
    ///
    /// An [`EvalError`] describing the malformed output; the caller
    /// falls back to in-process evaluation of that genome.
    fn decode_output(&self, output: &str) -> Result<Evaluation, EvalError>;
}

/// Genetic operators over a genome type.
pub trait Variation<G> {
    /// Recombines two parents into two offspring.
    fn crossover(&self, a: &G, b: &G, rng: &mut dyn RngCore) -> (G, G);

    /// Mutates a genome in place.
    fn mutate(&self, genome: &mut G, rng: &mut dyn RngCore);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_constructors() {
        let f = Evaluation::feasible(vec![1.0, 2.0]);
        assert!(f.is_feasible());
        let v = Evaluation::with_violation(vec![1.0], 0.5);
        assert!(!v.is_feasible());
        assert_eq!(v.violation, 0.5);
    }

    struct Legacy;

    impl Problem for Legacy {
        type Genome = u32;

        fn objective_count(&self) -> usize {
            1
        }

        fn random_genome(&self, _rng: &mut dyn RngCore) -> u32 {
            0
        }

        fn evaluate(&self, genome: &u32) -> Evaluation {
            Evaluation::feasible(vec![f64::from(*genome)])
        }
    }

    #[test]
    fn default_try_evaluate_wraps_the_panicking_path() {
        let p = Legacy;
        assert!(!p.reports_errors());
        let eval = p.try_evaluate(&7).unwrap();
        assert_eq!(eval, p.evaluate(&7));
    }

    #[test]
    fn eval_error_renders_its_message() {
        let e = EvalError::new("decode failed");
        assert_eq!(e.message(), "decode failed");
        assert_eq!(e.to_string(), "decode failed");
    }
}
